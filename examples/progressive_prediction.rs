//! Progressive prediction: refine the latency estimate *while the query
//! runs*, as operators complete and their true times become known — the
//! extension sketched in the paper's conclusions.
//!
//! ```text
//! cargo run --release --example progressive_prediction
//! ```

use engine::{Catalog, SimConfig, Simulator};
use ml::metrics::relative_error;
use qpp::hybrid::HybridModel;
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::progressive::trajectory;
use qpp::{ExecutedQuery, QueryDataset};
use tpch::Workload;

fn main() {
    let sf = 0.5;
    let catalog = Catalog::new(sf, 1);
    let simulator = Simulator::with_config(SimConfig {
        additive_noise_secs: 0.1,
        ..SimConfig::default()
    });

    let training = Workload::generate(&[1, 3, 5, 9, 12], 12, sf, 42);
    let ds = QueryDataset::execute(&catalog, &training, &simulator, 7, f64::INFINITY);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op = OpLevelModel::train(&refs, &OpModelConfig::default()).expect("training");
    let model = HybridModel::operator_only(op);

    // Watch one long-running query refine.
    let incoming = Workload::generate(&[9], 3, sf, 777);
    let queries = QueryDataset::execute(&catalog, &incoming, &simulator, 99, f64::INFINITY);
    let fractions = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9];

    for q in &queries.queries {
        println!(
            "template {} — true latency {:.1}s",
            q.template,
            q.latency()
        );
        println!("{:>10} {:>14} {:>10}", "progress", "prediction (s)", "error");
        for (f, p) in trajectory(&model, q, &fractions) {
            println!(
                "{:>9.0}% {:>14.1} {:>9.1}%",
                f * 100.0,
                p,
                relative_error(q.latency(), p) * 100.0
            );
        }
        println!();
    }
    println!(
        "as operators finish, their observed times replace model estimates\n\
         in the composition — the prediction converges to the truth"
    );
}
