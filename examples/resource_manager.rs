//! Workload allocation with QPP — the paper's motivating use case.
//!
//! A resource manager receives a queue of ad-hoc analytical queries and
//! must route them to an *interactive* pool (answer in under a minute) or
//! a *batch* pool, before running anything. Analytical cost estimates
//! order plans but do not predict latency (Section 5.2), so routing on
//! cost misclassifies; routing on learned QPP predictions does far better.
//!
//! The history here is collected under fault injection (aborts,
//! stragglers, corrupted optimizer estimates), so the manager routes on
//! `predict_checked`: degraded predictions are not trusted with the
//! interactive SLA and the query goes to the batch pool instead.
//!
//! ```text
//! cargo run --release --example resource_manager
//! ```

use engine::faults::FaultPlan;
use engine::{Catalog, Simulator};
use qpp::{
    CollectionConfig, ExecutedQuery, Method, QppConfig, QppPredictor, QueryDataset,
};
use tpch::Workload;

/// Queries predicted under this latency go to the interactive pool.
const INTERACTIVE_SLA_SECS: f64 = 60.0;

fn main() {
    let sf = 0.1;
    let catalog = Catalog::new(sf, 1);
    let simulator = Simulator::new();

    // Historical workload: what the system has executed before — collected
    // on a flaky cluster, with retries and outlier quarantine.
    let history = Workload::generate(&[1, 3, 5, 6, 10, 12, 14, 19], 12, sf, 1);
    let faults = FaultPlan {
        abort_prob: 0.08,
        straggler_prob: 0.04,
        corrupt_prob: 0.03,
        seed: 42,
        ..FaultPlan::none()
    };
    let (dataset, report) = QueryDataset::execute_with_faults(
        &catalog,
        &history,
        &simulator,
        5,
        f64::INFINITY,
        &faults,
        &CollectionConfig::default(),
    );
    println!(
        "collected history: {}/{} queries ({} retries, {} dropped, {} quarantined)\n",
        report.succeeded,
        report.attempted,
        report.retried,
        report.dropped(),
        report.quarantined
    );
    let refs: Vec<&ExecutedQuery> = dataset.queries.iter().collect();
    let qpp = match QppPredictor::train(&refs, QppConfig::default()) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot train the router: {e}");
            std::process::exit(1);
        }
    };

    // Incoming queue: fresh instances.
    let queue = Workload::generate(&[1, 3, 5, 6, 10, 12, 14, 19], 4, sf, 999);
    let incoming = QueryDataset::execute(&catalog, &queue, &simulator, 77, f64::INFINITY);

    // Cost-threshold baseline: calibrate the cost cutoff on history so the
    // same *fraction* of queries routes interactive.
    let mut costs: Vec<f64> = dataset.queries.iter().map(|q| q.plan.est.total_cost).collect();
    costs.sort_by(f64::total_cmp);
    let interactive_frac = dataset
        .queries
        .iter()
        .filter(|q| q.latency() < INTERACTIVE_SLA_SECS)
        .count() as f64
        / dataset.len() as f64;
    let cost_cutoff = costs[(interactive_frac * (costs.len() - 1) as f64) as usize];

    let mut qpp_correct = 0;
    let mut cost_correct = 0;
    let mut degraded_routes = 0;
    println!(
        "routing {} incoming queries (SLA: {}s)\n",
        incoming.len(),
        INTERACTIVE_SLA_SECS
    );
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "template", "actual(s)", "qpp-pred(s)", "cost-est", "qpp", "cost"
    );
    for q in &incoming.queries {
        let actually_interactive = q.latency() < INTERACTIVE_SLA_SECS;
        let pred = qpp.predict_checked(q, Method::PlanLevel);
        // A degraded prediction means the model tiers could not be
        // trusted; the safe routing choice is the batch pool.
        let qpp_route = !pred.degraded && pred.value < INTERACTIVE_SLA_SECS;
        if pred.degraded {
            degraded_routes += 1;
        }
        let cost_route = q.plan.est.total_cost < cost_cutoff;
        if qpp_route == actually_interactive {
            qpp_correct += 1;
        }
        if cost_route == actually_interactive {
            cost_correct += 1;
        }
        println!(
            "{:<10} {:>10.1} {:>12.1} {:>12.0} {:>8} {:>8}",
            format!("t{}", q.template),
            q.latency(),
            pred.value,
            q.plan.est.total_cost,
            mark(qpp_route == actually_interactive),
            mark(cost_route == actually_interactive),
        );
    }
    let n = incoming.len() as f64;
    println!(
        "\nrouting accuracy: QPP {:.0}%  vs cost-threshold {:.0}%  ({} degraded → batch)",
        qpp_correct as f64 / n * 100.0,
        cost_correct as f64 / n * 100.0,
        degraded_routes
    );
}

fn mark(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "MISS"
    }
}
