//! A tour of the DBMS substrate: plan a TPC-H query, inspect EXPLAIN and
//! EXPLAIN ANALYZE output, compare optimizer estimates against the truth,
//! and validate cardinalities against actually-generated rows with the
//! reference executor.
//!
//! ```text
//! cargo run --release --example explain_analyze [template]
//! ```

use engine::exec::execute;
use engine::{explain_analyze, Catalog, Planner, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpch::GeneratedDb;

fn main() {
    let template: u8 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let sf = 0.02;

    let catalog = Catalog::new(sf, 1);
    let planner = Planner::new(&catalog);
    let simulator = Simulator::new();
    let mut rng = StdRng::seed_from_u64(11);
    let spec = tpch::instantiate(template, sf, &mut rng);

    println!("TPC-H template {template} with parameters:");
    for (k, v) in &spec.params {
        println!("  {k} = {v}");
    }

    let plan = planner.plan(&spec);
    let trace = simulator.execute(&plan, sf, 5);
    println!("\nEXPLAIN ANALYZE (simulated, SF {sf}):\n");
    println!("{}", explain_analyze(&plan, &trace));

    // Ground-truth check against actually generated rows.
    println!("generating a {sf}-scale database to validate cardinalities...");
    let db = GeneratedDb::generate(sf, 7);
    let result = execute(&spec.root, &db);
    println!(
        "reference executor result: {} rows (analytic truth at the root: {:.1})",
        result.n_rows(),
        plan.truth.rows
    );
    println!(
        "\nestimate vs truth at the root: {:.1} vs {:.1} rows — the models\n\
         must learn around exactly this kind of estimation error",
        plan.est.rows, plan.truth.rows
    );
}
