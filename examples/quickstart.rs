//! Quickstart: train the QPP models on a small workload and predict the
//! latency of new queries before "running" them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use engine::{explain, Catalog, Simulator};
use qpp::{ExecutedQuery, Method, PlanOrdering, QppConfig, QppPredictor, QueryDataset};
use tpch::Workload;

fn main() {
    // A 100 MB-scale TPC-H database and a training workload of five
    // templates, twelve parameterized instances each.
    let sf = 0.1;
    let catalog = Catalog::new(sf, 1);
    let simulator = Simulator::new();
    let train_workload = Workload::generate(&[1, 3, 6, 10, 14], 12, sf, 42);

    println!("executing {} training queries (cold start)...", train_workload.len());
    let dataset = QueryDataset::execute(&catalog, &train_workload, &simulator, 7, f64::INFINITY);

    // Train all model families: plan-level, operator-level, hybrid.
    let refs: Vec<&ExecutedQuery> = dataset.queries.iter().collect();
    let qpp = QppPredictor::train(&refs, QppConfig::default()).expect("training");
    println!(
        "trained: plan-level (features: {:?}), operator-level, hybrid ({} sub-plan models)\n",
        qpp.plan_level.selected_feature_names(),
        qpp.hybrid.plan_models.len()
    );

    // Predict fresh, unseen instances of the same templates.
    let test_workload = Workload::generate(&[3, 6, 14], 2, sf, 4242);
    let test = QueryDataset::execute(&catalog, &test_workload, &simulator, 99, f64::INFINITY);

    for q in &test.queries {
        println!("--- template {} ---", q.template);
        println!("{}", explain(&q.plan));
        let plan = qpp.predict(q, Method::PlanLevel);
        let op = qpp.predict(q, Method::OperatorLevel);
        let hybrid = qpp.predict(q, Method::Hybrid(PlanOrdering::ErrorBased));
        println!(
            "actual {:>8.2}s | plan-level {:>8.2}s | operator-level {:>8.2}s | hybrid {:>8.2}s\n",
            q.latency(),
            plan,
            op,
            hybrid
        );
    }
}
