//! Model materialization: pre-build models offline, write them to disk,
//! and reload them in a fresh "session" without retraining (Section 1 of
//! the paper).
//!
//! ```text
//! cargo run --release --example materialize_models
//! ```

use engine::{Catalog, Simulator};
use qpp::{ExecutedQuery, MaterializedModels, Method, PlanOrdering, QppConfig, QppPredictor, QueryDataset};
use tpch::Workload;

fn main() {
    let sf = 0.1;
    let catalog = Catalog::new(sf, 1);
    let simulator = Simulator::new();

    // ---- offline session: execute training workload, train, materialize.
    let workload = Workload::generate(&[1, 3, 6, 14], 10, sf, 42);
    let ds = QueryDataset::execute(&catalog, &workload, &simulator, 7, f64::INFINITY);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let qpp = QppPredictor::train(&refs, QppConfig::default()).expect("training");
    let materialized = MaterializedModels::new(&qpp.plan_level, &qpp.op_level, &qpp.hybrid);
    let json = materialized.to_json();

    let path = std::env::temp_dir().join("qpp_models.json");
    std::fs::write(&path, &json).expect("write models");
    println!(
        "materialized {} bytes of models to {} ({} sub-plan models)",
        json.len(),
        path.display(),
        materialized.hybrid_plan_models.len()
    );

    // ---- new session: reload and predict immediately; no training data
    // or sample runs needed.
    let reloaded =
        MaterializedModels::from_json(&std::fs::read_to_string(&path).expect("read models"))
            .expect("parse models");
    let hybrid = reloaded.hybrid();

    let incoming = Workload::generate(&[3, 14], 3, sf, 4321);
    let queries = QueryDataset::execute(&catalog, &incoming, &simulator, 17, f64::INFINITY);
    println!("\npredictions from reloaded models:");
    for q in &queries.queries {
        println!(
            "template {:>2}: actual {:>7.2}s, plan-level {:>7.2}s, hybrid {:>7.2}s",
            q.template,
            q.latency(),
            reloaded.plan_level.predict(q),
            hybrid.predict(q),
        );
    }

    // The reloaded models agree exactly with the in-memory ones.
    let q = &queries.queries[0];
    let orig = qpp.predict(q, Method::Hybrid(PlanOrdering::ErrorBased));
    let re = hybrid.predict(q);
    assert!((orig - re).abs() < 1e-9, "orig {orig} vs reloaded {re}");
    println!("\nreloaded models agree exactly with the originals");
}
