//! Dynamic workloads: predicting queries whose plan shape was never seen
//! in training (Section 4 of the paper).
//!
//! Trains on a set of templates, then receives queries from a *new*
//! template. The plan-level model collapses (out-of-distribution), the
//! operator-level models generalize, and online model building patches
//! the shared sub-plans for the best accuracy — the paper's Figure 9
//! story at example scale.
//!
//! ```text
//! cargo run --release --example dynamic_workload
//! ```

use engine::{Catalog, SimConfig, Simulator};
use ml::metrics::mean_relative_error;
use qpp::hybrid::HybridModel;
use qpp::online::{OnlineConfig, OnlinePredictor};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::plan_model::{PlanLevelModel, PlanModelConfig};
use qpp::{ExecutedQuery, QueryDataset};
use tpch::Workload;

fn main() {
    let sf = 0.1;
    let catalog = Catalog::new(sf, 1);
    // Small DB → keep the absolute jitter proportional.
    let simulator = Simulator::with_config(SimConfig {
        additive_noise_secs: 0.1,
        ..SimConfig::default()
    });

    // Known workload: five templates. Template 10 has never been seen.
    let known = Workload::generate(&[1, 3, 5, 6, 14], 12, sf, 21);
    let train_ds = QueryDataset::execute(&catalog, &known, &simulator, 3, f64::INFINITY);
    let train: Vec<&ExecutedQuery> = train_ds.queries.iter().collect();

    let unseen = Workload::generate(&[10], 8, sf, 2121);
    let test_ds = QueryDataset::execute(&catalog, &unseen, &simulator, 9, f64::INFINITY);
    let test: Vec<&ExecutedQuery> = test_ds.queries.iter().collect();
    let actual: Vec<f64> = test.iter().map(|q| q.latency()).collect();

    println!(
        "trained on templates 1,3,5,6,14 ({} queries); predicting unseen template 10\n",
        train.len()
    );

    let plan_model = PlanLevelModel::train(&train, &PlanModelConfig::default()).expect("plan");
    let plan_preds: Vec<f64> = test.iter().map(|q| plan_model.predict(q)).collect();

    let op_model = OpLevelModel::train(&train, &OpModelConfig::default()).expect("op");
    let op_preds: Vec<f64> = test.iter().map(|q| op_model.predict(q)).collect();

    let mut online = OnlinePredictor::new(
        train.clone(),
        HybridModel::operator_only(op_model),
        OnlineConfig {
            min_frequency: 4,
            ..OnlineConfig::default()
        },
    );
    let online_preds: Vec<f64> = test.iter().map(|q| online.predict_query(q)).collect();

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12}",
        "query", "actual(s)", "plan-level", "op-level", "online"
    );
    for (i, q) in test.iter().enumerate() {
        println!(
            "{:<8} {:>10.2} {:>12.2} {:>12.2} {:>12.2}",
            format!("#{i}"),
            q.latency(),
            plan_preds[i],
            op_preds[i],
            online_preds[i]
        );
    }
    println!(
        "\nmean relative error: plan-level {:.0}%, operator-level {:.0}%, online {:.0}%",
        mean_relative_error(&actual, &plan_preds) * 100.0,
        mean_relative_error(&actual, &op_preds) * 100.0,
        mean_relative_error(&actual, &online_preds) * 100.0,
    );
    println!("(plan-level models do not generalize to unseen plan shapes;\n operator-level and online models do)");
}
