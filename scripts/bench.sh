#!/usr/bin/env bash
# Reproducible benchmark run: builds the release harness and measures the
# training pipeline (serial vs parallel), the inference paths (reference
# vs compiled vs batched, with bit-identity asserted in-harness), and the
# serving front-end under closed-loop and bursty-overload load, writing
# BENCH_pr3.json and BENCH_serve.json (optd-style {name, value, unit}
# entries) at the repo root.
#
# Usage: scripts/bench.sh [OUT_PATH] [--per-template N]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p qpp-bench"
cargo build --release -p qpp-bench

echo "==> perf_trajectory $*"
./target/release/perf_trajectory "$@"

echo "==> serve_load"
timeout 600 ./target/release/serve_load BENCH_serve.json
