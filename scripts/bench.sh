#!/usr/bin/env bash
# Reproducible benchmark run: builds the release harness and regenerates
# every committed BENCH-v1 document at the repo root, one file per
# harness binary, all named BENCH_<suffix>.json:
#
#   BENCH_pr8.json    perf_trajectory — gated kernel hot path (unblocked
#                     baseline vs dispatched lane tree, single row, quad
#                     block and batched), training hot path (blocked Gram
#                     build, vectorized SMO solve, arena featurization,
#                     scalar-vs-vectorized end-to-end train), training
#                     trajectory, hybrid inference
#   BENCH_serve.json  serve_load — serving front-end under closed-loop
#                     and bursty-overload load
#   BENCH_drift.json  drift_loop — drift detection / shadow-retrain /
#                     promotion lifecycle
#   BENCH_tenant.json tenant_load — multi-tenant bulkheads: noisy-neighbor
#                     isolation, weighted-fair dequeue, SLO -> drift
#                     healing loop
#   BENCH_net.json    net_load — the TCP front door: clean wire
#                     throughput/latency, seeded wire chaos, graceful
#                     drain reconciliation
#
# (BENCH_pr7.json is the frozen PR-7 artifact, kept for history; it is
# schema-checked but no longer regenerated.)
#
# Every document is validated against the BENCH-v1 schema afterwards.
# Diff a fresh run against the committed baseline with:
#
#   ./target/release/bench_compare BENCH_pr8.json FRESH.json --filter kernel/
#
# Usage: scripts/bench.sh [--per-template N]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p qpp-bench"
cargo build --release -p qpp-bench

echo "==> perf_trajectory BENCH_pr8.json $*"
./target/release/perf_trajectory BENCH_pr8.json "$@"

echo "==> serve_load BENCH_serve.json"
timeout 600 ./target/release/serve_load BENCH_serve.json

echo "==> drift_loop BENCH_drift.json"
timeout 600 ./target/release/drift_loop BENCH_drift.json

echo "==> tenant_load BENCH_tenant.json"
timeout 600 ./target/release/tenant_load BENCH_tenant.json

echo "==> net_load BENCH_net.json"
timeout 600 ./target/release/net_load BENCH_net.json

echo "==> bench_compare --check-schema"
./target/release/bench_compare --check-schema BENCH_pr8.json BENCH_pr7.json BENCH_serve.json BENCH_drift.json BENCH_tenant.json BENCH_net.json
