#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from anywhere; operates on the
# workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --test parallel_determinism"
cargo test -q --test parallel_determinism

echo "==> cargo test -q --test batch_determinism"
cargo test -q --test batch_determinism

echo "==> cargo test -q --test drift_recovery"
cargo test -q --test drift_recovery

echo "==> cargo test -q -p qpp-core registry materialize monitor"
cargo test -q -p qpp-core registry
cargo test -q -p qpp-core materialize
cargo test -q -p qpp-core monitor

# Serving-layer stress gate: the overload and hot-swap suites exercise
# blocking queues and worker pools, so a deadlock shows up as a hang, not
# a failure. A hard timeout turns that hang into a CI failure.
echo "==> serve stress gate (bounded time)"
timeout 300 cargo test -q --test serve_overload
timeout 300 cargo test -q --test swap_under_load
timeout 300 cargo test -q -p qpp-serve

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> OK"
