#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from anywhere; operates on the
# workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> kernel + arena identity gates"
cargo test -q -p qpp-ml --test simd_props
cargo test -q -p qpp-ml --test compiled_props
cargo test -q -p qpp-ml --test gram_blocked_props
cargo test -q -p qpp-ml --test smo_vector_props
cargo test -q -p qpp-ml --test zero_alloc
cargo test -q -p qpp-core --test arena_props

# The portable scalar tree must keep passing with the AVX2 path compiled
# out entirely (the non-x86 / no-AVX2 configuration).
echo "==> force-scalar matrix line"
cargo test -q -p qpp-ml --features force-scalar --test simd_props
cargo test -q -p qpp-ml --features force-scalar --test compiled_props
cargo test -q -p qpp-ml --features force-scalar --test gram_blocked_props
cargo test -q -p qpp-ml --features force-scalar --test smo_vector_props
cargo test -q -p qpp-ml --features force-scalar --test zero_alloc

echo "==> cargo test -q --test parallel_determinism"
cargo test -q --test parallel_determinism

echo "==> cargo test -q --test batch_determinism"
cargo test -q --test batch_determinism

echo "==> cargo test -q --test drift_recovery"
cargo test -q --test drift_recovery

echo "==> cargo test -q -p qpp-core registry materialize monitor"
cargo test -q -p qpp-core registry
cargo test -q -p qpp-core materialize
cargo test -q -p qpp-core monitor

# Serving-layer stress gate: the overload and hot-swap suites exercise
# blocking queues and worker pools, so a deadlock shows up as a hang, not
# a failure. A hard timeout turns that hang into a CI failure.
echo "==> serve stress gate (bounded time)"
timeout 300 cargo test -q --test serve_overload
timeout 300 cargo test -q --test swap_under_load
timeout 300 cargo test -q -p qpp-serve

# Noisy-neighbor stress gate: a seeded one-hot tenant burst must shed at
# the hot tenant's bulkhead while the quiet tenant keeps its deadline
# budget, and the SLO -> drift healing loop must promote per tenant. The
# suite is seeded and bounded: a hang (worker deadlock, starved lane) is a
# failure, not a stall.
echo "==> tenant noisy-neighbor stress gate (bounded time)"
timeout 60 cargo test -q --test tenant_isolation

# Network-chaos gate: seeded wire faults (partial writes, mid-frame
# disconnects, corrupted frames, slowloris stalls) against the TCP front
# door must leave the quiet tenant bit-identical, kill no worker, and
# reconcile the drain ledger exactly. Seeded and bounded: a hang (stuck
# acceptor, un-evicted slow client, lost drain count) is a CI failure.
echo "==> network chaos gate (bounded time)"
timeout 60 cargo test -q --test net_chaos
timeout 60 cargo test -q --test healer_supervision
timeout 60 cargo test -q -p qpp-serve --test codec_props

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

# Perf-trajectory contract: every committed bench document must parse as
# BENCH-v1, and a fresh kernel run must stay inside the noise band of the
# committed baseline. The gate diffs the speedup ratios (compiled vs
# in-binary unblocked baseline), which self-normalize across host speeds;
# absolute rows/s stay informational.
echo "==> BENCH-v1 schema check"
cargo build --release -p qpp-bench
./target/release/bench_compare --check-schema BENCH_pr8.json BENCH_pr7.json BENCH_serve.json BENCH_drift.json BENCH_tenant.json BENCH_net.json

# One fresh hot-path run feeds three self-normalizing ratio gates: the
# inference kernel, the blocked Gram build, and the end-to-end
# scalar-vs-vectorized training speedup (bench_compare takes one filter
# prefix per invocation).
echo "==> hot-path perf regression gates"
fresh_bench="$(mktemp /tmp/bench_hot.XXXXXX.json)"
trap 'rm -f "$fresh_bench"' EXIT
./target/release/perf_trajectory "$fresh_bench" --hot-only
./target/release/bench_compare BENCH_pr8.json "$fresh_bench" --noise 0.4 --filter kernel/speedup
./target/release/bench_compare BENCH_pr8.json "$fresh_bench" --noise 0.4 --filter gram/build_speedup
./target/release/bench_compare BENCH_pr8.json "$fresh_bench" --noise 0.4 --filter train/vectorized_speedup

echo "==> OK"
