#!/usr/bin/env bash
# Tier-1 gate: build, test, lint. Run from anywhere; operates on the
# workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --test parallel_determinism"
cargo test -q --test parallel_determinism

echo "==> cargo test -q --test batch_determinism"
cargo test -q --test batch_determinism

echo "==> cargo test -q --test drift_recovery"
cargo test -q --test drift_recovery

echo "==> cargo test -q -p qpp-core registry materialize monitor"
cargo test -q -p qpp-core registry
cargo test -q -p qpp-core materialize
cargo test -q -p qpp-core monitor

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo bench --workspace --no-run"
cargo bench --workspace --no-run

echo "==> OK"
