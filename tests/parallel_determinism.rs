//! The parallelized pipeline must be *bit-identical* to the serial one:
//! thread count changes only who computes each value, never the value.
//!
//! Each test runs the same computation pinned to one worker thread and
//! fanned out across eight, and compares outputs at the `f64::to_bits`
//! level. A global lock serializes the tests because the thread override
//! in `ml::par` is process-wide.

use engine::faults::FaultPlan;
use engine::{Catalog, Simulator};
use qpp::{
    CollectionConfig, ExecutedQuery, FeatureSource, Method, PlanOrdering, QppConfig,
    QppPredictor, QueryDataset,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use tpch::Workload;

static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the worker-thread count pinned to `n`, restoring the
/// default afterwards. Callers must hold `THREADS_LOCK`.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    ml::par::set_threads(n);
    let out = f();
    ml::par::set_threads(0);
    out
}

#[test]
fn parallel_collection_is_bit_identical_to_serial() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let catalog = Catalog::new(0.2, 1);
    let workload = Workload::generate(&[1, 3, 6, 14], 6, 0.2, 7);
    let sim = Simulator::new();
    let faults = FaultPlan {
        abort_prob: 0.2,
        straggler_prob: 0.1,
        seed: 5,
        ..FaultPlan::none()
    };
    let cfg = CollectionConfig::default();
    let collect = || {
        QueryDataset::execute_with_faults(
            &catalog,
            &workload,
            &sim,
            11,
            f64::INFINITY,
            &faults,
            &cfg,
        )
    };
    let (ds1, report1) = with_threads(1, collect);
    let (ds8, report8) = with_threads(8, collect);

    assert_eq!(report1, report8);
    assert_eq!(ds1.timed_out, ds8.timed_out);
    assert_eq!(ds1.queries.len(), ds8.queries.len());
    for (a, b) in ds1.queries.iter().zip(&ds8.queries) {
        assert_eq!(a.template, b.template);
        assert_eq!(a.trace.total_secs.to_bits(), b.trace.total_secs.to_bits());
        assert_eq!(a.trace.timings.len(), b.trace.timings.len());
        for (ta, tb) in a.trace.timings.iter().zip(&b.trace.timings) {
            assert_eq!(ta.start.to_bits(), tb.start.to_bits());
            assert_eq!(ta.run.to_bits(), tb.run.to_bits());
        }
        for (pa, pb) in a.trace.io_pages.iter().zip(&b.trace.io_pages) {
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
        let fa = qpp::plan_features(&a.plan, &a.views(FeatureSource::Estimated));
        let fb = qpp::plan_features(&b.plan, &b.views(FeatureSource::Estimated));
        assert_eq!(fa.len(), fb.len());
        for (va, vb) in fa.iter().zip(&fb) {
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }
}

#[test]
fn parallel_cv_is_identical() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    // 300 × 12 cells: large enough to take the parallel fold path.
    let mut rng = StdRng::seed_from_u64(42);
    let rows: Vec<Vec<f64>> = (0..300)
        .map(|_| (0..12).map(|_| rng.gen_range(0.0..5.0)).collect())
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| r.iter().sum::<f64>() * 1.5 + 2.0)
        .collect();
    let x = ml::Dataset::from_rows(rows);
    let folds = ml::cv::kfold(300, 5, 3);
    let learner = ml::LearnerKind::Svr(ml::SvrParams::default());
    let run = || {
        ml::gram::GramCache::global().clear();
        ml::cv::cross_validate(&learner, &x, &y, &folds).expect("cv")
    };
    let serial = with_threads(1, run);
    let parallel = with_threads(8, run);
    assert_eq!(serial.fold_errors.len(), parallel.fold_errors.len());
    for (a, b) in serial.fold_errors.iter().zip(&parallel.fold_errors) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert_eq!(serial.predictions.len(), parallel.predictions.len());
    for (a, b) in serial.predictions.iter().zip(&parallel.predictions) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn parallel_full_training_matches_serial() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let catalog = Catalog::new(0.1, 1);
    let workload = Workload::generate(&[1, 3, 6, 14], 8, 0.1, 7);
    let ds = with_threads(1, || {
        QueryDataset::execute(&catalog, &workload, &Simulator::new(), 11, f64::INFINITY)
    });
    const METHODS: [Method; 3] = [
        Method::PlanLevel,
        Method::OperatorLevel,
        Method::Hybrid(PlanOrdering::ErrorBased),
    ];
    let run = || {
        ml::gram::GramCache::global().clear();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).expect("training");
        refs.iter()
            .flat_map(|q| METHODS.map(|m| qpp.predict(q, m).to_bits()))
            .collect::<Vec<u64>>()
    };
    let serial = with_threads(1, run);
    let parallel = with_threads(8, run);
    assert_eq!(serial, parallel);
}
