//! Validation of the analytic truth model against actually-generated rows.
//!
//! The simulator runs on analytic cardinalities; these tests generate a
//! real (tiny) database and check that the analytic numbers agree with
//! exact row counts computed by the reference executor.

use engine::exec::execute;
use engine::{Catalog, Planner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpch::GeneratedDb;

const SF: f64 = 0.02;

fn db() -> GeneratedDb {
    GeneratedDb::generate(SF, 424242)
}

/// Relative agreement within tolerance, with a small absolute floor for
/// tiny counts.
fn close(analytic: f64, observed: f64, rel_tol: f64, abs_floor: f64) -> bool {
    (analytic - observed).abs() <= rel_tol * observed.max(analytic) + abs_floor
}

/// Per-template root-cardinality agreement for the subquery-free
/// templates the executor can evaluate exactly.
#[test]
fn template_root_cardinalities_match_generated_data() {
    let db = db();
    let catalog = Catalog::new(SF, 1);
    let planner = Planner::new(&catalog);
    // Deterministic instances; lineitem row count is itself stochastic
    // (1..7 lines per order), so allow a generous but meaningful band.
    // Template 13 is excluded: its second aggregate groups by an
    // aggregate output (count-of-orders histogram), which the reference
    // executor's IR cannot express — it groups by customer key instead.
    for &t in &[1u8, 3, 4, 5, 6, 10, 12, 14, 19] {
        let mut rng = StdRng::seed_from_u64(1000 + t as u64);
        let spec = tpch::instantiate(t, SF, &mut rng);
        let plan = planner.plan(&spec);
        let result = execute(&spec.root, &db);
        let analytic = plan.truth.rows;
        let observed = result.n_rows() as f64;
        assert!(
            close(analytic, observed, 0.45, 12.0),
            "t{t}: analytic {analytic:.1} vs observed {observed}"
        );
    }
}

/// Scan-level selectivities must agree tightly (they are exact formulas,
/// only sampling variance separates them).
#[test]
fn scan_selectivities_match_tightly() {
    use tpch::schema::{col, TableId};
    use tpch::spec::{Predicate, RelExpr};
    use tpch::types::{date, CmpOp, Scalar};
    let db = db();
    let lineitem_rows = db.table(TableId::Lineitem).n_rows() as f64;

    let cases: Vec<(Predicate, f64)> = vec![
        (
            Predicate::Cmp {
                col: col(TableId::Lineitem, "l_quantity"),
                op: CmpOp::Lt,
                value: Scalar::Int(25),
            },
            24.0 / 50.0,
        ),
        (
            Predicate::Between {
                col: col(TableId::Lineitem, "l_shipdate"),
                lo: Scalar::Date(date(1994, 1, 1)),
                hi: Scalar::Date(date(1994, 12, 31)),
            },
            tpch::distributions::between_selectivity(
                col(TableId::Lineitem, "l_shipdate"),
                date(1994, 1, 1) as f64,
                date(1994, 12, 31) as f64,
                SF,
            ),
        ),
        (
            Predicate::ColCmp {
                left: col(TableId::Lineitem, "l_commitdate"),
                op: CmpOp::Lt,
                right: col(TableId::Lineitem, "l_receiptdate"),
            },
            tpch::distributions::p_commit_before_receipt(),
        ),
        (
            Predicate::InSet {
                col: col(TableId::Lineitem, "l_shipmode"),
                values: vec![Scalar::Cat(0), Scalar::Cat(4)],
            },
            2.0 / 7.0,
        ),
    ];
    for (pred, expected) in cases {
        let rel = execute(
            &RelExpr::scan_where(TableId::Lineitem, vec![pred.clone()]),
            &db,
        );
        let observed = rel.n_rows() as f64 / lineitem_rows;
        assert!(
            (observed - expected).abs() < 0.02,
            "{pred:?}: observed {observed:.4}, expected {expected:.4}"
        );
    }
}

/// The correlated template-3 date predicates: analytic joint probability
/// matches the executor within sampling error, and both sit far below the
/// independence product.
#[test]
fn t3_date_correlation_is_real() {
    use tpch::schema::{col, TableId};
    use tpch::spec::{Predicate, RelExpr};
    use tpch::types::{date, CmpOp, Scalar};
    let db = db();
    let cut = date(1995, 3, 15);
    let joined = RelExpr::inner_join(
        RelExpr::scan_where(
            TableId::Orders,
            vec![Predicate::Cmp {
                col: col(TableId::Orders, "o_orderdate"),
                op: CmpOp::Lt,
                value: Scalar::Date(cut),
            }],
        ),
        RelExpr::scan_where(
            TableId::Lineitem,
            vec![Predicate::Cmp {
                col: col(TableId::Lineitem, "l_shipdate"),
                op: CmpOp::Gt,
                value: Scalar::Date(cut),
            }],
        ),
        (
            col(TableId::Orders, "o_orderkey"),
            col(TableId::Lineitem, "l_orderkey"),
        ),
    );
    let observed = execute(&joined, &db).n_rows() as f64;
    let li_rows = db.table(TableId::Lineitem).n_rows() as f64;
    let analytic = li_rows * tpch::distributions::joint_order_before_ship_after(cut);
    assert!(
        (observed - analytic).abs() < analytic * 0.2 + 20.0,
        "observed {observed}, analytic {analytic}"
    );
    // Independence is off by a large factor.
    let indep = li_rows
        * tpch::distributions::selectivity(
            col(TableId::Orders, "o_orderdate"),
            CmpOp::Lt,
            cut as f64,
            SF,
        )
        * tpch::distributions::selectivity(
            col(TableId::Lineitem, "l_shipdate"),
            CmpOp::Gt,
            cut as f64,
            SF,
        );
    assert!(indep > observed * 3.0, "indep {indep} vs observed {observed}");
}

/// Group counts follow the Cardenas formula.
#[test]
fn group_counts_follow_cardenas() {
    use tpch::schema::{col, TableId};
    use tpch::spec::{AggFunc, AggregateSpec, GroupCount, RelExpr};
    let db = db();
    let agg = RelExpr::Aggregate {
        input: Box::new(RelExpr::scan(TableId::Lineitem)),
        spec: AggregateSpec {
            group_by: vec![col(TableId::Lineitem, "l_suppkey")],
            aggs: vec![AggFunc::Count],
            numeric_ops: 1,
            groups: GroupCount::DistinctOf(col(TableId::Lineitem, "l_suppkey")),
            having: None,
        },
    };
    let observed = execute(&agg, &db).n_rows() as f64;
    let li_rows = db.table(TableId::Lineitem).n_rows() as f64;
    let analytic = engine::estimator::cardenas(
        tpch::distributions::ndistinct(col(TableId::Lineitem, "l_suppkey"), SF),
        li_rows,
    );
    assert!(
        (observed - analytic).abs() < analytic * 0.05 + 2.0,
        "observed {observed}, cardenas {analytic}"
    );
}

/// The estimator must disagree with the truth where the paper says
/// optimizers fail: template 18's HAVING.
#[test]
fn estimator_vs_truth_divergence_on_t18() {
    let catalog = Catalog::new(10.0, 1);
    let planner = Planner::new(&catalog);
    let mut rng = StdRng::seed_from_u64(18);
    let spec = tpch::instantiate(18, 10.0, &mut rng);
    let plan = planner.plan(&spec);
    // Find the HAVING aggregate: estimated rows orders of magnitude above
    // the truth.
    let blow_up = plan
        .preorder()
        .iter()
        .any(|n| n.truth.rows > 0.0 && n.est.rows > n.truth.rows * 500.0);
    assert!(blow_up, "expected a >500x estimation blow-up in template 18");
}
