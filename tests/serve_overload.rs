//! Overload behaviour of the serving front-end.
//!
//! The contracts under test, from DESIGN.md §9:
//! 1. Serving is *value-transparent*: answers are bit-identical to calling
//!    the predictor directly, coalesced or not.
//! 2. Overload is *shed at the door* (typed `Overloaded`), never absorbed
//!    into an unbounded queue.
//! 3. Deadlines *degrade before they refuse*: a shrinking budget walks the
//!    tier chain in order, and only a budget that cannot afford the
//!    training prior is answered `DeadlineExceeded`.
//! 4. Every submitted request is accounted exactly once:
//!    `submitted == shed + served + deadline_missed`.

use engine::faults::ServeFaultPlan;
use engine::{Catalog, Simulator};
use qpp::{
    ExecutedQuery, Method, ModelRegistry, PlanOrdering, PredictionTier, QppConfig, QppError,
    QppPredictor, QueryDataset,
};
use serve::{PredictionServer, RateLimit, ServeConfig, TierCosts};
use std::sync::Arc;
use std::time::Duration;
use tpch::Workload;

fn dataset() -> QueryDataset {
    let catalog = Catalog::new(0.1, 1);
    let workload = Workload::generate(&[1, 3, 6, 14], 6, 0.1, 7);
    QueryDataset::execute(&catalog, &workload, &Simulator::new(), 11, f64::INFINITY)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qpp_serve_{tag}_{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn registry_over(ds: &QueryDataset, tag: &str) -> (Arc<ModelRegistry>, Vec<Arc<ExecutedQuery>>) {
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let predictor = QppPredictor::train(&refs, QppConfig::default()).expect("training");
    let registry =
        ModelRegistry::create(temp_dir(tag), predictor, QppConfig::default()).expect("registry");
    let queries = ds.queries.iter().cloned().map(Arc::new).collect();
    (Arc::new(registry), queries)
}

const METHODS: [Method; 3] = [
    Method::PlanLevel,
    Method::OperatorLevel,
    Method::Hybrid(PlanOrdering::ErrorBased),
];

#[test]
fn served_results_are_bit_identical_to_direct_prediction() {
    let ds = dataset();
    let (registry, queries) = registry_over(&ds, "bitident");
    let direct = registry.current();
    let server = PredictionServer::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: Some(1),
            ..ServeConfig::default()
        },
    );
    for method in METHODS {
        // Sequential submits: every request is its own batch.
        for q in &queries {
            let got = server
                .predict(Arc::clone(q), method, None)
                .expect("sequential predict");
            let want = direct.predict_checked(q, method);
            assert_eq!(got.value.to_bits(), want.value.to_bits());
            assert_eq!(got.method_used, want.method_used);
        }
        // Flooded submits: one worker coalesces them into batches.
        let pending: Vec<_> = queries
            .iter()
            .map(|q| server.submit(Arc::clone(q), method, None).expect("submit"))
            .collect();
        for (q, p) in queries.iter().zip(pending) {
            let got = p.wait().expect("coalesced predict");
            let want = direct.predict_checked(q, method);
            assert_eq!(
                got.value.to_bits(),
                want.value.to_bits(),
                "coalesced result diverged from direct prediction"
            );
        }
    }
    let snap = server.stats();
    assert_eq!(snap.submitted, 6 * queries.len() as u64);
    assert_eq!(snap.served, snap.submitted, "nothing shed or missed");
    assert_eq!(snap.shed(), 0);
    drop(server);
    let _ = std::fs::remove_dir_all(temp_dir("bitident"));
}

#[test]
fn burst_past_the_rate_limit_sheds_with_typed_overloaded() {
    let ds = dataset();
    let (registry, queries) = registry_over(&ds, "ratelimit");
    let burst = 8.0;
    let server = PredictionServer::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: Some(1),
            rate_limit: Some(RateLimit {
                rate: 10.0,
                burst,
            }),
            ..ServeConfig::default()
        },
    );
    // 64 submits land within a few milliseconds: the bucket can refill at
    // most a fraction of a token, so admissions stay near the burst size.
    let n = 64;
    let mut accepted = Vec::new();
    let mut shed = 0u64;
    for i in 0..n {
        let q = Arc::clone(&queries[i % queries.len()]);
        match server.submit(q, Method::PlanLevel, None) {
            Ok(p) => accepted.push(p),
            Err(QppError::Overloaded { .. }) => shed += 1,
            Err(other) => panic!("expected Overloaded, got {other:?}"),
        }
    }
    assert!(
        accepted.len() as f64 <= burst + 2.0,
        "admissions {} blew past the burst allowance {burst}",
        accepted.len()
    );
    assert!(shed as usize >= n - (burst as usize + 2), "shed {shed}");
    for p in accepted {
        p.wait().expect("admitted requests are served");
    }
    let snap = server.stats();
    assert_eq!(snap.submitted, n as u64);
    assert_eq!(snap.shed(), shed);
    assert_eq!(snap.served + snap.shed(), snap.submitted);
    drop(server);
    let _ = std::fs::remove_dir_all(temp_dir("ratelimit"));
}

#[test]
fn shrinking_deadlines_walk_the_tier_chain_in_order() {
    let ds = dataset();
    let (registry, queries) = registry_over(&ds, "deadline");
    // Absurdly inflated tier costs make the budget→tier mapping exact:
    // real service time (microseconds) cannot blur a decade boundary.
    let server = PredictionServer::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: Some(1),
            tier_costs: TierCosts([1.0, 0.1, 0.01, 0.001, 0.0]),
            ..ServeConfig::default()
        },
    );
    let expectations = [
        (Duration::from_secs(10), PredictionTier::Hybrid, false),
        (Duration::from_millis(500), PredictionTier::OperatorLevel, true),
        (Duration::from_millis(50), PredictionTier::PlanLevel, true),
        (Duration::from_millis(5), PredictionTier::CostScaling, true),
        (Duration::from_micros(500), PredictionTier::TrainingPrior, true),
    ];
    let q = &queries[0];
    for (budget, want_tier, want_degraded) in expectations {
        let got = server
            .predict(
                Arc::clone(q),
                Method::Hybrid(PlanOrdering::ErrorBased),
                Some(budget),
            )
            .expect("within budget");
        assert_eq!(
            got.method_used, want_tier,
            "budget {budget:?} should enter at {want_tier:?}"
        );
        assert_eq!(got.degraded, want_degraded, "budget {budget:?}");
        assert!(got.value.is_finite() && got.value >= 0.0);
    }
    // A zero budget cannot afford anything, even the prior.
    match server.predict(
        Arc::clone(q),
        Method::Hybrid(PlanOrdering::ErrorBased),
        Some(Duration::ZERO),
    ) {
        Err(QppError::DeadlineExceeded { budget_secs }) => {
            assert_eq!(budget_secs, 0.0)
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let snap = server.stats();
    assert_eq!(snap.deadline_missed, 1);
    assert_eq!(snap.degraded, 4);
    drop(server);
    let _ = std::fs::remove_dir_all(temp_dir("deadline"));
}

#[test]
fn stalled_workers_expire_queued_deadlines_instead_of_serving_late() {
    let ds = dataset();
    let (registry, queries) = registry_over(&ds, "stall");
    let server = PredictionServer::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: Some(1),
            max_batch: 1,
            // Every batch stalls 20 ms; the deadline is 2 ms. Requests
            // always expire in the queue.
            faults: ServeFaultPlan {
                stall_prob: 1.0,
                stall_secs: 0.020,
                slow_consumer_prob: 0.0,
                seed: 5,
            },
            default_deadline: Some(Duration::from_millis(2)),
            ..ServeConfig::default()
        },
    );
    let pending: Vec<_> = (0..6)
        .map(|i| {
            server
                .submit(
                    Arc::clone(&queries[i % queries.len()]),
                    Method::PlanLevel,
                    None,
                )
                .expect("queue has room")
        })
        .collect();
    let mut missed = 0;
    for p in pending {
        match p.wait() {
            Err(QppError::DeadlineExceeded { budget_secs }) => {
                assert!((budget_secs - 0.002).abs() < 1e-9);
                missed += 1;
            }
            Ok(pred) => panic!("request served despite expired deadline: {pred:?}"),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert_eq!(missed, 6);
    let snap = server.stats();
    assert_eq!(snap.deadline_missed, 6);
    assert!(snap.stalls_injected >= 1);
    assert_eq!(snap.served, 0);
    drop(server);
    let _ = std::fs::remove_dir_all(temp_dir("stall"));
}

#[test]
fn sustained_overload_sheds_bounds_latency_and_reconciles_exactly() {
    let ds = dataset();
    let (registry, queries) = registry_over(&ds, "overload");
    let deadline = Duration::from_secs(5);
    let server = PredictionServer::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: Some(1),
            queue_capacity: 8,
            max_batch: 1,
            // ~2 ms injected service time per request; submitting as fast
            // as the loop runs is far beyond 4x that service rate.
            faults: ServeFaultPlan {
                stall_prob: 1.0,
                stall_secs: 0.002,
                slow_consumer_prob: 0.0,
                seed: 3,
            },
            default_deadline: Some(deadline),
            ..ServeConfig::default()
        },
    );
    let n = 200usize;
    let mut pending = Vec::new();
    let mut shed = 0u64;
    for i in 0..n {
        match server.submit(
            Arc::clone(&queries[i % queries.len()]),
            Method::PlanLevel,
            None,
        ) {
            Ok(p) => pending.push(p),
            Err(QppError::Overloaded { queue_depth }) => {
                assert!(queue_depth <= 8, "queue grew past its bound");
                shed += 1;
            }
            Err(other) => panic!("unexpected admission error {other:?}"),
        }
    }
    assert!(shed > 0, "a bounded queue must shed under sustained overload");
    for p in pending {
        p.wait().expect("admitted requests served within the deadline");
    }
    let snap = server.stats();
    assert_eq!(snap.submitted, n as u64);
    assert_eq!(snap.shed(), shed);
    assert_eq!(
        snap.served + snap.deadline_missed + snap.shed(),
        snap.submitted,
        "every request accounted exactly once"
    );
    let slo = snap.endpoint(serve::Endpoint::PlanLevel);
    assert_eq!(slo.count, snap.served);
    assert!(
        slo.p99_secs <= deadline.as_secs_f64(),
        "p99 {} blew the deadline",
        slo.p99_secs
    );
    assert!(slo.p50_secs <= slo.p99_secs && slo.p99_secs <= slo.max_secs * 1.3);
    // Dropping the server joins all workers; a panicked worker would
    // propagate here and fail the test.
    drop(server);
    let _ = std::fs::remove_dir_all(temp_dir("overload"));
}

#[test]
fn closed_loop_clients_drain_cleanly_across_worker_pool() {
    let ds = dataset();
    let (registry, queries) = registry_over(&ds, "closedloop");
    let server = Arc::new(PredictionServer::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: Some(2),
            ..ServeConfig::default()
        },
    ));
    let clients = 4;
    let per_client = 25;
    let direct = registry.current();
    std::thread::scope(|s| {
        for c in 0..clients {
            let server = Arc::clone(&server);
            let queries = &queries;
            let direct = &direct;
            s.spawn(move || {
                for i in 0..per_client {
                    let q = &queries[(c * per_client + i) % queries.len()];
                    let method = METHODS[i % METHODS.len()];
                    let got = server
                        .predict(Arc::clone(q), method, None)
                        .expect("closed-loop predict");
                    let want = direct.predict_checked(q, method);
                    assert_eq!(got.value.to_bits(), want.value.to_bits());
                }
            });
        }
    });
    let snap = server.stats();
    assert_eq!(snap.submitted, (clients * per_client) as u64);
    assert_eq!(snap.served, snap.submitted);
    assert_eq!(snap.shed(), 0);
    assert_eq!(snap.deadline_missed, 0);
    drop(server);
    let _ = std::fs::remove_dir_all(temp_dir("closedloop"));
}
