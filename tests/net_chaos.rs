//! Seeded network chaos against the TCP front door, end to end
//! (DESIGN.md §11): a noisy client drives `NetFaultPlan`-scripted wire
//! faults — partial writes with mid-frame stalls, mid-frame disconnects,
//! byte-corrupted frames, stalled readers — interleaved with a clean
//! quiet-tenant client, and
//!
//! 1. the quiet tenant's responses are bit-identical to a fault-free
//!    run of the same request sequence,
//! 2. no worker thread dies: every session panic would be counted, and
//!    the front door still serves fresh connections after the chaos,
//! 3. shutdown reconciles exactly, at both layers: the front door's
//!    `accepted == served + shed + missed + aborted`, and the tenant
//!    server's per-tenant `accepted == served + deadline_missed`.

use engine::faults::NetFaultPlan;
use engine::{Catalog, Simulator};
use qpp::{ExecutedQuery, Method, ModelRegistry, QppConfig, QppPredictor, QueryDataset};
use serve::tenant::{TenantBudget, TenantServeConfig, TenantServer, TenantSpec};
use serve::{Client, Frame, NetConfig, NetServer, Request};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tpch::Workload;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpp-netchaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn registry_over(ds: &QueryDataset, tag: &str) -> Arc<ModelRegistry> {
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let predictor = QppPredictor::train(&refs, QppConfig::default()).expect("training");
    Arc::new(
        ModelRegistry::create(temp_dir(tag), predictor, QppConfig::default()).expect("registry"),
    )
}

fn request_frame(id: u64, tenant: &str, query: &ExecutedQuery) -> Vec<u8> {
    Frame::Request(Request {
        id,
        tenant: tenant.to_string(),
        method: Method::PlanLevel,
        deadline_micros: None,
        query: query.clone(),
    })
    .encode()
}

/// One quiet-tenant request over the wire; returns the prediction's raw
/// bits after checking the reply id echoes the request id.
fn quiet_call(client: &mut Client, id: u64, query: &ExecutedQuery) -> u64 {
    let frame = Frame::Request(Request {
        id,
        tenant: "quiet".to_string(),
        method: Method::PlanLevel,
        deadline_micros: None,
        query: query.clone(),
    });
    match client.call(&frame).expect("quiet transport") {
        Frame::Response(r) => {
            assert_eq!(r.id, id, "reply id must echo the request id");
            r.prediction.value.to_bits()
        }
        other => panic!("quiet request {id} answered with {other:?}"),
    }
}

/// Replays one noisy frame under its scripted fault outcome. Fresh
/// connection per frame, so a mid-frame disconnect hurts only itself.
fn noisy_chaos_frame(addr: SocketAddr, bytes: &[u8], plan: &NetFaultPlan, frame_id: u64) {
    let outcome = plan.decide(frame_id, bytes.len());
    let stall = Duration::from_secs_f64(outcome.stall_secs);
    let mut stream = TcpStream::connect(addr).expect("noisy connect");
    let _ = stream.set_nodelay(true);
    // Corrupting the length field can leave the server waiting for bytes
    // that never come (it evicts us on its read deadline, sending no
    // reply), so every reply read is bounded.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));

    if let Some(cut) = outcome.disconnect_at {
        let _ = stream.write_all(&bytes[..cut]);
        return; // dropping the stream is the mid-frame disconnect
    }
    let mut wire = bytes.to_vec();
    if let Some((offset, mask)) = outcome.corrupt_at {
        wire[offset] ^= mask;
    }
    if let Some(split) = outcome.partial_write_at {
        stream.write_all(&wire[..split]).expect("first half");
        stream.flush().expect("flush");
        std::thread::sleep(stall);
        let _ = stream.write_all(&wire[split..]);
    } else {
        stream.write_all(&wire).expect("whole frame");
        if !stall.is_zero() {
            // A stalled reader: the reply sits in our receive buffer
            // while the server has long moved on.
            std::thread::sleep(stall);
        }
    }
    // Best-effort reply read; corrupted frames may earn a typed
    // malformed-frame error, an eviction, or a different prediction —
    // the assertions live on the quiet tenant and the final ledgers.
    let mut reply = [0u8; 4096];
    let _ = stream.read(&mut reply);
}

#[test]
fn seeded_wire_chaos_spares_the_quiet_tenant_and_reconciles_exactly() {
    let sim = Simulator::with_config(engine::SimConfig {
        additive_noise_secs: 0.05,
        ..engine::SimConfig::default()
    });
    let catalog = Catalog::new(0.1, 1);
    let ds = QueryDataset::execute(
        &catalog,
        &Workload::generate(&[1, 6, 14], 6, 0.1, 7),
        &sim,
        11,
        f64::INFINITY,
    );
    let queries: Vec<ExecutedQuery> = ds.queries.clone();
    let quiet_registry = registry_over(&ds, "quiet");
    let noisy_registry = registry_over(&ds, "noisy");
    let spec = |name: &str, registry: &Arc<ModelRegistry>| TenantSpec {
        name: name.to_string(),
        registry: Arc::clone(registry),
        budget: TenantBudget::default(),
    };
    let net_config = NetConfig {
        max_connections: 4,
        // Short read deadline so slowloris eviction is cheap to trigger.
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_secs(1),
        drain: Duration::from_secs(2),
        ..NetConfig::default()
    };
    let rounds = 30usize;

    // Fault-free baseline: the quiet tenant's bit-exact answers.
    let server = Arc::new(TenantServer::start(
        vec![spec("quiet", &quiet_registry), spec("noisy", &noisy_registry)],
        TenantServeConfig::default(),
    ));
    let baseline: Vec<u64> = {
        let mut net =
            NetServer::bind(("127.0.0.1", 0), Arc::clone(&server), net_config.clone()).unwrap();
        let mut client = Client::connect(net.local_addr()).expect("baseline connect");
        let bits = (0..rounds)
            .map(|i| quiet_call(&mut client, i as u64, &queries[i % queries.len()]))
            .collect();
        drop(client);
        let snap = net.shutdown();
        assert!(snap.reconciles(), "baseline ledger must balance: {snap:?}");
        assert_eq!(snap.served, rounds as u64);
        assert_eq!(snap.session_panics, 0);
        bits
    };

    // Chaos run: same quiet sequence, now interleaved with a seeded
    // noisy fault stream on fresh connections.
    let mut net =
        NetServer::bind(("127.0.0.1", 0), Arc::clone(&server), net_config).unwrap();
    let addr = net.local_addr();
    let plan = NetFaultPlan {
        partial_write_prob: 0.3,
        disconnect_prob: 0.25,
        corrupt_prob: 0.25,
        stall_prob: 0.3,
        stall_secs: 0.03,
        seed: 17,
    };
    let mut quiet_client = Client::connect(addr).expect("quiet connect");
    let mut chaos_bits = Vec::with_capacity(rounds);
    for i in 0..rounds {
        let noisy = request_frame(1_000 + i as u64, "noisy", &queries[(i * 7) % queries.len()]);
        noisy_chaos_frame(addr, &noisy, &plan, i as u64);
        chaos_bits.push(quiet_call(
            &mut quiet_client,
            i as u64,
            &queries[i % queries.len()],
        ));
    }
    assert_eq!(
        chaos_bits, baseline,
        "quiet tenant's answers must be bit-identical under wire chaos"
    );

    // A slowloris: starts a frame, then stalls past the read deadline.
    // The server must evict it rather than hold a worker hostage.
    {
        let mut slow = TcpStream::connect(addr).expect("slowloris connect");
        slow.write_all(b"QPW").expect("partial header");
        std::thread::sleep(Duration::from_millis(600));
        let _ = slow.write_all(b"1");
        let mut buf = [0u8; 16];
        let _ = slow.set_read_timeout(Some(Duration::from_secs(2)));
        let n = slow.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "the evicted connection must be closed, not answered");
    }

    // A garbage header on a fresh connection earns a typed malformed
    // reply (best-effort) and a close — never a worker death.
    {
        let mut garbage = TcpStream::connect(addr).expect("garbage connect");
        garbage.write_all(b"HTTP/1.1 GET /predict\r\n").expect("garbage write");
        let _ = garbage.set_read_timeout(Some(Duration::from_secs(2)));
        let mut reply = Vec::new();
        let _ = garbage.read_to_end(&mut reply);
        let frame = Frame::decode(&reply, serve::DEFAULT_MAX_FRAME)
            .expect("garbage earns a well-formed error frame");
        match frame {
            Frame::Error(e) => {
                assert_eq!(e.error, qpp::QppError::Internal("malformed request frame"));
            }
            other => panic!("expected a typed error, got {other:?}"),
        }
    }

    // A valid envelope with a non-request kind keeps the connection: the
    // same session must answer the error *and* then serve a request.
    {
        let mut client = Client::connect(addr).expect("post-chaos connect");
        let bogus = Frame::Response(serve::Response {
            id: 9,
            prediction: qpp::Prediction {
                value: 1.0,
                method_used: qpp::PredictionTier::PlanLevel,
                degraded: false,
            },
        });
        match client.call(&bogus).expect("bogus kind transport") {
            Frame::Error(e) => {
                assert_eq!(e.error, qpp::QppError::Internal("malformed request frame"));
            }
            other => panic!("expected a typed error, got {other:?}"),
        }
        let bits = quiet_call(&mut client, 0, &queries[0]);
        assert_eq!(bits, baseline[0], "the session survived the bad frame");
    }

    drop(quiet_client);
    let snap = net.shutdown();
    assert_eq!(snap.session_panics, 0, "no worker session may panic: {snap:?}");
    assert!(snap.conns_evicted >= 1, "the slowloris must be evicted: {snap:?}");
    assert!(snap.malformed_frames >= 2, "garbage + bogus kind: {snap:?}");
    assert!(
        snap.reconciles(),
        "front-door ledger must balance exactly: {snap:?}"
    );
    // Chaos adds the quiet calls plus every noisy frame that survived
    // its faults intact enough to decode as a request.
    assert!(snap.accepted > rounds as u64, "{snap:?}");

    // The tenant server's own ledgers balance too, per tenant.
    let report = server.shutdown();
    assert!(
        report.reconciles(),
        "tenant ledgers must balance: {:?}",
        report
            .tenants
            .iter()
            .map(|(n, s)| (n.clone(), s.submitted, s.served, s.deadline_missed))
            .collect::<Vec<_>>()
    );

    let _ = std::fs::remove_dir_all(temp_dir("quiet"));
    let _ = std::fs::remove_dir_all(temp_dir("noisy"));
}
