//! The batched inference path must be *bit-identical* to the single-row
//! one: batching (and its sub-plan memo cache) changes only how much work
//! is done, never the values produced.
//!
//! Each comparison runs the serial single-row loop and the batched call
//! pinned to one worker thread and fanned out across eight. A global lock
//! serializes the tests because the thread override in `ml::par` is
//! process-wide.

use engine::{Catalog, Simulator};
use qpp::{
    ExecutedQuery, HybridModel, Method, OnlineConfig, OnlinePredictor, PlanOrdering,
    PredictionCache, QppConfig, QppPredictor, QueryDataset,
};
use std::sync::Mutex;
use tpch::Workload;

static THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` with the worker-thread count pinned to `n`, restoring the
/// default afterwards. Callers must hold `THREADS_LOCK`.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    ml::par::set_threads(n);
    let out = f();
    ml::par::set_threads(0);
    out
}

fn dataset() -> QueryDataset {
    let catalog = Catalog::new(0.1, 1);
    let workload = Workload::generate(&[1, 3, 6, 14], 8, 0.1, 7);
    QueryDataset::execute(&catalog, &workload, &Simulator::new(), 11, f64::INFINITY)
}

const METHODS: [Method; 3] = [
    Method::PlanLevel,
    Method::OperatorLevel,
    Method::Hybrid(PlanOrdering::ErrorBased),
];

#[test]
fn predict_batch_matches_single_row_loop_at_any_thread_count() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let ds = dataset();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let qpp = with_threads(1, || {
        ml::gram::GramCache::global().clear();
        QppPredictor::train(&refs, QppConfig::default()).expect("training")
    });
    // Repeat the workload so the hybrid memo cache sees shared sub-plans
    // and the batch clears the parallel fan-out threshold.
    let batch: Vec<&ExecutedQuery> = refs
        .iter()
        .cycle()
        .take(refs.len() * 3)
        .copied()
        .collect();
    for method in METHODS {
        let serial: Vec<u64> = with_threads(1, || {
            batch
                .iter()
                .map(|q| qpp.predict(q, method).to_bits())
                .collect()
        });
        for threads in [1usize, 8] {
            let batched: Vec<u64> = with_threads(threads, || {
                qpp.predict_batch(&batch, method)
                    .into_iter()
                    .map(f64::to_bits)
                    .collect()
            });
            assert_eq!(serial, batched, "{method:?} with {threads} thread(s)");
        }
    }
}

#[test]
fn warm_prediction_cache_does_not_change_bits() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let ds = dataset();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let qpp = with_threads(1, || {
        ml::gram::GramCache::global().clear();
        QppPredictor::train(&refs, QppConfig::default()).expect("training")
    });
    let cache = PredictionCache::default();
    let cold: Vec<u64> = with_threads(1, || {
        qpp.hybrid
            .predict_batch_cached(&refs, &cache)
            .into_iter()
            .map(f64::to_bits)
            .collect()
    });
    // Every root fragment is now memoized; the warm pass must reproduce
    // the same bits entirely from hits.
    let before = cache.stats();
    let warm: Vec<u64> = with_threads(1, || {
        qpp.hybrid
            .predict_batch_cached(&refs, &cache)
            .into_iter()
            .map(f64::to_bits)
            .collect()
    });
    let after = cache.stats();
    assert_eq!(cold, warm);
    assert!(
        after.hits >= before.hits + refs.len() as u64,
        "warm pass must hit at least once per query: {before:?} -> {after:?}"
    );
}

#[test]
fn online_batch_matches_query_loop() {
    let _guard = THREADS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let ds = dataset();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op = with_threads(1, || {
        ml::gram::GramCache::global().clear();
        qpp::OpLevelModel::train(&refs, &qpp::OpModelConfig::default()).expect("op training")
    });
    let config = OnlineConfig {
        min_frequency: 3,
        ..OnlineConfig::default()
    };
    let looped: Vec<u64> = with_threads(1, || {
        let mut online =
            OnlinePredictor::new(refs.clone(), HybridModel::operator_only(op.clone()), config.clone());
        refs.iter()
            .map(|q| online.predict_query(q).to_bits())
            .collect()
    });
    let batched: Vec<u64> = with_threads(1, || {
        let mut online =
            OnlinePredictor::new(refs.clone(), HybridModel::operator_only(op.clone()), config.clone());
        online
            .predict_batch(&refs)
            .into_iter()
            .map(f64::to_bits)
            .collect()
    });
    assert_eq!(looped, batched);
}
