//! Cross-crate integration tests: the paper's qualitative findings must
//! hold end-to-end on small-scale datasets.

use engine::{Catalog, SimConfig, Simulator};
use ml::metrics::mean_relative_error;
use qpp::hybrid::{train_hybrid, HybridConfig, HybridModel, PlanOrdering};
use qpp::online::{OnlineConfig, OnlinePredictor};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::plan_model::{PlanLevelModel, PlanModelConfig};
use qpp::{ExecutedQuery, QueryDataset};
use tpch::Workload;

fn quiet_sim() -> Simulator {
    Simulator::with_config(SimConfig {
        additive_noise_secs: 0.05,
        ..SimConfig::default()
    })
}

fn dataset(templates: &[u8], per_template: usize, seed: u64) -> QueryDataset {
    // SF 1 costs the same to simulate as SF 0.1 (the simulator is
    // analytic) but exhibits the operator interactions the paper's
    // findings rest on.
    let catalog = Catalog::new(1.0, 1);
    let workload = Workload::generate(templates, per_template, 1.0, seed);
    QueryDataset::execute(&catalog, &workload, &quiet_sim(), 31, f64::INFINITY)
}

fn errors(actual: &[f64], preds: &[f64]) -> f64 {
    mean_relative_error(actual, preds)
}

/// Static workload: plan-level models are highly accurate (Section 5.3.1)
/// and beat the operator-level composition (Section 3.3).
#[test]
fn static_workload_plan_level_beats_operator_level() {
    let ds = dataset(&[1, 3, 5, 6, 7, 12, 14], 14, 5);
    let folds = ml::cv::stratified_kfold(&ds.strata(), 4, 9);
    let mut plan_rows = Vec::new();
    let mut op_rows = Vec::new();
    for fold in &folds {
        let train: Vec<&ExecutedQuery> = ds.subset(&fold.train);
        let pm = PlanLevelModel::train(&train, &PlanModelConfig::default()).unwrap();
        let om = OpLevelModel::train(&train, &OpModelConfig::default()).unwrap();
        for &i in &fold.test {
            let q = &ds.queries[i];
            plan_rows.push((q.latency(), pm.predict(q)));
            op_rows.push((q.latency(), om.predict(q)));
        }
    }
    let (a, p): (Vec<f64>, Vec<f64>) = plan_rows.into_iter().unzip();
    let plan_err = errors(&a, &p);
    let (a2, o): (Vec<f64>, Vec<f64>) = op_rows.into_iter().unzip();
    let op_err = errors(&a2, &o);
    assert!(plan_err < 0.15, "plan-level static error = {plan_err}");
    assert!(
        plan_err < op_err,
        "plan-level ({plan_err}) must beat operator-level ({op_err}) on static workloads \
         with template diversity"
    );
}

/// Dynamic workload: the plan-level model degrades badly on an unseen
/// template while operator-level models generalize (Section 3.3 / Fig 9).
#[test]
fn dynamic_workload_plan_level_degrades() {
    let ds = dataset(&[1, 3, 5, 6, 9, 14], 12, 77);
    let (train, test) = ds.leave_template_out(9);
    let actual: Vec<f64> = test.iter().map(|q| q.latency()).collect();

    let pm = PlanLevelModel::train(&train, &PlanModelConfig::default()).unwrap();
    let plan_err = errors(&actual, &test.iter().map(|q| pm.predict(q)).collect::<Vec<_>>());

    // Static CV error on the training templates for contrast.
    let folds = ml::cv::kfold(train.len(), 4, 3);
    let mut static_rows = Vec::new();
    for fold in &folds {
        let sub: Vec<&ExecutedQuery> = fold.train.iter().map(|&i| train[i]).collect();
        let m = PlanLevelModel::train(&sub, &PlanModelConfig::default()).unwrap();
        for &i in &fold.test {
            static_rows.push((train[i].latency(), m.predict(train[i])));
        }
    }
    let (sa, sp): (Vec<f64>, Vec<f64>) = static_rows.into_iter().unzip();
    let static_err = errors(&sa, &sp);

    assert!(
        plan_err > 2.0 * static_err,
        "unseen-template error ({plan_err}) should dwarf static error ({static_err})"
    );
}

/// The hybrid method ends at or below the operator-level error and its
/// accepted iterations decrease the training error monotonically
/// (Algorithm 1).
#[test]
fn hybrid_improves_on_operator_level() {
    let ds = dataset(&[1, 3, 6, 10, 12, 14], 12, 13);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let actual: Vec<f64> = refs.iter().map(|q| q.latency()).collect();
    let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
    let op_err = errors(&actual, &refs.iter().map(|q| op.predict(q)).collect::<Vec<_>>());
    let (hybrid, records) = train_hybrid(
        &refs,
        op,
        &HybridConfig {
            strategy: PlanOrdering::ErrorBased,
            max_iterations: 12,
            min_frequency: 4,
            ..HybridConfig::default()
        },
    )
    .unwrap();
    let hybrid_err = errors(
        &actual,
        &refs.iter().map(|q| hybrid.predict(q)).collect::<Vec<_>>(),
    );
    assert!(
        hybrid_err <= op_err + 1e-9,
        "hybrid ({hybrid_err}) worse than operator-level ({op_err})"
    );
    let mut prev = f64::INFINITY;
    for r in records.iter().filter(|r| r.accepted) {
        assert!(r.error <= prev + 1e-9, "non-monotone accepted iteration");
        prev = r.error;
    }
}

/// Online modeling on an unseen template is never wildly worse than the
/// operator-level baseline (its guards must prevent harmful models).
#[test]
fn online_modeling_is_guarded() {
    let ds = dataset(&[1, 3, 6, 10, 12, 14], 12, 21);
    for held in [3u8, 10, 12] {
        let (train, test) = ds.leave_template_out(held);
        let actual: Vec<f64> = test.iter().map(|q| q.latency()).collect();
        let op = OpLevelModel::train(&train, &OpModelConfig::default()).unwrap();
        let op_err = errors(&actual, &test.iter().map(|q| op.predict(q)).collect::<Vec<_>>());
        let mut online = OnlinePredictor::new(
            train,
            HybridModel::operator_only(op),
            OnlineConfig {
                min_frequency: 4,
                ..OnlineConfig::default()
            },
        );
        let online_err = errors(
            &actual,
            &test
                .iter()
                .map(|q| online.predict_query(q))
                .collect::<Vec<_>>(),
        );
        assert!(
            online_err <= op_err * 1.3 + 0.05,
            "t{held}: online {online_err} vs op {op_err}"
        );
    }
}

/// The optimizer's cost estimate orders same-template plans but fails as a
/// latency predictor across templates (Section 5.2).
#[test]
fn optimizer_cost_is_a_poor_latency_predictor() {
    let ds = dataset(&[1, 3, 6, 9, 14], 10, 55);
    use ml::{Dataset, Learner, LearnerKind, Model};
    let costs: Vec<f64> = ds.queries.iter().map(|q| q.plan.est.total_cost).collect();
    let lat = ds.latencies();
    let x = Dataset::from_rows(costs.iter().map(|&c| vec![c]).collect());
    let m = LearnerKind::Linear { ridge: 1e-9 }.fit(&x, &lat).unwrap();
    let preds: Vec<f64> = costs.iter().map(|&c| m.predict(&[c]).max(0.01)).collect();
    let err = errors(&lat, &preds);
    assert!(err > 0.4, "cost-based prediction error = {err} (too good)");
}

/// Queries over the time limit are dropped exactly like the paper's
/// dataset construction.
#[test]
fn time_limit_reproduces_dataset_construction() {
    let catalog = Catalog::new(1.0, 1);
    let workload = Workload::generate(&[6, 9], 6, 1.0, 3);
    let ds = QueryDataset::execute(&catalog, &workload, &quiet_sim(), 31, 60.0);
    // Template 9 at SF 1 has instances beyond 60 s; template 6 does not.
    assert!(ds.timed_out.iter().any(|(t, _)| *t == 9));
    assert!(ds.queries.iter().any(|q| q.template == 6));
    for q in &ds.queries {
        assert!(q.latency() <= 60.0);
    }
}
