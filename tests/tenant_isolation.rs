//! Multi-tenant bulkhead isolation and the closed SLO → drift healing
//! loop, end to end (DESIGN.md §10):
//!
//! 1. Under a seeded one-hot tenant burst, the hot tenant is shed at its
//!    own bulkhead (typed `TenantOverloaded`) while the quiet tenant's
//!    served p99 stays within its deadline budget and its shed count is
//!    exactly 0 — and every request reconciles per tenant and globally.
//! 2. Sustained degraded-tier traffic on one tenant escalates *that
//!    tenant's* drift monitor to quarantine via the SLO pressure channel,
//!    and one healing round shadow-retrains, validates, and promotes on
//!    that tenant's registry only — the other tenant's registry version
//!    and health never move. The escalation is bit-reproducible: two
//!    servers over the same seeded traffic quarantine on the same round.

use engine::faults::{DriftKind, DriftPlan, FaultPlan, ServeFaultPlan, TenantLoadPattern};
use engine::{Catalog, Simulator};
use qpp::{
    CollectionConfig, ExecutedQuery, Method, ModelHealth, ModelRegistry, PredictionTier,
    QppConfig, QppError, QppPredictor, QueryDataset, RetrainConfig,
};
use serve::tenant::{HealAction, TenantBudget, TenantServeConfig, TenantServer, TenantSpec};
use serve::{Endpoint, TierCosts};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tpch::Workload;

fn quiet_sim() -> Simulator {
    Simulator::with_config(engine::SimConfig {
        additive_noise_secs: 0.05,
        ..engine::SimConfig::default()
    })
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpp-tenant-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn collect(workload: &Workload, sim: &Simulator, drift: &DriftPlan) -> QueryDataset {
    let catalog = Catalog::new(0.1, 1);
    QueryDataset::execute_drifted(
        &catalog,
        workload,
        sim,
        11,
        f64::INFINITY,
        &FaultPlan::none(),
        &CollectionConfig::trusting(),
        drift,
    )
    .0
}

fn registry_over(ds: &QueryDataset, tag: &str) -> Arc<ModelRegistry> {
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let predictor = QppPredictor::train(&refs, QppConfig::default()).expect("training");
    Arc::new(
        ModelRegistry::create(temp_dir(tag), predictor, QppConfig::default()).expect("registry"),
    )
}

fn spec(name: &str, registry: &Arc<ModelRegistry>, budget: TenantBudget) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        registry: Arc::clone(registry),
        budget,
    }
}

#[test]
fn one_hot_burst_sheds_the_hot_tenant_and_spares_the_quiet_one() {
    let sim = quiet_sim();
    let ds = collect(&Workload::generate(&[1, 3, 6, 14], 6, 0.1, 7), &sim, &DriftPlan::none());
    let queries: Vec<Arc<ExecutedQuery>> = ds.queries.iter().cloned().map(Arc::new).collect();
    let hot_registry = registry_over(&ds, "burst-hot");
    let quiet_registry = registry_over(&ds, "burst-quiet");
    let direct = quiet_registry.current();

    let deadline = Duration::from_secs(5);
    let server = TenantServer::start(
        vec![
            spec(
                "hot",
                &hot_registry,
                TenantBudget {
                    queue_quota: 8,
                    ..TenantBudget::default()
                },
            ),
            spec(
                "quiet",
                &quiet_registry,
                TenantBudget {
                    queue_quota: 64,
                    default_deadline: Some(deadline),
                    ..TenantBudget::default()
                },
            ),
        ],
        TenantServeConfig {
            workers: Some(1),
            max_batch: 1,
            // ~2 ms injected service time bounds the drain rate, so the
            // burst deterministically overflows the hot tenant's quota.
            faults: ServeFaultPlan {
                stall_prob: 1.0,
                stall_secs: 0.002,
                slow_consumer_prob: 0.0,
                seed: 3,
            },
            ..TenantServeConfig::default()
        },
    );

    // Seeded one-hot skew: ~31 of every 32 arrivals belong to tenant 0.
    let names = ["hot", "quiet"];
    let arrivals = TenantLoadPattern::OneHotBurst { hot: 0, burst: 32, seed: 9 }
        .arrivals(2, 320, 400.0);
    let mut pending = vec![Vec::new(), Vec::new()];
    let mut submitted = [0u64; 2];
    let mut shed = [0u64; 2];
    for (i, a) in arrivals.iter().enumerate() {
        submitted[a.tenant] += 1;
        let q = Arc::clone(&queries[i % queries.len()]);
        match server.submit(names[a.tenant], q, Method::PlanLevel, None) {
            Ok(p) => pending[a.tenant].push(p),
            Err(QppError::TenantOverloaded { tenant }) => {
                assert_eq!(tenant, "hot", "only the hot tenant may hit its bulkhead");
                shed[a.tenant] += 1;
            }
            Err(other) => panic!("unexpected admission error {other:?}"),
        }
    }
    assert!(submitted[0] >= 250, "burst pattern should skew hot");
    assert!(
        shed[0] >= submitted[0] / 2,
        "hot tenant must shed most of its burst, shed {} of {}",
        shed[0],
        submitted[0]
    );
    assert_eq!(shed[1], 0, "quiet tenant must never be shed");

    // Every admitted request resolves; quiet answers are bit-identical to
    // direct prediction through the quiet tenant's own registry.
    for p in pending.remove(1) {
        // drain quiet first: index 1 removed while hot is still index 0
        let got = p.wait().expect("quiet requests served");
        assert!(!got.degraded);
        assert_eq!(got.method_used, PredictionTier::PlanLevel);
    }
    for p in pending.remove(0) {
        p.wait().expect("admitted hot requests served");
    }
    let quiet_direct_ok = queries
        .iter()
        .take(4)
        .all(|q| {
            let want = direct.predict_checked(q, Method::PlanLevel);
            let got = server
                .predict("quiet", Arc::clone(q), Method::PlanLevel, None)
                .expect("quiet predict");
            got.value.to_bits() == want.value.to_bits()
        });
    assert!(quiet_direct_ok, "quiet tenant's answers diverged from its registry");

    // Exact accounting, per tenant and globally.
    let hot = server.stats("hot").unwrap();
    let quiet = server.stats("quiet").unwrap();
    assert_eq!(hot.submitted, submitted[0]);
    assert_eq!(hot.shed(), shed[0]);
    assert_eq!(hot.served + hot.deadline_missed + hot.shed(), hot.submitted);
    assert_eq!(quiet.submitted, submitted[1] + 4);
    assert_eq!(quiet.shed(), 0);
    assert_eq!(quiet.deadline_missed, 0);
    assert_eq!(quiet.served, quiet.submitted);
    assert_eq!(
        hot.submitted + quiet.submitted,
        arrivals.len() as u64 + 4,
        "global accounting"
    );

    // The quiet tenant kept its deadline budget through the noisy burst.
    let slo = quiet.endpoint(Endpoint::PlanLevel);
    assert_eq!(slo.count, quiet.served);
    assert!(
        slo.p99_secs <= deadline.as_secs_f64(),
        "quiet p99 {} blew its deadline budget",
        slo.p99_secs
    );

    drop(server);
    let _ = std::fs::remove_dir_all(temp_dir("burst-hot"));
    let _ = std::fs::remove_dir_all(temp_dir("burst-quiet"));
}

/// Rounds of deadline-degraded traffic until the tenant's Hybrid tier
/// quarantines via the SLO pressure channel; returns the round count.
fn degrade_until_quarantined(
    server: &TenantServer,
    tenant: &str,
    queries: &[Arc<ExecutedQuery>],
) -> usize {
    // Inflated tier costs + a 5 s budget force every Hybrid request down
    // to a cheaper tier: 100% degraded windows, deterministically.
    let budget = Some(Duration::from_secs(5));
    for round in 1..=20 {
        for i in 0..32 {
            let q = Arc::clone(&queries[i % queries.len()]);
            let p = server
                .predict(tenant, q, Method::Hybrid(qpp::PlanOrdering::ErrorBased), budget)
                .expect("degraded predict");
            assert!(p.degraded, "inflated Hybrid cost must force degradation");
        }
        let (window, health) = server.slo_tick(tenant).expect("slo tick");
        assert_eq!(window.degraded, 32, "round {round} window miscounted");
        if health == ModelHealth::Quarantined {
            return round;
        }
    }
    panic!("SLO pressure never quarantined tenant {tenant}");
}

#[test]
fn slo_pressure_quarantines_and_heals_one_tenant_without_touching_the_other() {
    let sim = quiet_sim();
    let templates = [1u8, 3, 6];
    let clean = collect(&Workload::generate(&templates, 8, 0.1, 7), &sim, &DriftPlan::none());
    let queries: Vec<Arc<ExecutedQuery>> = clean.queries.iter().cloned().map(Arc::new).collect();
    let analytics = registry_over(&clean, "heal-analytics");
    let reporting = registry_over(&clean, "heal-reporting");

    let config = TenantServeConfig {
        workers: Some(1),
        // Hybrid "costs" 10 s against a 5 s budget: every Hybrid request
        // degrades, pushing the SLO pressure channel, while cheaper tiers
        // stay affordable so nothing misses outright.
        tier_costs: TierCosts([10.0, 0.1, 0.01, 0.001, 0.0]),
        ..TenantServeConfig::default()
    };
    let tenants = |a: &Arc<ModelRegistry>, r: &Arc<ModelRegistry>| {
        vec![
            spec("analytics", a, TenantBudget::default()),
            spec("reporting", r, TenantBudget::default()),
        ]
    };

    // Bit-reproducible escalation: two servers over the same traffic
    // quarantine on the same round.
    let rounds = {
        let server = TenantServer::start(tenants(&analytics, &reporting), config.clone());
        degrade_until_quarantined(&server, "analytics", &queries)
    };
    let server = TenantServer::start(tenants(&analytics, &reporting), config);
    let rounds2 = degrade_until_quarantined(&server, "analytics", &queries);
    assert_eq!(rounds, rounds2, "escalation round count must replay exactly");
    assert!(server.any_quarantined("analytics").unwrap());
    assert_eq!(
        server.health("reporting", PredictionTier::Hybrid).unwrap(),
        ModelHealth::Healthy,
        "quiet tenant's monitor moved"
    );

    // Healing on a window the incumbent already fits keeps the incumbent:
    // the quarantine stands and the registry version does not move.
    let clean_refs: Vec<&ExecutedQuery> = clean.queries.iter().collect();
    let kept = server
        .heal("analytics", &clean_refs, &RetrainConfig::default(), 0.25)
        .expect("heal");
    assert_eq!(kept.action, HealAction::KeptIncumbent);
    assert_eq!(analytics.version(), 1);
    assert!(server.any_quarantined("analytics").unwrap());

    // The workload actually drifted (data grew 3x): one healing round
    // shadow-retrains on the recent window, wins the held-out comparison,
    // survives post-promotion validation, and resets the monitor.
    let drift = DriftPlan {
        kind: DriftKind::DataGrowth,
        onset: 0,
        ramp: 0,
        magnitude: 3.0,
        seed: 1,
    };
    let drifted = collect(&Workload::generate(&templates, 8, 0.1, 21), &sim, &drift);
    let drifted_refs: Vec<&ExecutedQuery> = drifted.queries.iter().collect();
    let healed = server
        .heal("analytics", &drifted_refs, &RetrainConfig::default(), 0.25)
        .expect("heal");
    assert_eq!(healed.action, HealAction::Promoted, "{:?}", healed.report);
    let report = healed.report.expect("promotion report");
    assert!(report.promoted);
    assert!(report.candidate_error < report.incumbent_error);
    assert_eq!(healed.version, 2);
    assert_eq!(analytics.version(), 2, "analytics promoted to v2");
    assert!(!server.any_quarantined("analytics").unwrap(), "monitor reset");
    assert_eq!(
        server.health("analytics", PredictionTier::Hybrid).unwrap(),
        ModelHealth::Healthy
    );

    // Bulkhead: the other tenant's registry and health never moved.
    assert_eq!(reporting.version(), 1, "reporting registry was touched");
    assert_eq!(
        server.health("reporting", PredictionTier::Hybrid).unwrap(),
        ModelHealth::Healthy
    );
    // And healing a healthy tenant is a no-op.
    let noop = server
        .heal("reporting", &clean_refs, &RetrainConfig::default(), 0.25)
        .expect("heal");
    assert_eq!(noop.action, HealAction::NotNeeded);
    assert_eq!(reporting.version(), 1);

    drop(server);
    let _ = std::fs::remove_dir_all(temp_dir("heal-analytics"));
    let _ = std::fs::remove_dir_all(temp_dir("heal-reporting"));
}
