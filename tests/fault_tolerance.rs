//! End-to-end fault tolerance: flaky collection → training → guarded
//! prediction. The pipeline must absorb aborts, stragglers, timeout
//! budgets, and corrupted optimizer estimates without panicking and
//! without ever emitting a NaN/infinite/negative prediction.

use engine::faults::{ExecError, FaultPlan};
use engine::{Catalog, Planner, Simulator};
use qpp::{
    CollectionConfig, ExecutedQuery, Method, PlanOrdering, PredictionTier, QppConfig,
    QppPredictor, QueryDataset,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpch::Workload;

const METHODS: [Method; 3] = [
    Method::PlanLevel,
    Method::OperatorLevel,
    Method::Hybrid(PlanOrdering::ErrorBased),
];

#[test]
fn end_to_end_with_ten_percent_aborts_and_five_percent_stragglers() {
    let catalog = Catalog::new(0.1, 1);
    let workload = Workload::generate(&[1, 3, 6, 12, 14], 8, 0.1, 7);
    let faults = FaultPlan {
        abort_prob: 0.10,
        straggler_prob: 0.05,
        seed: 17,
        ..FaultPlan::none()
    };
    let (ds, report) = QueryDataset::execute_with_faults(
        &catalog,
        &workload,
        &Simulator::new(),
        11,
        f64::INFINITY,
        &faults,
        &CollectionConfig::default(),
    );
    // Collection completes and accounts for every query; retries keep the
    // bulk of the workload despite the fault rate.
    assert!(report.reconciles(), "{report:?}");
    assert!(
        ds.len() >= workload.len() * 2 / 3,
        "too few survivors: {report:?}"
    );

    // Training succeeds on the fault-collected data.
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let qpp = QppPredictor::train(&refs, QppConfig::default())
        .expect("training on fault-collected data");

    // No prediction is ever NaN, infinite, or negative — for any method.
    for q in &ds.queries {
        for method in METHODS {
            let p = qpp.predict_checked(q, method);
            assert!(
                p.value.is_finite() && p.value >= 0.0,
                "{method:?}: {p:?}"
            );
            assert!(!p.degraded, "clean survivor should not degrade: {p:?}");
        }
    }

    // A query whose logged estimates are NaN-poisoned degrades to an
    // analytical tier — still finite and non-negative.
    let mut poisoned = ds.queries[0].clone();
    poisoned.plan.est.rows = f64::NAN;
    poisoned.plan.est.total_cost = f64::NAN;
    for method in METHODS {
        let p = qpp.predict_checked(&poisoned, method);
        assert!(p.value.is_finite() && p.value >= 0.0, "{method:?}: {p:?}");
        assert!(p.degraded);
        assert!(
            matches!(
                p.method_used,
                PredictionTier::CostScaling | PredictionTier::TrainingPrior
            ),
            "{method:?}: {p:?}"
        );
    }
}

#[test]
fn timeout_budget_misses_are_dropped_and_accounted() {
    let catalog = Catalog::new(0.1, 1);
    let workload = Workload::generate(&[1, 6], 4, 0.1, 7);
    let faults = FaultPlan {
        timeout_secs: 0.5,
        seed: 1,
        ..FaultPlan::none()
    };
    let (ds, report) = QueryDataset::execute_with_faults(
        &catalog,
        &workload,
        &Simulator::new(),
        11,
        f64::INFINITY,
        &faults,
        &CollectionConfig::trusting(),
    );
    assert!(report.reconciles(), "{report:?}");
    // Template 1 at SF 0.1 exceeds half a second, so the budget must
    // drop something, and every survivor fits inside it.
    assert!(report.dropped_timeout > 0);
    for q in &ds.queries {
        assert!(q.latency() <= 0.5);
    }
}

#[test]
fn corrupted_collections_still_train_and_predict_sanely() {
    let catalog = Catalog::new(0.1, 1);
    let workload = Workload::generate(&[1, 3, 6, 14], 8, 0.1, 7);
    let faults = FaultPlan {
        corrupt_prob: 0.3,
        seed: 29,
        ..FaultPlan::none()
    };
    let (ds, report) = QueryDataset::execute_with_faults(
        &catalog,
        &workload,
        &Simulator::new(),
        11,
        f64::INFINITY,
        &faults,
        &CollectionConfig::default(),
    );
    assert!(report.reconciles(), "{report:?}");
    assert!(!ds.is_empty());
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let qpp = QppPredictor::train(&refs, QppConfig::default())
        .expect("training on corruption-filtered data");
    for q in &ds.queries {
        for method in METHODS {
            let p = qpp.predict_checked(q, method);
            assert!(p.value.is_finite() && p.value >= 0.0, "{method:?}: {p:?}");
        }
    }
}

#[test]
fn try_execute_reports_aborts_deterministically() {
    let catalog = Catalog::new(0.1, 1);
    let planner = Planner::new(&catalog);
    let mut rng = StdRng::seed_from_u64(7);
    let plan = planner.plan(&tpch::instantiate(6, 0.1, &mut rng));
    let sim = Simulator::new();
    let faults = FaultPlan {
        abort_prob: 1.0,
        seed: 5,
        ..FaultPlan::none()
    };
    let e = sim.try_execute(&plan, 0.1, 3, &faults).unwrap_err();
    match e {
        ExecError::Aborted { progress } => assert!((0.0..=1.0).contains(&progress)),
        other => panic!("expected an abort, got {other:?}"),
    }
    // Same seed, same fault plan: identical failure.
    assert_eq!(sim.try_execute(&plan, 0.1, 3, &faults).unwrap_err(), e);
}
