//! The supervised healer thread and dynamic tenancy, end to end
//! (DESIGN.md §11):
//!
//! 1. A heal whose workload source panics is caught by the healer's
//!    per-round supervisor, backed off breaker-style, and retried — and
//!    once the source recovers, the same healer round shadow-retrains,
//!    promotes, and clears the quarantine. No registry is poisoned and
//!    serving never stalls while the source is panicking. The panic /
//!    backoff / promotion counts are exactly deterministic because
//!    quarantine is sticky and the backoff schedule is fixed.
//! 2. `remove_tenant` under live cross-tenant load drains the removed
//!    tenant's lane (its ledger balances exactly), detaches its name,
//!    hands back its registry — while the surviving tenants' requests
//!    all complete with p99 inside their deadline budget.

use engine::faults::{DriftKind, DriftPlan, FaultPlan};
use engine::{Catalog, Simulator};
use qpp::{
    CollectionConfig, ExecutedQuery, Method, ModelHealth, ModelRegistry, PredictionTier,
    QppConfig, QppError, QppPredictor, QueryDataset, RetrainConfig,
};
use serve::tenant::{TenantBudget, TenantServeConfig, TenantServer, TenantSpec};
use serve::{Endpoint, HealSource, Healer, HealerConfig, TierCosts};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tpch::Workload;

fn quiet_sim() -> Simulator {
    Simulator::with_config(engine::SimConfig {
        additive_noise_secs: 0.05,
        ..engine::SimConfig::default()
    })
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpp-healer-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn collect(workload: &Workload, sim: &Simulator, drift: &DriftPlan) -> QueryDataset {
    let catalog = Catalog::new(0.1, 1);
    QueryDataset::execute_drifted(
        &catalog,
        workload,
        sim,
        11,
        f64::INFINITY,
        &FaultPlan::none(),
        &CollectionConfig::trusting(),
        drift,
    )
    .0
}

fn registry_over(ds: &QueryDataset, tag: &str) -> Arc<ModelRegistry> {
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let predictor = QppPredictor::train(&refs, QppConfig::default()).expect("training");
    Arc::new(
        ModelRegistry::create(temp_dir(tag), predictor, QppConfig::default()).expect("registry"),
    )
}

fn spec(name: &str, registry: &Arc<ModelRegistry>) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        registry: Arc::clone(registry),
        budget: TenantBudget::default(),
    }
}

/// A workload source that panics on its first `panics` calls, then
/// serves the drifted retrain window — the "flaky telemetry pipeline"
/// the healer must survive.
struct FlakySource {
    calls: AtomicU64,
    panics: u64,
    window: Vec<ExecutedQuery>,
}

impl HealSource for FlakySource {
    fn recent(&self, tenant: &str) -> Vec<ExecutedQuery> {
        assert_eq!(tenant, "analytics", "only the quarantined tenant heals");
        if self.calls.fetch_add(1, Ordering::SeqCst) < self.panics {
            panic!("telemetry pipeline fell over");
        }
        self.window.clone()
    }
}

/// Degraded Hybrid traffic until the tenant's monitor quarantines via
/// the SLO pressure channel (same escalation as `tenant_isolation.rs`).
fn quarantine_via_slo(server: &TenantServer, tenant: &str, queries: &[Arc<ExecutedQuery>]) {
    let budget = Some(Duration::from_secs(5));
    for _round in 1..=20 {
        for i in 0..32 {
            let q = Arc::clone(&queries[i % queries.len()]);
            let p = server
                .predict(tenant, q, Method::Hybrid(qpp::PlanOrdering::ErrorBased), budget)
                .expect("degraded predict");
            assert!(p.degraded);
        }
        let (_, health) = server.slo_tick(tenant).expect("slo tick");
        if health == ModelHealth::Quarantined {
            return;
        }
    }
    panic!("SLO pressure never quarantined tenant {tenant}");
}

#[test]
fn panicking_heal_is_caught_backed_off_and_retried_to_promotion() {
    let sim = quiet_sim();
    let templates = [1u8, 3, 6];
    let clean = collect(&Workload::generate(&templates, 8, 0.1, 7), &sim, &DriftPlan::none());
    let queries: Vec<Arc<ExecutedQuery>> = clean.queries.iter().cloned().map(Arc::new).collect();
    let analytics = registry_over(&clean, "sup-analytics");
    let reporting = registry_over(&clean, "sup-reporting");

    let server = Arc::new(TenantServer::start(
        vec![spec("analytics", &analytics), spec("reporting", &reporting)],
        TenantServeConfig {
            workers: Some(1),
            // Hybrid "costs" 10 s against a 5 s budget: every Hybrid
            // request degrades, pushing the SLO pressure channel.
            tier_costs: TierCosts([10.0, 0.1, 0.01, 0.001, 0.0]),
            ..TenantServeConfig::default()
        },
    ));
    quarantine_via_slo(&server, "analytics", &queries);
    assert!(server.any_quarantined("analytics").unwrap());

    // The retrain window the source serves once it stops panicking: the
    // workload genuinely drifted (data grew 3x), so the shadow retrain
    // wins the held-out comparison and promotes.
    let drift = DriftPlan {
        kind: DriftKind::DataGrowth,
        onset: 0,
        ramp: 0,
        magnitude: 3.0,
        seed: 1,
    };
    let drifted = collect(&Workload::generate(&templates, 8, 0.1, 21), &sim, &drift);
    let source = Arc::new(FlakySource {
        calls: AtomicU64::new(0),
        panics: 2,
        window: drifted.queries.clone(),
    });

    let healer = Healer::spawn(
        Arc::clone(&server),
        Arc::clone(&source) as Arc<dyn HealSource>,
        HealerConfig {
            interval: Duration::from_millis(20),
            jitter: 0.2,
            seed: 0xA11CE,
            backoff_start: 1,
            backoff_cap: 4,
            retrain: RetrainConfig::default(),
            rollback_tolerance: 0.25,
        },
    );

    // While the source is panicking, serving must not stall: predictions
    // keep flowing through the same server the healer is supervising.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut probes = 0u64;
    loop {
        let p = server
            .predict(
                "analytics",
                Arc::clone(&queries[probes as usize % queries.len()]),
                Method::PlanLevel,
                None,
            )
            .expect("serving continues while heals panic");
        assert!(p.value.is_finite());
        probes += 1;
        if analytics.version() >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "healer never promoted: {:?}",
            server.stats("analytics").unwrap()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    healer.stop();
    drop(healer);

    // The supervision ledger is exactly deterministic: quarantine is
    // sticky across panics, so the round sequence is panic #1, skip 1,
    // panic #2, skip 2 (twice), then the promoting heal.
    let stats = server.stats("analytics").unwrap();
    assert_eq!(stats.heal_panics, 2, "{stats:?}");
    assert_eq!(stats.heal_backoff_skips, 3, "{stats:?}");
    assert_eq!(stats.heal_promoted, 1, "{stats:?}");
    assert_eq!(source.calls.load(Ordering::SeqCst), 3);

    // Nothing was poisoned: the registry promoted cleanly, the monitor
    // reset, the other tenant never moved, and both keep serving.
    assert_eq!(analytics.version(), 2);
    assert!(!server.any_quarantined("analytics").unwrap());
    assert_eq!(
        server.health("analytics", PredictionTier::Hybrid).unwrap(),
        ModelHealth::Healthy
    );
    assert_eq!(reporting.version(), 1, "quiet tenant's registry moved");
    assert_eq!(server.stats("reporting").unwrap().heal_rounds, 0);
    for name in ["analytics", "reporting"] {
        let p = server
            .predict(name, Arc::clone(&queries[0]), Method::PlanLevel, None)
            .expect("post-heal predict");
        assert!(p.value.is_finite());
    }

    drop(server);
    let _ = std::fs::remove_dir_all(temp_dir("sup-analytics"));
    let _ = std::fs::remove_dir_all(temp_dir("sup-reporting"));
}

#[test]
fn remove_tenant_under_load_drains_its_lane_and_spares_the_rest() {
    let sim = quiet_sim();
    let ds = collect(&Workload::generate(&[1, 6], 6, 0.1, 7), &sim, &DriftPlan::none());
    let queries: Vec<Arc<ExecutedQuery>> = ds.queries.iter().cloned().map(Arc::new).collect();
    let regs: Vec<Arc<ModelRegistry>> = ["dyn-a", "dyn-b", "dyn-c"]
        .iter()
        .map(|tag| registry_over(&ds, tag))
        .collect();

    let server = Arc::new(TenantServer::start(
        vec![
            spec("a", &regs[0]),
            spec("b", &regs[1]),
            spec("c", &regs[2]),
        ],
        TenantServeConfig {
            workers: Some(2),
            ..TenantServeConfig::default()
        },
    ));

    // Survivor load: two threads hammer tenants a and c with deadline
    // budgets while b is removed out from under them.
    let deadline = Duration::from_secs(5);
    let loaders: Vec<_> = ["a", "c"]
        .iter()
        .map(|name| {
            let server = Arc::clone(&server);
            let queries = queries.clone();
            let name = name.to_string();
            std::thread::spawn(move || {
                for i in 0..200usize {
                    let q = Arc::clone(&queries[i % queries.len()]);
                    server
                        .predict(&name, q, Method::PlanLevel, Some(Duration::from_secs(5)))
                        .expect("survivor tenants must keep serving");
                }
            })
        })
        .collect();

    // Meanwhile, pile work into b's lane and remove it mid-flight.
    let mut b_pending = Vec::new();
    let mut b_submitted = 0u64;
    for i in 0..64usize {
        let q = Arc::clone(&queries[i % queries.len()]);
        match server.submit("b", q, Method::PlanLevel, None) {
            Ok(p) => {
                b_submitted += 1;
                b_pending.push(p);
            }
            Err(QppError::TenantOverloaded { .. }) => b_submitted += 1,
            Err(other) => panic!("unexpected submit error {other:?}"),
        }
    }
    let removed = server.remove_tenant("b").expect("remove under load");
    assert_eq!(removed.name, "b");

    // Every handle resolves: served before/at removal, or a typed
    // removal abort — never a hang, never a dropped reply.
    for p in b_pending {
        match p.wait() {
            Ok(prediction) => assert!(prediction.value.is_finite()),
            Err(QppError::Internal(msg)) => {
                assert_eq!(msg, "tenant was removed while the request was in flight")
            }
            Err(other) => panic!("unexpected wait error {other:?}"),
        }
    }
    // The removed tenant's final ledger balances exactly.
    let b_stats = &removed.stats;
    assert_eq!(b_stats.submitted, b_submitted);
    assert_eq!(
        b_stats.accepted(),
        b_stats.served + b_stats.deadline_missed,
        "{b_stats:?}"
    );
    // Its registry survives the eviction, still at its serving version.
    assert_eq!(removed.registry.version(), 1);

    // The name is detached: submits fail softly, the listing shrinks,
    // and a healer listing tenants mid-removal would skip it the same way.
    assert_eq!(server.tenant_names(), vec!["a".to_string(), "c".to_string()]);
    match server.submit("b", Arc::clone(&queries[0]), Method::PlanLevel, None) {
        Err(QppError::Internal("unknown tenant")) => {}
        Err(other) => panic!("expected unknown tenant, got {other:?}"),
        Ok(_) => panic!("a removed tenant must not accept requests"),
    }

    for loader in loaders {
        loader.join().expect("survivor loader panicked");
    }
    // Survivors served everything within budget: zero sheds, zero
    // misses, p99 inside the deadline.
    for name in ["a", "c"] {
        let stats = server.stats(name).unwrap();
        assert_eq!(stats.submitted, 200);
        assert_eq!(stats.served, 200);
        assert_eq!(stats.shed(), 0);
        assert_eq!(stats.deadline_missed, 0);
        let slo = stats.endpoint(Endpoint::PlanLevel);
        assert!(
            slo.p99_secs <= deadline.as_secs_f64(),
            "{name} p99 {} blew its budget",
            slo.p99_secs
        );
    }

    // Shutdown reconciles across live *and* removed shards.
    let report = server.shutdown();
    assert!(report.reconciles());
    assert_eq!(report.tenants.len(), 3, "removed shards keep their ledger");

    for tag in ["dyn-a", "dyn-b", "dyn-c"] {
        let _ = std::fs::remove_dir_all(temp_dir(tag));
    }
}
