//! Property-based tests over the core invariants of every layer.

// Offline builds may substitute an inert `proptest` whose macro bodies
// compile away, which strands these imports and helpers as "unused".
#![allow(dead_code, unused_imports)]

use engine::faults::FaultPlan;
use engine::{Catalog, Planner, SimConfig, Simulator};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;
use tpch::schema::{col, TableId, ALL_TABLES};
use tpch::types::CmpOp;
use tpch::Workload;

/// One predictor trained on clean data, shared by the fault-injection
/// properties below (training is far too slow to repeat per case).
fn predictor() -> &'static qpp::QppPredictor {
    static PREDICTOR: OnceLock<qpp::QppPredictor> = OnceLock::new();
    PREDICTOR.get_or_init(|| {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6, 14], 8, 0.1, 7);
        let ds =
            qpp::QueryDataset::execute(&catalog, &workload, &Simulator::new(), 11, f64::INFINITY);
        let refs: Vec<&qpp::ExecutedQuery> = ds.queries.iter().collect();
        qpp::QppPredictor::train(&refs, qpp::QppConfig::default()).expect("training")
    })
}

fn any_table() -> impl Strategy<Value = TableId> {
    prop::sample::select(ALL_TABLES.to_vec())
}

fn any_cmp() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every truth selectivity is a probability, for every column, any
    /// operator, any value — including values far outside the domain.
    #[test]
    fn truth_selectivity_is_a_probability(
        table in any_table(),
        col_pick in 0usize..16,
        op in any_cmp(),
        value in -1.0e7f64..1.0e7,
        sf in 0.01f64..10.0,
    ) {
        let cols = table.columns();
        let c = col(table, cols[col_pick % cols.len()]);
        let s = tpch::distributions::selectivity(c, op, value, sf);
        prop_assert!((0.0..=1.0).contains(&s), "{c} {op:?} {value}: {s}");
    }

    /// Between-selectivity is monotone in the interval width.
    #[test]
    fn between_selectivity_is_monotone(
        lo in 0.0f64..2000.0,
        width1 in 0.0f64..500.0,
        extra in 0.0f64..500.0,
    ) {
        let c = col(TableId::Lineitem, "l_shipdate");
        let narrow = tpch::distributions::between_selectivity(c, lo, lo + width1, 1.0);
        let wide = tpch::distributions::between_selectivity(c, lo, lo + width1 + extra, 1.0);
        prop_assert!(wide + 1e-12 >= narrow);
    }

    /// Histogram CDFs are monotone and bounded for every column.
    #[test]
    fn histogram_cdf_is_monotone(
        table in any_table(),
        col_pick in 0usize..16,
        seed in 0u64..50,
        probes in prop::collection::vec(-100.0f64..5000.0, 2..12),
    ) {
        let cols = table.columns();
        let c = col(table, cols[col_pick % cols.len()]);
        let h = engine::histogram::Histogram::build(c, 1.0, seed);
        let mut sorted = probes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = -1e-12;
        for v in sorted {
            let p = h.cdf(v);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p + 1e-12 >= prev);
            prev = p;
        }
    }

    /// Cardenas never exceeds either bound.
    #[test]
    fn cardenas_respects_bounds(d in 1.0f64..1e8, n in 0.0f64..1e9) {
        let g = engine::estimator::cardenas(d, n);
        prop_assert!(g <= d + 1e-6);
        prop_assert!(g <= n + 1e-6 || n < 1.0);
        prop_assert!(g >= 0.0);
    }

    /// Planning and simulating any template at any seed yields finite,
    /// ordered timings; the same seed reproduces the same trace.
    #[test]
    fn simulation_invariants(template in prop::sample::select(tpch::ALL_TEMPLATES.to_vec()),
                             seed in 0u64..1000) {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = tpch::instantiate(template, 0.1, &mut rng);
        let plan = planner.plan(&spec);
        let sim = Simulator::new();
        let a = sim.execute(&plan, 0.1, seed);
        let b = sim.execute(&plan, 0.1, seed);
        prop_assert_eq!(a.total_secs, b.total_secs);
        prop_assert!(a.total_secs.is_finite() && a.total_secs > 0.0);
        for t in &a.timings {
            prop_assert!(t.start.is_finite() && t.run.is_finite());
            prop_assert!(t.start >= 0.0);
            prop_assert!(t.run >= t.start * 0.999);
            prop_assert!(t.run <= a.timings[0].run * 1.0001);
        }
    }

    /// Plan-level features are finite and structurally consistent for
    /// every template/seed/scale combination.
    #[test]
    fn plan_features_are_finite(template in prop::sample::select(tpch::ALL_TEMPLATES.to_vec()),
                                seed in 0u64..200,
                                sf in prop::sample::select(vec![0.05, 0.5, 2.0])) {
        let catalog = Catalog::new(sf, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = planner.plan(&tpch::instantiate(template, sf, &mut rng));
        let views = qpp::features::node_views(&plan, qpp::FeatureSource::Estimated, None);
        let f = qpp::plan_features(&plan, &views);
        prop_assert_eq!(f.len(), qpp::features::plan_feature_count());
        for v in &f {
            prop_assert!(v.is_finite());
        }
        // op_count equals the node count.
        prop_assert_eq!(f[4] as usize, plan.node_count());
    }

    /// Structure keys are stable across re-planning and distinct across
    /// templates with different shapes.
    #[test]
    fn structure_keys_are_deterministic(template in prop::sample::select(tpch::ALL_TEMPLATES.to_vec()),
                                        seed in 0u64..100) {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut r1 = StdRng::seed_from_u64(seed);
        let mut r2 = StdRng::seed_from_u64(seed);
        let p1 = planner.plan(&tpch::instantiate(template, 0.1, &mut r1));
        let p2 = planner.plan(&tpch::instantiate(template, 0.1, &mut r2));
        prop_assert_eq!(qpp::structure_key(&p1), qpp::structure_key(&p2));
    }

    /// Linear regression recovers random linear functions (up to noise).
    #[test]
    fn linreg_recovers_linear_functions(
        w in prop::collection::vec(-5.0f64..5.0, 3),
        b in -10.0f64..10.0,
        seed in 0u64..100,
    ) {
        use ml::{Dataset, Learner, LearnerKind, Model};
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|_| (0..3).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| b + r.iter().zip(&w).map(|(x, wi)| x * wi).sum::<f64>())
            .collect();
        let x = Dataset::from_rows(rows.clone());
        let m = LearnerKind::Linear { ridge: 1e-10 }.fit(&x, &y).unwrap();
        for (r, target) in rows.iter().zip(&y).take(5) {
            prop_assert!((m.predict(r) - target).abs() < 1e-5 + target.abs() * 1e-6);
        }
    }

    /// K-fold and stratified K-fold partition all rows exactly once.
    #[test]
    fn folds_partition(n in 6usize..60, k in 2usize..6, seed in 0u64..50) {
        let k = k.min(n);
        let folds = ml::cv::kfold(n, k, seed);
        let mut seen: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        let strata: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let sfolds = ml::cv::stratified_kfold(&strata, k, seed);
        let mut sseen: Vec<usize> = sfolds.iter().flat_map(|f| f.test.clone()).collect();
        sseen.sort_unstable();
        prop_assert_eq!(sseen, (0..n).collect::<Vec<_>>());
    }

    /// Reducing noise never makes a trace non-deterministic, and the
    /// noiseless simulator is exactly repeatable across seeds.
    #[test]
    fn noiseless_simulation_is_seed_independent(template in prop::sample::select(vec![1u8, 3, 6, 14]),
                                                s1 in 0u64..50, s2 in 50u64..100) {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(7);
        let plan = planner.plan(&tpch::instantiate(template, 0.1, &mut rng));
        let sim = Simulator::with_config(SimConfig {
            node_noise_sigma: 0.0,
            query_noise_sigma: 0.0,
            additive_noise_secs: 0.0,
            ..SimConfig::default()
        });
        let a = sim.execute(&plan, 0.1, s1);
        let b = sim.execute(&plan, 0.1, s2);
        prop_assert!((a.total_secs - b.total_secs).abs() < 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under any fault rates up to 30%, collection accounts for every
    /// query, and checked predictions on the survivors — and even on
    /// deliberately corrupted copies — are always finite and
    /// non-negative, with the producing tier recorded.
    #[test]
    fn checked_predictions_survive_arbitrary_faults(
        seed in 0u64..500,
        abort in 0.0f64..0.3,
        straggle in 0.0f64..0.3,
        corrupt in 0.0f64..0.3,
    ) {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6], 3, 0.1, seed.wrapping_add(1));
        let faults = FaultPlan {
            abort_prob: abort,
            straggler_prob: straggle,
            corrupt_prob: corrupt,
            seed,
            ..FaultPlan::none()
        };
        let (ds, report) = qpp::QueryDataset::execute_with_faults(
            &catalog,
            &workload,
            &Simulator::new(),
            seed ^ 0x9E,
            f64::INFINITY,
            &faults,
            &qpp::CollectionConfig::default(),
        );
        prop_assert!(report.reconciles(), "{report:?}");
        let p = predictor();
        let methods = [
            qpp::Method::PlanLevel,
            qpp::Method::OperatorLevel,
            qpp::Method::Hybrid(qpp::PlanOrdering::ErrorBased),
        ];
        for q in &ds.queries {
            for method in methods {
                let pred = p.predict_checked(q, method);
                prop_assert!(
                    pred.value.is_finite() && pred.value >= 0.0,
                    "{method:?} on survivor: {pred:?}"
                );
            }
        }
        // Corrupt a survivor's logged estimates in place: predictions
        // must degrade, never go non-finite or negative.
        if let Some(q) = ds.queries.first() {
            let mut q = q.clone();
            let always = FaultPlan { corrupt_prob: 1.0, ..faults.clone() };
            always.corrupt_estimates(&mut q.plan, seed);
            for method in methods {
                let pred = p.predict_checked(&q, method);
                prop_assert!(
                    pred.value.is_finite() && pred.value >= 0.0,
                    "{method:?} on corrupted: {pred:?}"
                );
            }
        }
    }

    /// Fallible execution is deterministic: same plan, seed, and fault
    /// plan yield the same trace or the same error.
    #[test]
    fn try_execute_is_deterministic_under_faults(
        template in prop::sample::select(vec![1u8, 3, 6, 14]),
        seed in 0u64..300,
        abort in 0.0f64..0.3,
        straggle in 0.0f64..0.3,
    ) {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = planner.plan(&tpch::instantiate(template, 0.1, &mut rng));
        let sim = Simulator::new();
        let faults = FaultPlan {
            abort_prob: abort,
            straggler_prob: straggle,
            seed,
            ..FaultPlan::none()
        };
        let a = sim.try_execute(&plan, 0.1, seed, &faults);
        let b = sim.try_execute(&plan, 0.1, seed, &faults);
        match (a, b) {
            (Ok(ta), Ok(tb)) => {
                prop_assert_eq!(ta.total_secs, tb.total_secs);
                prop_assert!(ta.total_secs.is_finite() && ta.total_secs > 0.0);
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (x, y) => prop_assert!(false, "outcome mismatch: {:?} vs {:?}", x, y),
        }
    }
}
