//! End-to-end self-healing lifecycle: a workload drifts, the feedback
//! loop quarantines the stale tier and trips its circuit breaker, shadow
//! retraining produces a candidate that the registry validates and
//! promotes, and serving recovers to within 10% of a from-scratch
//! retrain. Also proves the prediction cache cannot serve stale entries
//! across a model swap.

use engine::faults::{DriftKind, DriftPlan, FaultPlan};
use engine::{Catalog, OpType, Simulator};
use ml::mean_relative_error;
use qpp::{
    CollectionConfig, DriftMonitor, ExecutedQuery, Method, ModelHealth, ModelRegistry,
    MonitorConfig, PlanOrdering, PredictionTier, QppConfig, QppPredictor, QueryDataset,
    RetrainConfig,
};
use std::path::PathBuf;
use tpch::Workload;

/// Simulator with the jitter tuned down: these tests assert model
/// accuracy, which the default absolute jitter would swamp at the tiny
/// scale factors used here.
fn quiet_sim() -> Simulator {
    Simulator::with_config(engine::SimConfig {
        additive_noise_secs: 0.05,
        ..engine::SimConfig::default()
    })
}

/// Fresh per-process temp directory for a registry.
fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpp-registry-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn collect(workload: &Workload, sim: &Simulator, drift: &DriftPlan) -> QueryDataset {
    let catalog = Catalog::new(0.1, 1);
    QueryDataset::execute_drifted(
        &catalog,
        workload,
        sim,
        11,
        f64::INFINITY,
        &FaultPlan::none(),
        &CollectionConfig::trusting(),
        drift,
    )
    .0
}

fn hybrid_mre(pred: &QppPredictor, queries: &[&ExecutedQuery]) -> f64 {
    let actual: Vec<f64> = queries.iter().map(|q| q.latency()).collect();
    let est: Vec<f64> = queries
        .iter()
        .map(|q| {
            pred.predict_checked(q, Method::Hybrid(PlanOrdering::ErrorBased))
                .value
        })
        .collect();
    mean_relative_error(&actual, &est)
}

#[test]
fn drift_quarantines_breaks_and_recovers_via_shadow_retrain() {
    let sim = quiet_sim();
    let templates = [1u8, 3, 6];

    // Phase 1: train the incumbent on the pre-drift regime and persist it
    // as registry version 1.
    let clean = collect(&Workload::generate(&templates, 8, 0.1, 7), &sim, &DriftPlan::none());
    let clean_refs: Vec<&ExecutedQuery> = clean.queries.iter().collect();
    let incumbent = QppPredictor::train(&clean_refs, QppConfig::default()).unwrap();
    let baseline_mre = hybrid_mre(&incumbent, &clean_refs);
    let registry =
        ModelRegistry::create(temp_dir("drift-e2e"), incumbent, QppConfig::default()).unwrap();
    assert_eq!(registry.version(), 1);

    // Phase 2: the data grows 3x overnight. Observed latencies triple
    // while the logged estimates (the model's inputs) stay stale.
    let drift = DriftPlan {
        kind: DriftKind::DataGrowth,
        onset: 0,
        ramp: 0,
        magnitude: 3.0,
        seed: 1,
    };
    let drifted = collect(&Workload::generate(&templates, 8, 0.1, 21), &sim, &drift);
    let drifted_refs: Vec<&ExecutedQuery> = drifted.queries.iter().collect();
    assert!(drifted_refs.len() >= 12, "drifted window too small");

    // Phase 3: the feedback loop replays the drifted stream through the
    // serving model. Every prediction undershoots ~3x, the CUSUM
    // statistic accumulates, and the hybrid tier must end quarantined
    // with its circuit breaker tripped.
    let mut monitor = DriftMonitor::new(MonitorConfig {
        baseline_error: baseline_mre,
        ..MonitorConfig::default()
    });
    let serving = registry.current();
    for q in &drifted_refs {
        let p = serving.predict_checked(q, Method::Hybrid(PlanOrdering::ErrorBased));
        let ops: Vec<OpType> = q.plan.preorder().iter().map(|n| n.op).collect();
        monitor.ingest(&serving, p.method_used, p.value, q.latency(), &ops);
        if monitor.any_quarantined() {
            break;
        }
    }
    assert!(monitor.any_quarantined(), "drift was not detected");
    assert_eq!(
        monitor.health(PredictionTier::Hybrid),
        ModelHealth::Quarantined
    );
    // The tripped breaker degrades serving off the quarantined tier.
    let p = serving.predict_checked(drifted_refs[0], Method::Hybrid(PlanOrdering::ErrorBased));
    assert!(p.degraded, "breaker did not trip");
    assert_ne!(p.method_used, PredictionTier::Hybrid);
    // The per-operator attribution saw the same elevated residuals.
    let root_op_stats = monitor.op_residuals(drifted_refs[0].plan.preorder()[0].op);
    assert!(root_op_stats.count() > 0);

    // Phase 4: shadow retrain on the recent (drifted) window. The
    // candidate is fit to the new regime and must beat the stale
    // incumbent on the held-out slice by far more than the margin.
    let report = registry
        .shadow_retrain(&drifted_refs, &RetrainConfig::default())
        .unwrap();
    assert!(report.promoted, "expected promotion: {}", report.reason);
    assert!(report.candidate_error < report.incumbent_error);
    assert_eq!(registry.version(), 2);
    assert_eq!(report.version, 2);

    // Phase 5: recovery quality. The promoted model (trained on the
    // retrain split, round-tripped through the validated snapshot) must
    // land within 10% MRE of a from-scratch retrain on the full window.
    let scratch = QppPredictor::train(&drifted_refs, QppConfig::default()).unwrap();
    let scratch_mre = hybrid_mre(&scratch, &drifted_refs);
    let promoted = registry.current();
    let promoted_mre = hybrid_mre(&promoted, &drifted_refs);
    assert!(
        promoted_mre <= scratch_mre * 1.10 + 0.02,
        "promoted MRE {promoted_mre:.4} not within 10% of from-scratch {scratch_mre:.4}"
    );
    assert!(
        promoted_mre < report.incumbent_error,
        "promotion did not improve serving"
    );

    // Phase 6: the monitor resets for the new model and stays calm on the
    // drifted regime the new model was trained for.
    monitor.reset_all();
    assert_eq!(monitor.health(PredictionTier::Hybrid), ModelHealth::Healthy);
    for q in &drifted_refs {
        let p = promoted.predict_checked(q, Method::Hybrid(PlanOrdering::ErrorBased));
        monitor.observe(p.method_used, p.value, q.latency());
    }
    assert!(!monitor.any_quarantined(), "healthy model was quarantined");
}

#[test]
fn model_swap_changes_cache_signature_so_stale_entries_cannot_hit() {
    let sim = quiet_sim();
    let ds = collect(
        &Workload::generate(&[1, 3, 6], 8, 0.1, 7),
        &sim,
        &DriftPlan::none(),
    );
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let incumbent = QppPredictor::train(&refs, QppConfig::default()).unwrap();
    let registry =
        ModelRegistry::create(temp_dir("drift-sig"), incumbent, QppConfig::default()).unwrap();

    // Warm the shared cache through the serving model.
    let before = registry.current();
    let sig_before = before.hybrid.plan_model_signature();
    let warm = before.hybrid.predict_batch_cached(&refs, registry.pred_cache());
    assert_eq!(warm.len(), refs.len());
    assert!(registry.pred_cache().stats().entries > 0);

    // Promote a model set trained on different data: its cache-key
    // signature must differ (entries can never collide with the old
    // model's), and the registry clears the cache anyway.
    let half: Vec<&ExecutedQuery> = refs[..refs.len() / 2].to_vec();
    let candidate = QppPredictor::train(&half, QppConfig::default()).unwrap();
    registry.promote(candidate).unwrap();
    let after = registry.current();
    let sig_after = after.hybrid.plan_model_signature();
    assert_ne!(
        sig_before, sig_after,
        "swapped model sets share a cache-key signature"
    );
    assert_eq!(registry.pred_cache().stats().entries, 0);

    // Fresh predictions through the new model repopulate under new keys
    // and match the uncached path exactly.
    let cached = after.hybrid.predict_batch_cached(&refs, registry.pred_cache());
    for (q, c) in refs.iter().zip(&cached) {
        assert_eq!(after.hybrid.predict(q), *c);
    }
}
