//! Hot-swapping the model registry while the serving layer is under load.
//!
//! Two properties from ISSUE acceptance:
//! 1. A promote/rollback mid-flight never tears a batch and never panics a
//!    worker — every in-flight request is answered by exactly one model
//!    version.
//! 2. The shared sub-plan prediction cache never serves entries computed
//!    by a retired model: after a swap, served values are bit-identical to
//!    what the *new* model computes from scratch.

use engine::{Catalog, Simulator};
use qpp::{
    ExecutedQuery, MaterializedModels, Method, ModelRegistry, PlanOrdering, QppConfig,
    QppPredictor, QueryDataset,
};
use serve::{PredictionServer, ServeConfig};
use std::sync::Arc;

fn dataset() -> QueryDataset {
    let catalog = Catalog::new(0.1, 1);
    let workload = tpch::Workload::generate(&[1, 3, 6, 14], 6, 0.1, 7);
    QueryDataset::execute(&catalog, &workload, &Simulator::new(), 11, f64::INFINITY)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qpp_swap_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Cheap structural copy through the snapshot format, the same round-trip
/// `promote` itself performs.
fn replicate(p: &QppPredictor) -> QppPredictor {
    QppPredictor::from_materialized(&MaterializedModels::from_predictor(p), QppConfig::default())
}

const HYBRID: Method = Method::Hybrid(PlanOrdering::ErrorBased);

#[test]
fn swap_invalidates_prediction_cache_with_no_stale_hits() {
    let ds = dataset();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let v1 = QppPredictor::train(&refs, QppConfig::default()).expect("v1 training");
    // v2 trains on half the data, so the two versions genuinely disagree.
    let half: Vec<&ExecutedQuery> = refs[..refs.len() / 2].to_vec();
    let v2 = QppPredictor::train(&half, QppConfig::default()).expect("v2 training");

    let dir = temp_dir("cache");
    let registry =
        Arc::new(ModelRegistry::create(dir.clone(), v1, QppConfig::default()).expect("registry"));
    let queries: Vec<Arc<ExecutedQuery>> = ds.queries.iter().cloned().map(Arc::new).collect();
    let server = PredictionServer::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: Some(1),
            ..ServeConfig::default()
        },
    );

    // Warm the shared sub-plan cache with v1's entries.
    let v1_values: Vec<u64> = queries
        .iter()
        .map(|q| {
            server
                .predict(Arc::clone(q), HYBRID, None)
                .expect("warming predict")
                .value
                .to_bits()
        })
        .collect();
    assert!(
        registry.pred_cache().stats().entries > 0,
        "warm-up populated the cache"
    );

    let gen_before = registry.generation();
    registry.promote(v2).expect("promote v2");
    assert_eq!(registry.generation(), gen_before + 1);
    assert_eq!(
        registry.pred_cache().stats().entries,
        0,
        "promote must clear the shared prediction cache"
    );

    // Every post-swap answer must be bit-identical to the new serving
    // model computing from scratch; a stale cache hit would surface here.
    let current = registry.current();
    let mut disagreements = 0;
    for (q, v1_bits) in queries.iter().zip(&v1_values) {
        let got = server
            .predict(Arc::clone(q), HYBRID, None)
            .expect("post-swap predict");
        let want = current.predict_checked(q, HYBRID);
        assert_eq!(
            got.value.to_bits(),
            want.value.to_bits(),
            "served value diverged from the promoted model"
        );
        if got.value.to_bits() != *v1_bits {
            disagreements += 1;
        }
    }
    assert!(
        disagreements > 0,
        "v1 and v2 agree on every query; the stale-cache check has no power"
    );
    drop(server);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn concurrent_swaps_under_load_never_panic_and_land_on_final_model() {
    let ds = dataset();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let v1 = QppPredictor::train(&refs, QppConfig::default()).expect("v1 training");
    let half: Vec<&ExecutedQuery> = refs[..refs.len() / 2].to_vec();
    let v2 = QppPredictor::train(&half, QppConfig::default()).expect("v2 training");

    let dir = temp_dir("stress");
    let registry =
        Arc::new(ModelRegistry::create(dir.clone(), v1, QppConfig::default()).expect("registry"));
    let queries: Vec<Arc<ExecutedQuery>> = ds.queries.iter().cloned().map(Arc::new).collect();
    let server = Arc::new(PredictionServer::start(
        Arc::clone(&registry),
        ServeConfig {
            workers: Some(2),
            max_batch: 8,
            ..ServeConfig::default()
        },
    ));

    let gen_start = registry.generation();
    let swaps = 4;
    std::thread::scope(|s| {
        // Swapper: promote a replica of v2, roll back to v1, repeatedly,
        // while clients hammer the server.
        let swap_registry = Arc::clone(&registry);
        let swapper = s.spawn(move || {
            let mut ok = 0u64;
            for _ in 0..swaps {
                swap_registry
                    .promote(replicate(&v2))
                    .expect("promote replica");
                ok += 1;
                swap_registry.rollback().expect("rollback to v1");
                ok += 1;
            }
            ok
        });
        for c in 0..3usize {
            let server = Arc::clone(&server);
            let queries = &queries;
            s.spawn(move || {
                for i in 0..40 {
                    let q = &queries[(c + i) % queries.len()];
                    let p = server
                        .predict(Arc::clone(q), HYBRID, None)
                        .expect("predict during swaps");
                    // Whatever version answered, the value is a real
                    // prediction, never a torn or poisoned one.
                    assert!(p.value.is_finite() && p.value >= 0.0, "torn prediction");
                }
            });
        }
        let ok_swaps = swapper.join().expect("swapper panicked");
        assert_eq!(ok_swaps, 2 * swaps);
    });

    // Generation advanced once per successful promote or rollback.
    assert_eq!(registry.generation(), gen_start + 2 * swaps);

    // Quiesced: serving answers are bit-identical to the final model.
    let current = registry.current();
    for q in &queries {
        let got = server
            .predict(Arc::clone(q), HYBRID, None)
            .expect("post-stress predict");
        let want = current.predict_checked(q, HYBRID);
        assert_eq!(got.value.to_bits(), want.value.to_bits());
    }

    let snap = server.stats();
    assert_eq!(snap.served, snap.submitted, "nothing lost during swaps");
    assert_eq!(snap.shed(), 0);
    // Dropping the server joins the pool; a panicked worker resurfaces.
    drop(server);
    let _ = std::fs::remove_dir_all(dir);
}
