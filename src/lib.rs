//! Facade crate for the QPP reproduction workspace.
//!
//! Re-exports the five library crates under stable names so the root-level
//! examples and integration tests can reach everything through one
//! dependency:
//!
//! - [`tpch`] — TPC-H substrate (schema, statistics, data generator, query
//!   templates, workloads).
//! - [`engine`] — DBMS substrate (catalog, histograms, planner, cost model,
//!   execution simulator, mini executor).
//! - [`ml`] — learning substrate (linear regression, SVR, feature selection,
//!   cross-validation, metrics).
//! - [`qpp`] — the paper's contribution (plan-level, operator-level, hybrid
//!   and online query performance prediction).
//! - [`serve`] — the overload-resilient serving front-end (bounded queues,
//!   admission control, deadline-driven degradation, request coalescing).

#![warn(missing_docs)]

pub use engine;
pub use ml;
pub use qpp;
pub use serve;
pub use tpch;
