//! Semantics of the Table-1 / Table-2 feature extractors across the full
//! template set.

use engine::{Catalog, Planner};
use qpp::features::{
    node_views, op_histogram, plan_feature_names, plan_features, FeatureSource,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn plan(t: u8, sf: f64) -> engine::PlanNode {
    let catalog = Catalog::new(sf, 1);
    let planner = Planner::new(&catalog);
    let mut rng = StdRng::seed_from_u64(12);
    planner.plan(&tpch::instantiate(t, sf, &mut rng))
}

/// Feature names are unique and aligned with the vector layout.
#[test]
fn feature_names_are_unique() {
    let names = plan_feature_names();
    let set: std::collections::HashSet<&String> = names.iter().collect();
    assert_eq!(set.len(), names.len());
    assert_eq!(names[0], "p_tot_cost");
    assert_eq!(names[1], "p_st_cost");
    assert_eq!(names[4], "op_count");
}

/// Sub-tree features are consistent with whole-plan features: the subtree
/// slice of views produces the same vector as re-extracting on the
/// subtree.
#[test]
fn subtree_features_use_contiguous_view_slices() {
    let p = plan(5, 0.5);
    let views = node_views(&p, FeatureSource::Estimated, None);
    let nodes = p.preorder();
    // Pick the first join node.
    let (idx, node) = nodes
        .iter()
        .enumerate()
        .find(|(_, n)| n.children.len() == 2)
        .expect("a join exists");
    let size = node.node_count();
    let slice = &views[idx..idx + size];
    let f = plan_features(node, slice);
    assert_eq!(f[4] as usize, size);
    // The sub-tree root's cost is the first feature.
    assert_eq!(f[0], node.est.total_cost);
}

/// `<op>_cnt` features count exactly the operators in the histogram.
#[test]
fn op_count_features_match_histogram() {
    for t in [1u8, 3, 9, 13, 18] {
        let p = plan(t, 0.5);
        let views = node_views(&p, FeatureSource::Estimated, None);
        let f = plan_features(&p, &views);
        for (op, count) in op_histogram(&p) {
            let feature = f[7 + op.index()];
            assert_eq!(feature as usize, count, "t{t} {op:?}");
        }
    }
}

/// Estimated and actual views share widths but differ in rows wherever
/// estimation errs.
#[test]
fn view_sources_share_structure() {
    let q = {
        let catalog = Catalog::new(0.5, 1);
        let workload = tpch::Workload::generate(&[18], 1, 0.5, 3);
        qpp::QueryDataset::execute(
            &catalog,
            &workload,
            &engine::Simulator::new(),
            5,
            f64::INFINITY,
        )
    };
    let q = &q.queries[0];
    let est = q.views(FeatureSource::Estimated);
    let act = q.views(FeatureSource::Actual);
    assert_eq!(est.len(), act.len());
    let mut any_row_gap = false;
    for (e, a) in est.iter().zip(&act) {
        assert_eq!(e.width, a.width);
        if (e.rows - a.rows).abs() > a.rows.max(1.0) * 0.5 {
            any_row_gap = true;
        }
    }
    assert!(any_row_gap, "template 18 must show estimation gaps");
}

/// Operator-level feature vectors encode the child arity: unary operators
/// have zeroed right-child features.
#[test]
fn unary_operators_zero_right_child_features() {
    use qpp::features::op_features;
    let p = plan(1, 0.5);
    let views = node_views(&p, FeatureSource::Estimated, None);
    // Root (Sort) is unary.
    let f = op_features(&p, &views[0], &[&views[1]], &[(1.0, 2.0)]);
    assert_eq!(f[3], 0.0); // nt2
    assert_eq!(f[7], 0.0); // st2
    assert_eq!(f[8], 0.0); // rt2
}
