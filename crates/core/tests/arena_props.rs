//! Arena-vs-boxed equivalence tests.
//!
//! The prediction hot path now runs on [`engine::arena::PlanArena`] views
//! of plan trees instead of recursive boxed walks. Every ported consumer
//! must be *exactly* equivalent to the boxed original:
//!
//! - traversal: arena nodes/sizes/children/postorder mirror
//!   `PlanNode::preorder`/`node_count`/`children` pointer-for-pointer;
//! - subtree hashes: [`qpp::arena_structure_hashes`] agrees with the
//!   recursive [`qpp::structure_key`] at every pre-order position,
//!   including HashJoin's unordered-pair combine with Hash-wrapper
//!   stripping;
//! - feature rows: [`qpp::plan_features_slice`] over an arena fragment
//!   is bit-identical to [`qpp::plan_features`] over the boxed subtree;
//! - cached batch predictions: memoized and batched hybrid walks equal
//!   the direct arena compose bit-for-bit.
//!
//! Plans come from two generators: the real planner over the TPC-H
//! templates (exercising Join details, Hash wrappers, SubqueryScan), and
//! hand-built random trees sweeping shapes the planner never emits (deep
//! chains, arity > 2, detail-free joins). A deterministic seed grid always
//! runs; proptest versions of the same properties add shrinking where the
//! real proptest crate is present.

// Offline builds may substitute an inert `proptest` whose macro bodies
// compile away, which strands some imports and helpers as "unused".
#![allow(dead_code, unused_imports)]

use engine::arena::PlanArena;
use engine::plan::{NodeEst, NodeTruth, OpDetail, OpType, PlanNode};
use engine::{Catalog, Planner};
use proptest::prelude::*;
use qpp::features::{node_views, FeatureSource};
use qpp::{
    arena_structure_hashes, plan_features, plan_features_slice, structure_key,
    subtree_hash_sizes, StructureKey,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpch::schema::TableId;

const TEMPLATES: [u8; 8] = [1, 3, 5, 6, 10, 12, 14, 18];

fn planner_plan(template: u8, seed: u64) -> PlanNode {
    let catalog = Catalog::new(0.1, 1);
    let planner = Planner::new(&catalog);
    let mut rng = StdRng::seed_from_u64(seed);
    planner.plan(&tpch::instantiate(template, 0.1, &mut rng))
}

const TABLES: [TableId; 8] = [
    TableId::Region,
    TableId::Nation,
    TableId::Supplier,
    TableId::Customer,
    TableId::Part,
    TableId::Partsupp,
    TableId::Orders,
    TableId::Lineitem,
];

fn synth_node(rng: &mut StdRng, op: OpType, children: Vec<PlanNode>) -> PlanNode {
    let detail = if children.is_empty() {
        OpDetail::Scan {
            table: TABLES[rng.gen_range(0..TABLES.len())],
            filters: vec![],
        }
    } else {
        OpDetail::None
    };
    PlanNode {
        op,
        children,
        est: NodeEst {
            startup_cost: rng.gen_range(0.0..100.0),
            total_cost: rng.gen_range(100.0..10_000.0),
            rows: rng.gen_range(1.0..1e6),
            width: rng.gen_range(8.0..512.0),
            pages: rng.gen_range(1.0..1e4),
            selectivity: rng.gen_range(0.0..1.0),
        },
        truth: NodeTruth {
            rows: rng.gen_range(1.0..1e6),
            pages: rng.gen_range(1.0..1e4),
            selectivity: rng.gen_range(0.0..1.0),
        },
        detail,
    }
}

/// Random tree of bounded depth. Mixes arities 0–3 (the planner caps at
/// 2; the arena must not care) and, at depth ≥ 1, sometimes emits a
/// HashJoin whose build side carries the Hash wrapper — the structure
/// hash's strip-and-combine special case.
fn synth_tree(rng: &mut StdRng, depth: usize) -> PlanNode {
    if depth == 0 {
        let op = if rng.gen_bool(0.5) {
            OpType::SeqScan
        } else {
            OpType::IndexScan
        };
        return synth_node(rng, op, vec![]);
    }
    if rng.gen_bool(0.35) {
        // HashJoin(probe, Hash(build)) — and occasionally a bare build
        // side, since strip only fires on a unary Hash child.
        let probe = synth_tree(rng, depth - 1);
        let build = synth_tree(rng, depth - 1);
        let build = if rng.gen_bool(0.75) {
            synth_node(rng, OpType::Hash, vec![build])
        } else {
            build
        };
        return synth_node(rng, OpType::HashJoin, vec![probe, build]);
    }
    let internal = [
        OpType::Sort,
        OpType::Materialize,
        OpType::HashAggregate,
        OpType::GroupAggregate,
        OpType::Aggregate,
        OpType::Limit,
        OpType::NestedLoop,
        OpType::MergeJoin,
        OpType::SubqueryScan,
    ];
    let op = internal[rng.gen_range(0..internal.len())];
    let n_children = rng.gen_range(1..4usize);
    let children = (0..n_children).map(|_| synth_tree(rng, depth - 1)).collect();
    synth_node(rng, op, children)
}

/// The full equivalence battery for one plan.
fn check_arena_equivalences(plan: &PlanNode) {
    let arena = PlanArena::flatten(plan);
    let boxed = plan.preorder();

    // Traversal: pre-order pointers, subtree sizes, child linkage.
    assert_eq!(arena.len(), boxed.len());
    for (i, n) in boxed.iter().enumerate() {
        assert!(std::ptr::eq(arena.node(i), *n), "node {i} differs");
        assert_eq!(arena.size(i), n.node_count(), "size {i} differs");
        let via_arena: Vec<*const PlanNode> = arena
            .children(i)
            .map(|c| arena.node(c) as *const PlanNode)
            .collect();
        let via_boxed: Vec<*const PlanNode> =
            n.children.iter().map(|c| c as *const PlanNode).collect();
        assert_eq!(via_arena, via_boxed, "children of {i} differ");
    }
    let post: Vec<usize> = arena.postorder().collect();
    assert_eq!(post.len(), arena.len());
    assert_eq!(*post.last().unwrap(), 0, "root must exit last");

    // Subtree hashes: arena pass vs the recursive per-subtree entry point.
    let hashes = arena_structure_hashes(&arena);
    for (i, n) in boxed.iter().enumerate() {
        assert_eq!(
            StructureKey(hashes[i]),
            structure_key(n),
            "hash at {i} diverged from recursive hashing"
        );
    }
    let (hashes2, sizes2) = subtree_hash_sizes(plan);
    assert_eq!(hashes, hashes2);
    assert_eq!(arena.sizes(), &sizes2[..]);

    // Feature rows: arena fragment slices vs boxed subtree extraction,
    // bit for bit, for every fragment.
    let views = node_views(plan, FeatureSource::Estimated, None);
    for i in 0..arena.len() {
        let slice = &views[i..i + arena.size(i)];
        let via_slice: Vec<u64> = plan_features_slice(arena.subtree_nodes(i), slice)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let via_boxed: Vec<u64> = plan_features(boxed[i], slice)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(via_slice, via_boxed, "feature row at {i} differs");
    }
}

#[test]
fn arena_equivalences_hold_on_planner_plans_seed_grid() {
    for &t in &TEMPLATES {
        for seed in 0..3u64 {
            check_arena_equivalences(&planner_plan(t, seed * 31 + t as u64));
        }
    }
}

#[test]
fn arena_equivalences_hold_on_synthetic_trees_seed_grid() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = 1 + (seed as usize % 5);
        check_arena_equivalences(&synth_tree(&mut rng, depth));
    }
}

#[test]
fn hash_join_orientation_symmetry_survives_the_arena_port() {
    // The structural key treats HashJoin inputs as an unordered pair with
    // the Hash wrapper stripped; both hashing implementations must keep
    // that across orientations.
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(0xA11CE ^ seed);
        let a = synth_tree(&mut rng, 2);
        let b = synth_tree(&mut rng, 2);
        let mut forward_rng = StdRng::seed_from_u64(7);
        let wrapped_b = synth_node(&mut forward_rng, OpType::Hash, vec![b.clone()]);
        let forward = synth_node(
            &mut forward_rng,
            OpType::HashJoin,
            vec![a.clone(), wrapped_b],
        );
        let mut reverse_rng = StdRng::seed_from_u64(7);
        let wrapped_a = synth_node(&mut reverse_rng, OpType::Hash, vec![a]);
        let reverse = synth_node(&mut reverse_rng, OpType::HashJoin, vec![b, wrapped_a]);
        assert_eq!(structure_key(&forward), structure_key(&reverse));
        let fwd_arena = PlanArena::flatten(&forward);
        let rev_arena = PlanArena::flatten(&reverse);
        assert_eq!(
            arena_structure_hashes(&fwd_arena)[0],
            arena_structure_hashes(&rev_arena)[0]
        );
        check_arena_equivalences(&forward);
        check_arena_equivalences(&reverse);
    }
}

#[test]
fn cached_batch_predictions_match_the_direct_arena_walk() {
    // The memoized walk, the shared-cache batch walk, and repeat walks
    // against a warm cache must all equal the direct (uncached) arena
    // compose bit-for-bit, with plan-level fragment models in play.
    use qpp::dataset::ExecutedQuery;
    use qpp::op_model::{OpLevelModel, OpModelConfig};
    use qpp::{train_hybrid, HybridConfig, PredictionCache, QueryDataset};

    let catalog = Catalog::new(0.1, 1);
    let workload = tpch::Workload::generate(&[1, 3, 6], 8, 0.1, 7);
    let sim = engine::Simulator::with_config(engine::SimConfig {
        additive_noise_secs: 0.05,
        ..engine::SimConfig::default()
    });
    let ds = QueryDataset::execute(&catalog, &workload, &sim, 11, f64::INFINITY);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op = OpLevelModel::train(&refs, &OpModelConfig::default()).expect("op model");
    let (hybrid, _) = train_hybrid(
        &refs,
        op,
        &HybridConfig {
            max_iterations: 4,
            min_frequency: 3,
            ..HybridConfig::default()
        },
    )
    .expect("hybrid");

    let cache = PredictionCache::default();
    let mut direct_bits = Vec::with_capacity(refs.len());
    for q in &refs {
        let views = q.views(hybrid.op_model.source());
        let direct = hybrid.predict_plan(&q.plan, &views).latency;
        let memo = hybrid.predict_plan_memo(&q.plan, &views, &cache);
        assert_eq!(direct.to_bits(), memo.to_bits(), "cold memo walk differs");
        let warm = hybrid.predict_plan_memo(&q.plan, &views, &cache);
        assert_eq!(direct.to_bits(), warm.to_bits(), "warm memo walk differs");
        direct_bits.push(direct.to_bits());
    }
    assert!(cache.stats().hits > 0, "repeat walks must hit the cache");

    let batch_bits: Vec<u64> = hybrid
        .predict_batch(&refs)
        .into_iter()
        .map(f64::to_bits)
        .collect();
    assert_eq!(direct_bits, batch_bits, "batch walk differs from direct");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arena_equivalences_hold_for_random_trees(seed in any::<u64>(), depth in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        check_arena_equivalences(&synth_tree(&mut rng, depth));
    }

    #[test]
    fn arena_equivalences_hold_for_planner_plans(seed in any::<u64>(), t in 0usize..8) {
        check_arena_equivalences(&planner_plan(TEMPLATES[t], seed));
    }
}
