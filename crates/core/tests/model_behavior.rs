//! Behavioral tests of the prediction models beyond the unit level:
//! canonical sub-plan matching, ablation effects, determinism.

use engine::{Catalog, SimConfig, Simulator};
use ml::metrics::mean_relative_error;
use qpp::hybrid::{train_hybrid, HybridConfig, PlanOrdering};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::plan_model::{PlanLevelModel, PlanModelConfig};
use qpp::subplan::describe;
use qpp::{structure_key, ExecutedQuery, QueryDataset};
use tpch::Workload;

fn quiet_sim() -> Simulator {
    Simulator::with_config(SimConfig {
        additive_noise_secs: 0.05,
        ..SimConfig::default()
    })
}

fn dataset(templates: &[u8], per_template: usize, sf: f64, seed: u64) -> QueryDataset {
    let catalog = Catalog::new(sf, 1);
    let workload = Workload::generate(templates, per_template, sf, seed);
    QueryDataset::execute(&catalog, &workload, &quiet_sim(), 31, f64::INFINITY)
}

/// Hash-join fragments with swapped build sides share a structure key
/// (template 3 vs template 10 at 10 GB is the real-world case; here we
/// check it against actually planned trees).
#[test]
fn canonical_keys_match_across_build_orientations() {
    let ds = dataset(&[3, 10], 3, 10.0, 2);
    // Find customer⋈orders fragments in both templates.
    let mut keys_by_template: Vec<(u8, Vec<(qpp::StructureKey, String)>)> = Vec::new();
    for q in &ds.queries {
        let mut found = Vec::new();
        for n in q.plan.preorder() {
            let d = describe(n);
            if d.contains("customer") && d.contains("orders") && !d.contains("lineitem") {
                found.push((structure_key(n), d));
            }
        }
        keys_by_template.push((q.template, found));
    }
    let t3: Vec<_> = keys_by_template
        .iter()
        .filter(|(t, _)| *t == 3)
        .flat_map(|(_, k)| k.clone())
        .collect();
    let t10: Vec<_> = keys_by_template
        .iter()
        .filter(|(t, _)| *t == 10)
        .flat_map(|(_, k)| k.clone())
        .collect();
    let shared = t3.iter().any(|(k3, _)| t10.iter().any(|(k10, _)| k10 == k3));
    assert!(
        shared,
        "customer⋈orders fragments must share a key across templates:\n t3: {t3:?}\n t10: {t10:?}"
    );
}

/// Disabling start-time features changes the trained model (the DESIGN.md
/// ablation hook is live).
#[test]
fn start_time_feature_ablation_changes_predictions() {
    let ds = dataset(&[1, 3, 12], 10, 1.0, 7);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let with = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
    let without = OpLevelModel::train(
        &refs,
        &OpModelConfig {
            include_start_features: false,
            ..OpModelConfig::default()
        },
    )
    .unwrap();
    let diff = refs
        .iter()
        .map(|q| (with.predict(q) - without.predict(q)).abs())
        .sum::<f64>();
    assert!(diff > 1e-9, "masking start features must change predictions");
}

/// Training is deterministic: same data, same config, same predictions.
#[test]
fn training_is_deterministic() {
    let ds = dataset(&[3, 6, 14], 8, 1.0, 4);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let a = PlanLevelModel::train(&refs, &PlanModelConfig::default()).unwrap();
    let b = PlanLevelModel::train(&refs, &PlanModelConfig::default()).unwrap();
    for q in &refs {
        assert_eq!(a.predict(q), b.predict(q));
    }
    let (ha, _) = train_hybrid(
        &refs,
        OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap(),
        &HybridConfig::default(),
    )
    .unwrap();
    let (hb, _) = train_hybrid(
        &refs,
        OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap(),
        &HybridConfig::default(),
    )
    .unwrap();
    for q in &refs {
        assert_eq!(ha.predict(q), hb.predict(q));
    }
}

/// The actual/actual configuration beats estimate/estimate on a workload
/// with large estimation errors (Section 5.3.3's ordering).
#[test]
fn actual_features_beat_estimates_in_training() {
    let ds = dataset(&[3, 9, 13, 18], 12, 1.0, 11);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let folds = ml::cv::stratified_kfold(&ds.strata(), 4, 3);
    let mut rows = vec![(0.0, 0.0, 0.0); ds.len()];
    for fold in &folds {
        let train: Vec<&ExecutedQuery> = fold.train.iter().map(|&i| refs[i]).collect();
        let act = PlanLevelModel::train(
            &train,
            &PlanModelConfig {
                source: qpp::FeatureSource::Actual,
                ..PlanModelConfig::default()
            },
        )
        .unwrap();
        let est = PlanLevelModel::train(&train, &PlanModelConfig::default()).unwrap();
        for &i in &fold.test {
            let q = refs[i];
            rows[i] = (q.latency(), act.predict(q), est.predict(q));
        }
    }
    let actual: Vec<f64> = rows.iter().map(|r| r.0).collect();
    let act_preds: Vec<f64> = rows.iter().map(|r| r.1).collect();
    let est_preds: Vec<f64> = rows.iter().map(|r| r.2).collect();
    let act_err = mean_relative_error(&actual, &act_preds);
    let est_err = mean_relative_error(&actual, &est_preds);
    // Actual values can't be *much* worse; typically better.
    assert!(
        act_err <= est_err * 1.25 + 0.02,
        "actual/actual {act_err} vs estimate/estimate {est_err}"
    );
}

/// Hybrid with a size-based strategy prefers small fragments: the first
/// accepted model is among the smallest candidates.
#[test]
fn size_based_strategy_accepts_small_fragments_first() {
    let ds = dataset(&[1, 3, 5, 10, 12], 10, 1.0, 19);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
    let (_, records) = train_hybrid(
        &refs,
        op,
        &HybridConfig {
            strategy: PlanOrdering::SizeBased,
            max_iterations: 6,
            min_frequency: 4,
            ..HybridConfig::default()
        },
    )
    .unwrap();
    if let Some(first) = records.first() {
        // Size-based ordering considers 2-3 operator fragments first.
        let opens = first.description.matches('(').count();
        assert!(opens <= 4, "first candidate too big: {}", first.description);
    }
}

/// Predictions never go negative, whatever the query.
#[test]
fn predictions_are_non_negative_everywhere() {
    let ds = dataset(&[1, 6, 9, 13, 19], 6, 1.0, 23);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let pm = PlanLevelModel::train(&refs, &PlanModelConfig::default()).unwrap();
    let om = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
    let (hy, _) = train_hybrid(&refs, om.clone(), &HybridConfig::default()).unwrap();
    for q in &refs {
        assert!(pm.predict(q) >= 0.0);
        assert!(om.predict(q) >= 0.0);
        assert!(hy.predict(q) >= 0.0);
    }
}

/// Disk-I/O prediction (Section 6's multi-metric direction): the same
/// plan-level machinery predicts physical page traffic, and does so at
/// least as well as it predicts latency (I/O is less noisy).
#[test]
fn plan_level_predicts_disk_io() {
    use qpp::plan_model::TargetMetric;
    let ds = dataset(&[1, 3, 6, 12, 14], 12, 1.0, 29);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let folds = ml::cv::stratified_kfold(&ds.strata(), 4, 3);
    let mut rows = Vec::new();
    for fold in &folds {
        let train: Vec<&ExecutedQuery> = fold.train.iter().map(|&i| refs[i]).collect();
        let model = PlanLevelModel::train(
            &train,
            &PlanModelConfig {
                metric: TargetMetric::DiskIo,
                ..PlanModelConfig::default()
            },
        )
        .unwrap();
        assert_eq!(model.metric(), TargetMetric::DiskIo);
        for &i in &fold.test {
            rows.push((refs[i].total_io_pages(), model.predict(refs[i])));
        }
    }
    let (a, p): (Vec<f64>, Vec<f64>) = rows.into_iter().unzip();
    let err = mean_relative_error(&a, &p);
    assert!(err < 0.25, "disk-I/O prediction error = {err}");
}

/// Per-node I/O accounting sums to something sensible: scans of big
/// tables dominate; every entry is non-negative and finite.
#[test]
fn io_accounting_is_consistent() {
    let ds = dataset(&[1, 5, 9], 3, 1.0, 41);
    for q in &ds.queries {
        assert_eq!(q.trace.io_pages.len(), q.plan.node_count());
        for &p in &q.trace.io_pages {
            assert!(p.is_finite() && p >= 0.0);
        }
        // A query scanning lineitem must read at least its heap pages once.
        if q.plan
            .preorder()
            .iter()
            .any(|n| n.scan_table() == Some(tpch::TableId::Lineitem)
                && n.op == engine::OpType::SeqScan)
        {
            let li_pages = tpch::TableId::Lineitem.pages(1.0) as f64;
            assert!(
                q.total_io_pages() >= li_pages * 0.9,
                "t{}: io {} vs lineitem {}",
                q.template,
                q.total_io_pages(),
                li_pages
            );
        }
    }
}
