//! The user-facing QPP facade: train once, predict with any method,
//! materialize models for later sessions.
//!
//! Ties the four prediction methods of the paper behind one API and
//! implements model *materialization* (Section 1's pre-building): trained
//! model sets serialize to JSON and reload without retraining.
//!
//! Besides the raw [`QppPredictor::predict`], the facade offers the
//! guarded [`QppPredictor::predict_checked`], which never returns a
//! non-finite or negative latency: it walks the degradation chain
//! Hybrid → OperatorLevel → PlanLevel → optimizer-cost scaling →
//! training-prior, skipping tiers whose inputs are corrupted or whose
//! circuit breaker has tripped after repeated invalid outputs.

use crate::dataset::ExecutedQuery;
use crate::error::QppError;
use crate::features::{plan_features, FeatureSource};
use crate::hybrid::{train_hybrid, HybridConfig, HybridModel, IterationRecord, PlanOrdering};
use crate::online::{OnlineConfig, OnlinePredictor};
use crate::op_model::{OpLevelModel, OpModelConfig};
use crate::plan_model::{PlanLevelModel, PlanModelConfig};
use std::sync::atomic::{AtomicU32, Ordering};

/// Which prediction method to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Single plan-level model (Section 3.1).
    PlanLevel,
    /// Composed operator-level models (Section 3.2).
    OperatorLevel,
    /// Hybrid with the given plan-ordering strategy (Section 3.4).
    Hybrid(PlanOrdering),
}

/// The tier that actually produced a checked prediction, in degradation
/// order: the three learned models, then two analytical fallbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictionTier {
    /// The hybrid model (Section 3.4).
    Hybrid,
    /// Composed operator-level models (Section 3.2).
    OperatorLevel,
    /// The single plan-level model (Section 3.1).
    PlanLevel,
    /// Optimizer cost estimate × the training-time seconds-per-cost-unit
    /// ratio (the paper's Section 5.2 baseline, used here as a fallback).
    CostScaling,
    /// Median training latency — the last resort when even the optimizer
    /// cost estimate is unusable.
    TrainingPrior,
}

/// A guarded prediction: always finite and non-negative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted latency in seconds (finite, `>= 0`).
    pub value: f64,
    /// The tier that produced the value.
    pub method_used: PredictionTier,
    /// True when the value did not come from the requested method.
    pub degraded: bool,
}

/// Training configuration for the full predictor.
#[derive(Debug, Clone)]
pub struct QppConfig {
    /// Plan-level settings.
    pub plan: PlanModelConfig,
    /// Operator-level settings.
    pub op: OpModelConfig,
    /// Hybrid settings.
    pub hybrid: HybridConfig,
    /// Consecutive invalid outputs after which a model tier's circuit
    /// breaker opens and [`QppPredictor::predict_checked`] stops
    /// consulting it (until a valid output or a reset closes it).
    pub breaker_threshold: u32,
}

impl Default for QppConfig {
    fn default() -> Self {
        QppConfig {
            plan: PlanModelConfig::default(),
            op: OpModelConfig::default(),
            hybrid: HybridConfig::default(),
            breaker_threshold: 3,
        }
    }
}

/// A trained predictor holding all three offline model sets.
pub struct QppPredictor {
    /// Plan-level model.
    pub plan_level: PlanLevelModel,
    /// Operator-level models.
    pub op_level: OpLevelModel,
    /// Hybrid model (operator models + accepted sub-plan models).
    pub hybrid: HybridModel,
    /// Hybrid training trajectory.
    pub hybrid_trajectory: Vec<IterationRecord>,
    config: QppConfig,
    /// Median observed seconds per optimizer cost unit at training time
    /// (NaN when no training query had a usable cost estimate).
    secs_per_cost: f64,
    /// Median training latency (the last-resort prior).
    prior_latency: f64,
    /// Consecutive-invalid-output counters per model tier
    /// (Hybrid, OperatorLevel, PlanLevel).
    breakers: [AtomicU32; 3],
}

/// The three learned tiers, in degradation order. The drift monitor keys
/// its per-tier residual statistics by position in this array.
pub const MODEL_TIERS: [PredictionTier; 3] = [
    PredictionTier::Hybrid,
    PredictionTier::OperatorLevel,
    PredictionTier::PlanLevel,
];

/// Every tier of the degradation chain, most expensive (and most accurate)
/// first. The serving layer maps deadline budgets onto this order: the
/// deeper the entry point, the cheaper the answer.
pub const ALL_TIERS: [PredictionTier; 5] = [
    PredictionTier::Hybrid,
    PredictionTier::OperatorLevel,
    PredictionTier::PlanLevel,
    PredictionTier::CostScaling,
    PredictionTier::TrainingPrior,
];

/// Position of a tier in the degradation chain (0 = Hybrid … 4 =
/// TrainingPrior). Larger ranks are cheaper and less accurate.
pub fn tier_rank(tier: PredictionTier) -> usize {
    ALL_TIERS
        .iter()
        .position(|t| *t == tier)
        .expect("ALL_TIERS covers every tier")
}

impl Method {
    /// The learned tier this method natively resolves to — where the
    /// degradation chain starts for the method.
    pub fn tier(self) -> PredictionTier {
        match self {
            Method::Hybrid(_) => PredictionTier::Hybrid,
            Method::OperatorLevel => PredictionTier::OperatorLevel,
            Method::PlanLevel => PredictionTier::PlanLevel,
        }
    }
}

fn is_sane(v: f64) -> bool {
    v.is_finite() && v >= 0.0
}

fn tier_index(tier: PredictionTier) -> Option<usize> {
    MODEL_TIERS.iter().position(|t| *t == tier)
}

/// Median of the values, consuming the buffer; NaN when empty.
fn median_of(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

impl QppPredictor {
    /// Trains all offline models on the given training queries.
    pub fn train(queries: &[&ExecutedQuery], config: QppConfig) -> Result<Self, QppError> {
        if queries.is_empty() {
            return Err(QppError::NoTrainingData);
        }
        // The plan-level and operator-level models are independent; train
        // them concurrently. The plan-level result is checked first, so a
        // double failure reports the same error the serial code did.
        let (plan_res, op_res) = ml::par::join2(
            || PlanLevelModel::train(queries, &config.plan),
            || OpLevelModel::train(queries, &config.op),
        );
        let plan_level = plan_res?;
        let op_level = op_res?;
        let (hybrid, hybrid_trajectory) =
            train_hybrid(queries, op_level.clone(), &config.hybrid)?;
        let ratios: Vec<f64> = queries
            .iter()
            .filter_map(|q| {
                let c = q.plan.est.total_cost;
                let l = q.latency();
                if c.is_finite() && c > 0.0 && l.is_finite() && l >= 0.0 {
                    Some(l / c)
                } else {
                    None
                }
            })
            .collect();
        let secs_per_cost = median_of(ratios);
        let lats: Vec<f64> = queries
            .iter()
            .map(|q| q.latency())
            .filter(|l| l.is_finite() && *l >= 0.0)
            .collect();
        let prior_latency = if lats.is_empty() { 0.0 } else { median_of(lats) };
        Ok(QppPredictor {
            plan_level,
            op_level,
            hybrid,
            hybrid_trajectory,
            config,
            secs_per_cost,
            prior_latency,
            breakers: [AtomicU32::new(0), AtomicU32::new(0), AtomicU32::new(0)],
        })
    }

    /// Predicts a query's latency with the chosen method (unguarded: may
    /// propagate garbage from corrupted inputs; prefer
    /// [`QppPredictor::predict_checked`] when the input is untrusted).
    pub fn predict(&self, query: &ExecutedQuery, method: Method) -> f64 {
        match method {
            Method::PlanLevel => self.plan_level.predict(query),
            Method::OperatorLevel => self.op_level.predict(query),
            Method::Hybrid(_) => self.hybrid.predict(query),
        }
    }

    /// Predicts a batch of queries with the chosen method, in input order
    /// and bit-identical to a serial [`QppPredictor::predict`] loop.
    ///
    /// Batching amortizes feature extraction, fans out over `ml::par` for
    /// large batches, and (for the hybrid method) shares a sub-plan memo
    /// cache across the batch so repeated fragments are predicted once.
    pub fn predict_batch(&self, queries: &[&ExecutedQuery], method: Method) -> Vec<f64> {
        match method {
            Method::PlanLevel => self.plan_level.predict_batch(queries),
            Method::OperatorLevel => self.op_level.predict_batch(queries),
            Method::Hybrid(_) => self.hybrid.predict_batch(queries),
        }
    }

    /// Predicts a query's latency, guaranteed finite and non-negative.
    ///
    /// Walks the degradation chain starting at the requested method:
    /// Hybrid → OperatorLevel → PlanLevel → cost scaling → training prior.
    /// A learned tier is consulted only if its circuit breaker is closed
    /// and the query's logged features (for that tier's feature source)
    /// are all finite; an invalid output advances the tier's breaker, a
    /// valid one closes it. The two analytical fallbacks never fail: cost
    /// scaling needs only a finite optimizer estimate, and the training
    /// prior is a constant.
    pub fn predict_checked(&self, query: &ExecutedQuery, method: Method) -> Prediction {
        self.predict_checked_from(query, method.tier())
    }

    /// [`QppPredictor::predict_checked`] with an explicit entry point into
    /// the degradation chain: the walk starts at `start` instead of a
    /// method's native tier, so a caller under a latency budget (the
    /// serving layer) can skip tiers it cannot afford. `degraded` is
    /// reported relative to `start`. Passing a fallback tier
    /// ([`PredictionTier::CostScaling`] / [`PredictionTier::TrainingPrior`])
    /// bypasses the learned models entirely.
    pub fn predict_checked_from(&self, query: &ExecutedQuery, start: PredictionTier) -> Prediction {
        self.chain(query, tier_rank(start), start)
    }

    /// Walks the chain from rank `start` (an index into [`ALL_TIERS`]),
    /// reporting `degraded` relative to `requested`.
    fn chain(&self, query: &ExecutedQuery, start: usize, requested: PredictionTier) -> Prediction {
        // Features-finite checks, cached per source (Estimated / Actual).
        let mut cache = [None::<bool>; 2];
        let mut features_ok = |src: FeatureSource| -> bool {
            let k = match src {
                FeatureSource::Estimated => 0,
                FeatureSource::Actual => 1,
            };
            *cache[k].get_or_insert_with(|| {
                let views = query.views(src);
                plan_features(&query.plan, &views).iter().all(|v| v.is_finite())
            })
        };
        for (i, &tier) in MODEL_TIERS.iter().enumerate().skip(start) {
            if self.breakers[i].load(Ordering::Relaxed) >= self.config.breaker_threshold {
                continue;
            }
            let source = match tier {
                PredictionTier::PlanLevel => self.plan_level.source(),
                _ => self.op_level.source(),
            };
            if !features_ok(source) {
                // Corrupted inputs are not the model's fault: skip the
                // tier without advancing its breaker.
                continue;
            }
            let value = match tier {
                PredictionTier::Hybrid => self.hybrid.predict(query),
                PredictionTier::OperatorLevel => self.op_level.predict(query),
                _ => self.plan_level.predict(query),
            };
            if is_sane(value) {
                self.breakers[i].store(0, Ordering::Relaxed);
                return Prediction {
                    value,
                    method_used: tier,
                    degraded: tier != requested,
                };
            }
            self.breakers[i].fetch_add(1, Ordering::Relaxed);
        }
        if start <= tier_rank(PredictionTier::CostScaling) {
            let cost = query.plan.est.total_cost;
            if cost.is_finite() && cost >= 0.0 {
                let value = cost * self.secs_per_cost;
                if is_sane(value) {
                    return Prediction {
                        value,
                        method_used: PredictionTier::CostScaling,
                        degraded: requested != PredictionTier::CostScaling,
                    };
                }
            }
        }
        Prediction {
            value: self.prior_latency,
            method_used: PredictionTier::TrainingPrior,
            degraded: requested != PredictionTier::TrainingPrior,
        }
    }

    /// Batched [`QppPredictor::predict_checked`]: the entry tier is
    /// evaluated through its `predict_batch` path (the hybrid tier through
    /// the shared sub-plan memo `cache`), and only queries the entry tier
    /// cannot serve — corrupted features, an open breaker, an insane
    /// output — fall back to the per-query chain walk. Results are in
    /// input order and bit-identical to a serial
    /// [`QppPredictor::predict_checked`] loop, because every batch path is
    /// bit-identical to its single-query counterpart.
    pub fn predict_checked_batch_cached(
        &self,
        queries: &[&ExecutedQuery],
        method: Method,
        cache: &crate::pred_cache::PredictionCache,
    ) -> Vec<Prediction> {
        let start = method.tier();
        let i = tier_rank(start);
        debug_assert!(i < MODEL_TIERS.len());
        if self.breakers[i].load(Ordering::Relaxed) >= self.config.breaker_threshold {
            // The whole entry tier is out: every query takes the same
            // walk, which skips the open breaker consistently.
            return queries
                .iter()
                .map(|q| self.predict_checked_from(q, start))
                .collect();
        }
        let values = match start {
            PredictionTier::Hybrid => self.hybrid.predict_batch_cached(queries, cache),
            PredictionTier::OperatorLevel => self.op_level.predict_batch(queries),
            _ => self.plan_level.predict_batch(queries),
        };
        let source = match start {
            PredictionTier::PlanLevel => self.plan_level.source(),
            _ => self.op_level.source(),
        };
        queries
            .iter()
            .zip(values)
            .map(|(q, value)| {
                let views = q.views(source);
                let finite = plan_features(&q.plan, &views).iter().all(|v| v.is_finite());
                if finite && is_sane(value) {
                    self.breakers[i].store(0, Ordering::Relaxed);
                    return Prediction {
                        value,
                        method_used: start,
                        degraded: false,
                    };
                }
                if finite {
                    // The model produced garbage from clean inputs:
                    // advance the breaker exactly like the single path.
                    self.breakers[i].fetch_add(1, Ordering::Relaxed);
                }
                self.chain(q, i + 1, start)
            })
            .collect()
    }

    /// True when the given learned tier's circuit breaker is open (always
    /// false for the analytical fallback tiers).
    pub fn breaker_tripped(&self, tier: PredictionTier) -> bool {
        match tier_index(tier) {
            Some(i) => {
                self.breakers[i].load(Ordering::Relaxed) >= self.config.breaker_threshold
            }
            None => false,
        }
    }

    /// Closes all circuit breakers (e.g. after retraining or when the
    /// input corruption source is known to be fixed).
    pub fn reset_breakers(&self) {
        for b in &self.breakers {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Opens the given learned tier's circuit breaker immediately, so
    /// [`QppPredictor::predict_checked`] degrades past it. Used by the
    /// drift monitor when it quarantines a tier whose residuals have
    /// drifted: a stale model is treated exactly like one emitting invalid
    /// outputs. No-op for the analytical fallback tiers. The breaker
    /// closes again on the tier's next valid output or via
    /// [`QppPredictor::reset_breakers`] — callers that want quarantine to
    /// stick must consult the monitor, not the breaker, before serving.
    pub fn trip_breaker(&self, tier: PredictionTier) {
        if let Some(i) = tier_index(tier) {
            self.breakers[i].store(self.config.breaker_threshold, Ordering::Relaxed);
        }
    }

    /// Median observed seconds per optimizer cost unit at training time
    /// (NaN when no training query had a usable cost estimate).
    pub fn secs_per_cost(&self) -> f64 {
        self.secs_per_cost
    }

    /// Median training latency (the last-resort prior).
    pub fn prior_latency(&self) -> f64 {
        self.prior_latency
    }

    /// The training configuration this predictor was built with.
    pub fn config(&self) -> &QppConfig {
        &self.config
    }

    /// Rebuilds a predictor from a materialized model set without
    /// retraining (the registry's snapshot-load path).
    ///
    /// The hybrid training trajectory is not persisted, so it comes back
    /// empty; circuit breakers start closed. Callers should run
    /// [`crate::materialize::MaterializedModels::validate`] first — this
    /// constructor trusts the model set it is given.
    pub fn from_materialized(
        mat: &crate::materialize::MaterializedModels,
        config: QppConfig,
    ) -> QppPredictor {
        QppPredictor {
            plan_level: mat.plan_level.clone(),
            op_level: mat.op_level.clone(),
            hybrid: mat.hybrid(),
            hybrid_trajectory: Vec::new(),
            config,
            secs_per_cost: mat.secs_per_cost,
            prior_latency: mat.prior_latency,
            breakers: [AtomicU32::new(0), AtomicU32::new(0), AtomicU32::new(0)],
        }
    }

    /// Creates an online predictor over this predictor's models
    /// (Section 4; the hybrid's pre-built sub-plan models seed it).
    pub fn online<'a>(&self, train: Vec<&'a ExecutedQuery>) -> OnlinePredictor<'a> {
        OnlinePredictor::new(
            train,
            self.hybrid.clone(),
            OnlineConfig {
                min_frequency: self.config.hybrid.min_frequency,
                min_size: self.config.hybrid.min_size,
                hybrid: self.config.hybrid.clone(),
            },
        )
    }

    /// Feature source in use.
    pub fn source(&self) -> FeatureSource {
        self.op_level.source()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryDataset;
    use engine::{Catalog, Simulator};
    use ml::mean_relative_error;
    use tpch::Workload;

    /// Simulator with the jitter tuned down: these tests assert model
    /// accuracy, which the default absolute jitter would swamp at the tiny
    /// scale factors used here.
    fn quiet_sim() -> Simulator {
        Simulator::with_config(engine::SimConfig {
            additive_noise_secs: 0.05,
            ..engine::SimConfig::default()
        })
    }

    fn dataset() -> QueryDataset {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6, 14], 10, 0.1, 7);
        QueryDataset::execute(&catalog, &workload, &quiet_sim(), 11, f64::INFINITY)
    }

    const ALL_METHODS: [Method; 3] = [
        Method::PlanLevel,
        Method::OperatorLevel,
        Method::Hybrid(PlanOrdering::ErrorBased),
    ];

    #[test]
    fn facade_trains_and_predicts_with_all_methods() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();
        let actual: Vec<f64> = refs.iter().map(|q| q.latency()).collect();
        for method in ALL_METHODS {
            let preds: Vec<f64> = refs.iter().map(|q| qpp.predict(q, method)).collect();
            let err = mean_relative_error(&actual, &preds);
            assert!(err.is_finite(), "{method:?}: {err}");
            assert!(err < 1.0, "{method:?} training error = {err}");
        }
    }

    #[test]
    fn online_predictor_is_constructible_from_facade() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();
        let mut online = qpp.online(refs.clone());
        let p = online.predict_query(refs[0]);
        assert!(p.is_finite() && p >= 0.0);
    }

    #[test]
    fn training_on_empty_data_is_an_error_not_a_panic() {
        assert_eq!(
            QppPredictor::train(&[], QppConfig::default()).err(),
            Some(QppError::NoTrainingData)
        );
    }

    #[test]
    fn checked_predictions_match_unchecked_on_clean_data() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();
        for q in &refs {
            for method in ALL_METHODS {
                let p = qpp.predict_checked(q, method);
                assert_eq!(p.value, qpp.predict(q, method));
                assert!(!p.degraded);
                let expected = match method {
                    Method::PlanLevel => PredictionTier::PlanLevel,
                    Method::OperatorLevel => PredictionTier::OperatorLevel,
                    Method::Hybrid(_) => PredictionTier::Hybrid,
                };
                assert_eq!(p.method_used, expected);
            }
        }
    }

    #[test]
    fn tripped_breaker_degrades_to_the_next_tier_and_reset_restores() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();
        let q = refs[0];
        qpp.breakers[0].store(qpp.config.breaker_threshold, Ordering::Relaxed);
        assert!(qpp.breaker_tripped(PredictionTier::Hybrid));
        let p = qpp.predict_checked(q, Method::Hybrid(PlanOrdering::ErrorBased));
        assert!(p.degraded);
        assert_eq!(p.method_used, PredictionTier::OperatorLevel);
        assert!(is_sane(p.value));
        qpp.reset_breakers();
        assert!(!qpp.breaker_tripped(PredictionTier::Hybrid));
        let p = qpp.predict_checked(q, Method::Hybrid(PlanOrdering::ErrorBased));
        assert!(!p.degraded);
        assert_eq!(p.method_used, PredictionTier::Hybrid);
    }

    #[test]
    fn corrupted_estimates_fall_through_to_analytical_tiers() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();

        // NaN row estimate (but a usable cost): models skip, cost scales.
        let mut q = ds.queries[0].clone();
        q.plan.est.rows = f64::NAN;
        for method in ALL_METHODS {
            let p = qpp.predict_checked(&q, method);
            assert!(is_sane(p.value), "{method:?}: {p:?}");
            assert!(p.degraded);
            assert_eq!(p.method_used, PredictionTier::CostScaling);
        }

        // NaN cost too: only the training prior is left.
        q.plan.est.total_cost = f64::NAN;
        for method in ALL_METHODS {
            let p = qpp.predict_checked(&q, method);
            assert!(is_sane(p.value), "{method:?}: {p:?}");
            assert_eq!(p.method_used, PredictionTier::TrainingPrior);
        }
        // Input corruption must not have tripped any breaker.
        for tier in MODEL_TIERS {
            assert!(!qpp.breaker_tripped(tier));
        }
    }

    #[test]
    fn predict_checked_from_enters_the_chain_at_any_tier() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();
        let q = refs[0];
        // Entering at a learned tier matches predict_checked for the
        // corresponding method.
        for (tier, method) in [
            (PredictionTier::Hybrid, Method::Hybrid(PlanOrdering::ErrorBased)),
            (PredictionTier::OperatorLevel, Method::OperatorLevel),
            (PredictionTier::PlanLevel, Method::PlanLevel),
        ] {
            let a = qpp.predict_checked_from(q, tier);
            let b = qpp.predict_checked(q, method);
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.method_used, b.method_used);
        }
        // Entering at the fallback tiers bypasses the models entirely.
        let cs = qpp.predict_checked_from(q, PredictionTier::CostScaling);
        assert_eq!(cs.method_used, PredictionTier::CostScaling);
        assert!(!cs.degraded, "cost scaling was the requested entry");
        assert!(is_sane(cs.value));
        let prior = qpp.predict_checked_from(q, PredictionTier::TrainingPrior);
        assert_eq!(prior.method_used, PredictionTier::TrainingPrior);
        assert_eq!(prior.value, qpp.prior_latency());
        assert!(!prior.degraded);
    }

    #[test]
    fn checked_batch_is_bit_identical_to_the_serial_checked_loop() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();
        let cache = crate::pred_cache::PredictionCache::default();
        for method in ALL_METHODS {
            let serial: Vec<u64> = refs
                .iter()
                .map(|q| qpp.predict_checked(q, method).value.to_bits())
                .collect();
            let batched: Vec<u64> = qpp
                .predict_checked_batch_cached(&refs, method, &cache)
                .iter()
                .map(|p| p.value.to_bits())
                .collect();
            assert_eq!(serial, batched, "{method:?}");
        }
    }

    #[test]
    fn checked_batch_degrades_per_query_on_corrupted_inputs() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();
        let mut bad = ds.queries[0].clone();
        bad.plan.est.rows = f64::NAN;
        let mixed: Vec<&ExecutedQuery> = vec![refs[0], &bad, refs[1]];
        let cache = crate::pred_cache::PredictionCache::default();
        let out =
            qpp.predict_checked_batch_cached(&mixed, Method::Hybrid(PlanOrdering::ErrorBased), &cache);
        assert_eq!(out[0].method_used, PredictionTier::Hybrid);
        assert_eq!(out[2].method_used, PredictionTier::Hybrid);
        assert_eq!(out[1].method_used, PredictionTier::CostScaling);
        assert!(out[1].degraded);
        assert!(is_sane(out[1].value));
        // Corrupted inputs must not trip the entry tier's breaker.
        assert!(!qpp.breaker_tripped(PredictionTier::Hybrid));
    }

    #[test]
    fn tier_rank_orders_the_full_chain() {
        for (i, t) in ALL_TIERS.iter().enumerate() {
            assert_eq!(tier_rank(*t), i);
        }
        assert_eq!(Method::Hybrid(PlanOrdering::ErrorBased).tier(), PredictionTier::Hybrid);
        assert_eq!(Method::OperatorLevel.tier(), PredictionTier::OperatorLevel);
        assert_eq!(Method::PlanLevel.tier(), PredictionTier::PlanLevel);
    }
}
