//! The user-facing QPP facade: train once, predict with any method,
//! materialize models for later sessions.
//!
//! Ties the four prediction methods of the paper behind one API and
//! implements model *materialization* (Section 1's pre-building): trained
//! model sets serialize to JSON and reload without retraining.

use crate::dataset::ExecutedQuery;
use crate::features::FeatureSource;
use crate::hybrid::{train_hybrid, HybridConfig, HybridModel, IterationRecord, PlanOrdering};
use crate::online::{OnlineConfig, OnlinePredictor};
use crate::op_model::{OpLevelModel, OpModelConfig};
use crate::plan_model::{PlanLevelModel, PlanModelConfig};
use ml::MlError;

/// Which prediction method to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Single plan-level model (Section 3.1).
    PlanLevel,
    /// Composed operator-level models (Section 3.2).
    OperatorLevel,
    /// Hybrid with the given plan-ordering strategy (Section 3.4).
    Hybrid(PlanOrdering),
}

/// Training configuration for the full predictor.
#[derive(Debug, Clone, Default)]
pub struct QppConfig {
    /// Plan-level settings.
    pub plan: PlanModelConfig,
    /// Operator-level settings.
    pub op: OpModelConfig,
    /// Hybrid settings.
    pub hybrid: HybridConfig,
}

/// A trained predictor holding all three offline model sets.
pub struct QppPredictor {
    /// Plan-level model.
    pub plan_level: PlanLevelModel,
    /// Operator-level models.
    pub op_level: OpLevelModel,
    /// Hybrid model (operator models + accepted sub-plan models).
    pub hybrid: HybridModel,
    /// Hybrid training trajectory.
    pub hybrid_trajectory: Vec<IterationRecord>,
    config: QppConfig,
}

impl QppPredictor {
    /// Trains all offline models on the given training queries.
    pub fn train(queries: &[&ExecutedQuery], config: QppConfig) -> Result<Self, MlError> {
        let plan_level = PlanLevelModel::train(queries, &config.plan)?;
        let op_level = OpLevelModel::train(queries, &config.op)?;
        let (hybrid, hybrid_trajectory) =
            train_hybrid(queries, op_level.clone(), &config.hybrid)?;
        Ok(QppPredictor {
            plan_level,
            op_level,
            hybrid,
            hybrid_trajectory,
            config,
        })
    }

    /// Predicts a query's latency with the chosen method.
    pub fn predict(&self, query: &ExecutedQuery, method: Method) -> f64 {
        match method {
            Method::PlanLevel => self.plan_level.predict(query),
            Method::OperatorLevel => self.op_level.predict(query),
            Method::Hybrid(_) => self.hybrid.predict(query),
        }
    }

    /// Creates an online predictor over this predictor's models
    /// (Section 4; the hybrid's pre-built sub-plan models seed it).
    pub fn online<'a>(&self, train: Vec<&'a ExecutedQuery>) -> OnlinePredictor<'a> {
        OnlinePredictor::new(
            train,
            self.hybrid.clone(),
            OnlineConfig {
                min_frequency: self.config.hybrid.min_frequency,
                min_size: self.config.hybrid.min_size,
                hybrid: self.config.hybrid.clone(),
            },
        )
    }

    /// Feature source in use.
    pub fn source(&self) -> FeatureSource {
        self.op_level.source()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryDataset;
    use engine::{Catalog, Simulator};
    use ml::mean_relative_error;
    use tpch::Workload;

    /// Simulator with the jitter tuned down: these tests assert model
    /// accuracy, which the default absolute jitter would swamp at the tiny
    /// scale factors used here.
    fn quiet_sim() -> Simulator {
        Simulator::with_config(engine::SimConfig {
            additive_noise_secs: 0.05,
            ..engine::SimConfig::default()
        })
    }

    fn dataset() -> QueryDataset {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6, 14], 10, 0.1, 7);
        QueryDataset::execute(&catalog, &workload, &quiet_sim(), 11, f64::INFINITY)
    }

    #[test]
    fn facade_trains_and_predicts_with_all_methods() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();
        let actual: Vec<f64> = refs.iter().map(|q| q.latency()).collect();
        for method in [
            Method::PlanLevel,
            Method::OperatorLevel,
            Method::Hybrid(PlanOrdering::ErrorBased),
        ] {
            let preds: Vec<f64> = refs.iter().map(|q| qpp.predict(q, method)).collect();
            let err = mean_relative_error(&actual, &preds);
            assert!(err.is_finite(), "{method:?}: {err}");
            assert!(err < 1.0, "{method:?} training error = {err}");
        }
    }

    #[test]
    fn online_predictor_is_constructible_from_facade() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();
        let mut online = qpp.online(refs.clone());
        let p = online.predict_query(refs[0]);
        assert!(p.is_finite() && p >= 0.0);
    }
}
