//! Plan-level performance prediction (Section 3.1).
//!
//! A single model per workload maps the Table-1 plan feature vector to
//! query latency. Following the paper, features are ranked by correlation
//! and selected with best-first forward selection (a model on the full
//! feature set is frequently *worse*), and the model family is SVR.

use crate::dataset::ExecutedQuery;
use crate::features::{plan_feature_names, plan_features, FeatureSource, NodeView};
use engine::plan::PlanNode;
use ml::cv::{stratified_kfold, Fold};
use ml::{
    forward_select, CompiledModel, Dataset, ForwardSelection, Learner, LearnerKind, MlError, Model,
    PredictScratch, TrainedModel,
};
use std::cell::RefCell;
use std::sync::OnceLock;

/// Which performance metric a plan-level model predicts.
///
/// The techniques are metric-agnostic (Section 1: "can be used in the
/// prediction of other metrics"); latency is the paper's focus, disk I/O
/// the natural second target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TargetMetric {
    /// Query execution latency in seconds.
    Latency,
    /// Physical disk traffic in pages.
    DiskIo,
}

/// Configuration of plan-level model training.
#[derive(Debug, Clone)]
pub struct PlanModelConfig {
    /// Model family (the paper uses SVR for plan-level models).
    pub learner: LearnerKind,
    /// Forward-selection settings.
    pub selection: ForwardSelection,
    /// Cross-validation folds used during feature selection.
    pub folds: usize,
    /// Seed for fold assignment.
    pub seed: u64,
    /// Feature source (estimates in deployment).
    pub source: FeatureSource,
    /// Fit on `ln(1 + latency)` (recommended: latencies span orders of
    /// magnitude and the metric is relative error).
    pub log_target: bool,
    /// The performance metric to predict.
    pub metric: TargetMetric,
}

impl Default for PlanModelConfig {
    fn default() -> Self {
        PlanModelConfig {
            learner: LearnerKind::Svr(ml::SvrParams::default()),
            selection: ForwardSelection::default(),
            folds: 5,
            seed: 42,
            source: FeatureSource::Estimated,
            log_target: true,
            metric: TargetMetric::Latency,
        }
    }
}

/// A feature-selected trained model over a fixed feature vector layout.
///
/// With `log_target`, the model is fit on `ln(1 + y)` and predictions are
/// transformed back — appropriate when the target spans orders of
/// magnitude and the accuracy metric is *relative* error (query latencies
/// at 10 GB span 20 s to an hour).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FeatureModel {
    /// Selected column indices into the full feature vector.
    pub selected: Vec<usize>,
    /// The trained model over the selected columns.
    pub model: TrainedModel,
    /// Cross-validated mean relative error at selection time (in the
    /// training target space).
    pub cv_error: f64,
    /// Whether the target was log-transformed.
    pub log_target: bool,
    /// Observed target range at training time; predictions are clamped to
    /// a widened version of it so kernel-model extrapolation far outside
    /// the training region cannot explode (especially after the inverse
    /// log transform).
    pub target_range: (f64, f64),
    /// Observed (min, max) of each *selected* feature at training time —
    /// the model's applicability region.
    pub feature_ranges: Vec<(f64, f64)>,
    /// Lazily compiled form of `model` (flat support-vector layout, fused
    /// scaling); built on first prediction, bit-identical to the reference
    /// path, and deliberately not serialized — a deserialized model simply
    /// recompiles on first use.
    #[serde(skip)]
    compiled: OnceLock<CompiledModel>,
}

impl FeatureModel {
    /// Trains with forward selection over pre-assembled features.
    pub fn train(
        x: &Dataset,
        y: &[f64],
        folds: &[Fold],
        learner: &LearnerKind,
        selection: &ForwardSelection,
        log_target: bool,
    ) -> Result<FeatureModel, MlError> {
        let yt = transform(y, log_target);
        let sel = forward_select(selection, learner, x, &yt, folds)?;
        let model = learner.fit(&x.select_columns(&sel.selected), &yt)?;
        let feature_ranges = sel.selected.iter().map(|&j| range(&x.column(j))).collect();
        Ok(FeatureModel {
            selected: sel.selected,
            model,
            cv_error: sel.cv_error,
            log_target,
            target_range: range(y),
            feature_ranges,
            compiled: OnceLock::new(),
        })
    }

    /// Trains on the full feature set (no selection) — the ablation arm.
    pub fn train_full(
        x: &Dataset,
        y: &[f64],
        learner: &LearnerKind,
        log_target: bool,
    ) -> Result<FeatureModel, MlError> {
        let yt = transform(y, log_target);
        let selected: Vec<usize> = (0..x.n_cols()).collect();
        let model = learner.fit(x, &yt)?;
        let feature_ranges = selected.iter().map(|&j| range(&x.column(j))).collect();
        Ok(FeatureModel {
            selected,
            model,
            cv_error: f64::NAN,
            log_target,
            target_range: range(y),
            feature_ranges,
            compiled: OnceLock::new(),
        })
    }

    /// The compiled form of the underlying model, built on first use.
    ///
    /// Compiled predictions are bit-identical to [`TrainedModel::predict`]
    /// (see `ml::compiled`), so every caller below routes through this.
    pub fn compiled(&self) -> &CompiledModel {
        self.compiled.get_or_init(|| self.model.compile())
    }

    /// Predicts from a full feature vector (projects to selected columns).
    pub fn predict(&self, full_features: &[f64]) -> f64 {
        PredictBuffers::with_thread_local(|buf| self.predict_into(full_features, buf))
    }

    /// Allocation-free prediction using caller-owned scratch buffers.
    ///
    /// Bit-identical to [`FeatureModel::predict`] (which delegates here
    /// with thread-local buffers).
    pub fn predict_into(&self, full_features: &[f64], buf: &mut PredictBuffers) -> f64 {
        buf.row.clear();
        buf.row.extend(self.selected.iter().map(|&i| full_features[i]));
        let raw = self.compiled().predict_into(&buf.row, &mut buf.scratch);
        self.finish(raw)
    }

    /// Predicts a batch of full feature vectors in input order,
    /// bit-identical to a serial [`FeatureModel::predict`] loop.
    pub fn predict_batch<R: AsRef<[f64]> + Sync>(&self, rows: &[R]) -> Vec<f64> {
        // Compile once up front so workers never race on the OnceLock.
        self.compiled();
        if rows.len() >= 64 && ml::par::threads() > 1 {
            ml::par::par_map(rows, |_, r| {
                PredictBuffers::with_thread_local(|buf| self.predict_into(r.as_ref(), buf))
            })
        } else {
            let mut buf = PredictBuffers::default();
            rows.iter()
                .map(|r| self.predict_into(r.as_ref(), &mut buf))
                .collect()
        }
    }

    /// Undoes the training-target transform and applies the extrapolation
    /// clamp — the shared tail of every prediction path.
    fn finish(&self, raw: f64) -> f64 {
        let value = if self.log_target {
            raw.exp() - 1.0
        } else {
            raw
        };
        let (lo, hi) = self.target_range;
        value.clamp(lo * 0.3, (hi * 3.0).max(lo + 1.0))
    }

    /// Whether a full feature vector lies inside (a widened version of)
    /// the training region — the model's applicability check, used by the
    /// online method before trusting a freshly built model on an
    /// unforeseen plan.
    pub fn in_range(&self, full_features: &[f64], margin: f64) -> bool {
        self.selected
            .iter()
            .zip(&self.feature_ranges)
            .all(|(&j, &(lo, hi))| {
                let v = full_features[j];
                let span = (hi - lo).max(lo.abs().max(hi.abs()) * 0.1).max(1e-9);
                v >= lo - margin * span && v <= hi + margin * span
            })
    }

    /// Structural validation against the feature vector arity this model
    /// is served with — the snapshot-load gate. Returns the failed check
    /// as a message; callers wrap it into
    /// [`crate::error::QppError::InvalidSnapshot`].
    pub fn validate(&self, full_arity: usize) -> Result<(), String> {
        if !self.model.weights_finite() {
            return Err("model contains non-finite weights".to_string());
        }
        if self.model.n_features() != self.selected.len() {
            return Err(format!(
                "feature arity mismatch: model expects {} features, {} selected",
                self.model.n_features(),
                self.selected.len()
            ));
        }
        if let Some(&j) = self.selected.iter().find(|&&j| j >= full_arity) {
            return Err(format!(
                "selected feature index {j} out of range (arity {full_arity})"
            ));
        }
        if self.feature_ranges.len() != self.selected.len() {
            return Err(format!(
                "feature-range count {} does not match {} selected features",
                self.feature_ranges.len(),
                self.selected.len()
            ));
        }
        if self
            .feature_ranges
            .iter()
            .any(|(lo, hi)| !lo.is_finite() || !hi.is_finite())
        {
            return Err("non-finite feature range".to_string());
        }
        let (lo, hi) = self.target_range;
        if !lo.is_finite() || !hi.is_finite() || lo > hi {
            return Err(format!("invalid target range ({lo}, {hi})"));
        }
        Ok(())
    }

    /// Content fingerprint for cache-key signatures: hashes the selected
    /// columns, training-time ranges, and CV error, so models trained on
    /// different data (or with different selections) fingerprint
    /// differently even when they cover the same plan structures.
    pub fn fingerprint(&self) -> u64 {
        let mut h: Vec<u64> =
            Vec::with_capacity(5 + self.selected.len() + 2 * self.feature_ranges.len());
        h.push(self.selected.len() as u64);
        h.extend(self.selected.iter().map(|&i| i as u64));
        h.push(self.cv_error.to_bits());
        h.push(u64::from(self.log_target));
        h.push(self.target_range.0.to_bits());
        h.push(self.target_range.1.to_bits());
        for (lo, hi) in &self.feature_ranges {
            h.push(lo.to_bits());
            h.push(hi.to_bits());
        }
        crate::pred_cache::hash_u64s(&h)
    }
}

/// Reusable scratch for [`FeatureModel::predict_into`]: the projected
/// feature row plus the compiled model's scaling scratch. One instance per
/// thread makes steady-state prediction allocation-free.
#[derive(Debug, Default)]
pub struct PredictBuffers {
    /// Selected-feature row (projection target).
    row: Vec<f64>,
    /// Scaled-row scratch for the compiled model.
    scratch: PredictScratch,
}

impl PredictBuffers {
    /// Runs `f` with this thread's reusable buffers (fresh buffers if the
    /// thread-local is unavailable, e.g. re-entrant use).
    pub fn with_thread_local<T>(f: impl FnOnce(&mut PredictBuffers) -> T) -> T {
        thread_local! {
            static BUFFERS: RefCell<PredictBuffers> = RefCell::new(PredictBuffers::default());
        }
        BUFFERS.with(|cell| match cell.try_borrow_mut() {
            Ok(mut buf) => f(&mut buf),
            Err(_) => f(&mut PredictBuffers::default()),
        })
    }
}

fn range(y: &[f64]) -> (f64, f64) {
    let lo = y.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = y.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if lo.is_finite() && hi.is_finite() {
        (lo, hi)
    } else {
        (0.0, f64::MAX / 8.0)
    }
}

fn transform(y: &[f64], log_target: bool) -> Vec<f64> {
    if log_target {
        y.iter().map(|v| (v.max(0.0) + 1.0).ln()).collect()
    } else {
        y.to_vec()
    }
}

/// The plan-level QPP model.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PlanLevelModel {
    inner: FeatureModel,
    source: FeatureSource,
    metric: TargetMetric,
}

impl PlanLevelModel {
    /// Trains on executed queries; folds are stratified by template
    /// (Section 5.1's stratified sampling).
    pub fn train(queries: &[&ExecutedQuery], config: &PlanModelConfig) -> Result<Self, MlError> {
        let (x, y) = assemble_metric(queries, config.source, config.metric);
        let strata: Vec<usize> = queries.iter().map(|q| q.template as usize).collect();
        let k = config.folds.min(queries.len().max(2)).max(2);
        let folds = stratified_kfold(&strata, k, config.seed);
        let inner = FeatureModel::train(&x, &y, &folds, &config.learner, &config.selection, config.log_target)?;
        Ok(PlanLevelModel {
            inner,
            source: config.source,
            metric: config.metric,
        })
    }

    /// Trains on all features without selection (ablation).
    pub fn train_without_selection(
        queries: &[&ExecutedQuery],
        config: &PlanModelConfig,
    ) -> Result<Self, MlError> {
        let (x, y) = assemble_metric(queries, config.source, config.metric);
        let inner = FeatureModel::train_full(&x, &y, &config.learner, config.log_target)?;
        Ok(PlanLevelModel {
            inner,
            source: config.source,
            metric: config.metric,
        })
    }

    /// The metric this model predicts.
    pub fn metric(&self) -> TargetMetric {
        self.metric
    }

    /// The feature source this model was trained on.
    pub fn source(&self) -> FeatureSource {
        self.source
    }

    /// Predicts a query's target metric from its static features.
    pub fn predict(&self, query: &ExecutedQuery) -> f64 {
        let views = query.views(self.source);
        self.predict_plan(&query.plan, &views)
    }

    /// Predicts from a plan and aligned views (sub-plan capable).
    pub fn predict_plan(&self, plan: &PlanNode, views: &[NodeView]) -> f64 {
        let f = plan_features(plan, views);
        self.inner.predict(&f).max(0.0)
    }

    /// Predicts a batch of queries in input order, bit-identical to a
    /// serial [`PlanLevelModel::predict`] loop. Feature extraction and
    /// model evaluation both fan out over `ml::par` for large batches.
    pub fn predict_batch(&self, queries: &[&ExecutedQuery]) -> Vec<f64> {
        let rows: Vec<Vec<f64>> = if queries.len() >= 64 && ml::par::threads() > 1 {
            ml::par::par_map(queries, |_, q| {
                let views = q.views(self.source);
                plan_features(&q.plan, &views)
            })
        } else {
            queries
                .iter()
                .map(|q| {
                    let views = q.views(self.source);
                    plan_features(&q.plan, &views)
                })
                .collect()
        };
        self.inner
            .predict_batch(&rows)
            .into_iter()
            .map(|v| v.max(0.0))
            .collect()
    }

    /// Names of the selected features (diagnostics).
    pub fn selected_feature_names(&self) -> Vec<String> {
        let names = plan_feature_names();
        self.inner
            .selected
            .iter()
            .map(|&i| names[i].clone())
            .collect()
    }

    /// Cross-validated error observed during training.
    pub fn training_cv_error(&self) -> f64 {
        self.inner.cv_error
    }

    /// Snapshot-load validation: checks the inner model against the
    /// plan-level feature arity (see [`FeatureModel::validate`]).
    pub fn validate(&self) -> Result<(), String> {
        self.inner
            .validate(crate::features::plan_feature_count())
            .map_err(|e| format!("plan-level model: {e}"))
    }
}

/// Assembles the (features, latency) design matrix for a set of queries.
pub fn assemble(queries: &[&ExecutedQuery], source: FeatureSource) -> (Dataset, Vec<f64>) {
    assemble_metric(queries, source, TargetMetric::Latency)
}

/// Assembles the design matrix with an explicit target metric.
///
/// One flat pre-order sweep per plan: the tree is flattened through
/// [`engine::PlanArena::preorder_into`] into a node buffer reused across
/// queries, node views fill a second reused buffer, and each feature row
/// is written in place into the matrix storage
/// ([`Dataset::push_row_with`]) — zero allocations per query once the
/// buffers have grown. Values are bit-identical to the boxed-tree
/// `plan_features` path.
pub fn assemble_metric(
    queries: &[&ExecutedQuery],
    source: FeatureSource,
    metric: TargetMetric,
) -> (Dataset, Vec<f64>) {
    let mut x = Dataset::new(crate::features::plan_feature_count());
    let mut y = Vec::with_capacity(queries.len());
    let mut nodes = Vec::new();
    let mut views: Vec<NodeView> = Vec::new();
    for q in queries {
        engine::PlanArena::preorder_into(&q.plan, &mut nodes);
        let truth_costs = match source {
            FeatureSource::Estimated => None,
            FeatureSource::Actual => Some(&q.truth_costs),
        };
        crate::features::node_views_into(&nodes, source, truth_costs, &mut views);
        x.push_row_with(|row| crate::features::plan_features_into(&nodes, &views, row));
        y.push(match metric {
            TargetMetric::Latency => q.latency(),
            TargetMetric::DiskIo => q.total_io_pages(),
        });
    }
    (x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryDataset;
    use engine::{Catalog, Simulator};
    use ml::mean_relative_error;
    use tpch::Workload;

    /// Simulator with the jitter tuned down: these tests assert model
    /// accuracy, which the default absolute jitter would swamp at the tiny
    /// scale factors used here.
    fn quiet_sim() -> Simulator {
        Simulator::with_config(engine::SimConfig {
            additive_noise_secs: 0.05,
            ..engine::SimConfig::default()
        })
    }

    fn dataset() -> QueryDataset {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6, 14], 12, 0.1, 7);
        QueryDataset::execute(&catalog, &workload, &quiet_sim(), 11, f64::INFINITY)
    }

    #[test]
    fn plan_model_fits_static_workload_accurately() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let model = PlanLevelModel::train(&refs, &PlanModelConfig::default()).unwrap();
        let actual: Vec<f64> = refs.iter().map(|q| q.latency()).collect();
        let preds: Vec<f64> = refs.iter().map(|q| model.predict(q)).collect();
        let err = mean_relative_error(&actual, &preds);
        assert!(err < 0.15, "training error = {err}");
        assert!(!model.selected_feature_names().is_empty());
    }

    #[test]
    fn predictions_are_non_negative() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let model = PlanLevelModel::train(&refs, &PlanModelConfig::default()).unwrap();
        for q in &refs {
            assert!(model.predict(q) >= 0.0);
        }
    }

    #[test]
    fn no_selection_variant_trains() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let model =
            PlanLevelModel::train_without_selection(&refs, &PlanModelConfig::default()).unwrap();
        assert_eq!(
            model.selected_feature_names().len(),
            crate::features::plan_feature_count()
        );
    }

    #[test]
    fn validate_accepts_trained_and_rejects_poisoned_models() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let model = PlanLevelModel::train(&refs, &PlanModelConfig::default()).unwrap();
        model.validate().expect("freshly trained model validates");

        // Non-finite weights (same module, so the private `inner` is
        // reachable for poisoning).
        let mut poisoned = model.clone();
        poisoned.inner.model = TrainedModel::Linear(ml::LinearModel {
            intercept: f64::NAN,
            weights: vec![0.0; poisoned.inner.selected.len()],
        });
        let err = poisoned.validate().unwrap_err();
        assert!(err.contains("non-finite"), "{err}");

        // Model arity disagreeing with the selected-column count.
        let mut poisoned = model.clone();
        poisoned.inner.model = TrainedModel::Linear(ml::LinearModel {
            intercept: 0.0,
            weights: vec![0.0; poisoned.inner.selected.len() + 2],
        });
        let err = poisoned.validate().unwrap_err();
        assert!(err.contains("arity mismatch"), "{err}");

        // Selected index outside the plan feature vector.
        let mut poisoned = model.clone();
        poisoned.inner.selected[0] = 9999;
        let err = poisoned.validate().unwrap_err();
        assert!(err.contains("out of range"), "{err}");

        // Non-finite training ranges.
        let mut poisoned = model.clone();
        poisoned.inner.target_range = (0.0, f64::INFINITY);
        let err = poisoned.validate().unwrap_err();
        assert!(err.contains("target range"), "{err}");
    }

    #[test]
    fn fingerprints_discriminate_model_content() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let model = PlanLevelModel::train(&refs, &PlanModelConfig::default()).unwrap();
        let same = PlanLevelModel::train(&refs, &PlanModelConfig::default()).unwrap();
        // Deterministic training: identical inputs, identical fingerprint.
        assert_eq!(model.inner.fingerprint(), same.inner.fingerprint());
        // Retraining on different data must change the fingerprint.
        let fewer: Vec<&ExecutedQuery> = refs[..refs.len() / 2].to_vec();
        let other = PlanLevelModel::train(&fewer, &PlanModelConfig::default()).unwrap();
        assert_ne!(model.inner.fingerprint(), other.inner.fingerprint());
    }
}
