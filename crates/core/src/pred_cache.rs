//! A bounded memo cache for sub-plan predictions.
//!
//! The hybrid and online methods re-walk plan trees at predict time, and
//! production workloads (plan caches, optimizer search, repeated template
//! instantiations) keep presenting the *same sub-plans with the same
//! optimizer estimates* over and over. Re-running the SVR kernel expansion
//! for an identical fragment is pure waste: the prediction is a
//! deterministic function of (model set, sub-plan structure, per-node
//! views).
//!
//! [`PredictionCache`] memoizes exactly that function. Keys combine
//!
//! - a **model signature** (FNV over the hybrid model's sub-plan structure
//!   keys), so caches are never shared across different model variants —
//!   the online method clones and extends the base model per query;
//! - the fragment's **structure hash** (the same memoized hash
//!   [`crate::subplan::SubplanIndex`] uses, exposed through
//!   [`crate::subplan::subtree_hash_sizes`]);
//! - a **views content hash** over the bit patterns of every
//!   [`NodeView`] in the fragment, so two structurally identical fragments
//!   with different cardinality estimates never collide.
//!
//! Determinism: a hit returns bit-identical values to the recomputation it
//! replaces, so batch predictions remain bit-identical to a cold serial
//! loop regardless of hit pattern or thread interleaving. Eviction follows
//! the same policy as `ml::gram::GramCache`: when the entry cap is
//! reached, the map is cleared wholesale — trivially correct (pure
//! memoization has nothing to invalidate) and cheap relative to model
//! evaluation.

use crate::features::NodeView;
use std::collections::HashMap;
use std::sync::Mutex;

/// Default entry cap; at ~40 bytes per entry this bounds the cache to a
/// few hundred KiB.
pub const DEFAULT_PRED_CACHE_CAPACITY: usize = 8192;

/// Cache key for one sub-plan prediction; see the module docs for why all
/// three components are required.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubplanPredKey {
    /// Signature of the model set producing the prediction.
    pub model: u64,
    /// Structure hash of the sub-plan (agrees with
    /// [`crate::subplan::structure_key`]).
    pub structure: u64,
    /// Content hash over the fragment's [`NodeView`]s.
    pub views: u64,
}

/// Hit/miss/eviction counters for diagnostics and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to computation.
    pub misses: u64,
    /// Entries dropped by wholesale clears.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Inner {
    map: HashMap<SubplanPredKey, (f64, f64)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A bounded, thread-safe memo cache of `(start, run)` sub-plan
/// predictions.
pub struct PredictionCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl Default for PredictionCache {
    fn default() -> Self {
        PredictionCache::new(DEFAULT_PRED_CACHE_CAPACITY)
    }
}

impl PredictionCache {
    /// Creates a cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        PredictionCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Looks up a memoized `(start, run)` pair.
    pub fn get(&self, key: &SubplanPredKey) -> Option<(f64, f64)> {
        let mut inner = self.inner.lock().unwrap();
        match inner.map.get(key).copied() {
            Some(v) => {
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Memoizes a `(start, run)` pair, clearing the cache wholesale first
    /// if it is at capacity (and the key is not already resident).
    pub fn insert(&self, key: SubplanPredKey, value: (f64, f64)) {
        let mut inner = self.inner.lock().unwrap();
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            inner.evictions += inner.map.len() as u64;
            inner.map.clear();
        }
        inner.map.insert(key, value);
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        let n = inner.map.len() as u64;
        inner.evictions += n;
        inner.map.clear();
    }

    /// Current counters.
    pub fn stats(&self) -> PredictionCacheStats {
        let inner = self.inner.lock().unwrap();
        PredictionCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x1000_0000_01b3;

/// FNV-1a over the bit patterns of a fragment's views. Bit-level hashing
/// means two fragments cache-collide only when their estimates are
/// *exactly* equal — in which case the memoized prediction is exactly the
/// one recomputation would produce.
pub fn views_hash(views: &[NodeView]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut mix = |v: f64| {
        h = (h ^ v.to_bits()).wrapping_mul(FNV_PRIME);
    };
    for v in views {
        mix(v.rows);
        mix(v.width);
        mix(v.pages);
        mix(v.selectivity);
        mix(v.startup_cost);
        mix(v.total_cost);
    }
    h
}

/// FNV-1a over a pre-sorted list of structure-key hashes; used to build
/// model signatures.
pub(crate) fn hash_u64s(values: &[u64]) -> u64 {
    let mut h = FNV_OFFSET;
    for &v in values {
        h = (h ^ v).wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> SubplanPredKey {
        SubplanPredKey {
            model: 1,
            structure: n,
            views: n.wrapping_mul(31),
        }
    }

    #[test]
    fn get_insert_roundtrip_and_stats() {
        let cache = PredictionCache::new(16);
        assert_eq!(cache.get(&key(1)), None);
        cache.insert(key(1), (1.5, 2.5));
        assert_eq!(cache.get(&key(1)), Some((1.5, 2.5)));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn capacity_triggers_wholesale_clear() {
        let cache = PredictionCache::new(4);
        for i in 0..4 {
            cache.insert(key(i), (i as f64, i as f64));
        }
        assert_eq!(cache.stats().entries, 4);
        cache.insert(key(99), (9.0, 9.0));
        let s = cache.stats();
        assert_eq!(s.entries, 1, "clear then insert");
        assert_eq!(s.evictions, 4);
        // Re-inserting a resident key at capacity does not clear.
        let cache = PredictionCache::new(1);
        cache.insert(key(7), (1.0, 1.0));
        cache.insert(key(7), (1.0, 1.0));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn views_hash_separates_different_estimates() {
        let mut a = NodeView {
            rows: 10.0,
            width: 8.0,
            pages: 3.0,
            selectivity: 0.5,
            startup_cost: 0.0,
            total_cost: 100.0,
        };
        let b = a;
        assert_eq!(views_hash(&[a]), views_hash(&[b]));
        a.rows = 11.0;
        assert_ne!(views_hash(&[a]), views_hash(&[b]));
        // NaN estimates still hash consistently (bit pattern identity).
        a.rows = f64::NAN;
        assert_eq!(views_hash(&[a]), views_hash(&[a]));
    }
}
