//! Model materialization (Section 1's "pre-build and materialize").
//!
//! The paper pre-builds models offline so they are immediately available
//! for future predictions. This module serializes a trained model set to
//! JSON and reloads it without retraining — the training logs are not
//! needed at prediction time, only the materialized models.

use crate::hybrid::{HybridModel, SubplanModel};
use crate::op_model::OpLevelModel;
use crate::plan_model::PlanLevelModel;
use crate::subplan::StructureKey;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of all trained models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaterializedModels {
    /// Plan-level model.
    pub plan_level: PlanLevelModel,
    /// Operator-level models.
    pub op_level: OpLevelModel,
    /// Hybrid sub-plan models as (structure key, model) pairs (JSON maps
    /// require string keys; a pair list avoids lossy conversions).
    pub hybrid_plan_models: Vec<(u64, SubplanModel)>,
}

impl MaterializedModels {
    /// Snapshots trained models.
    pub fn new(
        plan_level: &PlanLevelModel,
        op_level: &OpLevelModel,
        hybrid: &HybridModel,
    ) -> MaterializedModels {
        let mut pairs: Vec<(u64, SubplanModel)> = hybrid
            .plan_models
            .iter()
            .map(|(k, v)| (k.0, v.clone()))
            .collect();
        pairs.sort_by_key(|(k, _)| *k);
        MaterializedModels {
            plan_level: plan_level.clone(),
            op_level: op_level.clone(),
            hybrid_plan_models: pairs,
        }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("models serialize")
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> Result<MaterializedModels, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Rebuilds the hybrid model.
    pub fn hybrid(&self) -> HybridModel {
        let mut h = HybridModel::operator_only(self.op_level.clone());
        for (k, m) in &self.hybrid_plan_models {
            h.plan_models.insert(StructureKey(*k), m.clone());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryDataset;
    use crate::predictor::{Method, QppConfig, QppPredictor};
    use crate::hybrid::PlanOrdering;
    use crate::ExecutedQuery;
    use engine::{Catalog, Simulator};
    use tpch::Workload;

    #[test]
    fn models_roundtrip_through_json() {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6], 8, 0.1, 7);
        let sim = Simulator::with_config(engine::SimConfig {
            additive_noise_secs: 0.05,
            ..engine::SimConfig::default()
        });
        let ds = QueryDataset::execute(&catalog, &workload, &sim, 11, f64::INFINITY);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();

        let mat = MaterializedModels::new(&qpp.plan_level, &qpp.op_level, &qpp.hybrid);
        let json = mat.to_json();
        assert!(json.len() > 100);
        let back = MaterializedModels::from_json(&json).unwrap();

        // Reloaded models agree with the originals on every query.
        let hybrid = back.hybrid();
        for q in &refs {
            let a = qpp.predict(q, Method::PlanLevel);
            let b = back.plan_level.predict(q);
            assert!((a - b).abs() < 1e-9, "plan-level {a} vs {b}");
            let c = qpp.predict(q, Method::Hybrid(PlanOrdering::ErrorBased));
            let d = hybrid.predict(q);
            assert!((c - d).abs() < 1e-9, "hybrid {c} vs {d}");
            let e = qpp.predict(q, Method::OperatorLevel);
            let f = back.op_level.predict(q);
            assert!((e - f).abs() < 1e-9, "op-level {e} vs {f}");
        }
    }
}
