//! Model materialization (Section 1's "pre-build and materialize").
//!
//! The paper pre-builds models offline so they are immediately available
//! for future predictions. This module serializes a trained model set to
//! JSON and reloads it without retraining — the training logs are not
//! needed at prediction time, only the materialized models.
//!
//! Loading validates before deserializing into the serving path: a
//! snapshot with non-finite weights or mismatched feature arity is
//! rejected with [`QppError::InvalidSnapshot`] instead of silently
//! producing NaN predictions later. The versioned, checksummed on-disk
//! envelope around this JSON lives in [`crate::registry`].

use crate::error::QppError;
use crate::hybrid::{HybridModel, SubplanModel};
use crate::op_model::OpLevelModel;
use crate::plan_model::PlanLevelModel;
use crate::predictor::QppPredictor;
use crate::subplan::StructureKey;
use serde::{Deserialize, Serialize};

fn nan_default() -> f64 {
    f64::NAN
}

/// A serializable snapshot of all trained models.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaterializedModels {
    /// Plan-level model.
    pub plan_level: PlanLevelModel,
    /// Operator-level models.
    pub op_level: OpLevelModel,
    /// Hybrid sub-plan models as (structure key, model) pairs (JSON maps
    /// require string keys; a pair list avoids lossy conversions).
    pub hybrid_plan_models: Vec<(u64, SubplanModel)>,
    /// Median observed seconds per optimizer cost unit at training time —
    /// the cost-scaling fallback's calibration. NaN when unknown (older
    /// snapshots, or no training query had a usable cost estimate).
    #[serde(default = "nan_default")]
    pub secs_per_cost: f64,
    /// Median training latency — the last-resort prior. 0.0 when unknown
    /// (older snapshots).
    #[serde(default)]
    pub prior_latency: f64,
}

impl MaterializedModels {
    /// Snapshots trained models. The fallback calibration
    /// ([`MaterializedModels::secs_per_cost`] /
    /// [`MaterializedModels::prior_latency`]) is left unknown; prefer
    /// [`MaterializedModels::from_predictor`] when a full predictor is at
    /// hand.
    pub fn new(
        plan_level: &PlanLevelModel,
        op_level: &OpLevelModel,
        hybrid: &HybridModel,
    ) -> MaterializedModels {
        let mut pairs: Vec<(u64, SubplanModel)> = hybrid
            .plan_models
            .iter()
            .map(|(k, v)| (k.0, v.clone()))
            .collect();
        pairs.sort_by_key(|(k, _)| *k);
        MaterializedModels {
            plan_level: plan_level.clone(),
            op_level: op_level.clone(),
            hybrid_plan_models: pairs,
            secs_per_cost: f64::NAN,
            prior_latency: 0.0,
        }
    }

    /// Snapshots a trained predictor, including the analytical-fallback
    /// calibration that [`MaterializedModels::new`] cannot capture.
    pub fn from_predictor(qpp: &QppPredictor) -> MaterializedModels {
        let mut mat = MaterializedModels::new(&qpp.plan_level, &qpp.op_level, &qpp.hybrid);
        mat.secs_per_cost = qpp.secs_per_cost();
        mat.prior_latency = qpp.prior_latency();
        mat
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("models serialize")
    }

    /// Deserializes from JSON and validates the result (see
    /// [`MaterializedModels::validate`]); malformed JSON and model sets
    /// that would serve garbage are both rejected with
    /// [`QppError::InvalidSnapshot`].
    pub fn from_json(json: &str) -> Result<MaterializedModels, QppError> {
        let mat: MaterializedModels = serde_json::from_str(json)
            .map_err(|e| QppError::InvalidSnapshot(format!("malformed JSON: {e}")))?;
        mat.validate()?;
        Ok(mat)
    }

    /// Validation gate run at load time: every model in the set must have
    /// finite weights and internally consistent feature arity.
    pub fn validate(&self) -> Result<(), QppError> {
        self.plan_level
            .validate()
            .map_err(QppError::InvalidSnapshot)?;
        self.op_level
            .validate()
            .map_err(QppError::InvalidSnapshot)?;
        for (k, m) in &self.hybrid_plan_models {
            m.start
                .validate(crate::features::plan_feature_count())
                .map_err(|e| {
                    QppError::InvalidSnapshot(format!("sub-plan {k:#x} start-time model: {e}"))
                })?;
            m.run
                .validate(crate::features::plan_feature_count())
                .map_err(|e| {
                    QppError::InvalidSnapshot(format!("sub-plan {k:#x} run-time model: {e}"))
                })?;
        }
        // The fallback calibration may legitimately be unknown (NaN /
        // zero), but an infinite or negative value is corruption.
        if self.secs_per_cost.is_infinite() || self.secs_per_cost < 0.0 {
            return Err(QppError::InvalidSnapshot(format!(
                "invalid secs-per-cost calibration {}",
                self.secs_per_cost
            )));
        }
        if !self.prior_latency.is_finite() || self.prior_latency < 0.0 {
            return Err(QppError::InvalidSnapshot(format!(
                "invalid prior latency {}",
                self.prior_latency
            )));
        }
        Ok(())
    }

    /// Rebuilds the hybrid model.
    pub fn hybrid(&self) -> HybridModel {
        let mut h = HybridModel::operator_only(self.op_level.clone());
        for (k, m) in &self.hybrid_plan_models {
            h.plan_models.insert(StructureKey(*k), m.clone());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryDataset;
    use crate::hybrid::PlanOrdering;
    use crate::predictor::{Method, QppConfig, QppPredictor};
    use crate::ExecutedQuery;
    use engine::{Catalog, Simulator};
    use tpch::Workload;

    fn trained() -> (QueryDataset, QppPredictor) {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6], 8, 0.1, 7);
        let sim = Simulator::with_config(engine::SimConfig {
            additive_noise_secs: 0.05,
            ..engine::SimConfig::default()
        });
        let ds = QueryDataset::execute(&catalog, &workload, &sim, 11, f64::INFINITY);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();
        (ds, qpp)
    }

    #[test]
    fn models_roundtrip_through_json() {
        let (ds, qpp) = trained();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();

        let mat = MaterializedModels::from_predictor(&qpp);
        let json = mat.to_json();
        assert!(json.len() > 100);
        let back = MaterializedModels::from_json(&json).unwrap();

        // Reloaded models agree with the originals on every query.
        let hybrid = back.hybrid();
        for q in &refs {
            let a = qpp.predict(q, Method::PlanLevel);
            let b = back.plan_level.predict(q);
            assert!((a - b).abs() < 1e-9, "plan-level {a} vs {b}");
            let c = qpp.predict(q, Method::Hybrid(PlanOrdering::ErrorBased));
            let d = hybrid.predict(q);
            assert!((c - d).abs() < 1e-9, "hybrid {c} vs {d}");
            let e = qpp.predict(q, Method::OperatorLevel);
            let f = back.op_level.predict(q);
            assert!((e - f).abs() < 1e-9, "op-level {e} vs {f}");
        }
        // The fallback calibration rides along.
        assert_eq!(back.secs_per_cost, qpp.secs_per_cost());
        assert_eq!(back.prior_latency, qpp.prior_latency());
    }

    #[test]
    fn rebuilt_predictor_matches_original() {
        let (ds, qpp) = trained();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let mat = MaterializedModels::from_predictor(&qpp);
        let back = QppPredictor::from_materialized(&mat, QppConfig::default());
        for q in &refs {
            for m in [
                Method::PlanLevel,
                Method::OperatorLevel,
                Method::Hybrid(PlanOrdering::ErrorBased),
            ] {
                assert!((qpp.predict(q, m) - back.predict(q, m)).abs() < 1e-9);
            }
        }
        assert_eq!(back.secs_per_cost(), qpp.secs_per_cost());
    }

    #[test]
    fn malformed_json_is_a_typed_error() {
        for bad in ["", "{", "nonsense", "{\"plan_level\": 3}"] {
            match MaterializedModels::from_json(bad) {
                Err(QppError::InvalidSnapshot(msg)) => {
                    assert!(msg.contains("malformed JSON"), "{msg}")
                }
                other => panic!("expected InvalidSnapshot, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_json_is_a_typed_error() {
        let (_, qpp) = trained();
        let json = MaterializedModels::from_predictor(&qpp).to_json();
        // A torn write: the file ends mid-object.
        let truncated = &json[..json.len() / 2];
        match MaterializedModels::from_json(truncated) {
            Err(QppError::InvalidSnapshot(msg)) => {
                assert!(msg.contains("malformed JSON"), "{msg}")
            }
            other => panic!("expected InvalidSnapshot, got {other:?}"),
        }
    }

    #[test]
    fn non_finite_weights_are_rejected_by_validate() {
        // JSON itself cannot carry NaN/infinity, so this gate guards the
        // *in-memory* path: the registry validates freshly trained
        // candidates before serializing them.
        let (_, qpp) = trained();
        let mut mat = MaterializedModels::from_predictor(&qpp);
        if let Some((_, m)) = mat.hybrid_plan_models.first_mut() {
            m.start.model = ml::TrainedModel::Linear(ml::LinearModel {
                intercept: f64::NAN,
                weights: vec![0.0; m.start.selected.len()],
            });
            match mat.validate() {
                Err(QppError::InvalidSnapshot(msg)) => {
                    assert!(msg.contains("non-finite"), "{msg}")
                }
                other => panic!("expected InvalidSnapshot, got {other:?}"),
            }
        } else {
            // No sub-plan models accepted on this seed: poison the
            // calibration instead so the gate is still exercised.
            mat.secs_per_cost = f64::INFINITY;
            assert!(matches!(mat.validate(), Err(QppError::InvalidSnapshot(_))));
        }
    }

    #[test]
    fn mismatched_arity_is_rejected_at_load() {
        let (_, qpp) = trained();
        let mat = MaterializedModels::from_predictor(&qpp);
        let mut value: serde_json::Value = serde_json::from_str(&mat.to_json()).unwrap();
        // Point a selected feature index far outside the plan feature
        // vector: deserialization alone would accept it and panic later at
        // prediction time.
        value["plan_level"]["inner"]["selected"][0] = serde_json::json!(9999);
        let json = serde_json::to_string(&value).unwrap();
        match MaterializedModels::from_json(&json) {
            Err(QppError::InvalidSnapshot(msg)) => {
                assert!(msg.contains("out of range"), "{msg}")
            }
            other => panic!("expected InvalidSnapshot, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_calibration_is_rejected() {
        let (_, qpp) = trained();
        let mut mat = MaterializedModels::from_predictor(&qpp);
        mat.prior_latency = -1.0;
        match mat.validate() {
            Err(QppError::InvalidSnapshot(msg)) => {
                assert!(msg.contains("prior latency"), "{msg}")
            }
            other => panic!("expected InvalidSnapshot, got {other:?}"),
        }
    }

}
