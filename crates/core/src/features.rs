//! Static feature extraction — the paper's Tables 1 and 2.
//!
//! All features are *compile-time* quantities read from the planned tree:
//! optimizer cost/cardinality estimates and plan structure. For the
//! Section 5.3.3 experiment, the same extractors can read the
//! *actual*-valued annotations instead (true cardinalities and re-costed
//! values), selected by [`FeatureSource`].

use engine::plan::{OpType, PlanNode, ALL_OP_TYPES};
use engine::recost::TruthCosts;

/// Which annotation side feature values are read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FeatureSource {
    /// Optimizer estimates (the deployable configuration).
    Estimated,
    /// True cardinalities and re-costed values (Section 5.3.3's
    /// actual-value experiments; not available before execution).
    Actual,
}

/// A view of one node's feature values under a [`FeatureSource`].
#[derive(Debug, Clone, Copy)]
pub struct NodeView {
    /// Output rows.
    pub rows: f64,
    /// Output width (bytes).
    pub width: f64,
    /// I/O pages attributed to the node.
    pub pages: f64,
    /// Selectivity applied at the node.
    pub selectivity: f64,
    /// Startup cost.
    pub startup_cost: f64,
    /// Total cost.
    pub total_cost: f64,
}

/// Resolves per-node views for a whole plan (pre-order).
///
/// For [`FeatureSource::Actual`], `truth_costs` must be supplied (from
/// [`engine::recost::recost_truth`]).
pub fn node_views(
    plan: &PlanNode,
    source: FeatureSource,
    truth_costs: Option<&TruthCosts>,
) -> Vec<NodeView> {
    let nodes = plan.preorder();
    match source {
        FeatureSource::Estimated => nodes
            .iter()
            .map(|n| NodeView {
                rows: n.est.rows,
                width: n.est.width,
                pages: n.est.pages,
                selectivity: n.est.selectivity,
                startup_cost: n.est.startup_cost,
                total_cost: n.est.total_cost,
            })
            .collect(),
        FeatureSource::Actual => {
            let tc = truth_costs.expect("actual features require truth costs");
            assert_eq!(tc.costs.len(), nodes.len(), "truth costs misaligned");
            nodes
                .iter()
                .zip(&tc.costs)
                .map(|(n, (s, t))| NodeView {
                    rows: n.truth.rows,
                    width: n.est.width,
                    pages: n.truth.pages,
                    selectivity: n.truth.selectivity,
                    startup_cost: *s,
                    total_cost: *t,
                })
                .collect()
        }
    }
}

/// Number of plan-level features (Table 1): 7 global + 2 per operator type.
pub fn plan_feature_count() -> usize {
    7 + 2 * ALL_OP_TYPES.len()
}

/// Names of the plan-level features, aligned with
/// [`plan_features`]' output order.
pub fn plan_feature_names() -> Vec<String> {
    let mut names = vec![
        "p_tot_cost".to_string(),
        "p_st_cost".to_string(),
        "p_rows".to_string(),
        "p_width".to_string(),
        "op_count".to_string(),
        "row_count".to_string(),
        "byte_count".to_string(),
    ];
    for op in ALL_OP_TYPES {
        names.push(format!("{}_cnt", op.name().replace(' ', "_").to_lowercase()));
    }
    for op in ALL_OP_TYPES {
        names.push(format!("{}_rows", op.name().replace(' ', "_").to_lowercase()));
    }
    names
}

/// Extracts the Table-1 plan-level feature vector for (a sub-tree of) a
/// plan. `views` must align with `plan.preorder()`.
///
/// This is the boxed-tree entry point; it recursively collects the
/// pre-order node list and delegates to [`plan_features_slice`]. Hot
/// callers that hold a [`engine::arena::PlanArena`] should pass
/// `arena.subtree_nodes(idx)` to the slice form directly — the fragment
/// is already contiguous there, so no per-fragment walk or allocation
/// happens.
pub fn plan_features(plan: &PlanNode, views: &[NodeView]) -> Vec<f64> {
    plan_features_slice(&plan.preorder(), views)
}

/// [`plan_features`] over an already-flattened pre-order node slice
/// (typically an arena fragment), aligned index-for-index with `views`.
pub fn plan_features_slice(nodes: &[&PlanNode], views: &[NodeView]) -> Vec<f64> {
    assert_eq!(nodes.len(), views.len(), "views misaligned with plan");
    let root = &views[0];
    let mut cnt = [0.0f64; ALL_OP_TYPES.len()];
    let mut rows_by_op = [0.0f64; ALL_OP_TYPES.len()];
    let mut row_count = 0.0;
    let mut byte_count = 0.0;
    // Child-row lookup: each node's inputs are its children's outputs.
    for (i, node) in nodes.iter().enumerate() {
        let v = &views[i];
        let k = node.op.index();
        cnt[k] += 1.0;
        rows_by_op[k] += v.rows;
        row_count += v.rows;
        byte_count += v.rows * v.width;
    }
    // Inputs: every non-root node's output is also some operator's input.
    for (i, _) in nodes.iter().enumerate().skip(1) {
        row_count += views[i].rows;
        byte_count += views[i].rows * views[i].width;
    }
    let mut out = Vec::with_capacity(plan_feature_count());
    out.push(root.total_cost);
    out.push(root.startup_cost);
    out.push(root.rows);
    out.push(root.width);
    out.push(nodes.len() as f64);
    out.push(row_count);
    out.push(byte_count);
    out.extend_from_slice(&cnt);
    out.extend_from_slice(&rows_by_op);
    out
}

/// Names of the Table-2 operator-level features, aligned with
/// [`op_features`].
pub const OP_FEATURE_NAMES: [&str; 9] = [
    "np", "nt", "nt1", "nt2", "sel", "st1", "rt1", "st2", "rt2",
];

/// Extracts the Table-2 operator-level feature vector for the node at
/// pre-order position `idx`.
///
/// `child_times` supplies the (start, run) values of the node's children —
/// observed values at training time, composed predictions at prediction
/// time (Figure 2 of the paper).
pub fn op_features(
    node: &PlanNode,
    view: &NodeView,
    child_views: &[&NodeView],
    child_times: &[(f64, f64)],
) -> Vec<f64> {
    let get_rows = |i: usize| child_views.get(i).map(|v| v.rows).unwrap_or(0.0);
    let get_time = |i: usize| child_times.get(i).copied().unwrap_or((0.0, 0.0));
    let _ = node;
    vec![
        view.pages,
        view.rows,
        get_rows(0),
        get_rows(1),
        view.selectivity,
        get_time(0).0,
        get_time(0).1,
        get_time(1).0,
        get_time(1).1,
    ]
}

/// Convenience: which operator types appear in a plan (for diagnostics).
pub fn op_histogram(plan: &PlanNode) -> Vec<(OpType, usize)> {
    let mut cnt = [0usize; ALL_OP_TYPES.len()];
    for n in plan.preorder() {
        cnt[n.op.index()] += 1;
    }
    ALL_OP_TYPES
        .iter()
        .copied()
        .zip(cnt)
        .filter(|(_, c)| *c > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{Catalog, Planner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan(t: u8) -> PlanNode {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(4);
        planner.plan(&tpch::instantiate(t, 0.1, &mut rng))
    }

    #[test]
    fn plan_feature_vector_has_stable_shape() {
        let p = plan(3);
        let views = node_views(&p, FeatureSource::Estimated, None);
        let f = plan_features(&p, &views);
        assert_eq!(f.len(), plan_feature_count());
        assert_eq!(f.len(), plan_feature_names().len());
        // p_tot_cost is the root's total cost.
        assert_eq!(f[0], p.est.total_cost);
        // op_count matches the node count.
        assert_eq!(f[4], p.node_count() as f64);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn operator_counts_sum_to_op_count() {
        let p = plan(5);
        let views = node_views(&p, FeatureSource::Estimated, None);
        let f = plan_features(&p, &views);
        let cnt_sum: f64 = f[7..7 + ALL_OP_TYPES.len()].iter().sum();
        assert_eq!(cnt_sum, p.node_count() as f64);
    }

    #[test]
    fn actual_views_differ_from_estimates_when_estimation_errs() {
        let p = plan(18);
        let est = node_views(&p, FeatureSource::Estimated, None);
        let tc = engine::recost_truth(&p, 8.0 * 1024.0 * 1024.0);
        let act = node_views(&p, FeatureSource::Actual, Some(&tc));
        let est_f = plan_features(&p, &est);
        let act_f = plan_features(&p, &act);
        // Template 18's row features must differ strongly across sources.
        assert!(
            (est_f[5] - act_f[5]).abs() / act_f[5].max(1.0) > 0.2,
            "est row_count {} vs actual {}",
            est_f[5],
            act_f[5]
        );
    }

    #[test]
    fn op_features_read_children() {
        let p = plan(6);
        let views = node_views(&p, FeatureSource::Estimated, None);
        // Root is the ungrouped Aggregate; child is the scan.
        let child_view = &views[1];
        let f = op_features(
            &p,
            &views[0],
            &[child_view],
            &[(1.0, 5.0)],
        );
        assert_eq!(f.len(), OP_FEATURE_NAMES.len());
        assert_eq!(f[2], child_view.rows); // nt1
        assert_eq!(f[3], 0.0); // nt2: unary operator
        assert_eq!(f[5], 1.0); // st1
        assert_eq!(f[6], 5.0); // rt1
        assert_eq!(f[7], 0.0); // st2 absent
    }

    #[test]
    fn op_histogram_lists_present_types() {
        let p = plan(1);
        let h = op_histogram(&p);
        assert!(h.iter().any(|(op, _)| *op == OpType::SeqScan));
        let total: usize = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, p.node_count());
    }
}
