//! Static feature extraction — the paper's Tables 1 and 2.
//!
//! All features are *compile-time* quantities read from the planned tree:
//! optimizer cost/cardinality estimates and plan structure. For the
//! Section 5.3.3 experiment, the same extractors can read the
//! *actual*-valued annotations instead (true cardinalities and re-costed
//! values), selected by [`FeatureSource`].

use engine::plan::{OpType, PlanNode, ALL_OP_TYPES};
use engine::recost::TruthCosts;

/// Which annotation side feature values are read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum FeatureSource {
    /// Optimizer estimates (the deployable configuration).
    Estimated,
    /// True cardinalities and re-costed values (Section 5.3.3's
    /// actual-value experiments; not available before execution).
    Actual,
}

/// A view of one node's feature values under a [`FeatureSource`].
#[derive(Debug, Clone, Copy)]
pub struct NodeView {
    /// Output rows.
    pub rows: f64,
    /// Output width (bytes).
    pub width: f64,
    /// I/O pages attributed to the node.
    pub pages: f64,
    /// Selectivity applied at the node.
    pub selectivity: f64,
    /// Startup cost.
    pub startup_cost: f64,
    /// Total cost.
    pub total_cost: f64,
}

/// Resolves per-node views for a whole plan (pre-order).
///
/// For [`FeatureSource::Actual`], `truth_costs` must be supplied (from
/// [`engine::recost::recost_truth`]).
pub fn node_views(
    plan: &PlanNode,
    source: FeatureSource,
    truth_costs: Option<&TruthCosts>,
) -> Vec<NodeView> {
    let nodes = plan.preorder();
    let mut out = Vec::new();
    node_views_into(&nodes, source, truth_costs, &mut out);
    out
}

/// [`node_views`] over an already-flattened pre-order node slice
/// (typically [`engine::arena::PlanArena::nodes`]), filling a
/// caller-owned buffer so batch extraction reuses one allocation across
/// plans instead of building a fresh `Vec` per query.
pub fn node_views_into(
    nodes: &[&PlanNode],
    source: FeatureSource,
    truth_costs: Option<&TruthCosts>,
    out: &mut Vec<NodeView>,
) {
    out.clear();
    out.reserve(nodes.len());
    match source {
        FeatureSource::Estimated => {
            for n in nodes {
                out.push(NodeView {
                    rows: n.est.rows,
                    width: n.est.width,
                    pages: n.est.pages,
                    selectivity: n.est.selectivity,
                    startup_cost: n.est.startup_cost,
                    total_cost: n.est.total_cost,
                });
            }
        }
        FeatureSource::Actual => {
            let tc = truth_costs.expect("actual features require truth costs");
            assert_eq!(tc.costs.len(), nodes.len(), "truth costs misaligned");
            for (n, (s, t)) in nodes.iter().zip(&tc.costs) {
                out.push(NodeView {
                    rows: n.truth.rows,
                    width: n.est.width,
                    pages: n.truth.pages,
                    selectivity: n.truth.selectivity,
                    startup_cost: *s,
                    total_cost: *t,
                });
            }
        }
    }
}

/// Number of plan-level features (Table 1): 7 global + 2 per operator type.
pub fn plan_feature_count() -> usize {
    7 + 2 * ALL_OP_TYPES.len()
}

/// Names of the plan-level features, aligned with
/// [`plan_features`]' output order.
pub fn plan_feature_names() -> Vec<String> {
    let mut names = vec![
        "p_tot_cost".to_string(),
        "p_st_cost".to_string(),
        "p_rows".to_string(),
        "p_width".to_string(),
        "op_count".to_string(),
        "row_count".to_string(),
        "byte_count".to_string(),
    ];
    for op in ALL_OP_TYPES {
        names.push(format!("{}_cnt", op.name().replace(' ', "_").to_lowercase()));
    }
    for op in ALL_OP_TYPES {
        names.push(format!("{}_rows", op.name().replace(' ', "_").to_lowercase()));
    }
    names
}

/// Extracts the Table-1 plan-level feature vector for (a sub-tree of) a
/// plan. `views` must align with `plan.preorder()`.
///
/// This is the boxed-tree entry point; it recursively collects the
/// pre-order node list and delegates to [`plan_features_slice`]. Hot
/// callers that hold a [`engine::arena::PlanArena`] should pass
/// `arena.subtree_nodes(idx)` to the slice form directly — the fragment
/// is already contiguous there, so no per-fragment walk or allocation
/// happens.
pub fn plan_features(plan: &PlanNode, views: &[NodeView]) -> Vec<f64> {
    plan_features_slice(&plan.preorder(), views)
}

/// [`plan_features`] over an already-flattened pre-order node slice
/// (typically an arena fragment), aligned index-for-index with `views`.
pub fn plan_features_slice(nodes: &[&PlanNode], views: &[NodeView]) -> Vec<f64> {
    let mut out = vec![0.0; plan_feature_count()];
    plan_features_into(nodes, views, &mut out);
    out
}

/// [`plan_features_slice`] writing into a caller-owned row of exactly
/// [`plan_feature_count`] values — the batch-assembly hot-path form,
/// used to write SoA feature rows directly into a training matrix with
/// no intermediate allocation. The accumulation order is identical to
/// [`plan_features_slice`], so the values are bit-identical.
pub fn plan_features_into(nodes: &[&PlanNode], views: &[NodeView], out: &mut [f64]) {
    assert_eq!(nodes.len(), views.len(), "views misaligned with plan");
    assert_eq!(out.len(), plan_feature_count(), "feature row misaligned");
    let root = &views[0];
    let mut cnt = [0.0f64; ALL_OP_TYPES.len()];
    let mut rows_by_op = [0.0f64; ALL_OP_TYPES.len()];
    let mut row_count = 0.0;
    let mut byte_count = 0.0;
    // Child-row lookup: each node's inputs are its children's outputs.
    for (i, node) in nodes.iter().enumerate() {
        let v = &views[i];
        let k = node.op.index();
        cnt[k] += 1.0;
        rows_by_op[k] += v.rows;
        row_count += v.rows;
        byte_count += v.rows * v.width;
    }
    // Inputs: every non-root node's output is also some operator's input.
    for (i, _) in nodes.iter().enumerate().skip(1) {
        row_count += views[i].rows;
        byte_count += views[i].rows * views[i].width;
    }
    out[0] = root.total_cost;
    out[1] = root.startup_cost;
    out[2] = root.rows;
    out[3] = root.width;
    out[4] = nodes.len() as f64;
    out[5] = row_count;
    out[6] = byte_count;
    out[7..7 + ALL_OP_TYPES.len()].copy_from_slice(&cnt);
    out[7 + ALL_OP_TYPES.len()..].copy_from_slice(&rows_by_op);
}

/// One-shot arena-backed extraction for a whole plan: flattens the tree
/// once and resolves views and features off the contiguous pre-order
/// slice, replacing the recursive `preorder()` walk the boxed-tree entry
/// points perform. Bit-identical to
/// `plan_features(plan, &node_views(plan, source, truth_costs))`.
pub fn plan_features_arena(
    plan: &PlanNode,
    source: FeatureSource,
    truth_costs: Option<&TruthCosts>,
) -> Vec<f64> {
    let arena = engine::arena::PlanArena::flatten(plan);
    let mut views = Vec::new();
    node_views_into(arena.nodes(), source, truth_costs, &mut views);
    plan_features_slice(arena.nodes(), &views)
}

/// Names of the Table-2 operator-level features, aligned with
/// [`op_features`].
pub const OP_FEATURE_NAMES: [&str; 9] = [
    "np", "nt", "nt1", "nt2", "sel", "st1", "rt1", "st2", "rt2",
];

/// Extracts the Table-2 operator-level feature vector for the node at
/// pre-order position `idx`.
///
/// `child_times` supplies the (start, run) values of the node's children —
/// observed values at training time, composed predictions at prediction
/// time (Figure 2 of the paper).
pub fn op_features(
    node: &PlanNode,
    view: &NodeView,
    child_views: &[&NodeView],
    child_times: &[(f64, f64)],
) -> Vec<f64> {
    let get_rows = |i: usize| child_views.get(i).map(|v| v.rows).unwrap_or(0.0);
    let get_time = |i: usize| child_times.get(i).copied().unwrap_or((0.0, 0.0));
    let _ = node;
    vec![
        view.pages,
        view.rows,
        get_rows(0),
        get_rows(1),
        view.selectivity,
        get_time(0).0,
        get_time(0).1,
        get_time(1).0,
        get_time(1).1,
    ]
}

/// Convenience: which operator types appear in a plan (for diagnostics).
pub fn op_histogram(plan: &PlanNode) -> Vec<(OpType, usize)> {
    let mut cnt = [0usize; ALL_OP_TYPES.len()];
    for n in plan.preorder() {
        cnt[n.op.index()] += 1;
    }
    ALL_OP_TYPES
        .iter()
        .copied()
        .zip(cnt)
        .filter(|(_, c)| *c > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{Catalog, Planner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plan(t: u8) -> PlanNode {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(4);
        planner.plan(&tpch::instantiate(t, 0.1, &mut rng))
    }

    #[test]
    fn plan_feature_vector_has_stable_shape() {
        let p = plan(3);
        let views = node_views(&p, FeatureSource::Estimated, None);
        let f = plan_features(&p, &views);
        assert_eq!(f.len(), plan_feature_count());
        assert_eq!(f.len(), plan_feature_names().len());
        // p_tot_cost is the root's total cost.
        assert_eq!(f[0], p.est.total_cost);
        // op_count matches the node count.
        assert_eq!(f[4], p.node_count() as f64);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn operator_counts_sum_to_op_count() {
        let p = plan(5);
        let views = node_views(&p, FeatureSource::Estimated, None);
        let f = plan_features(&p, &views);
        let cnt_sum: f64 = f[7..7 + ALL_OP_TYPES.len()].iter().sum();
        assert_eq!(cnt_sum, p.node_count() as f64);
    }

    #[test]
    fn actual_views_differ_from_estimates_when_estimation_errs() {
        let p = plan(18);
        let est = node_views(&p, FeatureSource::Estimated, None);
        let tc = engine::recost_truth(&p, 8.0 * 1024.0 * 1024.0);
        let act = node_views(&p, FeatureSource::Actual, Some(&tc));
        let est_f = plan_features(&p, &est);
        let act_f = plan_features(&p, &act);
        // Template 18's row features must differ strongly across sources.
        assert!(
            (est_f[5] - act_f[5]).abs() / act_f[5].max(1.0) > 0.2,
            "est row_count {} vs actual {}",
            est_f[5],
            act_f[5]
        );
    }

    #[test]
    fn op_features_read_children() {
        let p = plan(6);
        let views = node_views(&p, FeatureSource::Estimated, None);
        // Root is the ungrouped Aggregate; child is the scan.
        let child_view = &views[1];
        let f = op_features(
            &p,
            &views[0],
            &[child_view],
            &[(1.0, 5.0)],
        );
        assert_eq!(f.len(), OP_FEATURE_NAMES.len());
        assert_eq!(f[2], child_view.rows); // nt1
        assert_eq!(f[3], 0.0); // nt2: unary operator
        assert_eq!(f[5], 1.0); // st1
        assert_eq!(f[6], 5.0); // rt1
        assert_eq!(f[7], 0.0); // st2 absent
    }

    #[test]
    fn arena_sweep_matches_boxed_walk_bitwise() {
        for t in [1u8, 3, 5, 6, 18] {
            let p = plan(t);
            let tc = engine::recost_truth(&p, 8.0 * 1024.0 * 1024.0);
            for (source, costs) in [
                (FeatureSource::Estimated, None),
                (FeatureSource::Actual, Some(&tc)),
            ] {
                let boxed = plan_features(&p, &node_views(&p, source, costs));
                let arena = plan_features_arena(&p, source, costs);
                assert_eq!(
                    boxed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    arena.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "template {t}"
                );
            }
        }
    }

    #[test]
    fn views_buffer_is_reusable_across_plans() {
        let mut views = Vec::new();
        let a = plan(1);
        let arena_a = engine::PlanArena::flatten(&a);
        node_views_into(arena_a.nodes(), FeatureSource::Estimated, None, &mut views);
        assert_eq!(views.len(), arena_a.len());
        let b = plan(5);
        let arena_b = engine::PlanArena::flatten(&b);
        node_views_into(arena_b.nodes(), FeatureSource::Estimated, None, &mut views);
        assert_eq!(views.len(), arena_b.len());
        assert_eq!(views[0].total_cost, b.est.total_cost);
    }

    #[test]
    fn op_histogram_lists_present_types() {
        let p = plan(1);
        let h = op_histogram(&p);
        assert!(h.iter().any(|(op, _)| *op == OpType::SeqScan));
        let total: usize = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, p.node_count());
    }
}
