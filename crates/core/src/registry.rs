//! The versioned model registry: validated snapshots, hot swap, rollback,
//! and shadow retraining.
//!
//! [`crate::materialize`] defines *what* a model snapshot contains; this
//! module owns *how* snapshots live on disk and how the serving predictor
//! moves between them:
//!
//! - **Checksummed, atomic snapshots.** Every version is one file,
//!   `v{N}.qppsnap`, written temp-then-rename so a crash can never leave a
//!   half-written current version. The file starts with a header line
//!   `QPPSNAP v1 <fnv64> <len>` followed by the model JSON; loads verify
//!   format version, payload length, and FNV-1a checksum before the JSON
//!   is even parsed, then run [`MaterializedModels::validate`]'s
//!   finite-weights/arity gates.
//! - **Hot swap.** The serving predictor hangs under an `Arc`; promotion
//!   builds the replacement off to the side, validates it end-to-end
//!   (including a read-back of the just-written snapshot), and swaps the
//!   `Arc` under a write lock. In-flight readers keep their old reference.
//!   The shared [`PredictionCache`] is cleared on every swap — the
//!   content-aware model-set signature already keeps stale entries from
//!   being *hits*, clearing also reclaims their space.
//! - **Rollback.** One step back to the previous validated snapshot, for
//!   when a promotion looks wrong in production after all.
//! - **Shadow retraining.** [`ModelRegistry::shadow_retrain`] trains a
//!   candidate on the recent window (reusing `ml::par` underneath),
//!   scores candidate and incumbent on a held-out slice neither saw, and
//!   promotes only when the candidate's mean relative error improves by a
//!   configurable margin — otherwise the incumbent stays and the report
//!   says why.

use crate::dataset::ExecutedQuery;
use crate::error::QppError;
use crate::hybrid::PlanOrdering;
use crate::materialize::MaterializedModels;
use crate::pred_cache::PredictionCache;
use crate::predictor::{Method, QppConfig, QppPredictor};
use ml::cv::holdout;
use ml::mean_relative_error;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Snapshot format magic + version accepted by this build.
const SNAPSHOT_MAGIC: &str = "QPPSNAP";
const SNAPSHOT_VERSION: &str = "v1";

/// FNV-1a over raw bytes (the sibling of `pred_cache`'s u64 variant).
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Encodes a model set into the on-disk snapshot envelope:
/// `QPPSNAP v1 <fnv64-hex> <payload-len>\n<json>`.
pub fn encode_snapshot(mat: &MaterializedModels) -> Vec<u8> {
    let payload = mat.to_json();
    let mut out = format!(
        "{SNAPSHOT_MAGIC} {SNAPSHOT_VERSION} {:016x} {}\n",
        fnv64(payload.as_bytes()),
        payload.len()
    )
    .into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Decodes and fully validates a snapshot envelope: header shape, format
/// version, payload length (catches truncation), FNV-1a checksum (catches
/// bit rot), then the model-level gates of
/// [`MaterializedModels::from_json`].
pub fn decode_snapshot(bytes: &[u8]) -> Result<MaterializedModels, QppError> {
    let invalid = QppError::InvalidSnapshot;
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| invalid("missing snapshot header".to_string()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| invalid("snapshot header is not UTF-8".to_string()))?;
    let mut parts = header.split(' ');
    let (magic, version, checksum, len) = match (
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
    ) {
        (Some(m), Some(v), Some(c), Some(l), None) => (m, v, c, l),
        _ => return Err(invalid(format!("malformed snapshot header {header:?}"))),
    };
    if magic != SNAPSHOT_MAGIC {
        return Err(invalid(format!("bad magic {magic:?}")));
    }
    if version != SNAPSHOT_VERSION {
        return Err(invalid(format!(
            "unsupported format version {version:?} (this build reads {SNAPSHOT_VERSION})"
        )));
    }
    let expected_sum = u64::from_str_radix(checksum, 16)
        .map_err(|_| invalid(format!("unparsable checksum {checksum:?}")))?;
    let expected_len: usize = len
        .parse()
        .map_err(|_| invalid(format!("unparsable payload length {len:?}")))?;
    let payload = &bytes[newline + 1..];
    if payload.len() != expected_len {
        return Err(invalid(format!(
            "truncated snapshot: header promises {expected_len} payload bytes, found {}",
            payload.len()
        )));
    }
    let actual_sum = fnv64(payload);
    if actual_sum != expected_sum {
        return Err(invalid(format!(
            "checksum mismatch: header says {expected_sum:016x}, payload hashes to {actual_sum:016x}"
        )));
    }
    let json = std::str::from_utf8(payload)
        .map_err(|_| invalid("snapshot payload is not UTF-8".to_string()))?;
    MaterializedModels::from_json(json)
}

/// Configuration of [`ModelRegistry::shadow_retrain`].
#[derive(Debug, Clone)]
pub struct RetrainConfig {
    /// Fraction of the recent window held out for scoring candidate vs
    /// incumbent (neither model trains on it).
    pub holdout_frac: f64,
    /// Required relative improvement in held-out mean relative error
    /// before the candidate is promoted: promote iff
    /// `candidate <= incumbent * (1 - min_improvement)`.
    pub min_improvement: f64,
    /// Seed for the holdout split.
    pub seed: u64,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        RetrainConfig {
            holdout_frac: 0.25,
            min_improvement: 0.05,
            seed: 0x5EED,
        }
    }
}

/// What a shadow-retrain round decided and why.
#[derive(Debug, Clone)]
pub struct PromotionReport {
    /// True when the candidate was promoted to serving.
    pub promoted: bool,
    /// Incumbent's mean relative error on the held-out slice.
    pub incumbent_error: f64,
    /// Candidate's mean relative error on the held-out slice.
    pub candidate_error: f64,
    /// The serving model version after the decision.
    pub version: u64,
    /// Human-readable explanation of the decision.
    pub reason: String,
}

struct Inner {
    current: Arc<QppPredictor>,
    /// Validated snapshot versions on disk, ascending; the last entry is
    /// the serving version.
    versions: Vec<u64>,
}

/// A directory of versioned, validated model snapshots plus the serving
/// predictor hot-swapped between them.
pub struct ModelRegistry {
    dir: PathBuf,
    config: QppConfig,
    inner: RwLock<Inner>,
    pred_cache: Arc<PredictionCache>,
    /// Bumped on every promote/rollback. Lets long-running readers (the
    /// serving layer, stress tests) detect that the serving predictor
    /// changed without taking the registry lock or comparing `Arc`s.
    generation: AtomicU64,
}

impl ModelRegistry {
    /// Creates a registry at `dir` (created if missing) and persists
    /// `initial` as version 1.
    pub fn create(
        dir: impl Into<PathBuf>,
        initial: QppPredictor,
        config: QppConfig,
    ) -> Result<ModelRegistry, QppError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| QppError::Io(e.to_string()))?;
        let registry = ModelRegistry {
            dir,
            config,
            inner: RwLock::new(Inner {
                current: Arc::new(initial),
                versions: Vec::new(),
            }),
            pred_cache: Arc::new(PredictionCache::default()),
            generation: AtomicU64::new(0),
        };
        {
            let mut inner = registry.lock_write();
            let mat = MaterializedModels::from_predictor(&inner.current);
            mat.validate()?;
            registry.write_snapshot(1, &mat)?;
            inner.versions.push(1);
        }
        Ok(registry)
    }

    /// Opens an existing registry directory, loading the latest snapshot
    /// as the serving predictor. A corrupted or truncated latest snapshot
    /// is a typed [`QppError::InvalidSnapshot`] — nothing is served off a
    /// file that fails its gates.
    pub fn open(dir: impl Into<PathBuf>, config: QppConfig) -> Result<ModelRegistry, QppError> {
        let dir = dir.into();
        let versions = list_versions(&dir)?;
        let &latest = versions
            .last()
            .ok_or_else(|| QppError::Io(format!("no snapshots in {}", dir.display())))?;
        let mat = load_version(&dir, latest)?;
        let current = Arc::new(QppPredictor::from_materialized(&mat, config.clone()));
        Ok(ModelRegistry {
            dir,
            config,
            inner: RwLock::new(Inner { current, versions }),
            pred_cache: Arc::new(PredictionCache::default()),
            generation: AtomicU64::new(0),
        })
    }

    /// The serving predictor. The returned `Arc` stays valid across
    /// subsequent promotions/rollbacks (it just stops being current).
    pub fn current(&self) -> Arc<QppPredictor> {
        self.lock_read().current.clone()
    }

    /// The serving snapshot version.
    pub fn version(&self) -> u64 {
        *self.lock_read().versions.last().expect("registry holds >= 1 version")
    }

    /// All validated snapshot versions on disk, ascending.
    pub fn versions(&self) -> Vec<u64> {
        self.lock_read().versions.clone()
    }

    /// Number of hot swaps (promotions and rollbacks) this registry has
    /// performed since it was opened. Monotone; readers can poll it to
    /// learn that [`ModelRegistry::current`] would now return a different
    /// predictor, without taking the registry lock.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The shared sub-plan prediction cache, cleared on every model swap.
    /// Serve batched predictions through this cache (e.g.
    /// `registry.current().hybrid.predict_batch_cached(queries,
    /// &registry.pred_cache())`) to get swap-safe memoization.
    pub fn pred_cache(&self) -> &Arc<PredictionCache> {
        &self.pred_cache
    }

    /// Path of one version's snapshot file.
    pub fn snapshot_path(&self, version: u64) -> PathBuf {
        self.dir.join(format!("v{version}.qppsnap"))
    }

    /// Validates and persists `candidate` as the next version, then hot
    /// swaps it in. The snapshot is written atomically
    /// (temp-then-rename) and *read back* from disk before the swap, so
    /// the predictor that serves is provably reconstructible from the
    /// bytes that were persisted. Clears the shared prediction cache.
    pub fn promote(&self, candidate: QppPredictor) -> Result<u64, QppError> {
        let mat = MaterializedModels::from_predictor(&candidate);
        mat.validate()?;
        drop(candidate); // serve the disk-round-tripped predictor instead
        let mut inner = self.lock_write();
        let version = inner.versions.last().copied().unwrap_or(0) + 1;
        self.write_snapshot(version, &mat)?;
        let reloaded = load_version(&self.dir, version)?;
        inner.current = Arc::new(QppPredictor::from_materialized(
            &reloaded,
            self.config.clone(),
        ));
        inner.versions.push(version);
        self.pred_cache.clear();
        self.generation.fetch_add(1, Ordering::Release);
        Ok(version)
    }

    /// One-step rollback: reloads the previous validated snapshot, makes
    /// it current, and deletes the rolled-back version's file. Clears the
    /// shared prediction cache. Fails (typed) when there is no previous
    /// version or the previous snapshot no longer validates.
    pub fn rollback(&self) -> Result<u64, QppError> {
        let mut inner = self.lock_write();
        if inner.versions.len() < 2 {
            return Err(QppError::InvalidSnapshot(
                "no previous version to roll back to".to_string(),
            ));
        }
        let previous = inner.versions[inner.versions.len() - 2];
        let mat = load_version(&self.dir, previous)?;
        inner.current = Arc::new(QppPredictor::from_materialized(&mat, self.config.clone()));
        let dropped = inner.versions.pop().expect("len checked above");
        let _ = fs::remove_file(self.snapshot_path(dropped));
        self.pred_cache.clear();
        self.generation.fetch_add(1, Ordering::Release);
        Ok(previous)
    }

    /// Shadow retraining: fits a candidate on the recent window and
    /// promotes it only if it beats the incumbent on a held-out slice by
    /// the configured margin.
    ///
    /// The split is seeded and the candidate trains only on the training
    /// side, so incumbent and candidate are scored on data neither was
    /// fit to. Scoring runs through `predict_checked` (hybrid entry
    /// point): what is compared is the full degradation chain each model
    /// set would actually serve.
    pub fn shadow_retrain(
        &self,
        recent: &[&ExecutedQuery],
        cfg: &RetrainConfig,
    ) -> Result<PromotionReport, QppError> {
        if recent.len() < 4 {
            return Err(QppError::NoTrainingData);
        }
        let (train_idx, test_idx) = holdout(recent.len(), cfg.holdout_frac, cfg.seed);
        let train: Vec<&ExecutedQuery> = train_idx.iter().map(|&i| recent[i]).collect();
        let test: Vec<&ExecutedQuery> = test_idx.iter().map(|&i| recent[i]).collect();

        let candidate = QppPredictor::train(&train, self.config.clone())?;
        let incumbent = self.current();
        let incumbent_error = score(&incumbent, &test);
        let candidate_error = score(&candidate, &test);

        if candidate_error <= incumbent_error * (1.0 - cfg.min_improvement) {
            let version = self.promote(candidate)?;
            Ok(PromotionReport {
                promoted: true,
                incumbent_error,
                candidate_error,
                version,
                reason: format!(
                    "candidate held-out MRE {candidate_error:.4} beats incumbent \
                     {incumbent_error:.4} by more than the {:.0}% margin",
                    cfg.min_improvement * 100.0
                ),
            })
        } else {
            Ok(PromotionReport {
                promoted: false,
                incumbent_error,
                candidate_error,
                version: self.version(),
                reason: format!(
                    "candidate held-out MRE {candidate_error:.4} does not beat incumbent \
                     {incumbent_error:.4} by the {:.0}% margin; keeping incumbent",
                    cfg.min_improvement * 100.0
                ),
            })
        }
    }

    /// Mean relative error of the *currently serving* predictor over
    /// `queries`, scored through the full degradation chain (the same
    /// metric [`ModelRegistry::shadow_retrain`] uses for its held-out
    /// comparison). NaN when `queries` is empty.
    ///
    /// This is the post-promotion validation hook: after a promotion,
    /// score the new current predictor against fresh traffic and call
    /// [`ModelRegistry::rollback`] if it regressed in production after
    /// all.
    pub fn score_current(&self, queries: &[&ExecutedQuery]) -> f64 {
        score(&self.current(), queries)
    }

    fn write_snapshot(&self, version: u64, mat: &MaterializedModels) -> Result<(), QppError> {
        let io = |e: std::io::Error| QppError::Io(e.to_string());
        let final_path = self.snapshot_path(version);
        let tmp_path = self.dir.join(format!("v{version}.qppsnap.tmp"));
        fs::write(&tmp_path, encode_snapshot(mat)).map_err(io)?;
        fs::rename(&tmp_path, &final_path).map_err(io)?;
        Ok(())
    }

    fn lock_read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        self.inner.read().expect("registry lock poisoned")
    }

    fn lock_write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().expect("registry lock poisoned")
    }
}

/// Held-out mean relative error of the full serving chain.
fn score(pred: &QppPredictor, queries: &[&ExecutedQuery]) -> f64 {
    let actual: Vec<f64> = queries.iter().map(|q| q.latency()).collect();
    let est: Vec<f64> = queries
        .iter()
        .map(|q| {
            pred.predict_checked(q, Method::Hybrid(PlanOrdering::ErrorBased))
                .value
        })
        .collect();
    mean_relative_error(&actual, &est)
}

/// Loads and fully validates one snapshot version from `dir`.
fn load_version(dir: &Path, version: u64) -> Result<MaterializedModels, QppError> {
    let path = dir.join(format!("v{version}.qppsnap"));
    let bytes = fs::read(&path).map_err(|e| QppError::Io(format!("{}: {e}", path.display())))?;
    decode_snapshot(&bytes)
        .map_err(|e| match e {
            QppError::InvalidSnapshot(msg) => {
                QppError::InvalidSnapshot(format!("{}: {msg}", path.display()))
            }
            other => other,
        })
}

/// Snapshot versions present in `dir`, ascending.
fn list_versions(dir: &Path) -> Result<Vec<u64>, QppError> {
    let entries = fs::read_dir(dir).map_err(|e| QppError::Io(format!("{}: {e}", dir.display())))?;
    let mut versions = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| QppError::Io(e.to_string()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(v) = name
            .strip_prefix('v')
            .and_then(|rest| rest.strip_suffix(".qppsnap"))
            .and_then(|num| num.parse::<u64>().ok())
        {
            versions.push(v);
        }
    }
    versions.sort_unstable();
    Ok(versions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryDataset;
    use engine::{Catalog, Simulator};
    use tpch::Workload;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qpp-registry-{}-{name}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn trained() -> (QueryDataset, QppPredictor) {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6], 8, 0.1, 7);
        let sim = Simulator::with_config(engine::SimConfig {
            additive_noise_secs: 0.05,
            ..engine::SimConfig::default()
        });
        let ds = QueryDataset::execute(&catalog, &workload, &sim, 11, f64::INFINITY);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let qpp = QppPredictor::train(&refs, QppConfig::default()).unwrap();
        (ds, qpp)
    }

    #[test]
    fn snapshot_envelope_roundtrips() {
        let (_, qpp) = trained();
        let mat = MaterializedModels::from_predictor(&qpp);
        let bytes = encode_snapshot(&mat);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back.to_json(), mat.to_json());
    }

    #[test]
    fn envelope_rejects_corruption_truncation_and_bad_versions() {
        let (_, qpp) = trained();
        let bytes = encode_snapshot(&MaterializedModels::from_predictor(&qpp));

        // Bit flip in the payload: checksum mismatch.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        match decode_snapshot(&flipped) {
            Err(QppError::InvalidSnapshot(msg)) => {
                assert!(msg.contains("checksum"), "{msg}")
            }
            other => panic!("expected checksum error, got {other:?}"),
        }

        // Truncation: length check fires before the checksum.
        match decode_snapshot(&bytes[..bytes.len() - 10]) {
            Err(QppError::InvalidSnapshot(msg)) => {
                assert!(msg.contains("truncated"), "{msg}")
            }
            other => panic!("expected truncation error, got {other:?}"),
        }

        // Future format version.
        let futuristic = String::from_utf8(bytes.clone())
            .unwrap()
            .replacen("QPPSNAP v1 ", "QPPSNAP v9 ", 1)
            .into_bytes();
        match decode_snapshot(&futuristic) {
            Err(QppError::InvalidSnapshot(msg)) => {
                assert!(msg.contains("unsupported format version"), "{msg}")
            }
            other => panic!("expected version error, got {other:?}"),
        }

        // Not a snapshot at all.
        assert!(matches!(
            decode_snapshot(b"hello world\nnot json"),
            Err(QppError::InvalidSnapshot(_))
        ));
        assert!(matches!(
            decode_snapshot(b""),
            Err(QppError::InvalidSnapshot(_))
        ));
    }

    #[test]
    fn create_promote_reopen_and_rollback() {
        let dir = temp_dir("lifecycle");
        let (ds, qpp) = trained();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let probe = refs[0];

        let registry = ModelRegistry::create(&dir, qpp, QppConfig::default()).unwrap();
        assert_eq!(registry.version(), 1);
        let v1_pred = registry
            .current()
            .predict_checked(probe, Method::Hybrid(PlanOrdering::ErrorBased))
            .value;

        // Promote a retrained candidate (trained on half the data so its
        // content — and predictions — differ from v1).
        let half: Vec<&ExecutedQuery> = refs[..refs.len() / 2].to_vec();
        let candidate = QppPredictor::train(&half, QppConfig::default()).unwrap();
        let v2 = registry.promote(candidate).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(registry.versions(), vec![1, 2]);
        assert!(registry.snapshot_path(2).exists());

        // Reopen from disk: the latest version serves.
        let reopened = ModelRegistry::open(&dir, QppConfig::default()).unwrap();
        assert_eq!(reopened.version(), 2);
        let a = registry
            .current()
            .predict_checked(probe, Method::Hybrid(PlanOrdering::ErrorBased))
            .value;
        let b = reopened
            .current()
            .predict_checked(probe, Method::Hybrid(PlanOrdering::ErrorBased))
            .value;
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");

        // Rollback restores version 1's predictions exactly.
        let back_to = registry.rollback().unwrap();
        assert_eq!(back_to, 1);
        assert_eq!(registry.versions(), vec![1]);
        assert!(!registry.snapshot_path(2).exists());
        let restored = registry
            .current()
            .predict_checked(probe, Method::Hybrid(PlanOrdering::ErrorBased))
            .value;
        assert!((restored - v1_pred).abs() < 1e-12);

        // No further rollback possible.
        assert!(matches!(
            registry.rollback(),
            Err(QppError::InvalidSnapshot(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_snapshot_on_disk_is_rejected_at_open() {
        let dir = temp_dir("corrupt-open");
        let (_, qpp) = trained();
        let registry = ModelRegistry::create(&dir, qpp, QppConfig::default()).unwrap();
        let path = registry.snapshot_path(1);
        // Torn write: chop the file.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        match ModelRegistry::open(&dir, QppConfig::default()) {
            Err(QppError::InvalidSnapshot(msg)) => {
                assert!(msg.contains("truncated") || msg.contains("checksum"), "{msg}")
            }
            other => panic!("expected InvalidSnapshot, got {:?}", other.err()),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_swap_keeps_old_references_alive_and_clears_the_cache() {
        let dir = temp_dir("hot-swap");
        let (ds, qpp) = trained();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let registry = ModelRegistry::create(&dir, qpp, QppConfig::default()).unwrap();

        let before = registry.current();
        // Warm the shared cache through the serving model.
        let _ = before
            .hybrid
            .predict_batch_cached(&refs, registry.pred_cache());
        assert!(registry.pred_cache().stats().entries > 0);

        let half: Vec<&ExecutedQuery> = refs[..refs.len() / 2].to_vec();
        let candidate = QppPredictor::train(&half, QppConfig::default()).unwrap();
        registry.promote(candidate).unwrap();

        // The pre-swap Arc still answers; the shared cache was cleared.
        assert!(before
            .predict_checked(refs[0], Method::Hybrid(PlanOrdering::ErrorBased))
            .value
            .is_finite());
        assert_eq!(registry.pred_cache().stats().entries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shadow_retrain_reports_and_respects_the_margin() {
        let dir = temp_dir("shadow");
        let (ds, qpp) = trained();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let registry = ModelRegistry::create(&dir, qpp, QppConfig::default()).unwrap();

        // The incumbent was trained on this very distribution: a shadow
        // retrain on the same window should not find the margin and must
        // keep the incumbent.
        let report = registry
            .shadow_retrain(&refs, &RetrainConfig::default())
            .unwrap();
        assert!(report.incumbent_error.is_finite());
        assert!(report.candidate_error.is_finite());
        if !report.promoted {
            assert_eq!(report.version, 1);
            assert!(report.reason.contains("keeping incumbent"), "{}", report.reason);
            assert_eq!(registry.version(), 1);
        } else {
            // Noise can hand the candidate a win; then the version moved.
            assert_eq!(report.version, 2);
            assert_eq!(registry.version(), 2);
        }

        // Too little data is a typed error.
        assert!(matches!(
            registry.shadow_retrain(&refs[..2], &RetrainConfig::default()),
            Err(QppError::NoTrainingData)
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}
