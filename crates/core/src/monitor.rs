//! Drift monitoring: the feedback loop that keeps a serving predictor
//! honest.
//!
//! The paper trains its models once and assumes a static data/workload
//! regime; production studies of learned QPP report that data growth and
//! workload shift are the dominant failure mode of deployed predictors.
//! This module closes the loop: after each query executes, the caller
//! feeds the `(prediction, observed latency)` pair back into a
//! [`DriftMonitor`], which maintains streaming residual statistics per
//! learned tier and per operator type, and runs a CUSUM-style detector
//! over the relative-error stream. When the cumulative excess error
//! crosses its thresholds, the tier's health degrades
//! `Healthy → Suspect → Quarantined`; quarantine trips the predictor's
//! existing circuit breaker (PR 1) so `predict_checked` degrades past the
//! stale tier automatically, and signals the registry that a shadow
//! retrain is warranted.

use crate::predictor::{PredictionTier, QppPredictor, MODEL_TIERS};
use engine::plan::ALL_OP_TYPES;
use engine::OpType;
use ml::metrics::relative_error;
use ml::stats::{RollingWindow, Welford};

/// Health of one learned model tier, in degradation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelHealth {
    /// Residuals look like they did at calibration time.
    Healthy,
    /// The CUSUM statistic crossed the suspect threshold: residuals are
    /// elevated, but not yet confirmed as drift.
    Suspect,
    /// Drift confirmed. The tier's circuit breaker is tripped and a
    /// shadow retrain should be scheduled. Sticky until
    /// [`DriftMonitor::reset_tier`].
    Quarantined,
}

/// Configuration for the drift detector.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Capacity of the recent-residual window (the windowed mean relative
    /// error reported next to the all-time Welford statistics).
    pub window: usize,
    /// Expected per-observation mean relative error of a healthy model.
    /// `NaN` (the default) auto-calibrates it from the first
    /// [`MonitorConfig::calibration`] observations.
    pub baseline_error: f64,
    /// Number of observations used to auto-calibrate the baseline when
    /// [`MonitorConfig::baseline_error`] is NaN.
    pub calibration: usize,
    /// Slack added to the baseline before an observation counts as excess
    /// error (absorbs noise so the CUSUM statistic only accumulates on
    /// genuine degradation).
    pub slack: f64,
    /// CUSUM level at which a tier turns [`ModelHealth::Suspect`].
    pub suspect_threshold: f64,
    /// CUSUM level at which a tier turns [`ModelHealth::Quarantined`].
    pub quarantine_threshold: f64,
    /// Expected SLO pressure (degraded + deadline-missed + shed fraction of
    /// submitted requests) of a healthy serving tier; the second escalation
    /// signal fed by [`DriftMonitor::observe_slo`].
    pub slo_baseline: f64,
    /// Slack added to [`MonitorConfig::slo_baseline`] before a window's
    /// pressure counts as excess (absorbs transient load spikes).
    pub slo_slack: f64,
    /// Minimum requests a window must cover before it moves the SLO CUSUM;
    /// smaller windows are too noisy to act on and are ignored.
    pub slo_min_requests: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: 32,
            baseline_error: f64::NAN,
            calibration: 16,
            slack: 0.10,
            suspect_threshold: 1.0,
            quarantine_threshold: 3.0,
            slo_baseline: 0.05,
            slo_slack: 0.10,
            slo_min_requests: 16,
        }
    }
}

/// One aggregated serving-quality window: what happened to a tenant's
/// requests on one tier over some accounting interval.
///
/// The serving layer (qpp-serve) snapshots its per-tenant counters
/// periodically, diffs consecutive snapshots into an `SloWindow`, and feeds
/// it to [`DriftMonitor::observe_slo`]. Where [`DriftMonitor::observe`]
/// watches *accuracy* (residuals), this watches *service quality*: a model
/// that is so slow or so broken that requests degrade past it, miss
/// deadlines, or get shed is just as stale as one that mispredicts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloWindow {
    /// Requests answered at the tier the client asked for.
    pub served: u64,
    /// Requests answered, but by a cheaper tier than requested.
    pub degraded: u64,
    /// Requests refused because their deadline expired in queue.
    pub deadline_missed: u64,
    /// Requests shed at admission (rate limit or queue quota).
    pub shed: u64,
}

impl SloWindow {
    /// Total requests the window accounts for.
    pub fn total(&self) -> u64 {
        self.served + self.degraded + self.deadline_missed + self.shed
    }

    /// Fraction of the window's requests that missed their SLO: degraded,
    /// deadline-missed, or shed. 0.0 for an empty window.
    pub fn pressure(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.degraded + self.deadline_missed + self.shed) as f64 / total as f64
    }
}

/// Streaming residual state for one learned tier.
#[derive(Debug, Clone)]
pub struct TierState {
    /// All-time relative-error statistics (Welford, single pass).
    pub residuals: Welford,
    /// Mean relative error over the recent window.
    recent: RollingWindow,
    /// CUSUM statistic: cumulative error in excess of baseline + slack.
    pub cusum: f64,
    /// SLO-pressure CUSUM: cumulative window pressure in excess of
    /// `slo_baseline + slo_slack` (the second escalation signal).
    pub slo_cusum: f64,
    /// Calibrated (or configured) baseline mean relative error; NaN until
    /// calibration completes.
    pub baseline: f64,
    /// Welford accumulator used during auto-calibration.
    calibrating: Welford,
    /// Current health.
    pub health: ModelHealth,
}

impl TierState {
    fn new(cfg: &MonitorConfig) -> Self {
        TierState {
            residuals: Welford::new(),
            recent: RollingWindow::new(cfg.window),
            cusum: 0.0,
            slo_cusum: 0.0,
            baseline: cfg.baseline_error,
            calibrating: Welford::new(),
            health: ModelHealth::Healthy,
        }
    }

    /// Mean relative error over the recent window (0.0 before the first
    /// observation).
    pub fn windowed_error(&self) -> f64 {
        self.recent.mean()
    }

    /// Number of observations this tier has ingested.
    pub fn observations(&self) -> u64 {
        self.residuals.count()
    }
}

/// The feedback-loop drift detector.
///
/// One instance watches one serving predictor. Feed it
/// `(tier, prediction, observed)` triples via [`DriftMonitor::observe`]
/// (or [`DriftMonitor::ingest`] to also trip the predictor's breaker on
/// quarantine); read back health and statistics per tier.
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    config: MonitorConfig,
    tiers: [TierState; 3],
    /// Per-operator-type residual statistics (indexed by
    /// [`OpType::index`]), aggregated across tiers: localizes *which*
    /// operators drifted once a tier is quarantined.
    per_op: Vec<Welford>,
}

impl DriftMonitor {
    /// Creates a monitor with the given detector configuration.
    pub fn new(config: MonitorConfig) -> Self {
        let tiers = [
            TierState::new(&config),
            TierState::new(&config),
            TierState::new(&config),
        ];
        DriftMonitor {
            config,
            tiers,
            per_op: vec![Welford::new(); ALL_OP_TYPES.len()],
        }
    }

    /// The detector configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// Folds one `(prediction, observed latency)` pair for the given
    /// learned tier into the monitor and returns the tier's health after
    /// the update. Non-finite pairs are ignored (they are the breaker's
    /// job, not the drift detector's). Fallback tiers (cost scaling,
    /// training prior) are accepted and ignored: they have no model to
    /// quarantine.
    pub fn observe(&mut self, tier: PredictionTier, predicted: f64, observed: f64) -> ModelHealth {
        let Some(i) = MODEL_TIERS.iter().position(|t| *t == tier) else {
            return ModelHealth::Healthy;
        };
        if !predicted.is_finite() || !observed.is_finite() || observed < 0.0 {
            return self.tiers[i].health;
        }
        let err = relative_error(observed, predicted);
        let st = &mut self.tiers[i];
        st.residuals.push(err);
        st.recent.push(err);

        // Auto-calibrate the baseline from the first `calibration`
        // residuals when none was configured.
        if st.baseline.is_nan() {
            st.calibrating.push(err);
            if st.calibrating.count() >= self.config.calibration as u64 {
                st.baseline = st.calibrating.mean();
            }
            return st.health;
        }

        // One-sided CUSUM on the excess over baseline + slack.
        st.cusum = (st.cusum + err - (st.baseline + self.config.slack)).max(0.0);
        if st.health != ModelHealth::Quarantined {
            st.health = if st.cusum >= self.config.quarantine_threshold {
                ModelHealth::Quarantined
            } else if st.cusum >= self.config.suspect_threshold {
                ModelHealth::Suspect
            } else {
                ModelHealth::Healthy
            };
        }
        st.health
    }

    /// Like [`DriftMonitor::observe`], but also attributes the residual to
    /// the executed plan's operator types and trips the predictor's
    /// circuit breaker for the tier when the update quarantines it.
    /// Returns the tier's health after the update.
    pub fn ingest(
        &mut self,
        predictor: &QppPredictor,
        tier: PredictionTier,
        predicted: f64,
        observed: f64,
        op_types: &[OpType],
    ) -> ModelHealth {
        let health = self.observe(tier, predicted, observed);
        if predicted.is_finite() && observed.is_finite() && observed >= 0.0 {
            let err = relative_error(observed, predicted);
            for op in op_types {
                self.per_op[op.index()].push(err);
            }
        }
        if health == ModelHealth::Quarantined {
            predictor.trip_breaker(tier);
        }
        health
    }

    /// Folds one serving-quality window for the given learned tier into
    /// the monitor's second escalation signal and returns the tier's
    /// health after the update.
    ///
    /// Sustained SLO pressure — a high fraction of degraded, deadline-
    /// missed, or shed requests — escalates the same
    /// `Healthy → Suspect → Quarantined` ladder as residual drift, so
    /// degraded traffic drives a shadow retrain even when the few answers
    /// the stale tier still gives look accurate. Unlike residual-driven
    /// [`DriftMonitor::ingest`], this path deliberately does *not* trip
    /// the tier's circuit breaker: pressure means the tier is too slow or
    /// too contended, not that its answers are wrong, and disabling the
    /// accurate tier would only push more traffic down the degradation
    /// chain. Windows smaller than [`MonitorConfig::slo_min_requests`] are
    /// ignored; fallback tiers are accepted and ignored.
    pub fn observe_slo(&mut self, tier: PredictionTier, window: &SloWindow) -> ModelHealth {
        let Some(i) = MODEL_TIERS.iter().position(|t| *t == tier) else {
            return ModelHealth::Healthy;
        };
        let st = &mut self.tiers[i];
        if window.total() < self.config.slo_min_requests {
            return st.health;
        }
        let excess = window.pressure() - (self.config.slo_baseline + self.config.slo_slack);
        st.slo_cusum = (st.slo_cusum + excess).max(0.0);
        if st.health != ModelHealth::Quarantined {
            let slo_health = if st.slo_cusum >= self.config.quarantine_threshold {
                ModelHealth::Quarantined
            } else if st.slo_cusum >= self.config.suspect_threshold {
                ModelHealth::Suspect
            } else {
                ModelHealth::Healthy
            };
            // The two signals escalate, never de-escalate, each other.
            st.health = match (st.health, slo_health) {
                (ModelHealth::Quarantined, _) | (_, ModelHealth::Quarantined) => {
                    ModelHealth::Quarantined
                }
                (ModelHealth::Suspect, _) | (_, ModelHealth::Suspect) => ModelHealth::Suspect,
                _ => ModelHealth::Healthy,
            };
        }
        st.health
    }

    /// Current health of the given tier (fallback tiers are always
    /// healthy).
    pub fn health(&self, tier: PredictionTier) -> ModelHealth {
        MODEL_TIERS
            .iter()
            .position(|t| *t == tier)
            .map_or(ModelHealth::Healthy, |i| self.tiers[i].health)
    }

    /// Streaming residual state for the given learned tier; `None` for
    /// fallback tiers.
    pub fn tier(&self, tier: PredictionTier) -> Option<&TierState> {
        MODEL_TIERS
            .iter()
            .position(|t| *t == tier)
            .map(|i| &self.tiers[i])
    }

    /// All-time residual statistics for one operator type (aggregated
    /// across tiers via [`DriftMonitor::ingest`]).
    pub fn op_residuals(&self, op: OpType) -> &Welford {
        &self.per_op[op.index()]
    }

    /// True when any learned tier is quarantined — the registry's cue to
    /// start a shadow retrain.
    pub fn any_quarantined(&self) -> bool {
        self.tiers.iter().any(|t| t.health == ModelHealth::Quarantined)
    }

    /// Clears one tier's drift state (health, CUSUM, calibration) after a
    /// model swap; the all-time residual statistics are reset too, since
    /// they described the replaced model.
    pub fn reset_tier(&mut self, tier: PredictionTier) {
        if let Some(i) = MODEL_TIERS.iter().position(|t| *t == tier) {
            self.tiers[i] = TierState::new(&self.config);
        }
    }

    /// Clears all drift state (every tier and the per-operator
    /// statistics); called when the registry promotes a new model set.
    pub fn reset_all(&mut self) {
        for t in &mut self.tiers {
            *t = TierState::new(&self.config);
        }
        for w in &mut self.per_op {
            *w = Welford::new();
        }
    }
}

impl Default for DriftMonitor {
    fn default() -> Self {
        DriftMonitor::new(MonitorConfig::default())
    }
}

/// Smallest latency the SLO histogram resolves (100 ns).
const SLO_MIN_SECS: f64 = 1e-7;
/// Geometric buckets per decade: resolution ~26% per bucket, plenty for
/// p50/p99/p999 accounting at a fixed 100-slot footprint.
const SLO_BUCKETS_PER_DECADE: usize = 10;
/// Decades covered: 100 ns … 1000 s.
const SLO_DECADES: usize = 10;
const SLO_BUCKETS: usize = SLO_BUCKETS_PER_DECADE * SLO_DECADES;

/// A fixed-footprint, log-bucketed latency histogram for SLO accounting.
///
/// The serving layer records the latency of every *prediction* it answers
/// (the paper's models are themselves on a latency budget once they sit on
/// a system's admission-control path) and reads back tail quantiles —
/// p50/p99/p999 — without storing individual samples. Buckets are
/// geometric (10 per decade, 100 ns to 1000 s), so a quantile is resolved
/// to within ~26% of its true value while the recorder stays a flat
/// 100-slot array that is cheap to snapshot.
#[derive(Debug, Clone)]
pub struct SloRecorder {
    buckets: [u64; SLO_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for SloRecorder {
    fn default() -> Self {
        SloRecorder::new()
    }
}

impl SloRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        SloRecorder {
            buckets: [0; SLO_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(secs: f64) -> usize {
        let clamped = secs.max(SLO_MIN_SECS);
        let idx = ((clamped / SLO_MIN_SECS).log10() * SLO_BUCKETS_PER_DECADE as f64).floor();
        (idx as usize).min(SLO_BUCKETS - 1)
    }

    /// Records one latency observation (non-finite or negative values are
    /// ignored — a latency cannot be either).
    pub fn record(&mut self, secs: f64) {
        if !secs.is_finite() || secs < 0.0 {
            return;
        }
        self.buckets[Self::bucket_index(secs)] += 1;
        self.count += 1;
        self.sum += secs;
        self.min = self.min.min(secs);
        self.max = self.max.max(secs);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean recorded latency (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest recorded latency (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// The latency at quantile `q` in `[0, 1]`, resolved to the upper edge
    /// of its bucket (clamped to the observed min/max so the estimate
    /// never leaves the recorded range). NaN when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = SLO_MIN_SECS
                    * 10f64.powf((i + 1) as f64 / SLO_BUCKETS_PER_DECADE as f64);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Folds another recorder's observations into this one.
    pub fn merge(&mut self, other: &SloRecorder) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn configured() -> DriftMonitor {
        // Explicit baseline: no calibration phase, deterministic tests.
        DriftMonitor::new(MonitorConfig {
            baseline_error: 0.10,
            ..MonitorConfig::default()
        })
    }

    #[test]
    fn accurate_predictions_stay_healthy() {
        let mut m = configured();
        for _ in 0..500 {
            let h = m.observe(PredictionTier::Hybrid, 1.0, 1.05);
            assert_eq!(h, ModelHealth::Healthy);
        }
        assert_eq!(m.health(PredictionTier::Hybrid), ModelHealth::Healthy);
        assert!(!m.any_quarantined());
        let st = m.tier(PredictionTier::Hybrid).unwrap();
        assert_eq!(st.observations(), 500);
        assert!(st.windowed_error() < 0.06);
        assert_eq!(st.cusum, 0.0);
    }

    #[test]
    fn sustained_drift_escalates_to_quarantine() {
        let mut m = configured();
        // Model predicts 1.0 but the world now takes 3.0: relative error
        // ~0.67 per observation, excess ~0.47 over baseline + slack.
        let mut saw_suspect = false;
        let mut quarantined_at = None;
        for i in 0..50 {
            match m.observe(PredictionTier::Hybrid, 1.0, 3.0) {
                ModelHealth::Suspect => saw_suspect = true,
                ModelHealth::Quarantined => {
                    quarantined_at = Some(i);
                    break;
                }
                ModelHealth::Healthy => {}
            }
        }
        assert!(saw_suspect, "must pass through Suspect");
        let at = quarantined_at.expect("sustained drift must quarantine");
        assert!(at < 20, "quarantine took {at} observations");
        assert!(m.any_quarantined());
    }

    #[test]
    fn quarantine_is_sticky_until_reset() {
        let mut m = configured();
        while m.observe(PredictionTier::Hybrid, 1.0, 5.0) != ModelHealth::Quarantined {}
        // Even a long run of perfect predictions does not un-quarantine.
        for _ in 0..200 {
            assert_eq!(
                m.observe(PredictionTier::Hybrid, 1.0, 1.0),
                ModelHealth::Quarantined
            );
        }
        m.reset_tier(PredictionTier::Hybrid);
        assert_eq!(m.health(PredictionTier::Hybrid), ModelHealth::Healthy);
        assert_eq!(m.tier(PredictionTier::Hybrid).unwrap().observations(), 0);
    }

    #[test]
    fn occasional_outliers_do_not_quarantine() {
        let mut m = configured();
        for i in 0..300 {
            let observed = if i % 25 == 0 { 4.0 } else { 1.02 };
            m.observe(PredictionTier::Hybrid, 1.0, observed);
        }
        // The CUSUM drains between outliers; isolated spikes are noise.
        assert_ne!(m.health(PredictionTier::Hybrid), ModelHealth::Quarantined);
    }

    #[test]
    fn tiers_are_tracked_independently() {
        let mut m = configured();
        while m.observe(PredictionTier::OperatorLevel, 1.0, 5.0) != ModelHealth::Quarantined {}
        assert_eq!(m.health(PredictionTier::Hybrid), ModelHealth::Healthy);
        assert_eq!(m.health(PredictionTier::PlanLevel), ModelHealth::Healthy);
        assert_eq!(
            m.health(PredictionTier::OperatorLevel),
            ModelHealth::Quarantined
        );
    }

    #[test]
    fn fallback_tiers_are_ignored() {
        let mut m = configured();
        for _ in 0..100 {
            assert_eq!(
                m.observe(PredictionTier::CostScaling, 1.0, 100.0),
                ModelHealth::Healthy
            );
            assert_eq!(
                m.observe(PredictionTier::TrainingPrior, 1.0, 100.0),
                ModelHealth::Healthy
            );
        }
        assert!(m.tier(PredictionTier::CostScaling).is_none());
        assert!(!m.any_quarantined());
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut m = configured();
        m.observe(PredictionTier::Hybrid, f64::NAN, 1.0);
        m.observe(PredictionTier::Hybrid, 1.0, f64::INFINITY);
        m.observe(PredictionTier::Hybrid, 1.0, -1.0);
        assert_eq!(m.tier(PredictionTier::Hybrid).unwrap().observations(), 0);
    }

    #[test]
    fn auto_calibration_learns_the_baseline() {
        let mut m = DriftMonitor::new(MonitorConfig {
            calibration: 8,
            ..MonitorConfig::default()
        });
        // A model that is consistently ~40% off: with a fixed 10% baseline
        // this would quarantine, but calibration should absorb it as the
        // tier's normal behavior.
        for _ in 0..200 {
            m.observe(PredictionTier::Hybrid, 1.0, 1.4);
        }
        let st = m.tier(PredictionTier::Hybrid).unwrap();
        assert!(
            (st.baseline - relative_error(1.4, 1.0)).abs() < 1e-9,
            "baseline = {}",
            st.baseline
        );
        assert_eq!(m.health(PredictionTier::Hybrid), ModelHealth::Healthy);
        // And drift beyond the calibrated baseline still quarantines.
        let mut fired = false;
        for _ in 0..50 {
            if m.observe(PredictionTier::Hybrid, 1.0, 4.0) == ModelHealth::Quarantined {
                fired = true;
                break;
            }
        }
        assert!(fired, "drift past the calibrated baseline must fire");
    }

    #[test]
    fn slo_recorder_quantiles_bound_the_true_values() {
        let mut r = SloRecorder::new();
        // 1000 samples spread uniformly over 1..=1000 ms.
        for i in 1..=1000 {
            r.record(i as f64 * 1e-3);
        }
        assert_eq!(r.count(), 1000);
        assert!((r.mean() - 0.5005).abs() < 1e-9);
        assert_eq!(r.max(), 1.0);
        // Each quantile lands within one geometric bucket (~26%) above the
        // true value and never below the bucket's floor.
        for (q, truth) in [(0.5, 0.5), (0.99, 0.99), (0.999, 0.999)] {
            let est = r.quantile(q);
            assert!(est >= truth * 0.79, "q{q}: {est} vs {truth}");
            assert!(est <= truth * 1.27, "q{q}: {est} vs {truth}");
        }
        // Clamped to the observed range at the extremes.
        assert!(r.quantile(0.0) >= 1e-3);
        assert_eq!(r.quantile(1.0), 1.0);
    }

    #[test]
    fn slo_recorder_ignores_garbage_and_merges() {
        let mut r = SloRecorder::new();
        r.record(f64::NAN);
        r.record(-1.0);
        r.record(f64::INFINITY);
        assert_eq!(r.count(), 0);
        assert!(r.quantile(0.5).is_nan());
        r.record(0.010);
        let mut other = SloRecorder::new();
        other.record(0.020);
        other.record(0.030);
        r.merge(&other);
        assert_eq!(r.count(), 3);
        assert!((r.mean() - 0.020).abs() < 1e-12);
        // A sub-resolution latency clamps into the first bucket.
        let mut tiny = SloRecorder::new();
        tiny.record(0.0);
        assert_eq!(tiny.count(), 1);
        assert!(tiny.quantile(0.5) <= 1e-7 * 1.3);
    }

    #[test]
    fn slo_pressure_escalates_to_quarantine_without_tripping_accuracy() {
        let mut m = configured();
        // Sustained 80% pressure (most requests degraded or shed) against
        // a 5% baseline + 10% slack: excess 0.65 per window.
        let bad = SloWindow {
            served: 20,
            degraded: 50,
            deadline_missed: 10,
            shed: 20,
        };
        let mut saw_suspect = false;
        let mut quarantined_at = None;
        for i in 0..20 {
            match m.observe_slo(PredictionTier::Hybrid, &bad) {
                ModelHealth::Suspect => saw_suspect = true,
                ModelHealth::Quarantined => {
                    quarantined_at = Some(i);
                    break;
                }
                ModelHealth::Healthy => {}
            }
        }
        assert!(saw_suspect, "must pass through Suspect");
        let at = quarantined_at.expect("sustained SLO pressure must quarantine");
        assert!(at < 10, "quarantine took {at} windows");
        assert!(m.any_quarantined());
        // The residual CUSUM is untouched: this was a service-quality
        // escalation, not an accuracy one.
        assert_eq!(m.tier(PredictionTier::Hybrid).unwrap().cusum, 0.0);
        // Sticky until reset, like residual quarantine.
        let good = SloWindow {
            served: 100,
            ..SloWindow::default()
        };
        assert_eq!(
            m.observe_slo(PredictionTier::Hybrid, &good),
            ModelHealth::Quarantined
        );
        m.reset_tier(PredictionTier::Hybrid);
        assert_eq!(m.health(PredictionTier::Hybrid), ModelHealth::Healthy);
        assert_eq!(m.tier(PredictionTier::Hybrid).unwrap().slo_cusum, 0.0);
    }

    #[test]
    fn healthy_slo_windows_stay_healthy_and_small_windows_are_ignored() {
        let mut m = configured();
        // 4% pressure, under baseline + slack: CUSUM never accumulates.
        let good = SloWindow {
            served: 96,
            degraded: 4,
            ..SloWindow::default()
        };
        for _ in 0..200 {
            assert_eq!(
                m.observe_slo(PredictionTier::OperatorLevel, &good),
                ModelHealth::Healthy
            );
        }
        assert_eq!(m.tier(PredictionTier::OperatorLevel).unwrap().slo_cusum, 0.0);
        // All-shed windows below slo_min_requests are too small to act on.
        let tiny = SloWindow {
            shed: 15,
            ..SloWindow::default()
        };
        for _ in 0..200 {
            assert_eq!(
                m.observe_slo(PredictionTier::OperatorLevel, &tiny),
                ModelHealth::Healthy
            );
        }
        // Fallback tiers have no model to quarantine.
        let awful = SloWindow {
            shed: 1000,
            ..SloWindow::default()
        };
        assert_eq!(
            m.observe_slo(PredictionTier::CostScaling, &awful),
            ModelHealth::Healthy
        );
        assert!(!m.any_quarantined());
    }

    #[test]
    fn slo_window_accounting() {
        let w = SloWindow {
            served: 50,
            degraded: 25,
            deadline_missed: 15,
            shed: 10,
        };
        assert_eq!(w.total(), 100);
        assert!((w.pressure() - 0.5).abs() < 1e-12);
        assert_eq!(SloWindow::default().total(), 0);
        assert_eq!(SloWindow::default().pressure(), 0.0);
    }

    #[test]
    fn welford_residuals_match_two_pass() {
        let mut m = configured();
        let errs: Vec<f64> = (0..40)
            .map(|i| {
                let obs = 1.0 + (i as f64) * 0.01;
                m.observe(PredictionTier::PlanLevel, 1.0, obs);
                relative_error(obs, 1.0)
            })
            .collect();
        let st = m.tier(PredictionTier::PlanLevel).unwrap();
        assert!((st.residuals.mean() - ml::stats::mean(&errs)).abs() < 1e-12);
        assert!((st.residuals.variance() - ml::stats::variance(&errs)).abs() < 1e-12);
    }
}
