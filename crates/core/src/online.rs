//! Online model building (Section 4).
//!
//! When a query with an unforeseen plan arrives, we first answer with the
//! pre-built models, then enumerate the *incoming plan's* sub-plans and
//! build plan-level models for exactly those that occur in the training
//! data — guaranteeing that any shared high-error fragment gets a model,
//! even if the offline strategies discarded it. A freshly built model is
//! used only when its estimated accuracy on the training occurrences beats
//! the operator-level prediction of the same fragment.

use crate::dataset::ExecutedQuery;
use crate::features::{FeatureSource, NodeView};
use crate::hybrid::{train_subplan_model, HybridConfig, HybridModel, SubplanModel};
use crate::pred_cache::PredictionCache;
use crate::subplan::{arena_structure_hashes, StructureKey, SubplanIndex};
use engine::arena::PlanArena;
use engine::plan::PlanNode;
use ml::metrics::relative_error;
use std::collections::HashMap;

/// Online predictor configuration.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Minimum training occurrences for a fragment to get a model.
    pub min_frequency: usize,
    /// Minimum fragment size in operators.
    pub min_size: usize,
    /// Model-building settings shared with the hybrid method.
    pub hybrid: HybridConfig,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            min_frequency: 5,
            min_size: 2,
            hybrid: HybridConfig::default(),
        }
    }
}

/// The online predictor: owns the training data index and a cache of
/// models built on demand.
pub struct OnlinePredictor<'a> {
    train: Vec<&'a ExecutedQuery>,
    views: Vec<Vec<NodeView>>,
    index: SubplanIndex,
    base: HybridModel,
    config: OnlineConfig,
    /// Cache: `None` records a fragment whose model did not beat the
    /// operator-level prediction (so we don't rebuild it).
    cache: HashMap<StructureKey, Option<SubplanModel>>,
    /// Memo cache of sub-plan predictions shared across queries. Valid for
    /// the predictor's lifetime: the model cache above pins each structure
    /// key to one trained sub-model, so a refined model's key set (hashed
    /// into [`HybridModel::plan_model_signature`]) determines its
    /// prediction function.
    pred_cache: PredictionCache,
}

impl<'a> OnlinePredictor<'a> {
    /// Creates a predictor over the training data. `base` supplies the
    /// pre-built models (pure operator-level or an offline hybrid).
    pub fn new(train: Vec<&'a ExecutedQuery>, base: HybridModel, config: OnlineConfig) -> Self {
        let source = base.op_model.source();
        let views: Vec<Vec<NodeView>> = train.iter().map(|q| q.views(source)).collect();
        let plans: Vec<(u8, &PlanNode)> = train.iter().map(|q| (q.template, &q.plan)).collect();
        let index = SubplanIndex::build(&plans, config.min_size);
        OnlinePredictor {
            train,
            views,
            index,
            base,
            config,
            cache: HashMap::new(),
            pred_cache: PredictionCache::default(),
        }
    }

    /// Feature source in use.
    pub fn source(&self) -> FeatureSource {
        self.base.op_model.source()
    }

    /// Replaces the pre-built base model (a registry hot swap reaching the
    /// online layer). Every derived state is invalidated: the per-fragment
    /// model decisions were scored against the old operator models, the
    /// memo cache is keyed by the old model signature, and the training
    /// views must match the new base's feature source.
    pub fn rebase(&mut self, base: HybridModel) {
        if base.op_model.source() != self.source() {
            let source = base.op_model.source();
            self.views = self.train.iter().map(|q| q.views(source)).collect();
        }
        self.base = base;
        self.cache.clear();
        self.pred_cache.clear();
    }

    /// The immediate prediction with pre-built models, and the refined
    /// prediction after online model building (the paper's progressive
    /// improvement).
    pub fn predict_progressive(&mut self, plan: &PlanNode, views: &[NodeView]) -> (f64, f64) {
        let initial = self.base.predict_plan(plan, views).latency;
        let refined = self.predict_refined(plan, views);
        (initial, refined)
    }

    /// Predicts after online model building only.
    pub fn predict(&mut self, plan: &PlanNode, views: &[NodeView]) -> f64 {
        self.predict_refined(plan, views)
    }

    /// Convenience over an executed query (test workloads).
    pub fn predict_query(&mut self, query: &ExecutedQuery) -> f64 {
        let views = query.views(self.source());
        self.predict(&query.plan, &views)
    }

    /// Predicts a batch of queries in input order, bit-identical to a
    /// serial [`OnlinePredictor::predict_query`] loop. The walk is serial
    /// (model building mutates the predictor), but the sub-plan memo cache
    /// makes repeated fragments across the batch near-free.
    pub fn predict_batch(&mut self, queries: &[&ExecutedQuery]) -> Vec<f64> {
        queries.iter().map(|q| self.predict_query(q)).collect()
    }

    fn predict_refined(&mut self, plan: &PlanNode, views: &[NodeView]) -> f64 {
        // Enumerate the incoming plan's sub-plans (with their feature
        // vectors) and build candidate models for those present in the
        // training data. The plan is flattened once; the same arena and
        // hash array then drive the memoized prediction walk.
        let arena = PlanArena::flatten(plan);
        let hashes = arena_structure_hashes(&arena);
        let keys = collect_keys_with_features(&arena, &hashes, views, self.config.min_size);
        let mut model = self.base.clone();
        for (key, features) in keys {
            if model.plan_models.contains_key(&key) {
                continue;
            }
            if let Some(sub) = self.build_if_worthwhile(key) {
                // Applicability: only trust the model where it was trained.
                // Out-of-range fragments stay with the operator models.
                if sub.run.in_range(&features, 1.0) {
                    model.plan_models.insert(key, sub);
                }
            }
        }
        model.predict_memo_arena(&arena, &hashes, views, &self.pred_cache)
    }

    /// Builds (or fetches) the model for a fragment and returns it only if
    /// it beats the operator-level prediction on the training occurrences.
    fn build_if_worthwhile(&mut self, key: StructureKey) -> Option<SubplanModel> {
        if let Some(cached) = self.cache.get(&key) {
            return cached.clone();
        }
        let decision = self.evaluate_candidate(key);
        self.cache.insert(key, decision.clone());
        decision
    }

    fn evaluate_candidate(&self, key: StructureKey) -> Option<SubplanModel> {
        let info = self.index.get(key)?;
        if info.frequency() < self.config.min_frequency {
            return None;
        }
        let sub = train_subplan_model(key, &self.train, &self.views, &self.index, &self.config.hybrid)
            .ok()?;
        // Estimated accuracies on the training occurrences: plan-level
        // model vs the operator-level composition. The plan model is
        // scored OUT-OF-FOLD (retrained on k−1 folds, scored on the
        // held-out one) so an overfit fragment model cannot win on
        // in-sample error.
        let occs = &info.occurrences;
        let feat_of = |occ: &crate::subplan::Occurrence| -> Vec<f64> {
            let q = self.train[occ.query];
            let node = crate::subplan::subtree_at(&q.plan, occ.node_idx);
            let slice = &self.views[occ.query][occ.node_idx..occ.node_idx + occ.size];
            crate::features::plan_features(node, slice)
        };
        let feats: Vec<Vec<f64>> = if occs.len() > 1 && ml::par::threads() > 1 {
            ml::par::par_map(occs, |_, occ| feat_of(occ))
        } else {
            occs.iter().map(feat_of).collect()
        };
        let actuals: Vec<f64> = occs
            .iter()
            .map(|occ| self.train[occ.query].trace.timings[occ.node_idx].run)
            .collect();

        let k = 3.min(occs.len()).max(2);
        let folds = ml::cv::kfold(occs.len(), k, 0xB0A7);
        // Folds score independently; each returns its partial error sums,
        // which are reduced in fold order — the same accumulation whether
        // folds ran on one thread or several.
        let score_fold = |fold: &ml::cv::Fold| -> (f64, f64, usize) {
            let mut x = ml::Dataset::new(crate::features::plan_feature_count());
            let mut y = Vec::new();
            for &i in &fold.train {
                x.push_row(&feats[i]);
                y.push(actuals[i]);
            }
            let cfg = &self.config.hybrid;
            let inner_folds =
                ml::cv::kfold(x.n_rows(), cfg.folds.min(x.n_rows()).max(2), cfg.seed);
            let Ok(fold_model) = crate::plan_model::FeatureModel::train(
                &x,
                &y,
                &inner_folds,
                &cfg.learner,
                &cfg.selection,
                cfg.log_target,
            ) else {
                return (0.0, 0.0, 0);
            };
            let mut plan_err = 0.0;
            let mut op_err = 0.0;
            let mut n = 0usize;
            for &i in &fold.test {
                if actuals[i] <= 0.0 {
                    continue;
                }
                plan_err += relative_error(actuals[i], fold_model.predict(&feats[i]).max(0.0));
                let occ = occs[i];
                let q = self.train[occ.query];
                let node = crate::subplan::subtree_at(&q.plan, occ.node_idx);
                let slice = &self.views[occ.query][occ.node_idx..occ.node_idx + occ.size];
                let op_pred = self.base.op_model.predict_plan(node, slice).node_times[0].1;
                op_err += relative_error(actuals[i], op_pred);
                n += 1;
            }
            (plan_err, op_err, n)
        };
        let fold_scores: Vec<(f64, f64, usize)> = if folds.len() > 1 && ml::par::threads() > 1 {
            ml::par::par_map(&folds, |_, fold| score_fold(fold))
        } else {
            folds.iter().map(score_fold).collect()
        };
        let mut plan_err = 0.0;
        let mut op_err = 0.0;
        let mut n = 0usize;
        for (pe, oe, fn_) in fold_scores {
            plan_err += pe;
            op_err += oe;
            n += fn_;
        }
        if n == 0 || plan_err >= op_err {
            return None;
        }
        Some(sub)
    }
}

/// Collects (structure key, plan-level feature vector) for every sub-plan
/// of at least `min_size` operators, first occurrence per key, in
/// pre-order. One linear pass over the arena: sizes and structure hashes
/// are already memoized, and fragment features come from contiguous
/// slices (the boxed walk re-ran `node_count` and `structure_key` per
/// node, which was O(n²)).
fn collect_keys_with_features(
    arena: &PlanArena<'_>,
    hashes: &[u64],
    views: &[NodeView],
    min_size: usize,
) -> Vec<(StructureKey, Vec<f64>)> {
    let mut out: Vec<(StructureKey, Vec<f64>)> = Vec::new();
    for idx in arena.preorder() {
        let size = arena.size(idx);
        if size < min_size {
            continue;
        }
        let k = StructureKey(hashes[idx]);
        if out.iter().any(|(kk, _)| *kk == k) {
            continue;
        }
        let slice = &views[idx..idx + size];
        out.push((
            k,
            crate::features::plan_features_slice(arena.subtree_nodes(idx), slice),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryDataset;
    use crate::op_model::{OpLevelModel, OpModelConfig};
    use engine::{Catalog, Simulator};
    use ml::mean_relative_error;
    use tpch::Workload;

    /// Simulator with the jitter tuned down: these tests assert model
    /// accuracy, which the default absolute jitter would swamp at the tiny
    /// scale factors used here.
    fn quiet_sim() -> Simulator {
        Simulator::with_config(engine::SimConfig {
            additive_noise_secs: 0.05,
            ..engine::SimConfig::default()
        })
    }

    fn dataset(templates: &[u8]) -> QueryDataset {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(templates, 10, 0.1, 7);
        QueryDataset::execute(&catalog, &workload, &quiet_sim(), 11, f64::INFINITY)
    }

    #[test]
    fn online_beats_or_matches_operator_level_on_unseen_template() {
        let ds = dataset(&[1, 3, 6, 10, 14]);
        let (train, test) = ds.leave_template_out(10);
        let op = OpLevelModel::train(&train, &OpModelConfig::default()).unwrap();
        let op_preds: Vec<f64> = test.iter().map(|q| op.predict(q)).collect();
        let actual: Vec<f64> = test.iter().map(|q| q.latency()).collect();
        let op_err = mean_relative_error(&actual, &op_preds);

        let mut online = OnlinePredictor::new(
            train,
            HybridModel::operator_only(op),
            OnlineConfig {
                min_frequency: 3,
                ..OnlineConfig::default()
            },
        );
        let online_preds: Vec<f64> = test.iter().map(|q| online.predict_query(q)).collect();
        let online_err = mean_relative_error(&actual, &online_preds);
        // Online may fall back to pure operator-level when no shared
        // fragment helps, but must never be wildly worse.
        assert!(
            online_err <= op_err * 1.5 + 0.05,
            "online {online_err} vs op {op_err}"
        );
    }

    #[test]
    fn progressive_prediction_returns_both_stages() {
        let ds = dataset(&[1, 3, 6]);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
        let source = op.source();
        let mut online = OnlinePredictor::new(
            refs.clone(),
            HybridModel::operator_only(op),
            OnlineConfig::default(),
        );
        let q = refs[0];
        let views = q.views(source);
        let (initial, refined) = online.predict_progressive(&q.plan, &views);
        assert!(initial.is_finite() && refined.is_finite());
        assert!(initial >= 0.0 && refined >= 0.0);
    }

    #[test]
    fn cache_prevents_rebuilding() {
        let ds = dataset(&[3, 6]);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
        let source = op.source();
        let mut online = OnlinePredictor::new(
            refs.clone(),
            HybridModel::operator_only(op),
            OnlineConfig {
                min_frequency: 3,
                ..OnlineConfig::default()
            },
        );
        let q = refs[0];
        let views = q.views(source);
        let a = online.predict(&q.plan, &views);
        let cached_entries = online.cache.len();
        let b = online.predict(&q.plan, &views);
        assert_eq!(a, b);
        assert_eq!(online.cache.len(), cached_entries);
    }

    #[test]
    fn rebase_invalidates_cached_decisions() {
        let ds = dataset(&[3, 6]);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
        let mut online = OnlinePredictor::new(
            refs.clone(),
            HybridModel::operator_only(op),
            OnlineConfig {
                min_frequency: 3,
                ..OnlineConfig::default()
            },
        );
        let _ = online.predict_query(refs[0]);
        // Swap in a base retrained on half the data: the fragment
        // decisions and memoized predictions scored against the old base
        // must not survive.
        let half: Vec<&ExecutedQuery> = refs[..refs.len() / 2].to_vec();
        let op2 = OpLevelModel::train(&half, &OpModelConfig::default()).unwrap();
        online.rebase(HybridModel::operator_only(op2));
        assert!(online.cache.is_empty());
        assert_eq!(online.pred_cache.stats().entries, 0);
        assert!(online.predict_query(refs[0]).is_finite());
    }
}
