//! Training data: executed queries with logged features and performance.
//!
//! Mirrors the paper's instrumentation (Section 5.1): for each query we
//! log the execution plan, the optimizer estimates, the actual values of
//! features, and the performance metrics (per-operator start-/run-times
//! and total latency). A one-hour execution-time limit is applied when
//! building datasets, exactly like the paper's setup.

use crate::features::{node_views, FeatureSource, NodeView};
use engine::plan::PlanNode;
use engine::recost::{recost_truth, TruthCosts};
use engine::sim::{Simulator, Trace};
use engine::{Catalog, Planner};
use tpch::workload::Workload;

/// The paper's per-query execution-time limit (one hour).
pub const ONE_HOUR_SECS: f64 = 3600.0;

/// One executed query: plan, logged features, observed performance.
#[derive(Debug, Clone)]
pub struct ExecutedQuery {
    /// TPC-H template number.
    pub template: u8,
    /// The physical plan (estimate- and truth-annotated).
    pub plan: PlanNode,
    /// Truth-valued analytical costs (for actual-feature experiments).
    pub truth_costs: TruthCosts,
    /// Observed per-operator timings (pre-order) and total latency.
    pub trace: Trace,
}

impl ExecutedQuery {
    /// Observed query latency in seconds.
    pub fn latency(&self) -> f64 {
        self.trace.total_secs
    }

    /// Observed physical disk traffic in 8 KiB pages (the second
    /// performance metric of the paper family — Section 6 discusses
    /// predicting multiple metrics; reference [1] predicts disk I/O).
    pub fn total_io_pages(&self) -> f64 {
        self.trace.io_pages.iter().sum()
    }

    /// Per-node feature views under the given source.
    pub fn views(&self, source: FeatureSource) -> Vec<NodeView> {
        match source {
            FeatureSource::Estimated => node_views(&self.plan, source, None),
            FeatureSource::Actual => node_views(&self.plan, source, Some(&self.truth_costs)),
        }
    }
}

/// A dataset of executed queries (the paper's "training data").
#[derive(Debug, Clone, Default)]
pub struct QueryDataset {
    /// Executed queries, template-major order.
    pub queries: Vec<ExecutedQuery>,
    /// Queries dropped for exceeding the execution-time limit, per
    /// template (paper Section 5.1: 38 of 55 template-9 queries at 10 GB).
    pub timed_out: Vec<(u8, usize)>,
}

impl QueryDataset {
    /// Executes a workload and collects the dataset, dropping queries whose
    /// simulated latency exceeds `time_limit_secs` (pass `f64::INFINITY`
    /// to keep everything).
    pub fn execute(
        catalog: &Catalog,
        workload: &Workload,
        simulator: &Simulator,
        seed: u64,
        time_limit_secs: f64,
    ) -> QueryDataset {
        let planner = Planner::new(catalog);
        let work_mem = simulator.config().work_mem;
        let mut queries = Vec::with_capacity(workload.len());
        let mut timeouts: Vec<(u8, usize)> = Vec::new();
        for (i, spec) in workload.queries.iter().enumerate() {
            let plan = planner.plan(spec);
            let trace = simulator.execute(&plan, catalog.sf, seed.wrapping_add(i as u64));
            if trace.total_secs > time_limit_secs {
                match timeouts.iter_mut().find(|(t, _)| *t == spec.template) {
                    Some((_, n)) => *n += 1,
                    None => timeouts.push((spec.template, 1)),
                }
                continue;
            }
            let truth_costs = recost_truth(&plan, work_mem);
            queries.push(ExecutedQuery {
                template: spec.template,
                plan,
                truth_costs,
                trace,
            });
        }
        QueryDataset {
            queries,
            timed_out: timeouts,
        }
    }

    /// Number of retained queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries were retained.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Template labels per query (strata for stratified CV).
    pub fn strata(&self) -> Vec<usize> {
        self.queries.iter().map(|q| q.template as usize).collect()
    }

    /// Observed latencies per query.
    pub fn latencies(&self) -> Vec<f64> {
        self.queries.iter().map(ExecutedQuery::latency).collect()
    }

    /// Distinct templates present, ascending.
    pub fn templates(&self) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::new();
        for q in &self.queries {
            if !out.contains(&q.template) {
                out.push(q.template);
            }
        }
        out.sort_unstable();
        out
    }

    /// Borrowed subset by indices.
    pub fn subset(&self, idx: &[usize]) -> Vec<&ExecutedQuery> {
        idx.iter().map(|&i| &self.queries[i]).collect()
    }

    /// Splits by template: (training = all others, test = `held_out`).
    pub fn leave_template_out(&self, held_out: u8) -> (Vec<&ExecutedQuery>, Vec<&ExecutedQuery>) {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for q in &self.queries {
            if q.template == held_out {
                test.push(q);
            } else {
                train.push(q);
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dataset() -> QueryDataset {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6], 4, 0.1, 7);
        QueryDataset::execute(&catalog, &workload, &Simulator::new(), 11, f64::INFINITY)
    }

    #[test]
    fn executes_and_logs_every_query() {
        let ds = small_dataset();
        assert_eq!(ds.len(), 12);
        assert!(ds.timed_out.is_empty());
        for q in &ds.queries {
            assert!(q.latency() > 0.0);
            assert_eq!(q.trace.timings.len(), q.plan.node_count());
            assert_eq!(q.truth_costs.costs.len(), q.plan.node_count());
        }
        assert_eq!(ds.templates(), vec![1, 3, 6]);
        assert_eq!(ds.strata().len(), 12);
    }

    #[test]
    fn time_limit_drops_queries() {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 6], 3, 0.1, 7);
        let ds = QueryDataset::execute(&catalog, &workload, &Simulator::new(), 11, 0.5);
        // Template 1 at SF 0.1 takes > 0.5 s; template 6 is faster but may
        // also exceed it — either way something must be dropped and counts
        // must reconcile.
        let dropped: usize = ds.timed_out.iter().map(|(_, n)| n).sum();
        assert_eq!(ds.len() + dropped, 6);
        assert!(dropped > 0);
    }

    #[test]
    fn leave_template_out_splits() {
        let ds = small_dataset();
        let (train, test) = ds.leave_template_out(3);
        assert_eq!(test.len(), 4);
        assert_eq!(train.len(), 8);
        assert!(test.iter().all(|q| q.template == 3));
    }

    #[test]
    fn views_expose_both_sources() {
        let ds = small_dataset();
        let q = &ds.queries[0];
        let est = q.views(FeatureSource::Estimated);
        let act = q.views(FeatureSource::Actual);
        assert_eq!(est.len(), act.len());
    }
}
