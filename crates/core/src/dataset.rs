//! Training data: executed queries with logged features and performance.
//!
//! Mirrors the paper's instrumentation (Section 5.1): for each query we
//! log the execution plan, the optimizer estimates, the actual values of
//! features, and the performance metrics (per-operator start-/run-times
//! and total latency). A one-hour execution-time limit is applied when
//! building datasets, exactly like the paper's setup.

use crate::features::{node_views, plan_features_arena, FeatureSource, NodeView};
use engine::faults::{DriftPlan, ExecError, FaultPlan};
use engine::plan::PlanNode;
use engine::recost::{recost_truth, TruthCosts};
use engine::sim::{Simulator, Trace};
use engine::{Catalog, Planner};
use tpch::workload::Workload;

/// The paper's per-query execution-time limit (one hour).
pub const ONE_HOUR_SECS: f64 = 3600.0;

/// Robustness policy for dataset collection: retries, backoff, and
/// outlier quarantine.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectionConfig {
    /// Retries per query after a failed attempt (0 = single attempt).
    pub max_retries: usize,
    /// Base of the deterministic exponential backoff: retry `k` (1-based)
    /// waits `backoff_base_secs * 2^(k-1)` simulated seconds. Tracked in
    /// the report; the simulator itself does not sleep.
    pub backoff_base_secs: f64,
    /// Robust z-score (median/MAD in log-latency space, per template)
    /// beyond which a successful execution is quarantined as an outlier.
    /// `f64::INFINITY` disables quarantine.
    pub quarantine_zscore: f64,
}

impl Default for CollectionConfig {
    fn default() -> Self {
        CollectionConfig {
            max_retries: 2,
            backoff_base_secs: 0.25,
            quarantine_zscore: 3.5,
        }
    }
}

impl CollectionConfig {
    /// The pre-fault-tolerance policy: one attempt per query, keep every
    /// successful execution. [`QueryDataset::execute`] uses this, so its
    /// behavior (and its traces) are identical to the original collector.
    pub fn trusting() -> CollectionConfig {
        CollectionConfig {
            max_retries: 0,
            backoff_base_secs: 0.0,
            quarantine_zscore: f64::INFINITY,
        }
    }
}

/// What happened while collecting a dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollectionReport {
    /// Queries in the workload.
    pub attempted: usize,
    /// Queries that made it into the dataset.
    pub succeeded: usize,
    /// Retry attempts performed (across all queries).
    pub retried: usize,
    /// Queries dropped after exhausting retries on aborts.
    pub dropped_aborted: usize,
    /// Queries dropped after exhausting retries on timeout-budget misses.
    pub dropped_timeout: usize,
    /// Queries dropped for exceeding the collection time limit (the
    /// paper's one-hour rule; also recorded in `QueryDataset::timed_out`).
    pub dropped_over_limit: usize,
    /// Successful executions quarantined as outliers or for non-finite
    /// logged features.
    pub quarantined: usize,
    /// Total simulated backoff time spent on retries, in seconds.
    pub backoff_secs: f64,
}

impl CollectionReport {
    /// Queries dropped for any reason (excluding quarantine).
    pub fn dropped(&self) -> usize {
        self.dropped_aborted + self.dropped_timeout + self.dropped_over_limit
    }

    /// True when every query is accounted for:
    /// `succeeded + dropped + quarantined == attempted`.
    pub fn reconciles(&self) -> bool {
        self.succeeded + self.dropped() + self.quarantined == self.attempted
    }
}

/// Result of running one workload query to completion (all attempts),
/// produced on a worker thread and merged into the report serially.
struct QueryAttemptResult {
    /// Failed attempts that were retried (feeds `CollectionReport::retried`
    /// and the deterministic backoff replay).
    retried: usize,
    outcome: AttemptOutcome,
}

enum AttemptOutcome {
    /// The query executed within limits and enters the dataset.
    Executed(Box<ExecutedQuery>),
    /// All attempts missed the simulator's timeout budget.
    DroppedTimeout,
    /// All attempts aborted.
    DroppedAborted,
    /// Executed, but past the collection time limit (the one-hour rule).
    OverLimit { template: u8 },
}

/// One executed query: plan, logged features, observed performance.
#[derive(Debug, Clone)]
pub struct ExecutedQuery {
    /// TPC-H template number.
    pub template: u8,
    /// The physical plan (estimate- and truth-annotated).
    pub plan: PlanNode,
    /// Truth-valued analytical costs (for actual-feature experiments).
    pub truth_costs: TruthCosts,
    /// Observed per-operator timings (pre-order) and total latency.
    pub trace: Trace,
}

impl ExecutedQuery {
    /// Observed query latency in seconds.
    pub fn latency(&self) -> f64 {
        self.trace.total_secs
    }

    /// Observed physical disk traffic in 8 KiB pages (the second
    /// performance metric of the paper family — Section 6 discusses
    /// predicting multiple metrics; reference [1] predicts disk I/O).
    pub fn total_io_pages(&self) -> f64 {
        self.trace.io_pages.iter().sum()
    }

    /// Per-node feature views under the given source.
    pub fn views(&self, source: FeatureSource) -> Vec<NodeView> {
        match source {
            FeatureSource::Estimated => node_views(&self.plan, source, None),
            FeatureSource::Actual => node_views(&self.plan, source, Some(&self.truth_costs)),
        }
    }
}

/// A dataset of executed queries (the paper's "training data").
#[derive(Debug, Clone, Default)]
pub struct QueryDataset {
    /// Executed queries, template-major order.
    pub queries: Vec<ExecutedQuery>,
    /// Queries dropped for exceeding the execution-time limit, per
    /// template (paper Section 5.1: 38 of 55 template-9 queries at 10 GB).
    pub timed_out: Vec<(u8, usize)>,
}

impl QueryDataset {
    /// Executes a workload and collects the dataset, dropping queries whose
    /// simulated latency exceeds `time_limit_secs` (pass `f64::INFINITY`
    /// to keep everything).
    ///
    /// Equivalent to [`QueryDataset::execute_with_faults`] with no faults
    /// and the trusting collection policy; per-query execution seeds are
    /// identical, so traces are too.
    pub fn execute(
        catalog: &Catalog,
        workload: &Workload,
        simulator: &Simulator,
        seed: u64,
        time_limit_secs: f64,
    ) -> QueryDataset {
        QueryDataset::execute_with_faults(
            catalog,
            workload,
            simulator,
            seed,
            time_limit_secs,
            &FaultPlan::none(),
            &CollectionConfig::trusting(),
        )
        .0
    }

    /// Executes a workload under a fault-injection policy and a
    /// robustness policy, returning the surviving dataset plus a
    /// [`CollectionReport`] accounting for every query.
    ///
    /// Failed attempts (aborts, timeout-budget misses) are retried up to
    /// `cfg.max_retries` times with deterministic exponential backoff and
    /// a fresh, deterministic execution seed per attempt. Successful
    /// executions are quarantined when their logged features or latency
    /// are non-finite, or when their log-latency is a robust outlier
    /// within their template group (median/MAD z-score above
    /// `cfg.quarantine_zscore`, groups of at least five).
    pub fn execute_with_faults(
        catalog: &Catalog,
        workload: &Workload,
        simulator: &Simulator,
        seed: u64,
        time_limit_secs: f64,
        faults: &FaultPlan,
        cfg: &CollectionConfig,
    ) -> (QueryDataset, CollectionReport) {
        QueryDataset::execute_drifted(
            catalog,
            workload,
            simulator,
            seed,
            time_limit_secs,
            faults,
            cfg,
            &DriftPlan::none(),
        )
    }

    /// [`QueryDataset::execute_with_faults`] under workload drift: queries
    /// are executed in workload order through `drift`, which can ramp up
    /// observed latencies (data growth) or skew the logged optimizer
    /// estimates away from the truth annotations (selectivity shift) as
    /// the stream progresses. With [`DriftPlan::none`] this is exactly
    /// `execute_with_faults`.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_drifted(
        catalog: &Catalog,
        workload: &Workload,
        simulator: &Simulator,
        seed: u64,
        time_limit_secs: f64,
        faults: &FaultPlan,
        cfg: &CollectionConfig,
        drift: &DriftPlan,
    ) -> (QueryDataset, CollectionReport) {
        let planner = Planner::new(catalog);
        let work_mem = simulator.config().work_mem;
        let mut queries = Vec::with_capacity(workload.len());
        let mut timeouts: Vec<(u8, usize)> = Vec::new();
        let mut report = CollectionReport {
            attempted: workload.len(),
            ..CollectionReport::default()
        };
        // Every query owns an independent seeded RNG (its attempt seeds
        // derive only from `seed`, its workload index, and the attempt
        // number), so queries can execute on worker threads while staying
        // byte-identical to the serial path. The report is rebuilt from the
        // per-query results afterwards, in workload order, replaying the
        // same floating-point accumulation the serial loop performed.
        let run_query = |i: usize, spec: &tpch::QuerySpec| -> QueryAttemptResult {
            let mut plan = planner.plan(spec);
            let mut outcome: Option<(Trace, u64)> = None;
            let mut last_err: Option<ExecError> = None;
            let mut retried = 0usize;
            for attempt in 0..=cfg.max_retries {
                // Attempt 0 uses exactly the seed `execute` always used
                // (seed compatibility); retries decorrelate with a large
                // odd multiplier.
                let exec_seed = seed
                    .wrapping_add(i as u64)
                    .wrapping_add((attempt as u64).wrapping_mul(0x5851_F42D_4C95_7F2D));
                if attempt > 0 {
                    retried += 1;
                }
                match simulator.try_execute_drifted(&plan, catalog.sf, exec_seed, faults, drift, i)
                {
                    Ok(trace) => {
                        outcome = Some((trace, exec_seed));
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            let Some((trace, exec_seed)) = outcome else {
                let outcome = match last_err {
                    Some(ExecError::Timeout { .. }) => AttemptOutcome::DroppedTimeout,
                    _ => AttemptOutcome::DroppedAborted,
                };
                return QueryAttemptResult { retried, outcome };
            };
            if trace.total_secs > time_limit_secs {
                return QueryAttemptResult {
                    retried,
                    outcome: AttemptOutcome::OverLimit {
                        template: spec.template,
                    },
                };
            }
            // Corrupt the *logged* estimates after execution: the truth
            // annotations (the simulator's input) are untouched, exactly
            // like a stats bug that garbles what gets written to the log.
            if faults.decide(exec_seed).corrupt_estimates {
                faults.corrupt_estimates(&mut plan, exec_seed);
            }
            // Selectivity-shift drift skews the *logged* estimates by the
            // query's position in the stream — the optimizer's statistics
            // going stale — while the truth annotations (and thus the
            // truth costs below) stay faithful to what actually ran.
            drift.shift_estimates(&mut plan, i);
            let truth_costs = recost_truth(&plan, work_mem);
            QueryAttemptResult {
                retried,
                outcome: AttemptOutcome::Executed(Box::new(ExecutedQuery {
                    template: spec.template,
                    plan,
                    truth_costs,
                    trace,
                })),
            }
        };
        let results: Vec<QueryAttemptResult> = if workload.len() > 1 && ml::par::threads() > 1 {
            ml::par::par_map(&workload.queries, run_query)
        } else {
            workload
                .queries
                .iter()
                .enumerate()
                .map(|(i, spec)| run_query(i, spec))
                .collect()
        };
        for r in results {
            for attempt in 1..=r.retried {
                report.retried += 1;
                report.backoff_secs +=
                    cfg.backoff_base_secs * (1u64 << (attempt - 1).min(32)) as f64;
            }
            match r.outcome {
                AttemptOutcome::Executed(q) => queries.push(*q),
                AttemptOutcome::DroppedTimeout => report.dropped_timeout += 1,
                AttemptOutcome::DroppedAborted => report.dropped_aborted += 1,
                AttemptOutcome::OverLimit { template } => {
                    report.dropped_over_limit += 1;
                    match timeouts.iter_mut().find(|(t, _)| *t == template) {
                        Some((_, n)) => *n += 1,
                        None => timeouts.push((template, 1)),
                    }
                }
            }
        }
        // Quarantine 1: non-finite logged features or latency.
        let mut kept = Vec::with_capacity(queries.len());
        for q in queries {
            let latency_ok = q.latency().is_finite() && q.latency() >= 0.0;
            let features_ok = plan_features_arena(&q.plan, FeatureSource::Estimated, None)
                .iter()
                .all(|v| v.is_finite());
            if latency_ok && features_ok {
                kept.push(q);
            } else {
                report.quarantined += 1;
            }
        }
        // Quarantine 2: robust per-template outlier rejection.
        let queries = if cfg.quarantine_zscore.is_finite() {
            quarantine_outliers(kept, cfg.quarantine_zscore, &mut report)
        } else {
            kept
        };
        report.succeeded = queries.len();
        (
            QueryDataset {
                queries,
                timed_out: timeouts,
            },
            report,
        )
    }

    /// Number of retained queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries were retained.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Template labels per query (strata for stratified CV).
    pub fn strata(&self) -> Vec<usize> {
        self.queries.iter().map(|q| q.template as usize).collect()
    }

    /// Observed latencies per query.
    pub fn latencies(&self) -> Vec<f64> {
        self.queries.iter().map(ExecutedQuery::latency).collect()
    }

    /// Distinct templates present, ascending.
    pub fn templates(&self) -> Vec<u8> {
        let mut out: Vec<u8> = Vec::new();
        for q in &self.queries {
            if !out.contains(&q.template) {
                out.push(q.template);
            }
        }
        out.sort_unstable();
        out
    }

    /// Borrowed subset by indices.
    pub fn subset(&self, idx: &[usize]) -> Vec<&ExecutedQuery> {
        idx.iter().map(|&i| &self.queries[i]).collect()
    }

    /// Splits by template: (training = all others, test = `held_out`).
    pub fn leave_template_out(&self, held_out: u8) -> (Vec<&ExecutedQuery>, Vec<&ExecutedQuery>) {
        let mut train = Vec::new();
        let mut test = Vec::new();
        for q in &self.queries {
            if q.template == held_out {
                test.push(q);
            } else {
                train.push(q);
            }
        }
        (train, test)
    }
}

/// Robust per-template outlier rejection: within each template group of at
/// least five queries, quarantine those whose log-latency sits more than
/// `z` robust standard deviations (median/MAD) from the group median.
/// Smaller groups are kept whole — a median over two or three points is
/// too noisy to disqualify anything.
fn quarantine_outliers(
    queries: Vec<ExecutedQuery>,
    z: f64,
    report: &mut CollectionReport,
) -> Vec<ExecutedQuery> {
    let templates: Vec<u8> = {
        let mut t: Vec<u8> = queries.iter().map(|q| q.template).collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    let mut keep = vec![true; queries.len()];
    for t in templates {
        let idx: Vec<usize> = (0..queries.len())
            .filter(|&i| queries[i].template == t)
            .collect();
        if idx.len() < 5 {
            continue;
        }
        let logs: Vec<f64> = idx
            .iter()
            .map(|&i| (1.0 + queries[i].latency()).ln())
            .collect();
        let med = median(&logs);
        let deviations: Vec<f64> = logs.iter().map(|v| (v - med).abs()).collect();
        // 1.4826 × MAD estimates sigma under normality; the floor keeps
        // near-identical groups from flagging harmless jitter.
        let scale = (1.4826 * median(&deviations)).max(1e-3);
        for (&i, &v) in idx.iter().zip(&logs) {
            if (v - med).abs() > z * scale {
                keep[i] = false;
            }
        }
    }
    let mut kept = Vec::with_capacity(queries.len());
    for (q, k) in queries.into_iter().zip(keep) {
        if k {
            kept.push(q);
        } else {
            report.quarantined += 1;
        }
    }
    kept
}

/// Median of a non-empty slice (panics on empty input — callers guard).
fn median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::plan_features;

    fn small_dataset() -> QueryDataset {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6], 4, 0.1, 7);
        QueryDataset::execute(&catalog, &workload, &Simulator::new(), 11, f64::INFINITY)
    }

    #[test]
    fn executes_and_logs_every_query() {
        let ds = small_dataset();
        assert_eq!(ds.len(), 12);
        assert!(ds.timed_out.is_empty());
        for q in &ds.queries {
            assert!(q.latency() > 0.0);
            assert_eq!(q.trace.timings.len(), q.plan.node_count());
            assert_eq!(q.truth_costs.costs.len(), q.plan.node_count());
        }
        assert_eq!(ds.templates(), vec![1, 3, 6]);
        assert_eq!(ds.strata().len(), 12);
    }

    #[test]
    fn time_limit_drops_queries() {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 6], 3, 0.1, 7);
        let ds = QueryDataset::execute(&catalog, &workload, &Simulator::new(), 11, 0.5);
        // Template 1 at SF 0.1 takes > 0.5 s; template 6 is faster but may
        // also exceed it — either way something must be dropped and counts
        // must reconcile.
        let dropped: usize = ds.timed_out.iter().map(|(_, n)| n).sum();
        assert_eq!(ds.len() + dropped, 6);
        assert!(dropped > 0);
    }

    #[test]
    fn leave_template_out_splits() {
        let ds = small_dataset();
        let (train, test) = ds.leave_template_out(3);
        assert_eq!(test.len(), 4);
        assert_eq!(train.len(), 8);
        assert!(test.iter().all(|q| q.template == 3));
    }

    #[test]
    fn views_expose_both_sources() {
        let ds = small_dataset();
        let q = &ds.queries[0];
        let est = q.views(FeatureSource::Estimated);
        let act = q.views(FeatureSource::Actual);
        assert_eq!(est.len(), act.len());
    }

    #[test]
    fn faultless_collection_matches_execute() {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6], 4, 0.1, 7);
        let sim = Simulator::new();
        let plain = QueryDataset::execute(&catalog, &workload, &sim, 11, f64::INFINITY);
        let (ds, report) = QueryDataset::execute_with_faults(
            &catalog,
            &workload,
            &sim,
            11,
            f64::INFINITY,
            &FaultPlan::none(),
            &CollectionConfig::default(),
        );
        assert_eq!(ds.len(), plain.len());
        for (a, b) in ds.queries.iter().zip(&plain.queries) {
            assert_eq!(a.latency(), b.latency());
            assert_eq!(a.trace.timings.len(), b.trace.timings.len());
        }
        assert!(report.reconciles());
        assert_eq!(report.succeeded, 12);
        assert_eq!(report.retried, 0);
        assert_eq!(report.dropped(), 0);
    }

    #[test]
    fn aborts_trigger_retries_and_report_reconciles() {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6], 6, 0.1, 7);
        let faults = FaultPlan {
            abort_prob: 0.6,
            seed: 5,
            ..FaultPlan::none()
        };
        let cfg = CollectionConfig {
            quarantine_zscore: f64::INFINITY,
            ..CollectionConfig::default()
        };
        let (ds, report) = QueryDataset::execute_with_faults(
            &catalog,
            &workload,
            &Simulator::new(),
            11,
            f64::INFINITY,
            &faults,
            &cfg,
        );
        assert!(report.reconciles());
        // With a 60% abort rate across 18 queries some attempt must fail,
        // and three-strikes-per-query drops only the persistently unlucky.
        assert!(report.retried > 0);
        assert!(report.backoff_secs > 0.0);
        assert_eq!(ds.len() + report.dropped(), workload.len());
        assert!(ds.len() >= 5);
        for q in &ds.queries {
            assert!(q.latency().is_finite());
        }
    }

    #[test]
    fn corrupted_estimates_never_survive_as_nan_features() {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6], 6, 0.1, 7);
        let faults = FaultPlan {
            corrupt_prob: 0.5,
            seed: 9,
            ..FaultPlan::none()
        };
        let (ds, report) = QueryDataset::execute_with_faults(
            &catalog,
            &workload,
            &Simulator::new(),
            11,
            f64::INFINITY,
            &faults,
            &CollectionConfig::trusting(),
        );
        assert!(report.reconciles());
        // Whatever survives has finite estimated features (NaN-poisoned
        // logs are quarantined) and finite truth costs (corruption only
        // touches the logged estimates).
        for q in &ds.queries {
            let views = q.views(FeatureSource::Estimated);
            assert!(plan_features(&q.plan, &views).iter().all(|v| v.is_finite()));
            assert!(q
                .truth_costs
                .costs
                .iter()
                .all(|&(s, t)| s.is_finite() && t.is_finite()));
        }
    }

    #[test]
    fn quarantine_flags_extreme_latency_outliers() {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[6], 8, 0.1, 7);
        let sim = Simulator::new();
        let (baseline, _) = QueryDataset::execute_with_faults(
            &catalog,
            &workload,
            &sim,
            11,
            f64::INFINITY,
            &FaultPlan::none(),
            &CollectionConfig::trusting(),
        );
        // A straggler that always fires would rescale the whole group (no
        // outliers); a rare extreme one should be quarantined.
        let faults = FaultPlan {
            straggler_prob: 0.12,
            straggler_factor: 500.0,
            seed: 3,
            ..FaultPlan::none()
        };
        let (ds, report) = QueryDataset::execute_with_faults(
            &catalog,
            &workload,
            &sim,
            11,
            f64::INFINITY,
            &faults,
            &CollectionConfig::default(),
        );
        assert!(report.reconciles());
        if report.quarantined > 0 {
            // Survivors stay in the baseline latency regime.
            let max_base = baseline
                .latencies()
                .iter()
                .fold(0.0_f64, |a, &b| a.max(b));
            for l in ds.latencies() {
                assert!(l <= max_base * 10.0);
            }
        }
    }

    #[test]
    fn data_growth_drift_inflates_latencies_only() {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6], 4, 0.1, 7);
        let sim = Simulator::new();
        let baseline = QueryDataset::execute(&catalog, &workload, &sim, 11, f64::INFINITY);
        let drift = DriftPlan {
            kind: engine::DriftKind::DataGrowth,
            onset: 0,
            ramp: 0,
            magnitude: 2.0,
            seed: 1,
        };
        let (drifted, report) = QueryDataset::execute_drifted(
            &catalog,
            &workload,
            &sim,
            11,
            f64::INFINITY,
            &FaultPlan::none(),
            &CollectionConfig::trusting(),
            &drift,
        );
        assert!(report.reconciles());
        assert_eq!(drifted.len(), baseline.len());
        for (a, b) in drifted.queries.iter().zip(&baseline.queries) {
            // Observed latency doubles; the logged estimates stay stale.
            assert!((a.latency() - 2.0 * b.latency()).abs() < 1e-9);
            assert_eq!(
                plan_features(&a.plan, &a.views(FeatureSource::Estimated)),
                plan_features(&b.plan, &b.views(FeatureSource::Estimated))
            );
        }
    }

    #[test]
    fn selectivity_shift_drift_skews_estimates_only() {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6], 4, 0.1, 7);
        let sim = Simulator::new();
        let baseline = QueryDataset::execute(&catalog, &workload, &sim, 11, f64::INFINITY);
        let drift = DriftPlan {
            kind: engine::DriftKind::SelectivityShift,
            onset: 0,
            ramp: 0,
            magnitude: 3.0,
            seed: 1,
        };
        let (drifted, report) = QueryDataset::execute_drifted(
            &catalog,
            &workload,
            &sim,
            11,
            f64::INFINITY,
            &FaultPlan::none(),
            &CollectionConfig::trusting(),
            &drift,
        );
        assert!(report.reconciles());
        assert_eq!(drifted.len(), baseline.len());
        for (a, b) in drifted.queries.iter().zip(&baseline.queries) {
            // Latencies are untouched; the logged row estimates inflate.
            assert_eq!(a.latency(), b.latency());
            for (da, db) in a.plan.preorder().iter().zip(b.plan.preorder()) {
                assert!(da.est.rows > db.est.rows, "estimates did not shift");
            }
            // Truth costs remain faithful to what actually ran.
            assert_eq!(a.truth_costs.costs, b.truth_costs.costs);
        }
    }
}
