//! Learning-based query performance prediction.
//!
//! Reproduction of Akdere & Çetintemel, *Learning-based Query Performance
//! Modeling and Prediction* (ICDE 2012): predicting the execution latency
//! of a query plan before running it, from static (compile-time) features
//! only.
//!
//! - [`features`] — the paper's feature tables: plan-level (Table 1) and
//!   operator-level (Table 2) extraction, with estimated or actual values.
//! - [`dataset`] — executed-workload training logs.
//! - [`plan_model`] — plan-level models (SVR + forward feature selection).
//! - [`op_model`] — per-operator-type start-/run-time models composed
//!   bottom-up.
//! - [`subplan`] — sub-plan structure keys, occurrence index, common
//!   sub-plan analytics (Figure 4).
//! - [`hybrid`] — Algorithm 1 with the size-/frequency-/error-based plan
//!   ordering strategies.
//! - [`online`] — online model building for unforeseen plans (Section 4).
//! - [`pred_cache`] — bounded memo cache of sub-plan predictions keyed by
//!   (model signature, structure hash, views hash); backs the batched
//!   hybrid/online inference paths.
//! - [`progressive`] — progressive prediction with run-time features (the
//!   extension sketched in the paper's conclusions).
//! - [`predictor`] — the user-facing facade.
//! - [`monitor`] — the feedback loop: streaming residual statistics over
//!   `(prediction, observed latency)` pairs and a CUSUM drift detector
//!   driving the Healthy → Suspect → Quarantined state machine.
//! - [`registry`] — versioned, checksummed model snapshots with validated
//!   hot swap, shadow retraining, and one-step rollback.
//! - [`error`] — the unified [`QppError`] across execution and learning.

#![warn(missing_docs)]

pub mod dataset;
pub mod error;
pub mod features;
pub mod hybrid;
pub mod materialize;
pub mod monitor;
pub mod online;
pub mod op_model;
pub mod plan_model;
pub mod pred_cache;
pub mod predictor;
pub mod progressive;
pub mod registry;
pub mod subplan;

pub use dataset::{
    CollectionConfig, CollectionReport, ExecutedQuery, QueryDataset, ONE_HOUR_SECS,
};
pub use error::QppError;
pub use features::{
    node_views_into, plan_features, plan_features_arena, plan_features_into, plan_features_slice,
    FeatureSource, NodeView,
};
pub use hybrid::{train_hybrid, HybridConfig, HybridModel, PlanOrdering};
pub use materialize::MaterializedModels;
pub use monitor::{DriftMonitor, ModelHealth, MonitorConfig, SloRecorder, SloWindow, TierState};
pub use online::{OnlineConfig, OnlinePredictor};
pub use op_model::{OpLevelModel, OpModelConfig};
pub use plan_model::{PlanLevelModel, PlanModelConfig, PredictBuffers, TargetMetric};
pub use pred_cache::{PredictionCache, PredictionCacheStats, SubplanPredKey};
pub use predictor::{
    tier_rank, Method, Prediction, PredictionTier, QppConfig, QppPredictor, ALL_TIERS,
    MODEL_TIERS,
};
pub use progressive::{observations_at, predict_progressive, predict_progressive_at};
pub use registry::{
    decode_snapshot, encode_snapshot, ModelRegistry, PromotionReport, RetrainConfig,
};
pub use subplan::{
    arena_structure_hashes, structure_key, subtree_hash_sizes, StructureKey, SubplanIndex,
};
