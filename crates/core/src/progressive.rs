//! Progressive prediction with run-time features (the extension sketched
//! in the paper's conclusions: "supplement the static models with
//! additional run-time features ... predictions are continually updated
//! during query execution").
//!
//! As a query executes, operators complete and their *observed* start/run
//! times become available. This module re-runs the bottom-up composition
//! substituting observed values for model predictions wherever they exist,
//! so the prediction sharpens monotonically toward the true latency as
//! execution progresses.

use crate::dataset::ExecutedQuery;
use crate::features::NodeView;
use crate::hybrid::HybridModel;
use engine::plan::PlanNode;
use engine::sim::Trace;

/// Per-node observations available at some point during execution:
/// `Some((start, run))` once the operator has finished producing output.
pub type Observations = Vec<Option<(f64, f64)>>;

/// Derives the observations visible at `elapsed` seconds into an
/// execution: a node is fully observed once its run-time has passed, and
/// its start-time alone once its first tuple was produced.
///
/// Partially-observed nodes (started, not finished) contribute their
/// observed start with the model's run prediction; that refinement happens
/// inside [`predict_progressive`].
pub fn observations_at(trace: &Trace, elapsed: f64) -> Observations {
    trace
        .timings
        .iter()
        .map(|t| {
            if t.run <= elapsed {
                Some((t.start, t.run))
            } else {
                None
            }
        })
        .collect()
}

/// Predicts a query's latency given the observations collected so far.
///
/// Fully-observed sub-plans feed their *actual* times into their parents'
/// feature vectors — the composition only models the part of the plan that
/// has not happened yet. With no observations this equals
/// [`HybridModel::predict_plan`]; with all nodes observed it returns the
/// true latency.
pub fn predict_progressive(
    model: &HybridModel,
    plan: &PlanNode,
    views: &[NodeView],
    observed: &Observations,
) -> f64 {
    assert_eq!(
        observed.len(),
        plan.node_count(),
        "observations misaligned with plan"
    );
    let (_, run) = compose(model, plan, views, observed, &mut 0);
    run.max(0.0)
}

/// Predicts at a wall-clock point during execution: composes with the
/// observations visible at `elapsed` and floors the result at `elapsed`
/// itself — a query that is still running after N seconds cannot finish
/// in less than N seconds, the cheapest run-time feature there is.
pub fn predict_progressive_at(
    model: &HybridModel,
    plan: &PlanNode,
    views: &[NodeView],
    trace: &Trace,
    elapsed: f64,
) -> f64 {
    let obs = observations_at(trace, elapsed);
    predict_progressive(model, plan, views, &obs).max(elapsed)
}

/// Convenience: the error trajectory of progressive prediction over an
/// executed query, evaluated at the given fractions of its true latency.
/// Returns `(fraction, prediction)` pairs.
pub fn trajectory(
    model: &HybridModel,
    query: &ExecutedQuery,
    fractions: &[f64],
) -> Vec<(f64, f64)> {
    let views = query.views(model.op_model.source());
    fractions
        .iter()
        .map(|&f| {
            let elapsed = query.latency() * f;
            (
                f,
                predict_progressive_at(model, &query.plan, &views, &query.trace, elapsed),
            )
        })
        .collect()
}

fn compose(
    model: &HybridModel,
    node: &PlanNode,
    views: &[NodeView],
    observed: &Observations,
    cursor: &mut usize,
) -> (f64, f64) {
    let my_idx = *cursor;
    // A finished sub-plan needs no model at all.
    if let Some(times) = observed[my_idx] {
        *cursor += node.node_count();
        return times;
    }
    // Covered by a sub-plan plan-level model? Use it (static path).
    let key = crate::subplan::structure_key(node);
    if let Some(sm) = model.plan_models.get(&key) {
        let size = node.node_count();
        *cursor += size;
        let slice = &views[my_idx..my_idx + size];
        let f = crate::features::plan_features(node, slice);
        let start = sm.start.predict(&f).max(0.0);
        let run = sm.run.predict(&f).max(start);
        return (start, run);
    }
    *cursor += 1;
    let mut child_times = Vec::with_capacity(node.children.len());
    let mut child_views = Vec::with_capacity(node.children.len());
    for c in &node.children {
        let v_idx = *cursor;
        child_times.push(compose(model, c, views, observed, cursor));
        child_views.push(&views[v_idx]);
    }
    model
        .op_model
        .predict_node(node, &views[my_idx], &child_views, &child_times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryDataset;
    use crate::op_model::{OpLevelModel, OpModelConfig};
    use engine::{Catalog, Simulator};
    use ml::metrics::relative_error;
    use tpch::Workload;

    fn quiet_sim() -> Simulator {
        Simulator::with_config(engine::SimConfig {
            additive_noise_secs: 0.05,
            ..engine::SimConfig::default()
        })
    }

    fn setup() -> (QueryDataset, HybridModel) {
        let catalog = Catalog::new(0.5, 1);
        let workload = Workload::generate(&[1, 3, 5, 12], 10, 0.5, 7);
        let ds = QueryDataset::execute(&catalog, &workload, &quiet_sim(), 11, f64::INFINITY);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
        (ds, HybridModel::operator_only(op))
    }

    #[test]
    fn no_observations_match_the_static_prediction() {
        let (ds, model) = setup();
        let q = &ds.queries[0];
        let views = q.views(model.op_model.source());
        let obs = vec![None; q.plan.node_count()];
        let progressive = predict_progressive(&model, &q.plan, &views, &obs);
        let static_pred = model.predict_plan(&q.plan, &views).latency;
        assert!((progressive - static_pred).abs() < 1e-9);
    }

    #[test]
    fn full_observations_recover_the_true_latency() {
        let (ds, model) = setup();
        let q = &ds.queries[0];
        let views = q.views(model.op_model.source());
        let obs = observations_at(&q.trace, f64::INFINITY);
        let p = predict_progressive(&model, &q.plan, &views, &obs);
        assert!(relative_error(q.latency(), p) < 1e-9);
    }

    #[test]
    fn error_shrinks_with_execution_progress_on_average() {
        let (ds, model) = setup();
        let fractions = [0.0, 0.5, 0.9];
        let mut errs = vec![0.0f64; fractions.len()];
        for q in &ds.queries {
            for (i, (_, p)) in trajectory(&model, q, &fractions).into_iter().enumerate() {
                errs[i] += relative_error(q.latency(), p);
            }
        }
        // Later checkpoints must not be worse than the static prediction.
        assert!(
            errs[2] <= errs[0] + 1e-9,
            "errors across progress: {errs:?}"
        );
    }

    #[test]
    fn observations_at_respects_run_times() {
        let (ds, _) = setup();
        let q = &ds.queries[0];
        let half = observations_at(&q.trace, q.latency() * 0.5);
        // The root cannot be observed at half time; some leaf usually is.
        assert!(half[0].is_none());
        let all = observations_at(&q.trace, q.latency() + 1.0);
        assert!(all.iter().all(Option::is_some));
    }
}
