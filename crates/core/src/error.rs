//! The unified error type of the prediction pipeline.
//!
//! Training touches two fallible substrates — the learning crate (model
//! fitting) and the engine (query execution while collecting data) — and
//! has failure modes of its own. [`QppError`] wraps all of them so the
//! facade can expose a single `Result` surface and `?`-propagation works
//! across crate boundaries.

use engine::faults::ExecError;
use ml::MlError;

/// Everything that can go wrong across the QPP pipeline.
///
/// Marked `#[non_exhaustive]`: downstream crates must keep a wildcard arm
/// when matching, so new failure modes (like serving-layer rejections) can
/// be added without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QppError {
    /// The learning substrate failed (model fitting or validation).
    Ml(MlError),
    /// An execution failed while collecting training data.
    Exec(ExecError),
    /// No usable training data survived collection.
    NoTrainingData,
    /// A materialized model snapshot failed validation at load time
    /// (corrupted file, checksum mismatch, unsupported format version,
    /// non-finite weights, or mismatched feature arity). The message
    /// names the failed gate.
    InvalidSnapshot(String),
    /// A model-registry file-system operation failed (the message carries
    /// the rendered `std::io::Error`, which is neither `Clone` nor
    /// `PartialEq` and so cannot be stored directly).
    Io(String),
    /// The prediction service refused the request at admission: its
    /// bounded queue (or rate limiter) is saturated and accepting the
    /// request would only grow latency unboundedly. Clients should back
    /// off and retry; the request was never queued.
    Overloaded {
        /// Serving queue depth observed at the rejection.
        queue_depth: usize,
    },
    /// A specific tenant exhausted its own admission budget (token bucket
    /// or queue-depth quota) in the multi-tenant server. Unlike
    /// [`QppError::Overloaded`], this is a bulkhead rejection: only the
    /// named tenant is shed, and other tenants' budgets are unaffected.
    TenantOverloaded {
        /// The tenant whose budget rejected the request.
        tenant: String,
    },
    /// The request's deadline expired before any prediction tier — even
    /// the constant training prior — could answer within the remaining
    /// budget.
    DeadlineExceeded {
        /// The total budget the request arrived with, in seconds.
        budget_secs: f64,
    },
    /// An internal invariant was violated (the message names it).
    Internal(&'static str),
}

impl QppError {
    /// The stable `QPPWIRE-v1` error code of this variant.
    ///
    /// The networked front door (`qpp-serve`'s codec) maps every error it
    /// returns onto a typed wire frame carrying this code; the numbering
    /// lives here, next to the enum, so adding a variant forces the wire
    /// contract to be extended in the same change. Codes are grouped by
    /// substrate — `0x01xx` learning, `0x02xx` execution, `0x03xx`
    /// pipeline, `0x04xx` serving/admission — and once published a code
    /// is never reused for a different meaning.
    pub fn wire_code(&self) -> u16 {
        match self {
            QppError::Ml(MlError::ShapeMismatch { .. }) => 0x0101,
            QppError::Ml(MlError::EmptyDataset) => 0x0102,
            QppError::Ml(MlError::NotPositiveDefinite) => 0x0103,
            QppError::Ml(MlError::InvalidParameter(_)) => 0x0104,
            QppError::Ml(MlError::NonFiniteData) => 0x0105,
            QppError::Ml(MlError::DidNotConverge { .. }) => 0x0106,
            QppError::Exec(ExecError::Aborted { .. }) => 0x0201,
            QppError::Exec(ExecError::Timeout { .. }) => 0x0202,
            QppError::NoTrainingData => 0x0301,
            QppError::InvalidSnapshot(_) => 0x0302,
            QppError::Io(_) => 0x0303,
            QppError::Internal(_) => 0x0304,
            QppError::Overloaded { .. } => 0x0401,
            QppError::TenantOverloaded { .. } => 0x0402,
            QppError::DeadlineExceeded { .. } => 0x0403,
        }
    }
}

impl std::fmt::Display for QppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QppError::Ml(e) => write!(f, "model training failed: {e}"),
            QppError::Exec(e) => write!(f, "execution failed: {e}"),
            QppError::NoTrainingData => write!(f, "no usable training data"),
            QppError::InvalidSnapshot(reason) => {
                write!(f, "invalid model snapshot: {reason}")
            }
            QppError::Io(msg) => write!(f, "registry I/O failed: {msg}"),
            QppError::Overloaded { queue_depth } => write!(
                f,
                "prediction service overloaded (queue depth {queue_depth}); request shed at admission"
            ),
            QppError::TenantOverloaded { tenant } => write!(
                f,
                "tenant `{tenant}` over its admission budget; request shed at the bulkhead"
            ),
            QppError::DeadlineExceeded { budget_secs } => write!(
                f,
                "request deadline exceeded (budget was {budget_secs:.3} s)"
            ),
            QppError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for QppError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QppError::Ml(e) => Some(e),
            QppError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MlError> for QppError {
    fn from(e: MlError) -> Self {
        QppError::Ml(e)
    }
}

impl From<ExecError> for QppError {
    fn from(e: ExecError) -> Self {
        QppError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn wraps_and_displays_both_substrates() {
        let ml: QppError = MlError::EmptyDataset.into();
        assert!(ml.to_string().contains("empty"));
        assert!(ml.source().is_some());
        let exec: QppError = ExecError::Aborted { progress: 0.2 }.into();
        assert!(exec.to_string().contains("aborted"));
        assert!(exec.source().is_some());
        assert!(QppError::NoTrainingData.source().is_none());
        let snap = QppError::InvalidSnapshot("checksum mismatch".to_string());
        assert!(snap.to_string().contains("checksum mismatch"));
        assert!(snap.source().is_none());
    }

    #[test]
    fn serving_errors_display_and_compare() {
        let over = QppError::Overloaded { queue_depth: 128 };
        assert!(over.to_string().contains("overloaded"));
        assert!(over.to_string().contains("128"));
        assert_eq!(over, QppError::Overloaded { queue_depth: 128 });
        assert!(over.source().is_none());
        let late = QppError::DeadlineExceeded { budget_secs: 0.25 };
        assert!(late.to_string().contains("deadline"));
        assert!(late.to_string().contains("0.250"));
        assert_eq!(late.clone(), late);
    }

    #[test]
    fn tenant_overload_displays_and_compares() {
        let shed = QppError::TenantOverloaded {
            tenant: "analytics".to_string(),
        };
        assert!(shed.to_string().contains("tenant `analytics`"));
        assert!(shed.to_string().contains("bulkhead"));
        assert!(shed.source().is_none());
        assert_eq!(
            shed,
            QppError::TenantOverloaded {
                tenant: "analytics".to_string()
            }
        );
        assert_ne!(
            shed,
            QppError::TenantOverloaded {
                tenant: "etl".to_string()
            }
        );
        assert_eq!(shed.clone(), shed);
    }
}
