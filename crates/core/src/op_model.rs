//! Operator-level performance prediction (Section 3.2).
//!
//! Two models per operator *type* — a start-time model and a run-time
//! model over the Table-2 features — composed bottom-up along the plan
//! tree: each operator's models consume the (predicted) start/run times of
//! its children (Figure 2 of the paper). Training uses the *observed*
//! child times from the execution logs; prediction uses composed child
//! predictions, so lower-level errors propagate upward — a property the
//! paper identifies as the approach's main weakness.

use crate::dataset::ExecutedQuery;
use crate::features::{op_features, FeatureSource, NodeView, OP_FEATURE_NAMES};
use crate::plan_model::FeatureModel;
use engine::plan::{OpType, PlanNode, ALL_OP_TYPES};
use ml::cv::kfold;
use ml::{Dataset, ForwardSelection, LearnerKind, MlError};

/// Configuration of operator-level model training.
#[derive(Debug, Clone)]
pub struct OpModelConfig {
    /// Model family (the paper uses linear regression here).
    pub learner: LearnerKind,
    /// Forward-selection settings.
    pub selection: ForwardSelection,
    /// CV folds for feature selection.
    pub folds: usize,
    /// Fold seed.
    pub seed: u64,
    /// Feature source.
    pub source: FeatureSource,
    /// Include the child start-time features (st1/st2). Disabling them is
    /// the DESIGN.md ablation for the paper's claim that start-time models
    /// capture blocking behaviour.
    pub include_start_features: bool,
}

impl Default for OpModelConfig {
    fn default() -> Self {
        OpModelConfig {
            learner: LearnerKind::Linear { ridge: 1e-6 },
            selection: ForwardSelection {
                patience: 3,
                min_improvement: 1e-3,
                max_features: 0,
            },
            folds: 4,
            seed: 17,
            source: FeatureSource::Estimated,
            include_start_features: true,
        }
    }
}

/// Per-operator-type start-/run-time models.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct OpLevelModel {
    per_type: Vec<Option<(FeatureModel, FeatureModel)>>,
    source: FeatureSource,
    include_start_features: bool,
}

/// Per-node predicted timings from a composed operator-level prediction.
#[derive(Debug, Clone)]
pub struct ComposedPrediction {
    /// (start, run) per node in pre-order.
    pub node_times: Vec<(f64, f64)>,
}

impl ComposedPrediction {
    /// The predicted query latency: the root's run-time.
    pub fn latency(&self) -> f64 {
        self.node_times[0].1
    }
}

impl OpLevelModel {
    /// Trains the per-operator models on the execution logs of `queries`.
    ///
    /// # Errors
    /// Fails only if an operator type has rows but the system is
    /// unsolvable (degenerate data); operator types absent from the
    /// training data simply get no model.
    pub fn train(queries: &[&ExecutedQuery], config: &OpModelConfig) -> Result<Self, MlError> {
        // Collect (features, start, run) rows per operator type. Row
        // extraction is independent per query, so it fans out to worker
        // threads; the per-type matrices are then filled serially in query
        // order, giving exactly the rows the serial loop produced.
        let n_types = ALL_OP_TYPES.len();
        let mut xs: Vec<Dataset> = (0..n_types)
            .map(|_| Dataset::new(OP_FEATURE_NAMES.len()))
            .collect();
        let mut starts: Vec<Vec<f64>> = vec![Vec::new(); n_types];
        let mut runs: Vec<Vec<f64>> = vec![Vec::new(); n_types];
        let rows_of = |q: &ExecutedQuery| -> Vec<(usize, Vec<f64>, f64, f64)> {
            let views = q.views(config.source);
            let mut rows = Vec::new();
            collect_rows(
                &q.plan,
                &views,
                &q.trace.timings,
                &mut 0,
                &mut |op, row, start, run| {
                    let mut row = row.to_vec();
                    if !config.include_start_features {
                        row[5] = 0.0; // st1
                        row[7] = 0.0; // st2
                    }
                    rows.push((op.index(), row, start, run));
                },
            );
            rows
        };
        // (operator type index, feature row, start-time, run-time).
        type OpRow = (usize, Vec<f64>, f64, f64);
        let per_query: Vec<Vec<OpRow>> =
            if queries.len() > 1 && ml::par::threads() > 1 {
                ml::par::par_map(queries, |_, q| rows_of(q))
            } else {
                queries.iter().map(|&q| rows_of(q)).collect()
            };
        for rows in &per_query {
            for (k, row, start, run) in rows {
                xs[*k].push_row(row);
                starts[*k].push(*start);
                runs[*k].push(*run);
            }
        }
        // Operator types fit independently; results are merged in type
        // order so the first error (if any) matches the serial loop's.
        let fit_type = |k: usize| -> Result<Option<(FeatureModel, FeatureModel)>, MlError> {
            if xs[k].n_rows() < 3 {
                return Ok(None);
            }
            let folds = kfold(
                xs[k].n_rows(),
                config.folds.min(xs[k].n_rows()).max(2),
                config.seed,
            );
            let start_model = FeatureModel::train(
                &xs[k],
                &starts[k],
                &folds,
                &config.learner,
                &config.selection,
                false,
            )?;
            let run_model = FeatureModel::train(
                &xs[k],
                &runs[k],
                &folds,
                &config.learner,
                &config.selection,
                false,
            )?;
            Ok(Some((start_model, run_model)))
        };
        let fitted: Vec<Result<Option<(FeatureModel, FeatureModel)>, MlError>> =
            if ml::par::threads() > 1 {
                ml::par::par_map_n(n_types, fit_type)
            } else {
                (0..n_types).map(fit_type).collect()
            };
        let mut per_type = Vec::with_capacity(n_types);
        for outcome in fitted {
            per_type.push(outcome?);
        }
        Ok(OpLevelModel {
            per_type,
            source: config.source,
            include_start_features: config.include_start_features,
        })
    }

    /// Whether a model exists for the operator type.
    pub fn has_model(&self, op: OpType) -> bool {
        self.per_type[op.index()].is_some()
    }

    /// Feature source the models were trained with.
    pub fn source(&self) -> FeatureSource {
        self.source
    }

    /// Snapshot-load validation: every per-operator start/run model must
    /// pass [`FeatureModel::validate`] against the operator feature arity.
    pub fn validate(&self) -> Result<(), String> {
        if self.per_type.len() != ALL_OP_TYPES.len() {
            return Err(format!(
                "operator-level model covers {} operator types, expected {}",
                self.per_type.len(),
                ALL_OP_TYPES.len()
            ));
        }
        for (i, pair) in self.per_type.iter().enumerate() {
            if let Some((start, run)) = pair {
                let op = ALL_OP_TYPES[i];
                start
                    .validate(OP_FEATURE_NAMES.len())
                    .map_err(|e| format!("{op:?} start-time model: {e}"))?;
                run.validate(OP_FEATURE_NAMES.len())
                    .map_err(|e| format!("{op:?} run-time model: {e}"))?;
            }
        }
        Ok(())
    }

    /// Content fingerprint over every per-operator model (see
    /// [`FeatureModel::fingerprint`]); part of the hybrid model-set
    /// signature that keys the prediction cache.
    pub fn fingerprint(&self) -> u64 {
        let mut h: Vec<u64> = Vec::with_capacity(1 + 2 * self.per_type.len());
        h.push(u64::from(self.include_start_features));
        for pair in &self.per_type {
            match pair {
                Some((start, run)) => {
                    h.push(start.fingerprint());
                    h.push(run.fingerprint());
                }
                None => h.push(0),
            }
        }
        crate::pred_cache::hash_u64s(&h)
    }

    /// Predicts a query's latency by bottom-up composition.
    pub fn predict(&self, query: &ExecutedQuery) -> f64 {
        self.predict_composed(query).latency()
    }

    /// Predicts a batch of queries in input order, bit-identical to a
    /// serial [`OpLevelModel::predict`] loop; large batches fan out over
    /// `ml::par`.
    pub fn predict_batch(&self, queries: &[&ExecutedQuery]) -> Vec<f64> {
        if queries.len() >= 64 && ml::par::threads() > 1 {
            ml::par::par_map(queries, |_, q| self.predict(q))
        } else {
            queries.iter().map(|q| self.predict(q)).collect()
        }
    }

    /// Predicts with per-node detail.
    pub fn predict_composed(&self, query: &ExecutedQuery) -> ComposedPrediction {
        let views = query.views(self.source);
        self.predict_plan(&query.plan, &views)
    }

    /// Composes predictions over an arbitrary plan (views aligned
    /// pre-order).
    pub fn predict_plan(&self, plan: &PlanNode, views: &[NodeView]) -> ComposedPrediction {
        let mut node_times = vec![(0.0, 0.0); plan.node_count()];
        self.compose(plan, views, &mut 0, &mut node_times);
        ComposedPrediction { node_times }
    }

    /// Predicts one node given explicit child times (used by the hybrid
    /// composition, where a child may be predicted by a plan-level model).
    pub fn predict_node(
        &self,
        node: &PlanNode,
        view: &NodeView,
        child_views: &[&NodeView],
        child_times: &[(f64, f64)],
    ) -> (f64, f64) {
        let mut row = op_features(node, view, child_views, child_times);
        if !self.include_start_features {
            row[5] = 0.0;
            row[7] = 0.0;
        }
        match &self.per_type[node.op.index()] {
            Some((sm, rm)) => {
                let start = sm.predict(&row).max(0.0);
                let run = rm.predict(&row).max(start);
                (start, run)
            }
            // Unseen operator type: pass through the dominant child (no
            // cost attributed to the node itself).
            None => child_times
                .iter()
                .fold((0.0, 0.0), |acc, &(s, r)| (acc.0.max(s), acc.1.max(r))),
        }
    }

    fn compose(
        &self,
        node: &PlanNode,
        views: &[NodeView],
        cursor: &mut usize,
        out: &mut Vec<(f64, f64)>,
    ) -> (f64, f64) {
        let my_idx = *cursor;
        *cursor += 1;
        let mut child_times = Vec::with_capacity(node.children.len());
        let mut child_views = Vec::with_capacity(node.children.len());
        for c in &node.children {
            let v_idx = *cursor;
            child_times.push(self.compose(c, views, cursor, out));
            child_views.push(&views[v_idx]);
        }
        let t = self.predict_node(node, &views[my_idx], &child_views, &child_times);
        out[my_idx] = t;
        t
    }
}

/// Walks a plan in pre-order collecting one training row per node.
fn collect_rows<F: FnMut(OpType, &[f64], f64, f64)>(
    node: &PlanNode,
    views: &[NodeView],
    timings: &[engine::sim::NodeTiming],
    cursor: &mut usize,
    sink: &mut F,
) {
    let my_idx = *cursor;
    *cursor += 1;
    let mut child_views = Vec::with_capacity(node.children.len());
    let mut child_times = Vec::with_capacity(node.children.len());
    for c in &node.children {
        let v_idx = *cursor;
        child_views.push(&views[v_idx]);
        child_times.push((timings[v_idx].start, timings[v_idx].run));
        // Recurse after capturing the child's own pre-order position.
        collect_rows(c, views, timings, cursor, sink);
    }
    let row = op_features(node, &views[my_idx], &child_views, &child_times);
    sink(node.op, &row, timings[my_idx].start, timings[my_idx].run);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryDataset;
    use engine::{Catalog, Simulator};
    use ml::mean_relative_error;
    use tpch::Workload;

    /// Simulator with the jitter tuned down: these tests assert model
    /// accuracy, which the default absolute jitter would swamp at the tiny
    /// scale factors used here.
    fn quiet_sim() -> Simulator {
        Simulator::with_config(engine::SimConfig {
            additive_noise_secs: 0.05,
            ..engine::SimConfig::default()
        })
    }

    fn dataset(templates: &[u8], n: usize) -> QueryDataset {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(templates, n, 0.1, 7);
        QueryDataset::execute(&catalog, &workload, &quiet_sim(), 11, f64::INFINITY)
    }

    #[test]
    fn trains_models_for_present_operator_types() {
        let ds = dataset(&[1, 3, 6], 8);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let model = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
        assert!(model.has_model(OpType::SeqScan));
        assert!(model.has_model(OpType::Sort));
        // No template here uses a SubqueryScan.
        assert!(!model.has_model(OpType::SubqueryScan));
    }

    #[test]
    fn composed_prediction_is_reasonable_on_training_data() {
        let ds = dataset(&[1, 3, 6, 14], 12);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let model = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
        let actual: Vec<f64> = refs.iter().map(|q| q.latency()).collect();
        let preds: Vec<f64> = refs.iter().map(|q| model.predict(q)).collect();
        let err = mean_relative_error(&actual, &preds);
        assert!(err < 0.6, "training error = {err}");
        assert!(preds.iter().all(|p| *p >= 0.0 && p.is_finite()));
    }

    #[test]
    fn generalizes_to_unseen_template_with_shared_operators() {
        // Train without template 14, predict template 14 (its operators —
        // scan, hash join, aggregate — all appear elsewhere).
        let ds = dataset(&[1, 3, 6, 14], 10);
        let (train, test): (Vec<&ExecutedQuery>, Vec<&ExecutedQuery>) = {
            let (tr, te) = ds.leave_template_out(14);
            (tr, te)
        };
        let model = OpLevelModel::train(&train, &OpModelConfig::default()).unwrap();
        let actual: Vec<f64> = test.iter().map(|q| q.latency()).collect();
        let preds: Vec<f64> = test.iter().map(|q| model.predict(q)).collect();
        let err = mean_relative_error(&actual, &preds);
        assert!(err < 2.0, "dynamic error = {err}");
    }

    #[test]
    fn per_node_times_are_monotone_within_node() {
        let ds = dataset(&[3], 6);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let model = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
        let composed = model.predict_composed(refs[0]);
        for (s, r) in &composed.node_times {
            assert!(r >= s, "run {r} < start {s}");
        }
    }
}
