//! Hybrid query performance prediction (Section 3.4, Algorithm 1).
//!
//! Starts from the operator-level models and greedily adds plan-level
//! models for high-value sub-plans, chosen by a *plan ordering strategy*:
//!
//! - **size-based** — smaller fragments first (they recur most and are
//!   most likely to appear in future queries);
//! - **frequency-based** — most frequent fragments first;
//! - **error-based** — fragments ranked by `occurrence frequency × average
//!   prediction error` (attack the error mass directly).
//!
//! A candidate model is kept only if it improves overall training accuracy
//! by more than ε; accepted models *consume* the occurrences they cover,
//! which updates the frequencies and errors of the remaining candidates —
//! exactly the bookkeeping Algorithm 1 describes.

use crate::dataset::ExecutedQuery;
use crate::error::QppError;
use crate::features::{plan_features, plan_features_slice, NodeView};
use crate::op_model::OpLevelModel;
use crate::plan_model::FeatureModel;
use crate::pred_cache::{views_hash, PredictionCache, SubplanPredKey};
use crate::subplan::{arena_structure_hashes, StructureKey, SubplanIndex};
use engine::arena::PlanArena;
use engine::plan::PlanNode;
use ml::cv::kfold;
use ml::metrics::{mean_relative_error, relative_error};
use ml::{Dataset, ForwardSelection, LearnerKind};
use std::collections::{HashMap, HashSet};

/// The three plan-ordering strategies of Section 3.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOrdering {
    /// Increasing number of operators; ties broken by frequency.
    SizeBased,
    /// Decreasing occurrence frequency; ties broken by size.
    FrequencyBased,
    /// Decreasing `frequency × average prediction error`.
    ErrorBased,
}

/// Hybrid training configuration.
#[derive(Debug, Clone)]
pub struct HybridConfig {
    /// Plan-ordering strategy.
    pub strategy: PlanOrdering,
    /// Stop when mean relative error on the training data reaches this.
    pub target_error: f64,
    /// Minimum error improvement for a model to be kept (Algorithm 1's ε).
    pub epsilon: f64,
    /// Hard iteration cap (the paper's fallback stopping condition).
    pub max_iterations: usize,
    /// Sub-plans occurring fewer times are not considered.
    pub min_frequency: usize,
    /// Sub-plans already predicted with average error below this are not
    /// considered (the paper's 0.1 threshold for size/frequency ordering).
    pub skip_error_below: f64,
    /// Minimum fragment size in operators.
    pub min_size: usize,
    /// Learner for the sub-plan models (SVR, like plan-level models).
    pub learner: LearnerKind,
    /// Forward selection for sub-plan models.
    pub selection: ForwardSelection,
    /// CV folds for selection.
    pub folds: usize,
    /// Fold seed.
    pub seed: u64,
    /// Fit sub-plan models on log-transformed times.
    pub log_target: bool,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            strategy: PlanOrdering::ErrorBased,
            target_error: 0.05,
            epsilon: 1e-3,
            max_iterations: 30,
            min_frequency: 5,
            skip_error_below: 0.1,
            min_size: 2,
            learner: LearnerKind::Svr(ml::SvrParams::default()),
            selection: ForwardSelection {
                patience: 3,
                min_improvement: 1e-3,
                max_features: 6,
            },
            folds: 4,
            seed: 23,
            log_target: true,
        }
    }
}

/// Plan-level model of one sub-plan structure: start- and run-time heads.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SubplanModel {
    /// Start-time model.
    pub start: FeatureModel,
    /// Run-time model.
    pub run: FeatureModel,
    /// Structure description (diagnostics).
    pub description: String,
}

/// The hybrid predictor: operator-level models plus a set of sub-plan
/// plan-level models, composed per Section 3.4.
#[derive(Debug, Clone)]
pub struct HybridModel {
    /// The operator-level fallback models.
    pub op_model: OpLevelModel,
    /// Plan-level models keyed by sub-plan structure.
    pub plan_models: HashMap<StructureKey, SubplanModel>,
}

/// Per-node outcome of a hybrid prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodePrediction {
    /// Composed by the operator-level models.
    Operator {
        /// Predicted (start, run).
        times: (f64, f64),
    },
    /// Predicted directly by a sub-plan plan-level model.
    PlanModel {
        /// Predicted (start, run).
        times: (f64, f64),
    },
    /// Inside a sub-plan covered by a plan-level model (not individually
    /// predicted).
    Covered,
}

impl NodePrediction {
    /// The (start, run) pair when the node was predicted.
    pub fn times(&self) -> Option<(f64, f64)> {
        match self {
            NodePrediction::Operator { times } | NodePrediction::PlanModel { times } => {
                Some(*times)
            }
            NodePrediction::Covered => None,
        }
    }
}

/// A full hybrid prediction.
#[derive(Debug, Clone)]
pub struct HybridPrediction {
    /// Per-node outcomes, pre-order.
    pub nodes: Vec<NodePrediction>,
    /// Predicted query latency.
    pub latency: f64,
}

impl HybridModel {
    /// A hybrid model with no plan-level models (pure operator-level).
    pub fn operator_only(op_model: OpLevelModel) -> HybridModel {
        HybridModel {
            op_model,
            plan_models: HashMap::new(),
        }
    }

    /// Predicts a query's latency.
    pub fn predict(&self, query: &ExecutedQuery) -> f64 {
        self.predict_detailed(query).latency
    }

    /// Predicts with per-node detail.
    pub fn predict_detailed(&self, query: &ExecutedQuery) -> HybridPrediction {
        let views = query.views(self.op_model.source());
        self.predict_plan(&query.plan, &views)
    }

    /// Predicts over an arbitrary plan with aligned views.
    pub fn predict_plan(&self, plan: &PlanNode, views: &[NodeView]) -> HybridPrediction {
        let arena = PlanArena::flatten(plan);
        self.predict_arena(&arena, views)
    }

    /// [`HybridModel::predict_plan`] over an already-flattened plan.
    /// Structure keys come from one O(n) bottom-up hash pass over the
    /// arena instead of per-node re-hashing, and fragment features are
    /// read straight from contiguous arena slices — the boxed walk's
    /// per-node `structure_key` + `node_count` calls made it O(n²) on
    /// deep plans.
    pub fn predict_arena(&self, arena: &PlanArena<'_>, views: &[NodeView]) -> HybridPrediction {
        let hashes = arena_structure_hashes(arena);
        let mut nodes = vec![NodePrediction::Covered; arena.len()];
        let (_, run) = self.compose(arena, &hashes, views, 0, &mut nodes);
        HybridPrediction {
            nodes,
            latency: run.max(0.0),
        }
    }

    /// A *content* signature of this model set, used to key the
    /// prediction memo cache: FNV over the operator-model fingerprint and
    /// the sorted (structure key, sub-model fingerprint) pairs.
    ///
    /// Two models share cache entries only when their trained content
    /// matches. For the online method this changes nothing — each refined
    /// model is the base model plus sub-models drawn from a per-predictor
    /// cache, so within one [`PredictionCache`]'s lifetime identical key
    /// sets imply identical content. What it adds is safety across *model
    /// swaps*: a registry that hot-swaps a retrained model set (same plan
    /// structures, new weights) gets a different signature, so stale memo
    /// entries from the replaced set can never answer for the new one.
    pub fn plan_model_signature(&self) -> u64 {
        let mut keyed: Vec<(u64, u64, u64)> = self
            .plan_models
            .iter()
            .map(|(k, m)| (k.0, m.start.fingerprint(), m.run.fingerprint()))
            .collect();
        keyed.sort_unstable();
        let mut h: Vec<u64> = Vec::with_capacity(1 + 3 * keyed.len());
        h.push(self.op_model.fingerprint());
        for (k, s, r) in keyed {
            h.push(k);
            h.push(s);
            h.push(r);
        }
        crate::pred_cache::hash_u64s(&h)
    }

    /// Predicts a plan's latency through the sub-plan memo cache:
    /// fragments whose (structure, views) were already predicted by this
    /// model set are answered from `cache` without re-walking them.
    ///
    /// Bit-identical to [`HybridModel::predict_plan`]`.latency` — a hit
    /// returns exactly the value the skipped recomputation would produce.
    pub fn predict_plan_memo(
        &self,
        plan: &PlanNode,
        views: &[NodeView],
        cache: &PredictionCache,
    ) -> f64 {
        let arena = PlanArena::flatten(plan);
        let hashes = arena_structure_hashes(&arena);
        self.predict_memo_arena(&arena, &hashes, views, cache)
    }

    /// [`HybridModel::predict_plan_memo`] over an already-flattened plan
    /// whose structure hashes (from
    /// [`crate::subplan::arena_structure_hashes`]) the caller computed
    /// once — the online predictor enumerates fragments over the same
    /// arena before predicting, so nothing is flattened or hashed twice.
    pub fn predict_memo_arena(
        &self,
        arena: &PlanArena<'_>,
        hashes: &[u64],
        views: &[NodeView],
        cache: &PredictionCache,
    ) -> f64 {
        let ctx = MemoCtx {
            arena,
            views,
            hashes,
            sig: self.plan_model_signature(),
            cache,
        };
        let (_, run) = self.compose_memo(&ctx, 0);
        run.max(0.0)
    }

    /// Predicts a batch of queries in input order, sharing a fresh memo
    /// cache across the batch so identical sub-plans (repeated templates,
    /// shared fragments) are predicted once. Bit-identical to a serial
    /// [`HybridModel::predict`] loop.
    pub fn predict_batch(&self, queries: &[&ExecutedQuery]) -> Vec<f64> {
        self.predict_batch_cached(queries, &PredictionCache::default())
    }

    /// [`HybridModel::predict_batch`] against a caller-owned cache, so
    /// memoized sub-plan predictions survive across batches. Large batches
    /// fan out over `ml::par`; results stay bit-identical to the serial
    /// loop regardless of thread count because every memoized value equals
    /// its recomputation bit-for-bit.
    pub fn predict_batch_cached(
        &self,
        queries: &[&ExecutedQuery],
        cache: &PredictionCache,
    ) -> Vec<f64> {
        let sig = self.plan_model_signature();
        let one = |q: &ExecutedQuery| -> f64 {
            let views = q.views(self.op_model.source());
            let arena = PlanArena::flatten(&q.plan);
            let hashes = arena_structure_hashes(&arena);
            let ctx = MemoCtx {
                arena: &arena,
                views: &views,
                hashes: &hashes,
                sig,
                cache,
            };
            let (_, run) = self.compose_memo(&ctx, 0);
            run.max(0.0)
        };
        if queries.len() > 1 && ml::par::threads() > 1 {
            ml::par::par_map(queries, |_, q| one(q))
        } else {
            queries.iter().map(|q| one(q)).collect()
        }
    }

    /// The memoized mirror of `compose`: identical
    /// floating-point operations in identical order, with each fragment's
    /// `(start, run)` looked up in / inserted into the memo cache. Node
    /// identity comes from pre-order index `idx` into the context arrays
    /// instead of a walk cursor.
    fn compose_memo(&self, ctx: &MemoCtx<'_, '_>, idx: usize) -> (f64, f64) {
        let size = ctx.arena.size(idx);
        let key = SubplanPredKey {
            model: ctx.sig,
            structure: ctx.hashes[idx],
            views: views_hash(&ctx.views[idx..idx + size]),
        };
        if let Some(times) = ctx.cache.get(&key) {
            return times;
        }
        let node = ctx.arena.node(idx);
        let times = if let Some(sm) = self.plan_models.get(&StructureKey(ctx.hashes[idx])) {
            let slice = &ctx.views[idx..idx + size];
            let f = plan_features_slice(ctx.arena.subtree_nodes(idx), slice);
            let start = sm.start.predict(&f).max(0.0);
            let run = sm.run.predict(&f).max(start);
            (start, run)
        } else {
            let mut child_times = Vec::with_capacity(node.children.len());
            let mut child_views = Vec::with_capacity(node.children.len());
            for ci in ctx.arena.children(idx) {
                child_views.push(&ctx.views[ci]);
                child_times.push(self.compose_memo(ctx, ci));
            }
            self.op_model
                .predict_node(node, &ctx.views[idx], &child_views, &child_times)
        };
        ctx.cache.insert(key, times);
        times
    }

    fn compose(
        &self,
        arena: &PlanArena<'_>,
        hashes: &[u64],
        views: &[NodeView],
        idx: usize,
        out: &mut Vec<NodePrediction>,
    ) -> (f64, f64) {
        let size = arena.size(idx);
        if let Some(sm) = self.plan_models.get(&StructureKey(hashes[idx])) {
            // Plan-level prediction for the whole fragment; descendants
            // are consumed. Offline models apply unconditionally (as in
            // the paper); the target-range clamp inside FeatureModel keeps
            // out-of-distribution fragments from exploding, and the online
            // method adds stricter guards for models built on the fly.
            let slice = &views[idx..idx + size];
            let f = plan_features_slice(arena.subtree_nodes(idx), slice);
            let start = sm.start.predict(&f).max(0.0);
            let run = sm.run.predict(&f).max(start);
            out[idx] = NodePrediction::PlanModel {
                times: (start, run),
            };
            return (start, run);
        }
        let node = arena.node(idx);
        let mut child_times = Vec::with_capacity(node.children.len());
        let mut child_views = Vec::with_capacity(node.children.len());
        for ci in arena.children(idx) {
            child_views.push(&views[ci]);
            child_times.push(self.compose(arena, hashes, views, ci, out));
        }
        let t = self
            .op_model
            .predict_node(node, &views[idx], &child_views, &child_times);
        out[idx] = NodePrediction::Operator { times: t };
        t
    }
}

/// Borrowed state for one memoized plan walk: the flattened arena,
/// aligned views, the per-node structure hashes from
/// [`arena_structure_hashes`], the model-set signature, and the shared
/// cache.
struct MemoCtx<'a, 'p> {
    arena: &'a PlanArena<'p>,
    views: &'a [NodeView],
    hashes: &'a [u64],
    sig: u64,
    cache: &'a PredictionCache,
}

/// One iteration of Algorithm 1, for reporting (Figure 8's series).
#[derive(Debug, Clone)]
pub struct IterationRecord {
    /// Iteration number (1-based).
    pub iteration: usize,
    /// Candidate structure considered.
    pub key: StructureKey,
    /// Its description.
    pub description: String,
    /// Whether the model was kept.
    pub accepted: bool,
    /// Mean relative training error *after* this iteration.
    pub error: f64,
}

/// Trains a hybrid model per Algorithm 1; returns the model and the
/// per-iteration error trajectory.
pub fn train_hybrid(
    queries: &[&ExecutedQuery],
    op_model: OpLevelModel,
    config: &HybridConfig,
) -> Result<(HybridModel, Vec<IterationRecord>), QppError> {
    let source = op_model.source();
    let mut model = HybridModel::operator_only(op_model);
    let views: Vec<Vec<NodeView>> = if queries.len() > 1 && ml::par::threads() > 1 {
        ml::par::par_map(queries, |_, q| q.views(source))
    } else {
        queries.iter().map(|q| q.views(source)).collect()
    };
    let plans: Vec<(u8, &PlanNode)> = queries.iter().map(|q| (q.template, &q.plan)).collect();
    let index = SubplanIndex::build(&plans, config.min_size);

    let mut error = training_error(&model, queries, &views);
    let mut rejected: HashSet<StructureKey> = HashSet::new();
    let mut records = Vec::new();

    for iteration in 1..=config.max_iterations {
        if error <= config.target_error {
            break;
        }
        let candidate = next_candidate(&model, queries, &views, &index, config, &rejected);
        let Some((key, info_desc)) = candidate else {
            break;
        };
        let subplan_model =
            train_subplan_model(key, queries, &views, &index, config)?;
        model.plan_models.insert(key, subplan_model);
        let new_error = training_error(&model, queries, &views);
        let accepted = new_error < error - config.epsilon;
        if accepted {
            error = new_error;
        } else {
            model.plan_models.remove(&key);
            rejected.insert(key);
        }
        records.push(IterationRecord {
            iteration,
            key,
            description: info_desc,
            accepted,
            error,
        });
    }
    Ok((model, records))
}

/// Trains the (start, run) plan-level model pair for one structure from
/// all its occurrences in the training data.
pub fn train_subplan_model(
    key: StructureKey,
    queries: &[&ExecutedQuery],
    views: &[Vec<NodeView>],
    index: &SubplanIndex,
    config: &HybridConfig,
) -> Result<SubplanModel, QppError> {
    let info = index
        .get(key)
        .ok_or(QppError::Internal("sub-plan structure not in the training index"))?;
    let mut x = Dataset::new(crate::features::plan_feature_count());
    let mut y_start = Vec::new();
    let mut y_run = Vec::new();
    for occ in &info.occurrences {
        let q = queries[occ.query];
        let node = crate::subplan::subtree_at(&q.plan, occ.node_idx);
        let slice = &views[occ.query][occ.node_idx..occ.node_idx + occ.size];
        x.push_row(&plan_features(node, slice));
        let t = q.trace.timings[occ.node_idx];
        y_start.push(t.start);
        y_run.push(t.run);
    }
    let folds = kfold(x.n_rows(), config.folds.min(x.n_rows()).max(2), config.seed);
    // The start- and run-time heads train on the same design matrix and
    // folds, independently — run them on two threads. The start head's
    // error is checked first, matching the serial statement order.
    let (start_res, run_res) = ml::par::join2(
        || {
            FeatureModel::train(
                &x,
                &y_start,
                &folds,
                &config.learner,
                &config.selection,
                config.log_target,
            )
        },
        || {
            FeatureModel::train(
                &x,
                &y_run,
                &folds,
                &config.learner,
                &config.selection,
                config.log_target,
            )
        },
    );
    let start = start_res?;
    let run = run_res?;
    Ok(SubplanModel {
        start,
        run,
        description: info.description.clone(),
    })
}

/// Mean relative error of the current hybrid model on the training data.
pub fn training_error(
    model: &HybridModel,
    queries: &[&ExecutedQuery],
    views: &[Vec<NodeView>],
) -> f64 {
    let actual: Vec<f64> = queries.iter().map(|q| q.latency()).collect();
    let preds: Vec<f64> = if queries.len() > 1 && ml::par::threads() > 1 {
        ml::par::par_map(queries, |qi, q| model.predict_plan(&q.plan, &views[qi]).latency)
    } else {
        queries
            .iter()
            .zip(views)
            .map(|(q, v)| model.predict_plan(&q.plan, v).latency)
            .collect()
    };
    mean_relative_error(&actual, &preds)
}

/// Chooses the next candidate per the configured strategy, applying the
/// consumption rule: occurrences inside already-covered fragments do not
/// count.
fn next_candidate(
    model: &HybridModel,
    queries: &[&ExecutedQuery],
    views: &[Vec<NodeView>],
    index: &SubplanIndex,
    config: &HybridConfig,
    rejected: &HashSet<StructureKey>,
) -> Option<(StructureKey, String)> {
    // Per-node predictions (for error attribution) and coverage. Each
    // query's prediction is independent, so the walk fans out; the error
    // map is merged serially in query order.
    let per_query_walk = |qi: usize, q: &ExecutedQuery| -> (Vec<bool>, Vec<(usize, f64)>) {
        let pred = model.predict_plan(&q.plan, &views[qi]);
        let mut cov = vec![false; q.plan.node_count()];
        let mut errs = Vec::new();
        for (ni, np) in pred.nodes.iter().enumerate() {
            match np {
                NodePrediction::Covered | NodePrediction::PlanModel { .. } => cov[ni] = true,
                NodePrediction::Operator { times } => {
                    let actual = q.trace.timings[ni].run;
                    if actual > 0.0 {
                        errs.push((ni, relative_error(actual, times.1)));
                    }
                }
            }
        }
        (cov, errs)
    };
    // Per query: node coverage flags plus (node index, relative error)
    // pairs for the operator-modeled nodes.
    type NodeWalk = (Vec<bool>, Vec<(usize, f64)>);
    let walked: Vec<NodeWalk> =
        if queries.len() > 1 && ml::par::threads() > 1 {
            ml::par::par_map(queries, |qi, q| per_query_walk(qi, q))
        } else {
            queries
                .iter()
                .enumerate()
                .map(|(qi, q)| per_query_walk(qi, q))
                .collect()
        };
    let mut node_errors: HashMap<(usize, usize), f64> = HashMap::new();
    let mut covered: Vec<Vec<bool>> = Vec::with_capacity(queries.len());
    for (qi, (cov, errs)) in walked.into_iter().enumerate() {
        for (ni, e) in errs {
            node_errors.insert((qi, ni), e);
        }
        covered.push(cov);
    }

    struct Cand {
        key: StructureKey,
        desc: String,
        size: usize,
        freq: usize,
        avg_error: f64,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for info in index.all() {
        if rejected.contains(&info.key) || model.plan_models.contains_key(&info.key) {
            continue;
        }
        let mut freq = 0usize;
        let mut err_sum = 0.0;
        let mut err_n = 0usize;
        for occ in &info.occurrences {
            if covered[occ.query][occ.node_idx] {
                continue; // consumed by an accepted model
            }
            freq += 1;
            if let Some(e) = node_errors.get(&(occ.query, occ.node_idx)) {
                err_sum += *e;
                err_n += 1;
            }
        }
        if freq < config.min_frequency {
            continue;
        }
        let avg_error = if err_n > 0 { err_sum / err_n as f64 } else { 0.0 };
        // Plans already predicted well are not worth a model (paper's
        // threshold; the error-based ranking handles this implicitly but
        // we apply it uniformly to avoid wasted iterations).
        if avg_error <= config.skip_error_below {
            continue;
        }
        cands.push(Cand {
            key: info.key,
            desc: info.description.clone(),
            size: info.size,
            freq,
            avg_error,
        });
    }
    match config.strategy {
        PlanOrdering::SizeBased => cands.sort_by(|a, b| {
            a.size
                .cmp(&b.size)
                .then(b.freq.cmp(&a.freq))
                .then(a.key.cmp(&b.key))
        }),
        PlanOrdering::FrequencyBased => cands.sort_by(|a, b| {
            b.freq
                .cmp(&a.freq)
                .then(a.size.cmp(&b.size))
                .then(a.key.cmp(&b.key))
        }),
        PlanOrdering::ErrorBased => cands.sort_by(|a, b| {
            let wa = a.freq as f64 * a.avg_error;
            let wb = b.freq as f64 * b.avg_error;
            wb.partial_cmp(&wa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.key.cmp(&b.key))
        }),
    }
    cands.first().map(|c| (c.key, c.desc.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::QueryDataset;
    use crate::op_model::{OpLevelModel, OpModelConfig};
    use engine::{Catalog, Simulator};
    use tpch::Workload;

    /// Simulator with the jitter tuned down: these tests assert model
    /// accuracy, which the default absolute jitter would swamp at the tiny
    /// scale factors used here.
    fn quiet_sim() -> Simulator {
        Simulator::with_config(engine::SimConfig {
            additive_noise_secs: 0.05,
            ..engine::SimConfig::default()
        })
    }

    fn dataset() -> QueryDataset {
        let catalog = Catalog::new(0.1, 1);
        let workload = Workload::generate(&[1, 3, 6, 12, 14], 10, 0.1, 7);
        QueryDataset::execute(&catalog, &workload, &quiet_sim(), 11, f64::INFINITY)
    }

    fn quick_config(strategy: PlanOrdering) -> HybridConfig {
        HybridConfig {
            strategy,
            max_iterations: 8,
            min_frequency: 3,
            ..HybridConfig::default()
        }
    }

    #[test]
    fn hybrid_never_ends_worse_than_operator_level() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
        let base = HybridModel::operator_only(op.clone());
        let views: Vec<Vec<NodeView>> =
            refs.iter().map(|q| q.views(op.source())).collect();
        let base_err = training_error(&base, &refs, &views);
        let (hybrid, records) =
            train_hybrid(&refs, op, &quick_config(PlanOrdering::ErrorBased)).unwrap();
        let hybrid_err = training_error(&hybrid, &refs, &views);
        assert!(
            hybrid_err <= base_err + 1e-9,
            "hybrid {hybrid_err} vs op {base_err}"
        );
        // Every accepted record lowers the error monotonically.
        let mut prev = base_err;
        for r in &records {
            if r.accepted {
                assert!(r.error <= prev + 1e-9);
                prev = r.error;
            }
        }
    }

    #[test]
    fn all_strategies_produce_models_or_clean_convergence() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        for strategy in [
            PlanOrdering::SizeBased,
            PlanOrdering::FrequencyBased,
            PlanOrdering::ErrorBased,
        ] {
            let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
            let (hybrid, _) = train_hybrid(&refs, op, &quick_config(strategy)).unwrap();
            for q in &refs {
                let p = hybrid.predict(q);
                assert!(p.is_finite() && p >= 0.0);
            }
        }
    }

    #[test]
    fn memoized_prediction_is_bit_identical_and_caches() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
        let (hybrid, _) =
            train_hybrid(&refs, op, &quick_config(PlanOrdering::ErrorBased)).unwrap();
        let cache = crate::pred_cache::PredictionCache::default();
        for q in &refs {
            let views = q.views(hybrid.op_model.source());
            let plain = hybrid.predict_plan(&q.plan, &views).latency;
            let memo = hybrid.predict_plan_memo(&q.plan, &views, &cache);
            assert_eq!(plain.to_bits(), memo.to_bits());
            // Second walk answers the root from the cache, same bits.
            let again = hybrid.predict_plan_memo(&q.plan, &views, &cache);
            assert_eq!(plain.to_bits(), again.to_bits());
        }
        let stats = cache.stats();
        assert!(stats.hits > 0, "repeat walks must hit: {stats:?}");

        // Batch form equals the serial loop bit-for-bit, in order.
        let serial: Vec<u64> = refs.iter().map(|q| hybrid.predict(q).to_bits()).collect();
        let batch: Vec<u64> = hybrid
            .predict_batch(&refs)
            .into_iter()
            .map(f64::to_bits)
            .collect();
        assert_eq!(serial, batch);
    }

    #[test]
    fn covered_nodes_are_not_operator_predicted() {
        let ds = dataset();
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
        let (hybrid, _) =
            train_hybrid(&refs, op, &quick_config(PlanOrdering::ErrorBased)).unwrap();
        if hybrid.plan_models.is_empty() {
            return; // nothing to check on this tiny dataset
        }
        let mut saw_plan_model = false;
        for q in &refs {
            let pred = hybrid.predict_detailed(q);
            for (i, np) in pred.nodes.iter().enumerate() {
                if let NodePrediction::PlanModel { .. } = np {
                    saw_plan_model = true;
                    // All strict descendants must be covered.
                    let size = crate::subplan::subtree_at(&q.plan, i).node_count();
                    for j in (i + 1)..(i + size) {
                        assert_eq!(pred.nodes[j], NodePrediction::Covered);
                    }
                }
            }
        }
        assert!(saw_plan_model);
    }
}
