//! Sub-plan structure keys, occurrence indexing and common-sub-plan
//! analytics (Sections 3.4 and 4, Figure 4).
//!
//! Plan-level models for sub-plans are keyed on the *structure* of the
//! sub-plan tree — operator types plus scanned tables — so all occurrences
//! of the same fragment across queries and templates hash to the same key
//! (the paper's `get_plan_list` hash index).

use engine::arena::PlanArena;
use engine::plan::{OpDetail, PlanNode};
use std::collections::HashMap;

/// Structural key of a plan fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize)]
pub struct StructureKey(pub u64);

/// Computes the structural key of the subtree rooted at `node`.
pub fn structure_key(node: &PlanNode) -> StructureKey {
    StructureKey(hash_node(node))
}

fn hash_node(node: &PlanNode) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(0x1000_0000_01b3);
    h = mix(h, node.op.index() as u64 + 1);
    if let OpDetail::Scan { table, .. } = &node.detail {
        h = mix(h, *table as u64 + 101);
    }
    if let OpDetail::Join { kind, .. } = &node.detail {
        // Inner / semi / anti / outer joins of the same inputs are NOT the
        // same fragment — their cardinality semantics differ completely.
        h = mix(h, *kind as u64 + 501);
    }
    if node.op == engine::plan::OpType::HashJoin && node.children.len() == 2 {
        // Hash joins are logically symmetric: the optimizer's build-side
        // choice depends on cardinality estimates and flips between
        // parameterizations/templates. Key the fragment on the unordered
        // pair of inputs, with the Hash wrapper stripped, so the "same
        // join of the same inputs" matches across orientations (this is
        // what lets models transfer between templates, Section 4).
        let a = hash_node(strip_hash(&node.children[0]));
        let b = hash_node(strip_hash(&node.children[1]));
        let combined = (a ^ b).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ a.wrapping_add(b)
            ^ a.min(b).rotate_left(13);
        return mix(h, combined);
    }
    for c in &node.children {
        h = mix(h, hash_node(c));
    }
    h
}

/// The input under a `Hash` build node (identity for anything else).
fn strip_hash(node: &PlanNode) -> &PlanNode {
    if node.op == engine::plan::OpType::Hash && node.children.len() == 1 {
        &node.children[0]
    } else {
        node
    }
}

/// One occurrence of a sub-plan structure inside a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occurrence {
    /// Index of the query in the dataset.
    pub query: usize,
    /// Pre-order position of the sub-plan root within the query's plan.
    pub node_idx: usize,
    /// Number of operators in the sub-plan.
    pub size: usize,
}

/// Summary of one distinct sub-plan structure.
#[derive(Debug, Clone)]
pub struct SubplanInfo {
    /// Structure key.
    pub key: StructureKey,
    /// Operators in the fragment.
    pub size: usize,
    /// All occurrences across the dataset.
    pub occurrences: Vec<Occurrence>,
    /// Distinct templates the fragment appears in.
    pub templates: Vec<u8>,
    /// Human-readable description of the fragment.
    pub description: String,
}

impl SubplanInfo {
    /// Occurrence count.
    pub fn frequency(&self) -> usize {
        self.occurrences.len()
    }
}

/// An index of every sub-plan structure in a set of plans.
#[derive(Debug, Clone, Default)]
pub struct SubplanIndex {
    by_key: HashMap<StructureKey, SubplanInfo>,
}

impl SubplanIndex {
    /// Builds the index over `(template, plan)` pairs, enumerating every
    /// subtree with at least `min_size` operators.
    ///
    /// Each plan is flattened into a [`PlanArena`] once, and hashes are
    /// memoized bottom-up along its post-order cursor, so indexing a plan
    /// of `n` operators costs O(n) hash work instead of the O(n²) of
    /// re-hashing every subtree from its root.
    pub fn build(plans: &[(u8, &PlanNode)], min_size: usize) -> SubplanIndex {
        let mut idx = SubplanIndex::default();
        for (q, (template, plan)) in plans.iter().enumerate() {
            let arena = PlanArena::flatten(plan);
            let hashes = arena_structure_hashes(&arena);
            for (i, node) in arena.nodes().iter().enumerate() {
                let size = arena.size(i);
                if size < min_size {
                    continue;
                }
                let key = StructureKey(hashes[i]);
                let entry = idx.by_key.entry(key).or_insert_with(|| SubplanInfo {
                    key,
                    size,
                    occurrences: Vec::new(),
                    templates: Vec::new(),
                    description: describe(node),
                });
                entry.occurrences.push(Occurrence {
                    query: q,
                    node_idx: i,
                    size,
                });
                if !entry.templates.contains(template) {
                    entry.templates.push(*template);
                }
            }
        }
        idx
    }

    /// Number of distinct structures.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Look up a structure.
    pub fn get(&self, key: StructureKey) -> Option<&SubplanInfo> {
        self.by_key.get(&key)
    }

    /// All structures, sorted by key for determinism.
    pub fn all(&self) -> Vec<&SubplanInfo> {
        let mut v: Vec<&SubplanInfo> = self.by_key.values().collect();
        v.sort_by_key(|s| s.key);
        v
    }

    /// Structures shared by at least `min_templates` distinct templates
    /// (the paper's "common sub-plans", Figure 4).
    pub fn common(&self, min_templates: usize) -> Vec<&SubplanInfo> {
        let mut v: Vec<&SubplanInfo> = self
            .by_key
            .values()
            .filter(|s| s.templates.len() >= min_templates)
            .collect();
        v.sort_by(|a, b| b.frequency().cmp(&a.frequency()).then(a.key.cmp(&b.key)));
        v
    }

    /// For each template, the number of *other* templates it shares at
    /// least one common sub-plan with (Figure 4(c)).
    pub fn template_sharing(&self) -> Vec<(u8, usize)> {
        let mut partners: HashMap<u8, std::collections::BTreeSet<u8>> = HashMap::new();
        for info in self.by_key.values() {
            if info.templates.len() < 2 {
                continue;
            }
            for &a in &info.templates {
                for &b in &info.templates {
                    if a != b {
                        partners.entry(a).or_default().insert(b);
                    }
                }
            }
        }
        let mut out: Vec<(u8, usize)> = partners
            .into_iter()
            .map(|(t, s)| (t, s.len()))
            .collect();
        out.sort_unstable();
        out
    }

    /// CDF support of common-sub-plan sizes (Figure 4(a)): the sorted
    /// sizes of all structures shared by ≥ 2 templates.
    pub fn common_size_distribution(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self
            .by_key
            .values()
            .filter(|s| s.templates.len() >= 2)
            .map(|s| s.size)
            .collect();
        sizes.sort_unstable();
        sizes
    }
}

/// Computes the structure hash of every node of an already-flattened
/// plan, indexed by pre-order position. Iterates the arena's post-order
/// cursor (children's hashes land before their parent reads them), so the
/// whole plan costs O(n) hash work with no recursion. Must agree exactly
/// with [`hash_node`], which stays the single-subtree entry point used at
/// predict time.
pub fn arena_structure_hashes(arena: &PlanArena<'_>) -> Vec<u64> {
    let mut hashes = vec![0u64; arena.len()];
    let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(0x1000_0000_01b3);
    for idx in arena.postorder() {
        let node = arena.node(idx);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = mix(h, node.op.index() as u64 + 1);
        if let OpDetail::Scan { table, .. } = &node.detail {
            h = mix(h, *table as u64 + 101);
        }
        if let OpDetail::Join { kind, .. } = &node.detail {
            h = mix(h, *kind as u64 + 501);
        }
        if node.op == engine::plan::OpType::HashJoin && node.children.len() == 2 {
            // The Hash wrapper's stripped hash is its only child's hash,
            // which sits at the very next pre-order position — memoized.
            let stripped = |ci: usize| -> u64 {
                let c = arena.node(ci);
                if c.op == engine::plan::OpType::Hash && c.children.len() == 1 {
                    hashes[ci + 1]
                } else {
                    hashes[ci]
                }
            };
            let mut children = arena.children(idx);
            let a = stripped(children.next().expect("binary join"));
            let b = stripped(children.next().expect("binary join"));
            let combined = (a ^ b).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ a.wrapping_add(b)
                ^ a.min(b).rotate_left(13);
            h = mix(h, combined);
        } else {
            for ci in arena.children(idx) {
                h = mix(h, hashes[ci]);
            }
        }
        hashes[idx] = h;
    }
    hashes
}

/// Computes the structure hash and subtree size of *every* node of `plan`
/// in one memoized post-order pass, indexed by pre-order position (the
/// same layout `views` and [`crate::features::plan_features`] use).
///
/// `hashes[i]` agrees exactly with [`structure_key`] of the node at
/// pre-order position `i`, and `sizes[i]` is its operator count, so a tree
/// walk can key a memo cache for any fragment without re-hashing it —
/// this is what the prediction memo cache
/// ([`crate::pred_cache::PredictionCache`]) uses to key sub-plan
/// predictions in O(n) total per plan. Callers that already hold a
/// [`PlanArena`] should use [`arena_structure_hashes`] with the arena's
/// own `sizes()` instead of re-flattening here.
pub fn subtree_hash_sizes(plan: &PlanNode) -> (Vec<u64>, Vec<usize>) {
    let arena = PlanArena::flatten(plan);
    let hashes = arena_structure_hashes(&arena);
    (hashes, arena.sizes().to_vec())
}

/// A compact single-line structural description, e.g.
/// `HashJoin(SeqScan[orders], Hash(SeqScan[lineitem]))`.
pub fn describe(node: &PlanNode) -> String {
    let mut s = String::new();
    write_desc(node, &mut s);
    s
}

fn write_desc(node: &PlanNode, out: &mut String) {
    let name = node.op.name().replace(' ', "");
    out.push_str(&name);
    if let OpDetail::Scan { table, .. } = &node.detail {
        out.push('[');
        out.push_str(table.name());
        out.push(']');
    }
    if !node.children.is_empty() {
        out.push('(');
        for (i, c) in node.children.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_desc(c, out);
        }
        out.push(')');
    }
}

/// Finds the subtree at a pre-order position, returning it together with
/// the pre-order offset (which equals `node_idx` itself).
pub fn subtree_at(plan: &PlanNode, node_idx: usize) -> &PlanNode {
    plan.preorder()[node_idx]
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::{Catalog, Planner};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn plans(templates: &[u8], n: usize) -> Vec<(u8, PlanNode)> {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut out = Vec::new();
        for &t in templates {
            let mut rng = StdRng::seed_from_u64(t as u64);
            for _ in 0..n {
                out.push((t, planner.plan(&tpch::instantiate(t, 0.1, &mut rng))));
            }
        }
        out
    }

    #[test]
    fn same_structure_same_key_different_structure_different_key() {
        let ps = plans(&[3, 6], 2);
        let k3a = structure_key(&ps[0].1);
        let k3b = structure_key(&ps[1].1);
        let k6 = structure_key(&ps[2].1);
        // Template 3 instances share plan structure at this scale.
        assert_eq!(k3a, k3b);
        assert_ne!(k3a, k6);
    }

    #[test]
    fn index_counts_occurrences_and_templates() {
        let ps = plans(&[3, 3, 6], 2);
        let refs: Vec<(u8, &PlanNode)> = ps.iter().map(|(t, p)| (*t, p)).collect();
        let idx = SubplanIndex::build(&refs, 2);
        assert!(!idx.is_empty());
        // The full template-3 plan occurs 4 times (2 per workload copy).
        let key = structure_key(&ps[0].1);
        let info = idx.get(key).expect("indexed");
        assert_eq!(info.frequency(), 4);
        assert_eq!(info.templates, vec![3]);
    }

    #[test]
    fn common_subplans_span_templates() {
        // Templates 3 and 10 both join customer ⋈ orders ⋈ lineitem.
        let ps = plans(&[3, 10], 3);
        let refs: Vec<(u8, &PlanNode)> = ps.iter().map(|(t, p)| (*t, p)).collect();
        let idx = SubplanIndex::build(&refs, 2);
        let common = idx.common(2);
        // They may or may not share fragments depending on physical
        // choices; the sharing report must at least be internally
        // consistent.
        for info in &common {
            assert!(info.templates.len() >= 2);
        }
        let sharing = idx.template_sharing();
        for (_, n) in &sharing {
            assert!(*n >= 1);
        }
    }

    #[test]
    fn descriptions_are_structural() {
        let ps = plans(&[6], 1);
        let d = describe(&ps[0].1);
        assert!(d.contains("SeqScan[lineitem]"), "{d}");
        assert!(d.contains("Aggregate"), "{d}");
    }

    #[test]
    fn subtree_at_matches_preorder() {
        let ps = plans(&[3], 1);
        let plan = &ps[0].1;
        for (i, n) in plan.preorder().iter().enumerate() {
            assert_eq!(subtree_at(plan, i).op, n.op);
        }
    }

    #[test]
    fn memoized_build_keys_match_structure_key() {
        // The one-pass memoized hashing must agree with the per-subtree
        // entry point for every node, including nested hash joins where
        // the build side carries a Hash wrapper.
        let ps = plans(&[1, 3, 5, 10, 14], 2);
        for (_, plan) in &ps {
            let (hashes, sizes) = subtree_hash_sizes(plan);
            for (i, node) in plan.preorder().iter().enumerate() {
                assert_eq!(StructureKey(hashes[i]), structure_key(node));
                assert_eq!(sizes[i], node.node_count());
            }
        }
    }

    #[test]
    fn size_distribution_is_sorted() {
        let ps = plans(&[3, 10, 5], 2);
        let refs: Vec<(u8, &PlanNode)> = ps.iter().map(|(t, p)| (*t, p)).collect();
        let idx = SubplanIndex::build(&refs, 2);
        let sizes = idx.common_size_distribution();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]));
    }
}
