//! Behavioral tests of the planner's cost-based physical choices and the
//! simulator's mechanism inventory.

use engine::plan::{OpDetail, OpType, PlanNode};
use engine::{Catalog, Planner, PlannerConfig, SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpch::spec::JoinKind;

fn plan_t(template: u8, sf: f64, seed: u64) -> PlanNode {
    let catalog = Catalog::new(sf, 1);
    let planner = Planner::new(&catalog);
    let mut rng = StdRng::seed_from_u64(seed);
    planner.plan(&tpch::instantiate(template, sf, &mut rng))
}

/// The hash-join build side is the estimated-smaller input.
#[test]
fn hash_join_builds_on_smaller_estimated_side() {
    for t in [3u8, 5, 10, 12] {
        let plan = plan_t(t, 1.0, 9);
        for n in plan.preorder() {
            if n.op == OpType::HashJoin
                && matches!(
                    n.detail,
                    OpDetail::Join {
                        kind: JoinKind::Inner,
                        ..
                    }
                )
            {
                let probe = &n.children[0];
                let hash = &n.children[1];
                assert_eq!(hash.op, OpType::Hash);
                let build_rows = hash.children[0].est.rows;
                assert!(
                    build_rows <= probe.est.rows * 1.001,
                    "t{t}: built {build_rows} rows while probing {}",
                    probe.est.rows
                );
            }
        }
    }
}

/// Aggregation strategy flips from hash to sort+group when work_mem is
/// tiny (the estimated hash table no longer fits).
#[test]
fn work_mem_flips_aggregation_strategy() {
    let catalog = Catalog::new(1.0, 1);
    let mut rng = StdRng::seed_from_u64(3);
    let spec = tpch::instantiate(10, 1.0, &mut rng); // group by customer: many groups

    let roomy = Planner::with_config(
        &catalog,
        PlannerConfig {
            work_mem: 1e12,
        },
    )
    .plan(&spec);
    let tight = Planner::with_config(
        &catalog,
        PlannerConfig {
            work_mem: 1024.0,
        },
    )
    .plan(&spec);

    let has = |p: &PlanNode, op: OpType| p.preorder().iter().any(|n| n.op == op);
    assert!(has(&roomy, OpType::HashAggregate));
    assert!(!has(&roomy, OpType::GroupAggregate));
    assert!(has(&tight, OpType::GroupAggregate));
}

/// A repeated scan of the same small table within one query hits the
/// buffer cache: template 8 scans NATION twice.
#[test]
fn within_query_caching_speeds_second_scan() {
    let plan = plan_t(8, 1.0, 4);
    let sim = Simulator::with_config(SimConfig {
        node_noise_sigma: 0.0,
        query_noise_sigma: 0.0,
        additive_noise_secs: 0.0,
        ..SimConfig::default()
    });
    let trace = sim.execute(&plan, 1.0, 1);
    // Collect the elapsed run time of each nation scan relative to its own
    // subtree start (the scans are leaves, so run - start ≈ service time).
    let nodes = plan.preorder();
    let nation_scans: Vec<f64> = nodes
        .iter()
        .zip(&trace.timings)
        .filter(|(n, _)| n.scan_table() == Some(tpch::TableId::Nation))
        .map(|(_, t)| t.run)
        .collect();
    assert!(
        nation_scans.len() >= 2,
        "template 8 should scan nation twice"
    );
    // The later scan must be at least 10x cheaper (cached pages).
    let first = nation_scans[0];
    let later = *nation_scans.last().unwrap();
    assert!(
        later < first / 10.0 || first < 1e-4,
        "first {first}, later {later}"
    );
}

/// Tiny work_mem slows spilling queries down (external sorts / batched
/// hash joins).
#[test]
fn spills_cost_time() {
    let plan = plan_t(5, 1.0, 6);
    let base_cfg = SimConfig {
        node_noise_sigma: 0.0,
        query_noise_sigma: 0.0,
        additive_noise_secs: 0.0,
        ..SimConfig::default()
    };
    let roomy = Simulator::with_config(SimConfig {
        work_mem: 1e12,
        ..base_cfg.clone()
    })
    .execute(&plan, 1.0, 1)
    .total_secs;
    let tight = Simulator::with_config(SimConfig {
        work_mem: 1024.0 * 1024.0,
        ..base_cfg
    })
    .execute(&plan, 1.0, 1)
    .total_secs;
    assert!(tight > roomy * 1.1, "tight {tight} vs roomy {roomy}");
}

/// Selective equality probes on indexed columns use the index; full-table
/// predicates do not.
#[test]
fn index_selection_depends_on_selectivity() {
    // Template 2's subquery probes partsupp by part key -> IndexScan.
    let t2 = plan_t(2, 1.0, 5);
    assert!(t2.preorder().iter().any(|n| n.op == OpType::IndexScan));
    // Template 1 scans all of lineitem -> SeqScan only.
    let t1 = plan_t(1, 1.0, 5);
    assert!(t1.preorder().iter().all(|n| n.op != OpType::IndexScan));
}

/// Semi joins never report more rows than their left input.
#[test]
fn semi_join_cardinality_bounds() {
    for seed in 0..5u64 {
        let plan = plan_t(4, 1.0, seed);
        for n in plan.preorder() {
            if let OpDetail::Join {
                kind: JoinKind::Semi,
                ..
            } = n.detail
            {
                let left = &n.children[0];
                assert!(n.truth.rows <= left.truth.rows * 1.001);
                assert!(n.est.rows <= left.est.rows * 1.001);
            }
        }
    }
}

/// EXPLAIN output parses back: every line of every template renders with
/// cost annotations.
#[test]
fn explain_covers_all_templates() {
    for t in tpch::ALL_TEMPLATES {
        let plan = plan_t(t, 0.5, 2);
        let text = engine::explain(&plan);
        assert_eq!(text.lines().count(), plan.node_count(), "t{t}");
        for line in text.lines() {
            assert!(line.contains("cost="), "t{t}: {line}");
            assert!(line.contains("rows="), "t{t}: {line}");
        }
    }
}

/// The estimate side never sees truth values: for template 9 the LIKE
/// filter is underestimated by a large factor (the paper's snowball).
#[test]
fn t9_like_underestimation_cascades() {
    let plan = plan_t(9, 10.0, 8);
    let part_scan = plan
        .preorder()
        .into_iter()
        .find(|n| n.scan_table() == Some(tpch::TableId::Part))
        .expect("part scan");
    assert!(
        part_scan.truth.rows > part_scan.est.rows * 2.0,
        "truth {} vs est {}",
        part_scan.truth.rows,
        part_scan.est.rows
    );
}
