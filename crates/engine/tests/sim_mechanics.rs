//! Mechanism-level tests of the execution simulator: overlap, blocking,
//! numeric CPU, noise structure.

use engine::{Catalog, Planner, SimConfig, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn noiseless() -> SimConfig {
    SimConfig {
        node_noise_sigma: 0.0,
        query_noise_sigma: 0.0,
        additive_noise_secs: 0.0,
        ..SimConfig::default()
    }
}

fn plan(template: u8, sf: f64) -> engine::PlanNode {
    let catalog = Catalog::new(sf, 1);
    let planner = Planner::new(&catalog);
    let mut rng = StdRng::seed_from_u64(1);
    planner.plan(&tpch::instantiate(template, sf, &mut rng))
}

/// I/O–CPU overlap: template 6 (scan + light aggregate) is I/O-bound, so
/// making the aggregate's transition CPU cheaper changes almost nothing —
/// it was hidden under the scan's I/O slack.
#[test]
fn cheap_cpu_hides_under_io() {
    let p = plan(6, 1.0);
    let base = Simulator::with_config(noiseless()).execute(&p, 1.0, 0).total_secs;
    let no_agg_cpu = Simulator::with_config(SimConfig {
        agg_transition_secs: 0.0,
        numeric_op_secs: 0.0,
        ..noiseless()
    })
    .execute(&p, 1.0, 0)
    .total_secs;
    let delta = (base - no_agg_cpu) / base;
    assert!(
        delta < 0.25,
        "light aggregate CPU should mostly hide in scan I/O (delta {delta})"
    );
}

/// Template 1's heavy numeric aggregate does NOT hide: it exceeds the
/// scan's I/O and becomes the bottleneck (the paper's §5.2 example).
#[test]
fn heavy_numeric_cpu_does_not_hide() {
    let p = plan(1, 1.0);
    let base = Simulator::with_config(noiseless()).execute(&p, 1.0, 0).total_secs;
    let no_agg_cpu = Simulator::with_config(SimConfig {
        agg_transition_secs: 0.0,
        numeric_op_secs: 0.0,
        ..noiseless()
    })
    .execute(&p, 1.0, 0)
    .total_secs;
    let delta = (base - no_agg_cpu) / base;
    assert!(
        delta > 0.3,
        "template 1's numeric arithmetic must dominate (delta {delta})"
    );
}

/// Blocking semantics: a Sort's start-time lies at or after its child's
/// run-time (it cannot emit before consuming everything).
#[test]
fn sorts_block() {
    let p = plan(1, 0.5); // Sort on top of the aggregate
    let sim = Simulator::with_config(noiseless());
    let trace = sim.execute(&p, 0.5, 0);
    let nodes = p.preorder();
    for (i, n) in nodes.iter().enumerate() {
        if n.op == engine::OpType::Sort {
            // Child is at pre-order i+1.
            let child_run = trace.timings[i + 1].run;
            assert!(
                trace.timings[i].start >= child_run * 0.999,
                "sort started at {} before child finished at {}",
                trace.timings[i].start,
                child_run
            );
        }
    }
}

/// Pipelined operators do NOT block: a GroupAggregate over sorted input
/// starts long before its input finishes.
#[test]
fn group_aggregate_pipelines() {
    // Build a plan with GroupAggregate by shrinking work_mem.
    let catalog = Catalog::new(1.0, 1);
    let planner = Planner::with_config(
        &catalog,
        engine::PlannerConfig { work_mem: 1024.0 },
    );
    let mut rng = StdRng::seed_from_u64(1);
    let p = planner.plan(&tpch::instantiate(10, 1.0, &mut rng));
    let sim = Simulator::with_config(noiseless());
    let trace = sim.execute(&p, 1.0, 0);
    let nodes = p.preorder();
    let mut checked = false;
    for (i, n) in nodes.iter().enumerate() {
        if n.op == engine::OpType::GroupAggregate {
            // The child is the blocking Sort; the aggregate streams over
            // its output, so it starts with the sort's first tuple, not
            // after the sort's last.
            let child_start = trace.timings[i + 1].start;
            assert!(
                trace.timings[i].start <= child_start * 1.01 + 1e-3,
                "group aggregate should start with its input's first tuple: \
                 start {} vs child start {}",
                trace.timings[i].start,
                child_start
            );
            checked = true;
        }
    }
    assert!(checked, "expected a GroupAggregate under tiny work_mem");
}

/// The noise decomposition: per-query noise shifts whole traces; node
/// noise decorrelates operators. Turning query noise off shrinks the
/// latency spread across seeds.
#[test]
fn noise_components_compose() {
    let p = plan(6, 0.5);
    let spread = |cfg: SimConfig| {
        let sim = Simulator::with_config(cfg);
        let xs: Vec<f64> = (0..30).map(|s| sim.execute(&p, 0.5, s).total_secs).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        var.sqrt() / mean
    };
    let full = spread(SimConfig::default());
    let quiet = spread(SimConfig {
        query_noise_sigma: 0.0,
        additive_noise_secs: 0.0,
        ..SimConfig::default()
    });
    assert!(full > quiet, "full {full} vs quiet {quiet}");
    assert!(spread(noiseless()) < 1e-12);
}

/// Absolute jitter matters relatively more for short queries: the same
/// additive noise produces a larger relative spread at SF 0.5 than SF 10
/// (the paper's 1 GB-vs-10 GB predictability gap).
#[test]
fn additive_noise_hits_small_scales_harder() {
    let rel_spread = |sf: f64| {
        let p = plan(6, sf);
        let sim = Simulator::new();
        let xs: Vec<f64> = (0..30).map(|s| sim.execute(&p, sf, s).total_secs).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        var.sqrt() / mean
    };
    let small = rel_spread(0.5);
    let large = rel_spread(10.0);
    assert!(small > large * 1.5, "small {small} vs large {large}");
}
