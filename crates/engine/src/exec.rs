//! A small reference executor over generated data.
//!
//! Executes logical [`RelExpr`] trees directly against a
//! [`GeneratedDb`] (tiny scale factors). It exists to *validate* the
//! analytic truth model — scan selectivities, join cardinalities, group
//! counts, HAVING fractions — against real row counts, and to power the
//! runnable examples. It is row-exact for every construct except
//! [`RelExpr::ScalarSubqueryFilter`], whose comparison column is not part
//! of the IR; there it applies a deterministic pseudo-random filter at the
//! declared truth selectivity (documented, and excluded from validation
//! tests).

use std::collections::HashMap;
use tpch::datagen::{GeneratedDb, TableData};
use tpch::dicts;
use tpch::schema::{ColRef, TableId};
use tpch::spec::{AggFunc, GroupCount, JoinKind, Predicate, RelExpr};

/// Column identity inside an intermediate relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColKey {
    /// A base-table column carried through the pipeline.
    Col(ColRef),
    /// The i-th aggregate output of the nearest Aggregate below.
    Agg(usize),
}

/// An intermediate relation: equal-length numeric columns.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    columns: Vec<(ColKey, Vec<f64>)>,
    n_rows: usize,
}

impl Relation {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Borrow a column.
    ///
    /// # Panics
    /// Panics if the key is absent.
    pub fn column(&self, key: ColKey) -> &[f64] {
        self.columns
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_slice())
            .unwrap_or_else(|| panic!("relation has no column {key:?}"))
    }

    /// Whether the relation carries the column.
    pub fn has_column(&self, key: ColKey) -> bool {
        self.columns.iter().any(|(k, _)| *k == key)
    }

    /// Column keys in order.
    pub fn keys(&self) -> Vec<ColKey> {
        self.columns.iter().map(|(k, _)| *k).collect()
    }

    fn push(&mut self, key: ColKey, data: Vec<f64>) {
        if self.columns.is_empty() {
            self.n_rows = data.len();
        } else {
            assert_eq!(self.n_rows, data.len(), "ragged relation column");
        }
        // First writer wins on collisions (self-joins carry the left copy).
        if !self.has_column(key) {
            self.columns.push((key, data));
        }
    }

    fn select(&self, rows: &[usize]) -> Relation {
        let mut out = Relation::default();
        for (k, v) in &self.columns {
            out.push(*k, rows.iter().map(|&i| v[i]).collect());
        }
        out.n_rows = rows.len();
        out
    }
}

/// Executes a logical expression against generated data.
pub fn execute(expr: &RelExpr, db: &GeneratedDb) -> Relation {
    match expr {
        RelExpr::Scan { table, filters, .. } => scan(*table, filters, db),
        RelExpr::Join {
            kind,
            on,
            left,
            right,
            ..
        } => join(*kind, *on, &execute(left, db), &execute(right, db)),
        RelExpr::Aggregate { input, spec } => aggregate(&execute(input, db), spec),
        RelExpr::Sort { input, keys } => sort(&execute(input, db), *keys),
        RelExpr::Limit { input, count } => {
            let rel = execute(input, db);
            let take: Vec<usize> = (0..rel.n_rows().min(*count as usize)).collect();
            rel.select(&take)
        }
        RelExpr::ScalarSubqueryFilter {
            input, truth_sel, ..
        } => {
            // The IR does not carry the compared column; apply the declared
            // selectivity deterministically (see module docs).
            let rel = execute(input, db);
            let keep: Vec<usize> = (0..rel.n_rows())
                .filter(|&i| pseudo_uniform(i as u64, 0xF117E4) < *truth_sel)
                .collect();
            rel.select(&keep)
        }
    }
}

fn scan(table: TableId, filters: &[Predicate], db: &GeneratedDb) -> Relation {
    let data = db.table(table);
    let keep: Vec<usize> = (0..data.n_rows())
        .filter(|&i| filters.iter().all(|f| eval_predicate(f, data, i)))
        .collect();
    let mut out = Relation::default();
    for name in data.column_names() {
        // Skip generator-internal helper columns (p_name word slots).
        if !table.has_column(name) {
            continue;
        }
        let col = data.column(name);
        out.push(
            ColKey::Col(ColRef::new(table, name)),
            keep.iter().map(|&i| col.get_f64(i)).collect(),
        );
    }
    out.n_rows = keep.len();
    out
}

fn eval_predicate(p: &Predicate, data: &TableData, i: usize) -> bool {
    match p {
        Predicate::Cmp { col, op, value } => {
            op.eval(data.column(col.column).get_f64(i), value.as_f64())
        }
        Predicate::Between { col, lo, hi } => {
            let v = data.column(col.column).get_f64(i);
            v >= lo.as_f64() && v <= hi.as_f64()
        }
        Predicate::InSet { col, values } => {
            let v = data.column(col.column).get_f64(i);
            values.iter().any(|s| s.as_f64() == v)
        }
        Predicate::ColCmp { left, op, right } => op.eval(
            data.column(left.column).get_f64(i),
            data.column(right.column).get_f64(i),
        ),
        Predicate::NameLike { color, .. } => {
            let c = *color as f64;
            let mut words = vec!["p_name"];
            for w in 1..dicts::NAME_WORDS {
                words.push(match w {
                    1 => "p_name_w1",
                    2 => "p_name_w2",
                    3 => "p_name_w3",
                    _ => "p_name_w4",
                });
            }
            words.iter().any(|w| data.column(w).get_f64(i) == c)
        }
        // Synthetic comment matching: the deterministic hash *defines*
        // which rows contain the pattern, consistently across queries.
        Predicate::TextNotLike { col, truth } => {
            pseudo_uniform(i as u64, hash_str(col.column)) < *truth
        }
    }
}

fn join(kind: JoinKind, on: (ColRef, ColRef), left: &Relation, right: &Relation) -> Relation {
    let lkey = left.column(ColKey::Col(on.0)).to_vec();
    let rkey = right.column(ColKey::Col(on.1)).to_vec();
    let mut index: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, v) in rkey.iter().enumerate() {
        index.entry(v.to_bits()).or_default().push(i);
    }
    match kind {
        JoinKind::Inner | JoinKind::LeftOuter => {
            let mut lrows = Vec::new();
            let mut rrows: Vec<Option<usize>> = Vec::new();
            for (i, v) in lkey.iter().enumerate() {
                match index.get(&v.to_bits()) {
                    Some(matches) => {
                        for &j in matches {
                            lrows.push(i);
                            rrows.push(Some(j));
                        }
                    }
                    None if kind == JoinKind::LeftOuter => {
                        lrows.push(i);
                        rrows.push(None);
                    }
                    None => {}
                }
            }
            let mut out = left.select(&lrows);
            for (k, v) in &right.columns {
                let data: Vec<f64> = rrows
                    .iter()
                    .map(|r| r.map(|j| v[j]).unwrap_or(f64::NAN))
                    .collect();
                out.push(*k, data);
            }
            out
        }
        JoinKind::Semi | JoinKind::Anti => {
            let want_match = kind == JoinKind::Semi;
            let keep: Vec<usize> = lkey
                .iter()
                .enumerate()
                .filter(|(_, v)| index.contains_key(&v.to_bits()) == want_match)
                .map(|(i, _)| i)
                .collect();
            left.select(&keep)
        }
    }
}

fn aggregate(input: &Relation, spec: &tpch::spec::AggregateSpec) -> Relation {
    // Group rows by the tuple of group-by values.
    let group_cols: Vec<&[f64]> = spec
        .group_by
        .iter()
        .map(|c| input.column(ColKey::Col(*c)))
        .collect();
    let mut groups: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
    for i in 0..input.n_rows() {
        let key: Vec<u64> = group_cols.iter().map(|c| c[i].to_bits()).collect();
        groups.entry(key).or_default().push(i);
    }
    if input.n_rows() == 0 && spec.group_by.is_empty() {
        groups.insert(Vec::new(), Vec::new());
    }

    // Deterministic output order for reproducibility.
    let mut entries: Vec<(Vec<u64>, Vec<usize>)> = groups.into_iter().collect();
    entries.sort();

    let mut out_cols: Vec<Vec<f64>> = vec![Vec::new(); spec.group_by.len() + spec.aggs.len()];
    let mut kept = 0usize;
    for (key, members) in &entries {
        let agg_values: Vec<f64> = spec
            .aggs
            .iter()
            .map(|a| eval_agg(a, input, members))
            .collect();
        if let Some(h) = &spec.having {
            if !h.op.eval(agg_values[0], h.value) {
                continue;
            }
        }
        for (j, bits) in key.iter().enumerate() {
            out_cols[j].push(f64::from_bits(*bits));
        }
        for (j, v) in agg_values.iter().enumerate() {
            out_cols[spec.group_by.len() + j].push(*v);
        }
        kept += 1;
    }
    let mut out = Relation::default();
    for (j, c) in spec.group_by.iter().enumerate() {
        out.push(ColKey::Col(*c), std::mem::take(&mut out_cols[j]));
    }
    for j in 0..spec.aggs.len() {
        out.push(
            ColKey::Agg(j),
            std::mem::take(&mut out_cols[spec.group_by.len() + j]),
        );
    }
    out.n_rows = kept;
    out
}

fn eval_agg(agg: &AggFunc, input: &Relation, rows: &[usize]) -> f64 {
    let col = |c: &ColRef| input.column(ColKey::Col(*c));
    match agg {
        AggFunc::Count => rows.len() as f64,
        AggFunc::Sum(c) => rows.iter().map(|&i| col(c)[i]).sum(),
        AggFunc::Avg(c) => {
            if rows.is_empty() {
                0.0
            } else {
                rows.iter().map(|&i| col(c)[i]).sum::<f64>() / rows.len() as f64
            }
        }
        AggFunc::Min(c) => rows
            .iter()
            .map(|&i| col(c)[i])
            .fold(f64::INFINITY, f64::min),
        AggFunc::Max(c) => rows
            .iter()
            .map(|&i| col(c)[i])
            .fold(f64::NEG_INFINITY, f64::max),
    }
}

fn sort(input: &Relation, keys: u32) -> Relation {
    let n_keys = (keys as usize).min(input.columns.len());
    let mut order: Vec<usize> = (0..input.n_rows()).collect();
    order.sort_by(|&a, &b| {
        for (_, col) in input.columns.iter().take(n_keys) {
            match col[a].partial_cmp(&col[b]) {
                Some(std::cmp::Ordering::Equal) | None => continue,
                Some(o) => return o,
            }
        }
        std::cmp::Ordering::Equal
    });
    input.select(&order)
}

/// Deterministic pseudo-uniform value in [0, 1) from (row, salt).
fn pseudo_uniform(i: u64, salt: u64) -> f64 {
    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt;
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    (x % (1 << 52)) as f64 / (1u64 << 52) as f64
}

fn hash_str(s: &str) -> u64 {
    s.bytes().fold(1469598103934665603u64, |h, b| {
        (h ^ b as u64).wrapping_mul(1099511628211)
    })
}

/// The GROUP COUNT spec is re-exported for validation helpers.
pub fn expected_groups(spec: &tpch::spec::AggregateSpec) -> GroupCount {
    spec.groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpch::schema::col;
    use tpch::spec::AggregateSpec;
    use tpch::types::{date, CmpOp, Scalar};
    use TableId::*;

    fn db() -> GeneratedDb {
        GeneratedDb::generate(0.01, 42)
    }

    #[test]
    fn scan_filter_matches_truth_selectivity() {
        let db = db();
        let expr = RelExpr::scan_where(
            Lineitem,
            vec![Predicate::Cmp {
                col: col(Lineitem, "l_quantity"),
                op: CmpOp::Lt,
                value: Scalar::Int(25),
            }],
        );
        let rel = execute(&expr, &db);
        let total = db.table(Lineitem).n_rows() as f64;
        let frac = rel.n_rows() as f64 / total;
        assert!((frac - 24.0 / 50.0).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn fk_join_count_equals_fact_side() {
        let db = db();
        let expr = RelExpr::inner_join(
            RelExpr::scan(Orders),
            RelExpr::scan(Lineitem),
            (col(Orders, "o_orderkey"), col(Lineitem, "l_orderkey")),
        );
        let rel = execute(&expr, &db);
        assert_eq!(rel.n_rows(), db.table(Lineitem).n_rows());
        // Both sides' columns are present.
        assert!(rel.has_column(ColKey::Col(col(Orders, "o_orderdate"))));
        assert!(rel.has_column(ColKey::Col(col(Lineitem, "l_shipdate"))));
    }

    #[test]
    fn semi_and_anti_partition_the_left() {
        let db = db();
        let filtered_lines = RelExpr::scan_where(
            Lineitem,
            vec![Predicate::ColCmp {
                left: col(Lineitem, "l_commitdate"),
                op: CmpOp::Lt,
                right: col(Lineitem, "l_receiptdate"),
            }],
        );
        let semi = execute(
            &RelExpr::Join {
                kind: JoinKind::Semi,
                on: (col(Orders, "o_orderkey"), col(Lineitem, "l_orderkey")),
                left: Box::new(RelExpr::scan(Orders)),
                right: Box::new(filtered_lines.clone()),
                truth_correction: 1.0,
                extra_filter_sel: 1.0,
            },
            &db,
        );
        let anti = execute(
            &RelExpr::Join {
                kind: JoinKind::Anti,
                on: (col(Orders, "o_orderkey"), col(Lineitem, "l_orderkey")),
                left: Box::new(RelExpr::scan(Orders)),
                right: Box::new(filtered_lines),
                truth_correction: 1.0,
                extra_filter_sel: 1.0,
            },
            &db,
        );
        assert_eq!(semi.n_rows() + anti.n_rows(), db.table(Orders).n_rows());
        // Semi fraction should match the analytic EXISTS probability.
        let frac = semi.n_rows() as f64 / db.table(Orders).n_rows() as f64;
        let analytic = tpch::distributions::p_order_has_late_line();
        assert!((frac - analytic).abs() < 0.02, "frac {frac} vs {analytic}");
    }

    #[test]
    fn group_by_and_having_are_exact() {
        let db = db();
        let expr = RelExpr::Aggregate {
            input: Box::new(RelExpr::scan(Lineitem)),
            spec: AggregateSpec {
                group_by: vec![col(Lineitem, "l_orderkey")],
                aggs: vec![AggFunc::Sum(col(Lineitem, "l_quantity"))],
                numeric_ops: 1,
                groups: GroupCount::DistinctOf(col(Lineitem, "l_orderkey")),
                having: Some(tpch::spec::Having {
                    op: CmpOp::Gt,
                    value: 200.0,
                    truth_fraction: 0.0,
                }),
            },
        };
        let rel = execute(&expr, &db);
        let analytic = tpch::templates::p_order_quantity_sum_gt(200.0)
            * db.table(Orders).n_rows() as f64;
        let observed = rel.n_rows() as f64;
        assert!(
            (observed - analytic).abs() < analytic * 0.25 + 10.0,
            "observed {observed}, analytic {analytic}"
        );
    }

    #[test]
    fn ungrouped_aggregate_yields_one_row() {
        let db = db();
        let expr = RelExpr::Aggregate {
            input: Box::new(RelExpr::scan_where(
                Lineitem,
                vec![Predicate::Between {
                    col: col(Lineitem, "l_shipdate"),
                    lo: Scalar::Date(date(1994, 1, 1)),
                    hi: Scalar::Date(date(1994, 12, 31)),
                }],
            )),
            spec: AggregateSpec {
                group_by: vec![],
                aggs: vec![AggFunc::Sum(col(Lineitem, "l_extendedprice")), AggFunc::Count],
                numeric_ops: 2,
                groups: GroupCount::One,
                having: None,
            },
        };
        let rel = execute(&expr, &db);
        assert_eq!(rel.n_rows(), 1);
        assert!(rel.column(ColKey::Agg(0))[0] > 0.0);
        assert!(rel.column(ColKey::Agg(1))[0] > 0.0);
    }

    #[test]
    fn sort_orders_and_limit_truncates() {
        let db = db();
        let expr = RelExpr::Limit {
            input: Box::new(RelExpr::Sort {
                input: Box::new(RelExpr::scan(Customer)),
                keys: 1,
            }),
            count: 5,
        };
        let rel = execute(&expr, &db);
        assert_eq!(rel.n_rows(), 5);
        let keys = rel.column(ColKey::Col(col(Customer, "c_custkey")));
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn name_like_matches_weighted_color_probability() {
        let db = db();
        let color = 0u32; // the most popular color
        let expr = RelExpr::scan_where(
            Part,
            vec![Predicate::NameLike {
                col: col(Part, "p_name"),
                color,
            }],
        );
        let rel = execute(&expr, &db);
        let frac = rel.n_rows() as f64 / db.table(Part).n_rows() as f64;
        let analytic = tpch::distributions::p_name_contains_color(color);
        // 2 000 parts → sampling σ ≈ 0.011; allow ~3.5σ.
        assert!((frac - analytic).abs() < 0.04, "frac {frac} vs {analytic}");
    }
}
