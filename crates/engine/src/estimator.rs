//! The optimizer's selectivity and cardinality estimator.
//!
//! Works exclusively from the [`Catalog`]'s histograms and distinct counts
//! under the classic assumptions — attribute independence, uniform join
//! keys, default selectivities for unanalyzable predicates (`col op col`,
//! LIKE patterns, HAVING) — and therefore makes exactly the kinds of errors
//! real optimizers make on TPC-H.

use crate::catalog::Catalog;
use tpch::spec::Predicate;
use tpch::schema::ColRef;
use tpch::types::CmpOp;

/// PostgreSQL's default selectivity for inequality between columns.
pub const DEFAULT_INEQ_SEL: f64 = 1.0 / 3.0;
/// PostgreSQL's default selectivity for equality it cannot analyze.
pub const DEFAULT_EQ_SEL: f64 = 0.005;
/// Default selectivity for `LIKE '%pattern%'`.
pub const DEFAULT_MATCH_SEL: f64 = 0.005;

/// The estimator: a thin, stateless layer over the catalog.
#[derive(Debug)]
pub struct Estimator<'a> {
    catalog: &'a Catalog,
}

impl<'a> Estimator<'a> {
    /// Creates an estimator over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        Estimator { catalog }
    }

    /// Estimated selectivity of a single predicate.
    pub fn predicate(&self, p: &Predicate) -> f64 {
        match p {
            Predicate::Cmp { col, op, value } => {
                let h = self.catalog.histogram(*col);
                h.selectivity(*op, value.as_f64(), self.catalog.ndistinct_est(*col))
            }
            Predicate::Between { col, lo, hi } => {
                let h = self.catalog.histogram(*col);
                h.between(lo.as_f64(), hi.as_f64(), self.catalog.ndistinct_est(*col))
            }
            Predicate::InSet { col, values } => {
                let nd = self.catalog.ndistinct_est(*col).max(1.0);
                (values.len() as f64 / nd).min(1.0)
            }
            Predicate::ColCmp { op, .. } => match op {
                CmpOp::Eq => DEFAULT_EQ_SEL,
                CmpOp::Ne => 1.0 - DEFAULT_EQ_SEL,
                _ => DEFAULT_INEQ_SEL,
            },
            Predicate::NameLike { .. } => DEFAULT_MATCH_SEL,
            // A NOT LIKE: complement of the default pattern match.
            Predicate::TextNotLike { .. } => 1.0 - DEFAULT_MATCH_SEL,
        }
    }

    /// Estimated selectivity of a conjunction (independence assumption).
    pub fn conjunction(&self, preds: &[Predicate]) -> f64 {
        preds.iter().map(|p| self.predicate(p)).product()
    }

    /// Estimated inner-join output cardinality for `l ⋈ r` on the given
    /// columns: `|L||R| / max(ndv(L.key), ndv(R.key))`.
    pub fn join_rows(&self, l_rows: f64, r_rows: f64, on: (ColRef, ColRef)) -> f64 {
        let ndv = self
            .catalog
            .ndistinct_est(on.0)
            .max(self.catalog.ndistinct_est(on.1))
            .max(1.0);
        (l_rows * r_rows / ndv).max(1.0)
    }

    /// Estimated fraction of left rows with a match in the right input
    /// (semi-join selectivity): coverage of the right key domain.
    pub fn semi_selectivity(&self, r_rows: f64, right_key: ColRef) -> f64 {
        let ndv = self.catalog.ndistinct_est(right_key).max(1.0);
        // Cardenas: distinct right keys present given r_rows draws.
        let covered = cardenas(ndv, r_rows);
        (covered / ndv).clamp(0.0, 1.0)
    }

    /// Estimated group count when grouping `input_rows` by `cols`.
    pub fn group_count(&self, cols: &[ColRef], input_rows: f64) -> f64 {
        if cols.is_empty() {
            return 1.0;
        }
        let mut ndv = 1.0f64;
        for c in cols {
            ndv *= self.catalog.ndistinct_est(*c).max(1.0);
            if ndv > 1e15 {
                break;
            }
        }
        cardenas(ndv, input_rows).max(1.0)
    }

    /// Default HAVING selectivity (PostgreSQL has no statistics on
    /// aggregate outputs).
    pub fn having_selectivity(&self, op: CmpOp) -> f64 {
        match op {
            CmpOp::Eq => DEFAULT_EQ_SEL,
            CmpOp::Ne => 1.0 - DEFAULT_EQ_SEL,
            _ => DEFAULT_INEQ_SEL,
        }
    }

    /// Access to the underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        self.catalog
    }
}

/// Cardenas' formula: expected distinct values seen when drawing `n` rows
/// uniformly from `d` distinct values.
pub fn cardenas(d: f64, n: f64) -> f64 {
    if n <= 0.0 {
        return 0.0;
    }
    if d <= 1.0 {
        return d.clamp(0.0, 1.0);
    }
    // d * (1 - (1 - 1/d)^n), computed in log space for stability.
    let log_term = n * (1.0 - 1.0 / d).ln();
    d * (1.0 - log_term.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpch::schema::{col, TableId};
    use tpch::types::Scalar;

    fn catalog() -> Catalog {
        Catalog::new(1.0, 1)
    }

    #[test]
    fn range_predicates_track_histograms() {
        let c = catalog();
        let e = Estimator::new(&c);
        let p = Predicate::Cmp {
            col: col(TableId::Lineitem, "l_quantity"),
            op: CmpOp::Lt,
            value: Scalar::Int(25),
        };
        let s = e.predicate(&p);
        assert!((s - 0.48).abs() < 0.06, "s = {s}");
    }

    #[test]
    fn conjunction_multiplies_independently() {
        let c = catalog();
        let e = Estimator::new(&c);
        let p1 = Predicate::Cmp {
            col: col(TableId::Lineitem, "l_quantity"),
            op: CmpOp::Lt,
            value: Scalar::Int(25),
        };
        let p2 = Predicate::Cmp {
            col: col(TableId::Lineitem, "l_returnflag"),
            op: CmpOp::Eq,
            value: Scalar::Cat(0),
        };
        let both = e.conjunction(&[p1.clone(), p2.clone()]);
        let prod = e.predicate(&p1) * e.predicate(&p2);
        assert!((both - prod).abs() < 1e-12);
    }

    #[test]
    fn col_cmp_uses_default_third() {
        let c = catalog();
        let e = Estimator::new(&c);
        let p = Predicate::ColCmp {
            left: col(TableId::Lineitem, "l_commitdate"),
            op: CmpOp::Lt,
            right: col(TableId::Lineitem, "l_receiptdate"),
        };
        assert_eq!(e.predicate(&p), DEFAULT_INEQ_SEL);
        // The truth is ≈ 0.63 — the estimator is systematically wrong here,
        // by design.
        assert!((tpch::distributions::p_commit_before_receipt() - e.predicate(&p)).abs() > 0.2);
    }

    #[test]
    fn fk_pk_join_estimates_fanout() {
        let c = catalog();
        let e = Estimator::new(&c);
        let rows = e.join_rows(
            6_001_215.0,
            1_500_000.0,
            (
                col(TableId::Lineitem, "l_orderkey"),
                col(TableId::Orders, "o_orderkey"),
            ),
        );
        // ndv(o_orderkey) = 1.5M exactly, so the estimate is ≈ |lineitem|.
        assert!((rows - 6_001_215.0).abs() / 6_001_215.0 < 0.01, "rows = {rows}");
    }

    #[test]
    fn cardenas_limits() {
        assert!((cardenas(10.0, 1e9) - 10.0).abs() < 1e-6);
        assert!(cardenas(1e6, 10.0) <= 10.0 + 1e-9);
        assert!(cardenas(1e6, 10.0) > 9.9);
        assert_eq!(cardenas(5.0, 0.0), 0.0);
    }

    #[test]
    fn group_count_caps_at_input() {
        let c = catalog();
        let e = Estimator::new(&c);
        let g = e.group_count(&[col(TableId::Customer, "c_custkey")], 100.0);
        assert!(g <= 100.0 + 1e-9);
        assert!(g > 90.0);
        assert_eq!(e.group_count(&[], 1000.0), 1.0);
    }

    #[test]
    fn t18_group_estimate_reproduces_the_papers_blowup() {
        // At SF 10: true group count after the HAVING is tiny (tens), but
        // the estimator sees underestimated ndv × default 1/3 — hundreds of
        // thousands.
        let c = Catalog::new(10.0, 1);
        let e = Estimator::new(&c);
        let groups = e.group_count(&[col(TableId::Lineitem, "l_orderkey")], 60_000_000.0);
        let est_after_having = groups * e.having_selectivity(CmpOp::Gt);
        assert!(
            est_after_having > 100_000.0 && est_after_having < 2_000_000.0,
            "estimate = {est_after_having}"
        );
        let truth = 15_000_000.0 * tpch::templates::p_order_quantity_sum_gt(314.0);
        assert!(truth < 1_000.0, "truth = {truth}");
    }
}
