//! The system catalog: per-table and per-column statistics as ANALYZE
//! would have collected them, plus the index inventory.
//!
//! The catalog is the *estimator's* knowledge of the database. Its distinct
//! counts carry the characteristic errors of sampling-based ANALYZE —
//! in particular, high-cardinality non-unique columns (like
//! `l_orderkey` inside LINEITEM) are strongly *under*-estimated, which is
//! what produced the paper's template-18 group-count anecdote
//! (estimated 399 521 groups vs 84 actual; Section 5.3.3).

use crate::histogram::Histogram;
use parking_lot::Mutex;
use std::collections::HashMap;
use tpch::distributions::{self, Distribution};
use tpch::schema::{ColRef, TableId, ALL_TABLES};

/// Index inventory: the TPC-H primary keys plus the customary foreign-key
/// index on `l_partkey` used by the correlated-subquery templates.
pub fn has_index(col: ColRef) -> bool {
    col.table.primary_key() == col.column || col.column == "l_partkey"
}

/// Catalog of statistics at one scale factor.
#[derive(Debug)]
pub struct Catalog {
    /// Scale factor.
    pub sf: f64,
    seed: u64,
    histograms: Mutex<HashMap<ColRef, Histogram>>,
}

impl Catalog {
    /// Creates a catalog for scale factor `sf`. `seed` controls the
    /// deterministic ANALYZE-noise.
    pub fn new(sf: f64, seed: u64) -> Catalog {
        assert!(sf > 0.0, "scale factor must be positive");
        Catalog {
            sf,
            seed,
            histograms: Mutex::new(HashMap::new()),
        }
    }

    /// Row count of a table (accurate — PostgreSQL keeps `reltuples`
    /// reasonably current for read-only data).
    pub fn rows(&self, table: TableId) -> f64 {
        table.row_count(self.sf) as f64
    }

    /// Heap pages of a table.
    pub fn pages(&self, table: TableId) -> f64 {
        table.pages(self.sf) as f64
    }

    /// Average tuple width in bytes.
    pub fn width(&self, table: TableId) -> f64 {
        table.tuple_width() as f64
    }

    /// *Estimated* distinct count of a column.
    ///
    /// Unique (serial-key) columns are exact; high-cardinality foreign-key
    /// columns are under-estimated by roughly an order of magnitude,
    /// mirroring sample-based distinct estimation; everything else gets a
    /// small deterministic relative error.
    pub fn ndistinct_est(&self, col: ColRef) -> f64 {
        let truth = distributions::ndistinct(col, self.sf);
        let rows = self.rows(col.table);
        match distributions::column_distribution(col) {
            Distribution::SerialKey => truth,
            Distribution::ForeignKey(_) if truth > 1000.0 => {
                // Sample-based estimators (PostgreSQL's Haas–Stokes
                // variant) extrapolate from duplicate counts in the
                // sample. Lightly-duplicated high-cardinality columns
                // (l_orderkey: ~4 rows per key) look almost unique in the
                // sample and get underestimated by an order of magnitude —
                // the template-18 regime. Heavily-duplicated keys
                // (l_partkey: ~30 rows per key) are merely a factor ~2 low.
                let rows_per_key = rows / truth;
                let factor = if rows_per_key <= 8.0 {
                    0.06 + 0.06 * self.unit_noise(col)
                } else {
                    0.45 + 0.1 * self.unit_noise(col)
                };
                (truth * factor).max(2.0)
            }
            _ => {
                let factor = 0.9 + 0.2 * self.unit_noise(col);
                (truth * factor).clamp(1.0, rows)
            }
        }
    }

    /// Histogram of a column (built lazily, cached).
    pub fn histogram(&self, col: ColRef) -> Histogram {
        let mut map = self.histograms.lock();
        map.entry(col)
            .or_insert_with(|| Histogram::build(col, self.sf, self.seed))
            .clone()
    }

    /// Total pages across all tables (for buffer-pool sizing heuristics).
    pub fn total_pages(&self) -> f64 {
        ALL_TABLES.iter().map(|t| self.pages(*t)).sum()
    }

    /// Deterministic per-column noise in [0, 1).
    fn unit_noise(&self, col: ColRef) -> f64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        col.hash(&mut h);
        self.seed.hash(&mut h);
        (h.finish() % 10_000) as f64 / 10_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpch::schema::col;

    #[test]
    fn rows_and_pages_follow_schema() {
        let c = Catalog::new(1.0, 1);
        assert_eq!(c.rows(TableId::Orders), 1_500_000.0);
        assert!(c.pages(TableId::Lineitem) > 10_000.0);
        assert!(c.total_pages() > c.pages(TableId::Lineitem));
    }

    #[test]
    fn serial_keys_have_exact_ndistinct() {
        let c = Catalog::new(1.0, 1);
        assert_eq!(c.ndistinct_est(col(TableId::Orders, "o_orderkey")), 1_500_000.0);
    }

    #[test]
    fn fk_columns_are_underestimated() {
        let c = Catalog::new(10.0, 1);
        let est = c.ndistinct_est(col(TableId::Lineitem, "l_orderkey"));
        let truth = distributions::ndistinct(col(TableId::Lineitem, "l_orderkey"), 10.0);
        assert_eq!(truth, 15_000_000.0);
        // Roughly an order of magnitude low — the template-18 regime.
        assert!(est < truth / 5.0, "est = {est}");
        assert!(est > truth / 30.0, "est = {est}");
    }

    #[test]
    fn small_columns_are_nearly_exact() {
        let c = Catalog::new(1.0, 1);
        let est = c.ndistinct_est(col(TableId::Lineitem, "l_quantity"));
        assert!((est - 50.0).abs() < 10.0, "est = {est}");
    }

    #[test]
    fn index_inventory() {
        assert!(has_index(col(TableId::Orders, "o_orderkey")));
        assert!(has_index(col(TableId::Lineitem, "l_orderkey")));
        assert!(has_index(col(TableId::Lineitem, "l_partkey")));
        assert!(!has_index(col(TableId::Lineitem, "l_shipdate")));
        assert!(!has_index(col(TableId::Orders, "o_custkey")));
    }

    #[test]
    fn histograms_are_cached() {
        let c = Catalog::new(1.0, 1);
        let a = c.histogram(col(TableId::Lineitem, "l_shipdate"));
        let b = c.histogram(col(TableId::Lineitem, "l_shipdate"));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_sf() {
        Catalog::new(-1.0, 0);
    }
}
