//! DBMS substrate: the database system whose query performance we predict.
//!
//! This crate plays the role of "PostgreSQL on a commodity server" in the
//! reproduction:
//!
//! - [`arena`] — index-linked contiguous views of plan trees for the
//!   prediction hot path.
//! - [`catalog`] + [`histogram`] — ANALYZE-style statistics (with realistic
//!   estimation noise and distinct-count underestimation).
//! - [`estimator`] — the optimizer's selectivity/cardinality estimator
//!   (histograms + independence + default selectivities).
//! - [`truth`] — the ground-truth cardinality model (exact generative
//!   selectivities, correlation corrections).
//! - [`plan`] — physical plan trees annotated with both estimates and
//!   truth.
//! - [`cost`] — PostgreSQL's analytical cost model (the paper's baseline).
//! - [`planner`] — cost-based physical planning of the TPC-H templates.
//! - [`sim`] — the execution simulator producing per-operator start-times
//!   and run-times (the paper's prediction targets).
//! - [`faults`] — seeded, deterministic fault injection (aborts,
//!   stragglers, timeouts, corrupted estimates) for robustness testing.
//! - [`exec`] — a reference executor over generated rows for validating
//!   the truth model at tiny scale factors.
//! - [`mod@explain`] — EXPLAIN / EXPLAIN ANALYZE rendering.

#![warn(missing_docs)]

pub mod arena;
pub mod catalog;
pub mod cost;
pub mod estimator;
pub mod exec;
pub mod explain;
pub mod faults;
pub mod histogram;
pub mod plan;
pub mod planner;
pub mod recost;
pub mod sim;
pub mod truth;

pub use arena::PlanArena;
pub use catalog::Catalog;
pub use estimator::Estimator;
pub use faults::{DriftKind, DriftPlan, ExecError, FaultOutcome, FaultPlan};
pub use explain::{explain, explain_analyze};
pub use plan::{NodeEst, NodeTruth, OpDetail, OpType, PlanNode, ALL_OP_TYPES};
pub use planner::{Planner, PlannerConfig};
pub use recost::{recost_truth, TruthCosts};
pub use sim::{NodeTiming, SimConfig, Simulator, Trace};
