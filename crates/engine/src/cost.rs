//! The analytical cost model — a re-implementation of PostgreSQL's
//! per-operator cost arithmetic with the default GUC constants.
//!
//! This is the baseline the paper shows to be a poor latency predictor
//! (Section 5.2 / Figure 5): costs are abstract work units that weigh I/O
//! and CPU by fixed constants and ignore caching, overlap and operator
//! interactions.

/// Cost of a sequentially-fetched page (`seq_page_cost`).
pub const SEQ_PAGE_COST: f64 = 1.0;
/// Cost of a randomly-fetched page (`random_page_cost`).
pub const RANDOM_PAGE_COST: f64 = 4.0;
/// Cost of processing one tuple (`cpu_tuple_cost`).
pub const CPU_TUPLE_COST: f64 = 0.01;
/// Cost of processing one index entry (`cpu_index_tuple_cost`).
pub const CPU_INDEX_TUPLE_COST: f64 = 0.005;
/// Cost of evaluating one operator/function (`cpu_operator_cost`).
pub const CPU_OPERATOR_COST: f64 = 0.0025;

/// A (startup, total) cost pair, PostgreSQL-style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cost {
    /// Cost until the first output tuple.
    pub startup: f64,
    /// Cost until the last output tuple.
    pub total: f64,
}

impl Cost {
    /// A zero cost.
    pub const ZERO: Cost = Cost {
        startup: 0.0,
        total: 0.0,
    };

    /// The run phase (total − startup).
    pub fn run(&self) -> f64 {
        self.total - self.startup
    }
}

/// Sequential scan: all pages + per-tuple CPU + per-tuple predicate
/// evaluation.
pub fn seq_scan(pages: f64, rows: f64, n_preds: usize) -> Cost {
    Cost {
        startup: 0.0,
        total: pages * SEQ_PAGE_COST
            + rows * CPU_TUPLE_COST
            + rows * n_preds as f64 * CPU_OPERATOR_COST,
    }
}

/// Index scan returning `matched` of `table_rows` rows (simplified
/// Mackert–Lohman page fetch model).
pub fn index_scan(table_pages: f64, matched: f64, n_preds: usize) -> Cost {
    let pages_fetched = (matched * 1.05 + 2.0).min(table_pages);
    Cost {
        startup: 0.0,
        total: pages_fetched * RANDOM_PAGE_COST
            + matched * (CPU_INDEX_TUPLE_COST + CPU_TUPLE_COST)
            + matched * n_preds as f64 * CPU_OPERATOR_COST,
    }
}

/// Blocking sort of `rows` input rows of `width` bytes; adds external-merge
/// I/O when the data exceeds `work_mem`.
pub fn sort(input: Cost, rows: f64, width: f64, work_mem: f64) -> Cost {
    let rows = rows.max(1.0);
    let cmp = 2.0 * rows * rows.log2().max(1.0) * CPU_OPERATOR_COST;
    let bytes = rows * width;
    let spill = if bytes > work_mem {
        // Write + read every page once per merge pass (assume one pass).
        2.0 * (bytes / 8192.0) * SEQ_PAGE_COST
    } else {
        0.0
    };
    let startup = input.total + cmp + spill;
    Cost {
        startup,
        total: startup + rows * CPU_OPERATOR_COST,
    }
}

/// Hash build over the input.
pub fn hash_build(input: Cost, rows: f64) -> Cost {
    let total = input.total + rows * (CPU_TUPLE_COST + CPU_OPERATOR_COST);
    Cost {
        startup: total,
        total,
    }
}

/// Hash join: `hash` is the built inner, `probe` the outer stream.
pub fn hash_join(probe: Cost, hash: Cost, probe_rows: f64, out_rows: f64) -> Cost {
    let startup = hash.total + probe.startup;
    Cost {
        startup,
        total: startup
            + probe.run()
            + probe_rows * (CPU_OPERATOR_COST + CPU_TUPLE_COST * 0.5)
            + out_rows * CPU_TUPLE_COST,
    }
}

/// Merge join over two sorted inputs.
pub fn merge_join(left: Cost, right: Cost, l_rows: f64, r_rows: f64, out_rows: f64) -> Cost {
    let startup = left.startup + right.startup;
    Cost {
        startup,
        total: startup
            + left.run()
            + right.run()
            + (l_rows + r_rows) * CPU_OPERATOR_COST
            + out_rows * CPU_TUPLE_COST,
    }
}

/// Nested loop with `outer_rows` rescans of the inner.
pub fn nested_loop(outer: Cost, inner: Cost, inner_rescan: f64, outer_rows: f64, out_rows: f64) -> Cost {
    let startup = outer.startup + inner.startup;
    Cost {
        startup,
        total: startup
            + outer.run()
            + inner.run()
            + (outer_rows - 1.0).max(0.0) * inner_rescan
            + out_rows * CPU_TUPLE_COST,
    }
}

/// Materialize: store the input once; rescans are charged by the caller.
pub fn materialize(input: Cost, rows: f64) -> Cost {
    Cost {
        startup: input.startup,
        total: input.total + rows * CPU_OPERATOR_COST * 0.5,
    }
}

/// Rescan cost of a materialized relation (per rescan).
pub fn materialize_rescan(rows: f64) -> f64 {
    rows * CPU_OPERATOR_COST * 0.25
}

/// Hash aggregation: blocking, one transition per (input row × aggregate).
pub fn hash_aggregate(input: Cost, in_rows: f64, n_aggs: f64, groups: f64) -> Cost {
    let startup = input.total + in_rows * n_aggs.max(1.0) * CPU_OPERATOR_COST;
    Cost {
        startup,
        total: startup + groups * CPU_TUPLE_COST,
    }
}

/// Sorted-input (pipelined) aggregation.
pub fn group_aggregate(input: Cost, in_rows: f64, n_aggs: f64, groups: f64) -> Cost {
    Cost {
        startup: input.startup,
        total: input.total + in_rows * n_aggs.max(1.0) * CPU_OPERATOR_COST + groups * CPU_TUPLE_COST,
    }
}

/// LIMIT: consumes only a fraction of the child's run phase.
pub fn limit(input: Cost, child_rows: f64, count: f64) -> Cost {
    let frac = if child_rows > 0.0 {
        (count / child_rows).min(1.0)
    } else {
        1.0
    };
    Cost {
        startup: input.startup,
        total: input.startup + input.run() * frac,
    }
}

/// Subquery wrapper: the input plus `executions` subquery evaluations.
pub fn subquery(input: Cost, sub: Cost, executions: f64, in_rows: f64) -> Cost {
    Cost {
        startup: input.startup + if executions >= 1.0 { sub.total } else { 0.0 },
        total: input.total + executions.max(1.0) * sub.total + in_rows * CPU_OPERATOR_COST,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_scan_scales_with_pages_and_rows() {
        let small = seq_scan(100.0, 1000.0, 1);
        let big = seq_scan(10_000.0, 100_000.0, 1);
        assert!(big.total > small.total * 50.0);
        assert_eq!(small.startup, 0.0);
    }

    #[test]
    fn index_scan_beats_seq_scan_for_selective_probes() {
        let idx = index_scan(100_000.0, 30.0, 1);
        let seq = seq_scan(100_000.0, 6_000_000.0, 1);
        assert!(idx.total < seq.total / 100.0);
    }

    #[test]
    fn index_scan_page_fetches_are_capped() {
        let idx = index_scan(100.0, 1_000_000.0, 0);
        // Never more page fetches than the table has pages.
        assert!(idx.total < 100.0 * RANDOM_PAGE_COST + 1_000_000.0 * 0.02 + 1.0);
    }

    #[test]
    fn sort_is_blocking_and_spills() {
        let input = Cost { startup: 0.0, total: 100.0 };
        let in_mem = sort(input, 1000.0, 100.0, 1e9);
        assert!(in_mem.startup > input.total);
        let spilled = sort(input, 1_000_000.0, 100.0, 1e6);
        let unspilled = sort(input, 1_000_000.0, 100.0, 1e12);
        assert!(spilled.total > unspilled.total);
    }

    #[test]
    fn limit_truncates_run_phase() {
        let input = Cost { startup: 10.0, total: 110.0 };
        let l = limit(input, 1000.0, 10.0);
        assert_eq!(l.startup, 10.0);
        assert!((l.total - 11.0).abs() < 1e-9);
        // Limit above the row count changes nothing.
        let full = limit(input, 5.0, 10.0);
        assert_eq!(full.total, input.total);
    }

    #[test]
    fn hash_join_startup_includes_build() {
        let probe = Cost { startup: 0.0, total: 50.0 };
        let hash = hash_build(Cost { startup: 0.0, total: 30.0 }, 1000.0);
        let hj = hash_join(probe, hash, 10_000.0, 10_000.0);
        assert!(hj.startup >= hash.total);
        assert!(hj.total > hj.startup);
    }

    #[test]
    fn correlated_subquery_cost_explodes() {
        let input = Cost { startup: 0.0, total: 100.0 };
        let sub = Cost { startup: 0.0, total: 50.0 };
        let once = subquery(input, sub, 1.0, 1000.0);
        let per_row = subquery(input, sub, 1000.0, 1000.0);
        assert!(per_row.total > once.total * 100.0);
    }
}
