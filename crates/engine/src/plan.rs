//! Physical plan trees, annotated with both the optimizer's estimates and
//! the ground truth.
//!
//! The operator set mirrors PostgreSQL's executor nodes for the TPC-H
//! plans: scans, sorts, the three join methods (with explicit `Hash` and
//! `Materialize` helper nodes), the three aggregation strategies, `Limit`,
//! and a `SubqueryScan` wrapper for InitPlan/SubPlan structures.

use serde::Serialize;
use tpch::schema::{ColRef, TableId};
use tpch::spec::{JoinKind, Predicate};

/// Physical operator types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize)]
pub enum OpType {
    /// Sequential heap scan.
    SeqScan,
    /// B-tree index scan.
    IndexScan,
    /// Blocking sort (in-memory or external merge).
    Sort,
    /// Hash-table build (inner side of a hash join).
    Hash,
    /// Hash join probe.
    HashJoin,
    /// Merge join over sorted inputs.
    MergeJoin,
    /// Nested-loop join.
    NestedLoop,
    /// Tuple-store materialization (rescanned by a parent nested loop or
    /// merge join).
    Materialize,
    /// Hash-based grouping.
    HashAggregate,
    /// Sorted-input grouping.
    GroupAggregate,
    /// Ungrouped (scalar) aggregate.
    Aggregate,
    /// LIMIT.
    Limit,
    /// InitPlan / SubPlan evaluation wrapper.
    SubqueryScan,
}

/// All operator types, for iteration (e.g. building one model per type).
pub const ALL_OP_TYPES: [OpType; 13] = [
    OpType::SeqScan,
    OpType::IndexScan,
    OpType::Sort,
    OpType::Hash,
    OpType::HashJoin,
    OpType::MergeJoin,
    OpType::NestedLoop,
    OpType::Materialize,
    OpType::HashAggregate,
    OpType::GroupAggregate,
    OpType::Aggregate,
    OpType::Limit,
    OpType::SubqueryScan,
];

impl OpType {
    /// Display name (PostgreSQL EXPLAIN style).
    pub fn name(&self) -> &'static str {
        match self {
            OpType::SeqScan => "Seq Scan",
            OpType::IndexScan => "Index Scan",
            OpType::Sort => "Sort",
            OpType::Hash => "Hash",
            OpType::HashJoin => "Hash Join",
            OpType::MergeJoin => "Merge Join",
            OpType::NestedLoop => "Nested Loop",
            OpType::Materialize => "Materialize",
            OpType::HashAggregate => "HashAggregate",
            OpType::GroupAggregate => "GroupAggregate",
            OpType::Aggregate => "Aggregate",
            OpType::Limit => "Limit",
            OpType::SubqueryScan => "SubqueryScan",
        }
    }

    /// Index into [`ALL_OP_TYPES`].
    pub fn index(&self) -> usize {
        ALL_OP_TYPES.iter().position(|t| t == self).expect("known op")
    }
}

/// Optimizer-side annotations of a plan node (the paper's static features
/// come from these).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NodeEst {
    /// Cost until the first output tuple (PostgreSQL `startup_cost`).
    pub startup_cost: f64,
    /// Total cost (PostgreSQL `total_cost`).
    pub total_cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated output tuple width in bytes.
    pub width: f64,
    /// Estimated I/O in pages attributable to this node.
    pub pages: f64,
    /// Estimated selectivity applied at this node (1.0 when none).
    pub selectivity: f64,
}

/// Ground-truth annotations (the simulator's inputs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NodeTruth {
    /// Actual output rows.
    pub rows: f64,
    /// Actual I/O pages attributable to this node.
    pub pages: f64,
    /// Actual selectivity applied at this node.
    pub selectivity: f64,
}

/// Operator-specific details needed by the simulator and the explainers.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum OpDetail {
    /// Scans (sequential or index).
    Scan {
        /// Scanned table.
        table: TableId,
        /// Predicates evaluated at the scan.
        filters: Vec<Predicate>,
    },
    /// Joins (all kinds).
    Join {
        /// Logical join kind.
        kind: JoinKind,
        /// Equi-join columns.
        on: (ColRef, ColRef),
    },
    /// Aggregations.
    Agg {
        /// Number of aggregate expressions.
        n_aggs: u32,
        /// Numeric (software-arithmetic) operations per input tuple.
        numeric_ops: u32,
        /// Number of grouping columns.
        n_group_cols: u32,
    },
    /// Sorts.
    Sort {
        /// Number of sort keys.
        keys: u32,
    },
    /// Materialization; `rescans` is the expected number of times the
    /// parent re-reads the stored tuples.
    Materialize {
        /// Expected rescan count (truth side).
        rescans: f64,
    },
    /// LIMIT.
    Limit {
        /// Row budget.
        count: u64,
    },
    /// InitPlan (executions = 1) or SubPlan (executions = outer rows).
    Subquery {
        /// Whether the subquery re-executes per outer row.
        correlated: bool,
        /// True number of subquery executions.
        executions: f64,
    },
    /// No extra detail (Hash).
    None,
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PlanNode {
    /// Operator type.
    pub op: OpType,
    /// Child operators (0, 1 or 2; `SubqueryScan` holds input + subplan).
    pub children: Vec<PlanNode>,
    /// Optimizer estimates.
    pub est: NodeEst,
    /// Ground truth.
    pub truth: NodeTruth,
    /// Operator detail.
    pub detail: OpDetail,
}

impl PlanNode {
    /// Number of nodes in the subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(PlanNode::node_count).sum::<usize>()
    }

    /// Pre-order traversal of the subtree (self first).
    pub fn preorder(&self) -> Vec<&PlanNode> {
        let mut out = Vec::with_capacity(self.node_count());
        fn walk<'a>(n: &'a PlanNode, out: &mut Vec<&'a PlanNode>) {
            out.push(n);
            for c in &n.children {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Depth of the plan tree.
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(PlanNode::depth).max().unwrap_or(0)
    }

    /// The table scanned at this node, if it is a scan.
    pub fn scan_table(&self) -> Option<TableId> {
        match &self.detail {
            OpDetail::Scan { table, .. } => Some(*table),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(op: OpType) -> PlanNode {
        PlanNode {
            op,
            children: vec![],
            est: NodeEst {
                startup_cost: 0.0,
                total_cost: 10.0,
                rows: 5.0,
                width: 100.0,
                pages: 1.0,
                selectivity: 1.0,
            },
            truth: NodeTruth {
                rows: 5.0,
                pages: 1.0,
                selectivity: 1.0,
            },
            detail: OpDetail::None,
        }
    }

    fn tree() -> PlanNode {
        let mut root = leaf(OpType::HashJoin);
        let mut hash = leaf(OpType::Hash);
        hash.children.push(leaf(OpType::SeqScan));
        root.children.push(leaf(OpType::SeqScan));
        root.children.push(hash);
        root
    }

    #[test]
    fn preorder_and_counts() {
        let t = tree();
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.depth(), 3);
        let ops: Vec<OpType> = t.preorder().iter().map(|n| n.op).collect();
        assert_eq!(
            ops,
            vec![OpType::HashJoin, OpType::SeqScan, OpType::Hash, OpType::SeqScan]
        );
    }

    #[test]
    fn op_type_names_and_indices_are_unique() {
        let mut names = std::collections::HashSet::new();
        for (i, op) in ALL_OP_TYPES.iter().enumerate() {
            assert_eq!(op.index(), i);
            assert!(names.insert(op.name()));
        }
    }

    #[test]
    fn scan_table_accessor() {
        let mut s = leaf(OpType::SeqScan);
        s.detail = OpDetail::Scan {
            table: TableId::Orders,
            filters: vec![],
        };
        assert_eq!(s.scan_table(), Some(TableId::Orders));
        assert_eq!(leaf(OpType::Sort).scan_table(), None);
    }
}
