//! Index-linked arena views of plan trees.
//!
//! [`PlanNode`] owns its children through `Vec<PlanNode>`, which is the
//! right shape for *building* plans but a poor one for the prediction hot
//! path: every consumer that needs pre-order positions re-walks the tree
//! recursively (`preorder()` allocates a fresh `Vec` per call, and
//! per-fragment `node_count()` calls turn an O(n) walk into O(n²) on deep
//! plans).
//!
//! [`PlanArena`] flattens a tree **once** into contiguous, index-linked
//! storage:
//!
//! - `nodes[i]` is the node at pre-order position `i` — the same layout
//!   feature views, timing traces and the sub-plan index already use;
//! - `sizes[i]` is the subtree size at `i`, so the fragment rooted there
//!   is exactly the contiguous range `i .. i + sizes[i]` and its children
//!   are recovered by index arithmetic (first child at `i + 1`, each next
//!   sibling one subtree-size further) without touching the boxed tree;
//! - `postorder` records the pre-order indices in post-order visit order,
//!   which is what bottom-up passes (structure hashing, cost roll-ups)
//!   iterate instead of recursing.
//!
//! The arena borrows the tree (`&'p PlanNode`) rather than copying node
//! payloads: flattening is a single traversal with three `Vec` pushes per
//! node, and every consumer keeps reading the original annotations.

use crate::plan::PlanNode;

/// A plan tree flattened into contiguous pre-order storage with
/// index-linked structure (see the module docs).
#[derive(Debug, Clone)]
pub struct PlanArena<'p> {
    /// Nodes at their pre-order positions.
    nodes: Vec<&'p PlanNode>,
    /// Subtree size (operator count) at each pre-order position.
    sizes: Vec<usize>,
    /// Pre-order indices in post-order visit order (children before
    /// parents; `postorder.last()` is the root, index 0).
    postorder: Vec<u32>,
}

impl<'p> PlanArena<'p> {
    /// Flattens `root` in one iterative traversal (no recursion, so plan
    /// depth cannot overflow the call stack).
    pub fn flatten(root: &'p PlanNode) -> PlanArena<'p> {
        enum Frame<'p> {
            Enter(&'p PlanNode),
            Exit(usize),
        }
        let mut nodes: Vec<&'p PlanNode> = Vec::new();
        let mut sizes: Vec<usize> = Vec::new();
        let mut postorder: Vec<u32> = Vec::new();
        let mut stack = vec![Frame::Enter(root)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(node) => {
                    let idx = nodes.len();
                    nodes.push(node);
                    sizes.push(0); // patched at Exit
                    stack.push(Frame::Exit(idx));
                    // Reversed so children pop (and get visited) in order.
                    for c in node.children.iter().rev() {
                        stack.push(Frame::Enter(c));
                    }
                }
                Frame::Exit(idx) => {
                    // Everything appended since Enter is this subtree.
                    sizes[idx] = nodes.len() - idx;
                    postorder.push(idx as u32);
                }
            }
        }
        debug_assert!(nodes.len() <= u32::MAX as usize, "plan too large for u32 indices");
        PlanArena {
            nodes,
            sizes,
            postorder,
        }
    }

    /// Fills `out` (cleared first) with `root`'s flat pre-order node
    /// list — the same order as [`PlanArena::nodes`] — without building
    /// the index side-tables. Batch sweeps that only need the node slice
    /// (e.g. feature-matrix assembly) reuse one buffer across many plans
    /// this way, paying zero allocations per plan once the buffer has
    /// grown to the largest tree.
    pub fn preorder_into(root: &'p PlanNode, out: &mut Vec<&'p PlanNode>) {
        fn walk<'p>(n: &'p PlanNode, out: &mut Vec<&'p PlanNode>) {
            out.push(n);
            for c in &n.children {
                walk(c, out);
            }
        }
        out.clear();
        walk(root, out);
    }

    /// Number of nodes (the root's subtree size).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// An arena is never empty (it always holds at least the root), so
    /// this is always `false`; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node at pre-order position `idx`.
    pub fn node(&self, idx: usize) -> &'p PlanNode {
        self.nodes[idx]
    }

    /// All nodes in pre-order.
    pub fn nodes(&self) -> &[&'p PlanNode] {
        &self.nodes
    }

    /// Subtree size at pre-order position `idx`.
    pub fn size(&self, idx: usize) -> usize {
        self.sizes[idx]
    }

    /// Subtree sizes aligned with [`PlanArena::nodes`].
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The contiguous pre-order range of the fragment rooted at `idx`.
    pub fn subtree_range(&self, idx: usize) -> std::ops::Range<usize> {
        idx..idx + self.sizes[idx]
    }

    /// The fragment rooted at `idx` as a pre-order node slice (aligned
    /// with any per-node array sliced by [`PlanArena::subtree_range`]).
    pub fn subtree_nodes(&self, idx: usize) -> &[&'p PlanNode] {
        &self.nodes[self.subtree_range(idx)]
    }

    /// Pre-order traversal cursor: the indices `0..len()` (the arena *is*
    /// pre-order storage).
    pub fn preorder(&self) -> std::ops::Range<usize> {
        0..self.nodes.len()
    }

    /// Post-order traversal cursor over pre-order indices: every node is
    /// yielded after all of its descendants, so bottom-up passes can index
    /// children's results directly.
    pub fn postorder(&self) -> impl Iterator<Item = usize> + '_ {
        self.postorder.iter().map(|&i| i as usize)
    }

    /// The pre-order indices of `idx`'s direct children, in child order.
    pub fn children(&self, idx: usize) -> ChildIndices<'_> {
        ChildIndices {
            sizes: &self.sizes,
            next: idx + 1,
            end: idx + self.sizes[idx],
        }
    }
}

/// Iterator over a node's direct-child pre-order indices; see
/// [`PlanArena::children`].
pub struct ChildIndices<'a> {
    sizes: &'a [usize],
    next: usize,
    end: usize,
}

impl Iterator for ChildIndices<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.next >= self.end {
            return None;
        }
        let child = self.next;
        self.next += self.sizes[child];
        Some(child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{NodeEst, NodeTruth, OpDetail, OpType};

    fn leaf(op: OpType) -> PlanNode {
        PlanNode {
            op,
            children: vec![],
            est: NodeEst {
                startup_cost: 0.0,
                total_cost: 10.0,
                rows: 5.0,
                width: 100.0,
                pages: 1.0,
                selectivity: 1.0,
            },
            truth: NodeTruth {
                rows: 5.0,
                pages: 1.0,
                selectivity: 1.0,
            },
            detail: OpDetail::None,
        }
    }

    /// HashJoin(SeqScan, Hash(Sort(SeqScan))) — mixed arities and depth.
    fn tree() -> PlanNode {
        let mut sort = leaf(OpType::Sort);
        sort.children.push(leaf(OpType::SeqScan));
        let mut hash = leaf(OpType::Hash);
        hash.children.push(sort);
        let mut root = leaf(OpType::HashJoin);
        root.children.push(leaf(OpType::SeqScan));
        root.children.push(hash);
        root
    }

    #[test]
    fn flatten_matches_boxed_preorder() {
        let t = tree();
        let arena = PlanArena::flatten(&t);
        let boxed = t.preorder();
        assert_eq!(arena.len(), boxed.len());
        assert!(!arena.is_empty());
        for (i, n) in boxed.iter().enumerate() {
            assert!(std::ptr::eq(arena.node(i), *n), "node {i} differs");
            assert_eq!(arena.size(i), n.node_count(), "size {i} differs");
        }
    }

    #[test]
    fn children_indices_walk_in_order() {
        let t = tree();
        let arena = PlanArena::flatten(&t);
        for idx in arena.preorder() {
            let via_arena: Vec<OpType> =
                arena.children(idx).map(|c| arena.node(c).op).collect();
            let via_tree: Vec<OpType> =
                arena.node(idx).children.iter().map(|c| c.op).collect();
            assert_eq!(via_arena, via_tree, "children of {idx}");
        }
    }

    #[test]
    fn postorder_visits_children_before_parents() {
        let t = tree();
        let arena = PlanArena::flatten(&t);
        let order: Vec<usize> = arena.postorder().collect();
        assert_eq!(order.len(), arena.len());
        assert_eq!(*order.last().unwrap(), 0, "root exits last");
        let mut seen = vec![false; arena.len()];
        for idx in arena.postorder() {
            for c in arena.children(idx) {
                assert!(seen[c], "child {c} not visited before parent {idx}");
            }
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn subtree_ranges_are_contiguous_fragments() {
        let t = tree();
        let arena = PlanArena::flatten(&t);
        for idx in arena.preorder() {
            let frag = arena.subtree_nodes(idx);
            let boxed = arena.node(idx).preorder();
            assert_eq!(frag.len(), boxed.len());
            for (a, b) in frag.iter().zip(&boxed) {
                assert!(std::ptr::eq(*a, *b));
            }
        }
    }

    #[test]
    fn preorder_into_matches_flatten_and_reuses_buffer() {
        let t = tree();
        let arena = PlanArena::flatten(&t);
        let mut buf = Vec::new();
        PlanArena::preorder_into(&t, &mut buf);
        assert_eq!(buf.len(), arena.len());
        for (a, b) in buf.iter().zip(arena.nodes()) {
            assert!(std::ptr::eq(*a, *b));
        }
        // A second plan through the same buffer replaces the contents.
        let single = leaf(OpType::Sort);
        PlanArena::preorder_into(&single, &mut buf);
        assert_eq!(buf.len(), 1);
        assert!(std::ptr::eq(buf[0], &single));
    }

    #[test]
    fn single_node_plan() {
        let t = leaf(OpType::SeqScan);
        let arena = PlanArena::flatten(&t);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.size(0), 1);
        assert_eq!(arena.children(0).count(), 0);
        assert_eq!(arena.postorder().collect::<Vec<_>>(), vec![0]);
    }
}
