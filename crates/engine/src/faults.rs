//! Deterministic fault injection for the execution layer.
//!
//! The paper's motivating use cases (admission control, workload routing —
//! Section 1) put the predictor on a live system's critical path, where the
//! executions that feed training-data collection abort mid-flight, straggle
//! behind concurrent load, exceed their time budget, or log corrupted
//! optimizer estimates. This module models those failure modes as a seeded
//! [`FaultPlan`] so every robustness test and benchmark is exactly
//! reproducible: the same (plan, seed, fault plan) triple always yields the
//! same faults.

use crate::plan::PlanNode;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Why an execution failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecError {
    /// The query was aborted mid-flight (deadlock victim, administrator
    /// cancellation, backend crash).
    Aborted {
        /// Fraction of the query's work completed before the abort.
        progress: f64,
    },
    /// The execution exceeded its time budget.
    Timeout {
        /// The budget that was exceeded, in seconds.
        budget_secs: f64,
        /// The latency the execution would have needed, in seconds.
        needed_secs: f64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Aborted { progress } => {
                write!(f, "execution aborted at {:.0}% progress", progress * 100.0)
            }
            ExecError::Timeout {
                budget_secs,
                needed_secs,
            } => write!(
                f,
                "execution exceeded its {budget_secs} s budget (needed {needed_secs:.1} s)"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// The fault decisions for one execution, fully determined by the
/// [`FaultPlan`] and the execution seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultOutcome {
    /// The execution aborts.
    pub abort: bool,
    /// Progress fraction at the abort point (meaningful when `abort`).
    pub abort_progress: f64,
    /// Latency multiplier (1.0 when the execution does not straggle).
    pub straggler_factor: f64,
    /// The logged optimizer estimates are corrupted.
    pub corrupt_estimates: bool,
}

/// A seeded, deterministic fault-injection policy.
///
/// Probabilities are per execution attempt. `seed` decorrelates fault
/// decisions from the simulator's measurement noise (which consumes the
/// execution seed on its own stream).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that an execution aborts.
    pub abort_prob: f64,
    /// Probability that an execution straggles.
    pub straggler_prob: f64,
    /// Latency multiplier applied to stragglers (values below 1 are
    /// treated as 1).
    pub straggler_factor: f64,
    /// Probability that the logged optimizer estimates of an executed
    /// query are corrupted (NaN, zeroed, or wildly inflated values).
    pub corrupt_prob: f64,
    /// Per-execution time budget in seconds (`f64::INFINITY` disables it).
    pub timeout_secs: f64,
    /// Fault-stream seed.
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that injects nothing: every execution succeeds untouched.
    pub fn none() -> FaultPlan {
        FaultPlan {
            abort_prob: 0.0,
            straggler_prob: 0.0,
            straggler_factor: 8.0,
            corrupt_prob: 0.0,
            timeout_secs: f64::INFINITY,
            seed: 0,
        }
    }

    /// The fault decisions for the execution identified by `exec_seed`.
    /// Deterministic: the same (plan, exec_seed) pair always returns the
    /// same outcome.
    pub fn decide(&self, exec_seed: u64) -> FaultOutcome {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ exec_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xFA_017,
        );
        let abort = rng.gen::<f64>() < self.abort_prob;
        let abort_progress = rng.gen::<f64>();
        let straggler = rng.gen::<f64>() < self.straggler_prob;
        let corrupt = rng.gen::<f64>() < self.corrupt_prob;
        FaultOutcome {
            abort,
            abort_progress,
            straggler_factor: if straggler {
                self.straggler_factor.max(1.0)
            } else {
                1.0
            },
            corrupt_estimates: corrupt,
        }
    }

    /// Corrupts a plan's optimizer estimates in place, the way a buggy
    /// stats collector or a torn log record would: per node, estimates may
    /// turn into NaN, collapse to zero, or inflate by six orders of
    /// magnitude. Deterministic in (plan seed, exec_seed).
    pub fn corrupt_estimates(&self, plan: &mut PlanNode, exec_seed: u64) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ exec_seed.rotate_left(31) ^ 0xC0_44F7);
        corrupt_node(plan, &mut rng);
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// The kind of distribution drift a [`DriftPlan`] injects.
///
/// Both scenarios model the production failure mode reported for deployed
/// learned predictors: the world changes while the trained model (and the
/// optimizer statistics it was trained against) stand still.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// The underlying data grows: observed latencies inflate over time
    /// while the logged optimizer estimates stay stale (computed against
    /// the old statistics).
    DataGrowth,
    /// The workload's predicate selectivities shift: the logged estimates
    /// drift away from the truth (rows/pages/selectivity systematically
    /// inflated) while observed latencies stay where they were.
    SelectivityShift,
}

/// A seeded, deterministic drift scenario applied per query *index* (the
/// query's position in the workload stream), so drift ramps in over the
/// stream rather than firing per execution attempt like [`FaultPlan`].
#[derive(Debug, Clone, PartialEq)]
pub struct DriftPlan {
    /// What drifts.
    pub kind: DriftKind,
    /// Index of the first drifted query in the stream.
    pub onset: usize,
    /// Number of queries over which drift ramps from zero to full
    /// magnitude (0 = step change at `onset`).
    pub ramp: usize,
    /// Full-strength drift magnitude. For [`DriftKind::DataGrowth`] this is
    /// the latency multiplier at full ramp (values below 1 are treated as
    /// 1); for [`DriftKind::SelectivityShift`] it is the estimate inflation
    /// factor at full ramp.
    pub magnitude: f64,
    /// Drift-stream seed (jitter in estimate shifts).
    pub seed: u64,
}

impl DriftPlan {
    /// A plan that injects no drift (onset beyond any workload).
    pub fn none() -> DriftPlan {
        DriftPlan {
            kind: DriftKind::DataGrowth,
            onset: usize::MAX,
            ramp: 0,
            magnitude: 1.0,
            seed: 0,
        }
    }

    /// Drift intensity in `[0, 1]` for the query at stream position `idx`:
    /// 0 before `onset`, ramping linearly to 1 over `ramp` queries.
    pub fn intensity(&self, idx: usize) -> f64 {
        if idx < self.onset {
            return 0.0;
        }
        if self.ramp == 0 {
            return 1.0;
        }
        (((idx - self.onset) as f64 + 1.0) / self.ramp as f64).min(1.0)
    }

    /// Latency multiplier for the query at stream position `idx` (1.0 when
    /// drift does not affect latency).
    pub fn latency_factor(&self, idx: usize) -> f64 {
        match self.kind {
            DriftKind::DataGrowth => 1.0 + (self.magnitude.max(1.0) - 1.0) * self.intensity(idx),
            DriftKind::SelectivityShift => 1.0,
        }
    }

    /// A per-tenant variant of this drift plan: identical shape (kind,
    /// onset, ramp, magnitude) but a seed derived deterministically from
    /// the tenant index, so each tenant's drift stream is decorrelated
    /// from every other tenant's while staying exactly reproducible.
    /// Multi-tenant tests drift one tenant's traffic without touching the
    /// estimate jitter other tenants observe.
    pub fn for_tenant(&self, tenant: usize) -> DriftPlan {
        DriftPlan {
            seed: self
                .seed
                .wrapping_add((tenant as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            ..self.clone()
        }
    }

    /// Shifts a plan's logged optimizer estimates in place for the query at
    /// stream position `idx`. Deterministic in (drift seed, idx).
    ///
    /// [`DriftKind::DataGrowth`] leaves the estimates untouched — that is
    /// the point of the scenario: the optimizer's statistics are stale, so
    /// the *gap* between estimate and observation is what grows.
    /// [`DriftKind::SelectivityShift`] inflates per-node rows, pages, and
    /// selectivity by the ramped magnitude with mild seeded jitter.
    pub fn shift_estimates(&self, plan: &mut PlanNode, idx: usize) {
        let intensity = self.intensity(idx);
        if intensity <= 0.0 || self.kind != DriftKind::SelectivityShift {
            return;
        }
        let factor = 1.0 + (self.magnitude.max(1.0) - 1.0) * intensity;
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (idx as u64).wrapping_mul(0x5851_F42D_4C95_7F2D) ^ 0xD1F7,
        );
        shift_node(plan, factor, &mut rng);
    }
}

impl Default for DriftPlan {
    fn default() -> Self {
        DriftPlan::none()
    }
}

/// The serving-layer fault decisions for one request, fully determined by
/// the [`ServeFaultPlan`] and the request id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeFaultOutcome {
    /// Seconds a worker stalls (GC pause, page fault, noisy neighbour)
    /// before serving this request. 0.0 = no stall.
    pub stall_secs: f64,
    /// The client drains its reply slowly, holding the response channel
    /// open past the service time.
    pub slow_consumer: bool,
}

/// A seeded, deterministic fault-injection policy for the *serving* layer
/// (the prediction front-end), mirroring [`FaultPlan`]'s contract for the
/// execution layer: the same (plan, request id) pair always yields the
/// same faults, so overload tests are exactly reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeFaultPlan {
    /// Probability that a worker stalls while serving a request.
    pub stall_prob: f64,
    /// Stall duration in seconds when a stall fires (values below 0 are
    /// treated as 0).
    pub stall_secs: f64,
    /// Probability that the requesting client consumes its reply slowly.
    pub slow_consumer_prob: f64,
    /// Fault-stream seed, decorrelated from execution-layer fault streams.
    pub seed: u64,
}

impl ServeFaultPlan {
    /// A plan that injects nothing: every request is served untouched.
    pub fn none() -> ServeFaultPlan {
        ServeFaultPlan {
            stall_prob: 0.0,
            stall_secs: 0.002,
            slow_consumer_prob: 0.0,
            seed: 0,
        }
    }

    /// The fault decisions for the request identified by `request_id`.
    /// Deterministic: the same (plan, request_id) pair always returns the
    /// same outcome.
    pub fn decide(&self, request_id: u64) -> ServeFaultOutcome {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ request_id.wrapping_mul(0xA24B_AED4_963E_E407) ^ 0x5E_4FE,
        );
        let stall = rng.gen::<f64>() < self.stall_prob;
        let slow = rng.gen::<f64>() < self.slow_consumer_prob;
        ServeFaultOutcome {
            stall_secs: if stall { self.stall_secs.max(0.0) } else { 0.0 },
            slow_consumer: slow,
        }
    }
}

impl Default for ServeFaultPlan {
    fn default() -> Self {
        ServeFaultPlan::none()
    }
}

/// The network fault decisions for one wire frame, fully determined by
/// the [`NetFaultPlan`], the frame id, and the frame length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaultOutcome {
    /// Split the frame's write at this byte offset and pause between the
    /// two halves (a client flushing a partial frame, then stalling).
    /// `None` = the frame is written in one piece.
    pub partial_write_at: Option<usize>,
    /// Close the connection after writing this many bytes of the frame —
    /// a mid-frame disconnect. Offsets are strictly inside the frame, so
    /// the receiver always observes a truncated frame, never a clean
    /// close. `None` = no disconnect.
    pub disconnect_at: Option<usize>,
    /// XOR the frame byte at `.0` with the (non-zero) mask `.1` before
    /// writing — a corrupted frame the receiver must reject without
    /// dying. `None` = the frame goes out intact.
    pub corrupt_at: Option<(usize, u8)>,
    /// Seconds the client stalls *between* the split halves of a partial
    /// write, and before reading its reply — the slow-client behaviour a
    /// slowloris-evicting server must bound. 0.0 = no stall.
    pub stall_secs: f64,
}

/// A seeded, deterministic fault-injection policy for the *wire* layer
/// (the networked front door), mirroring [`FaultPlan`]'s contract: the
/// same (plan, frame id, frame length) triple always yields the same
/// faults, so network-chaos e2e tests are exactly reproducible.
///
/// Probabilities are per frame. A frame draws at most one of
/// {partial write, disconnect, corruption} (checked in that order), plus
/// an independent stall decision, so outcomes compose without the
/// injection layers masking each other.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFaultPlan {
    /// Probability that a frame's write is split with a pause in between.
    pub partial_write_prob: f64,
    /// Probability that the connection drops mid-frame.
    pub disconnect_prob: f64,
    /// Probability that one frame byte is corrupted in flight.
    pub corrupt_prob: f64,
    /// Probability that the client stalls (slow writer/reader).
    pub stall_prob: f64,
    /// Stall duration in seconds when a stall fires (values below 0 are
    /// treated as 0).
    pub stall_secs: f64,
    /// Fault-stream seed, decorrelated from the serving-layer streams.
    pub seed: u64,
}

impl NetFaultPlan {
    /// A plan that injects nothing: every frame arrives intact, in one
    /// piece, from a prompt client.
    pub fn none() -> NetFaultPlan {
        NetFaultPlan {
            partial_write_prob: 0.0,
            disconnect_prob: 0.0,
            corrupt_prob: 0.0,
            stall_prob: 0.0,
            stall_secs: 0.02,
            seed: 0,
        }
    }

    /// The fault decisions for the frame identified by `frame_id`, which
    /// is `frame_len` bytes long on the wire. Deterministic: the same
    /// (plan, frame_id, frame_len) triple always returns the same
    /// outcome. Frames shorter than two bytes cannot be meaningfully
    /// split, truncated, or corrupted mid-frame and draw no byte faults.
    pub fn decide(&self, frame_id: u64, frame_len: usize) -> NetFaultOutcome {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ frame_id.wrapping_mul(0xD6E8_FEB8_6659_FD93) ^ 0x3E_7C0,
        );
        let partial = rng.gen::<f64>() < self.partial_write_prob;
        let disconnect = rng.gen::<f64>() < self.disconnect_prob;
        let corrupt = rng.gen::<f64>() < self.corrupt_prob;
        let stall = rng.gen::<f64>() < self.stall_prob;
        // Draw the offsets and mask unconditionally so the decision of
        // *whether* a fault fires never perturbs the stream feeding
        // *where* it lands (same idiom as FaultPlan::decide).
        let split_off = if frame_len >= 2 {
            rng.gen_range(1..frame_len)
        } else {
            0
        };
        let cut_off = if frame_len >= 2 {
            rng.gen_range(1..frame_len)
        } else {
            0
        };
        let corrupt_off = if frame_len >= 2 {
            rng.gen_range(0..frame_len)
        } else {
            0
        };
        let mask = rng.gen_range(1u8..=255);
        let byte_faults_possible = frame_len >= 2;
        NetFaultOutcome {
            partial_write_at: (partial && byte_faults_possible).then_some(split_off),
            disconnect_at: (disconnect && !partial && byte_faults_possible).then_some(cut_off),
            corrupt_at: (corrupt && !partial && !disconnect && byte_faults_possible)
                .then_some((corrupt_off, mask)),
            stall_secs: if stall { self.stall_secs.max(0.0) } else { 0.0 },
        }
    }
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        NetFaultPlan::none()
    }
}

/// Deterministic request-arrival processes for load generation.
///
/// `arrival_offsets` turns a pattern into concrete arrival times so
/// closed-form assertions ("a burst of b requests lands inside one queue
/// drain interval") hold exactly, run after run.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalPattern {
    /// Evenly spaced arrivals: request `i` arrives at `i / rate`.
    Steady,
    /// Poisson process: exponential inter-arrival times with mean
    /// `1 / rate`, drawn from a seeded stream.
    Poisson {
        /// Arrival-stream seed.
        seed: u64,
    },
    /// Bursts of `burst` near-simultaneous arrivals separated by idle
    /// gaps, keeping the long-run mean rate: a burst lands every
    /// `burst / rate` seconds, its members spread over a small fraction
    /// of that period.
    Bursty {
        /// Requests per burst (values below 1 are treated as 1).
        burst: usize,
        /// Arrival-stream seed (intra-burst jitter).
        seed: u64,
    },
}

impl ArrivalPattern {
    /// The first `n` arrival offsets in seconds from stream start, at mean
    /// rate `rate` requests/second. Non-decreasing, non-negative, and
    /// deterministic in (pattern, n, rate).
    pub fn arrival_offsets(&self, n: usize, rate: f64) -> Vec<f64> {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        match self {
            ArrivalPattern::Steady => (0..n).map(|i| i as f64 / rate).collect(),
            ArrivalPattern::Poisson { seed } => {
                let mut rng = StdRng::seed_from_u64(*seed ^ 0xA8_817);
                let mut t = 0.0;
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push(t);
                    let u: f64 = rng.gen();
                    t += -(1.0 - u).max(1e-12).ln() / rate;
                }
                out
            }
            ArrivalPattern::Bursty { burst, seed } => {
                let burst = (*burst).max(1);
                let period = burst as f64 / rate;
                // Members of one burst spread over 1% of the burst period,
                // jittered so they are not exactly simultaneous.
                let spread = period * 0.01;
                let mut rng = StdRng::seed_from_u64(*seed ^ 0xB5_257);
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    let b = i / burst;
                    let jitter: f64 = rng.gen();
                    out.push(b as f64 * period + jitter * spread);
                }
                // Jitter can reorder members within a burst; restore the
                // global non-decreasing contract without crossing bursts.
                out.sort_by(|a, b| a.partial_cmp(b).unwrap());
                out
            }
        }
    }
}

/// One request arrival in a multi-tenant stream: when it lands and whose
/// traffic it is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantArrival {
    /// Seconds from stream start.
    pub offset_secs: f64,
    /// Index of the tenant issuing the request, in `0..tenants`.
    pub tenant: usize,
}

/// Deterministic tenant-skewed arrival processes for noisy-neighbor load
/// generation.
///
/// Where [`ArrivalPattern`] answers *when* requests arrive,
/// `TenantLoadPattern` also answers *whose* they are — the load skews
/// that make bulkhead isolation testable: one tenant bursting while the
/// rest trickle, the hot seat rotating, or every tenant surging at once.
/// [`TenantLoadPattern::arrivals`] is deterministic in
/// (pattern, tenants, n, rate), so shed/served counts per tenant are
/// exactly reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum TenantLoadPattern {
    /// One tenant floods in bursts while every other tenant trickles at a
    /// steady low rate: the canonical noisy neighbor. Each burst of
    /// `burst` near-simultaneous arrivals is mostly the hot tenant's; one
    /// arrival per burst goes to each quiet tenant in round-robin order.
    OneHotBurst {
        /// Index of the bursting tenant.
        hot: usize,
        /// Arrivals per burst (clamped so each quiet tenant still gets
        /// one arrival per burst).
        burst: usize,
        /// Arrival-stream seed (intra-burst jitter).
        seed: u64,
    },
    /// The hot seat rotates: every `period` arrivals a different tenant
    /// becomes the aggressor, taking three quarters of the traffic while
    /// the rest is spread round-robin across the others. Exercises that
    /// bulkheads recover once a tenant quiets down.
    RotatingHot {
        /// Arrivals between hot-tenant rotations (values below 1 are
        /// treated as 1).
        period: usize,
        /// Arrival-stream seed.
        seed: u64,
    },
    /// All tenants surge together: every `surge_every` arrivals, a window
    /// of `surge_len` arrivals lands at eight times the base rate, with
    /// traffic round-robined across tenants throughout. The correlated
    /// case where shedding must come from the *global* budget, not any
    /// single tenant's.
    CorrelatedSurge {
        /// Arrivals between surge-window starts (clamped to at least
        /// `surge_len + 1`).
        surge_every: usize,
        /// Arrivals per surge window (values below 1 are treated as 1).
        surge_len: usize,
        /// Arrival-stream seed (inter-arrival jitter).
        seed: u64,
    },
}

impl TenantLoadPattern {
    /// The first `n` arrivals of a `tenants`-way stream at base rate
    /// `rate` requests/second (the long-run mean for the burst patterns;
    /// the off-surge rate for [`TenantLoadPattern::CorrelatedSurge`],
    /// whose surge windows exceed it). Offsets are non-decreasing and
    /// non-negative, every tenant index is in `0..tenants`, every tenant
    /// appears in a sufficiently long stream, and the whole vector is
    /// deterministic in (pattern, tenants, n, rate).
    pub fn arrivals(&self, tenants: usize, n: usize, rate: f64) -> Vec<TenantArrival> {
        assert!(tenants >= 1, "need at least one tenant");
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        match self {
            TenantLoadPattern::OneHotBurst { hot, burst, seed } => {
                let hot = *hot % tenants;
                // Each burst must fit one arrival per quiet tenant plus at
                // least one hot arrival.
                let burst = (*burst).max(tenants.max(2));
                let offsets = ArrivalPattern::Bursty { burst, seed: *seed }
                    .arrival_offsets(n, rate);
                offsets
                    .into_iter()
                    .enumerate()
                    .map(|(i, offset_secs)| {
                        let pos = i % burst;
                        let quiet_slots = tenants - 1;
                        // The last `quiet_slots` positions of each burst go
                        // one each to the non-hot tenants, in index order.
                        let tenant = if pos < burst - quiet_slots {
                            hot
                        } else {
                            let q = pos - (burst - quiet_slots);
                            // q-th tenant when `hot` is skipped.
                            if q < hot {
                                q
                            } else {
                                q + 1
                            }
                        };
                        TenantArrival {
                            offset_secs,
                            tenant,
                        }
                    })
                    .collect()
            }
            TenantLoadPattern::RotatingHot { period, seed } => {
                let period = (*period).max(1);
                let offsets = ArrivalPattern::Poisson { seed: *seed }.arrival_offsets(n, rate);
                offsets
                    .into_iter()
                    .enumerate()
                    .map(|(i, offset_secs)| {
                        let hot = (i / period) % tenants;
                        // Three of every four arrivals are the hot
                        // tenant's; the fourth round-robins the others.
                        let tenant = if tenants == 1 || i % 4 != 0 {
                            hot
                        } else {
                            let q = (i / 4) % (tenants - 1);
                            if q < hot {
                                q
                            } else {
                                q + 1
                            }
                        };
                        TenantArrival {
                            offset_secs,
                            tenant,
                        }
                    })
                    .collect()
            }
            TenantLoadPattern::CorrelatedSurge {
                surge_every,
                surge_len,
                seed,
            } => {
                let surge_len = (*surge_len).max(1);
                let surge_every = (*surge_every).max(surge_len + 1);
                let mut rng = StdRng::seed_from_u64(*seed ^ 0x7E_A11);
                let mut t = 0.0;
                let mut out = Vec::with_capacity(n);
                for i in 0..n {
                    out.push(TenantArrival {
                        offset_secs: t,
                        tenant: i % tenants,
                    });
                    // Surge windows land at 8x the base rate; ±20% seeded
                    // jitter keeps arrivals from being exactly periodic.
                    let in_surge = i % surge_every < surge_len;
                    let dt = if in_surge {
                        1.0 / (8.0 * rate)
                    } else {
                        1.0 / rate
                    };
                    let jitter = 0.8 + 0.4 * rng.gen::<f64>();
                    t += dt * jitter;
                }
                out
            }
        }
    }
}

fn shift_node(node: &mut PlanNode, factor: f64, rng: &mut StdRng) {
    // ±10% jitter around the systematic shift keeps nodes decorrelated
    // without hiding the drift signal.
    let jitter = 0.9 + 0.2 * rng.gen::<f64>();
    let f = (factor * jitter).max(1.0);
    node.est.rows *= f;
    node.est.pages *= f;
    node.est.selectivity = (node.est.selectivity * f).min(1.0);
    for c in &mut node.children {
        shift_node(c, factor, rng);
    }
}

fn corrupt_node(node: &mut PlanNode, rng: &mut StdRng) {
    if rng.gen::<f64>() < 0.35 {
        match rng.gen_range(0u8..3) {
            0 => {
                node.est.rows = f64::NAN;
                node.est.total_cost = f64::NAN;
            }
            1 => {
                node.est.rows = 0.0;
                node.est.selectivity = 0.0;
                node.est.pages = 0.0;
            }
            _ => {
                node.est.rows *= 1e6;
                node.est.total_cost *= 1e6;
                node.est.startup_cost *= 1e6;
            }
        }
    }
    for c in &mut node.children {
        corrupt_node(c, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::planner::Planner;
    use tpch::templates;

    fn sample_plan(template: u8) -> PlanNode {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(3);
        planner.plan(&templates::instantiate(template, 0.1, &mut rng))
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan {
            abort_prob: 0.3,
            straggler_prob: 0.3,
            corrupt_prob: 0.3,
            ..FaultPlan::none()
        };
        for seed in 0..50 {
            assert_eq!(plan.decide(seed), plan.decide(seed));
        }
    }

    #[test]
    fn none_injects_nothing() {
        let plan = FaultPlan::none();
        for seed in 0..200 {
            let o = plan.decide(seed);
            assert!(!o.abort);
            assert!(!o.corrupt_estimates);
            assert_eq!(o.straggler_factor, 1.0);
        }
    }

    #[test]
    fn empirical_rates_match_probabilities() {
        let plan = FaultPlan {
            abort_prob: 0.2,
            straggler_prob: 0.1,
            corrupt_prob: 0.05,
            ..FaultPlan::none()
        };
        let n = 4000;
        let mut aborts = 0;
        let mut stragglers = 0;
        let mut corrupt = 0;
        for seed in 0..n {
            let o = plan.decide(seed);
            aborts += o.abort as usize;
            stragglers += (o.straggler_factor > 1.0) as usize;
            corrupt += o.corrupt_estimates as usize;
        }
        let frac = |k: usize| k as f64 / n as f64;
        assert!((frac(aborts) - 0.2).abs() < 0.03, "aborts {}", frac(aborts));
        assert!(
            (frac(stragglers) - 0.1).abs() < 0.03,
            "stragglers {}",
            frac(stragglers)
        );
        assert!(
            (frac(corrupt) - 0.05).abs() < 0.02,
            "corrupt {}",
            frac(corrupt)
        );
    }

    #[test]
    fn corruption_changes_estimates_and_is_deterministic() {
        let faults = FaultPlan {
            corrupt_prob: 1.0,
            ..FaultPlan::none()
        };
        let original = sample_plan(3);
        // NaN-corrupted estimates defeat PartialEq (NaN != NaN), so compare
        // debug renderings instead.
        let render = |p: &PlanNode| format!("{p:?}");
        let mut changed = false;
        for seed in 0..10 {
            let mut a = original.clone();
            let mut b = original.clone();
            faults.corrupt_estimates(&mut a, seed);
            faults.corrupt_estimates(&mut b, seed);
            assert_eq!(render(&a), render(&b), "corruption must be deterministic");
            if render(&a) != render(&original) {
                changed = true;
            }
        }
        assert!(changed, "corruption never touched any estimate");
    }

    #[test]
    fn errors_display() {
        let a = ExecError::Aborted { progress: 0.5 };
        assert!(a.to_string().contains("aborted"));
        let t = ExecError::Timeout {
            budget_secs: 10.0,
            needed_secs: 42.0,
        };
        assert!(t.to_string().contains("budget"));
    }

    #[test]
    fn drift_none_is_inert() {
        let d = DriftPlan::none();
        let original = sample_plan(6);
        for idx in [0usize, 5, 1000] {
            assert_eq!(d.intensity(idx), 0.0);
            assert_eq!(d.latency_factor(idx), 1.0);
            let mut p = original.clone();
            d.shift_estimates(&mut p, idx);
            assert_eq!(format!("{p:?}"), format!("{original:?}"));
        }
    }

    #[test]
    fn data_growth_ramps_latency_and_keeps_estimates_stale() {
        let d = DriftPlan {
            kind: DriftKind::DataGrowth,
            onset: 10,
            ramp: 5,
            magnitude: 3.0,
            seed: 9,
        };
        assert_eq!(d.latency_factor(9), 1.0);
        // Ramp: idx 10 is 1/5 of the way, idx 14 (and beyond) is full.
        assert!((d.latency_factor(10) - 1.4).abs() < 1e-12);
        assert!((d.latency_factor(14) - 3.0).abs() < 1e-12);
        assert!((d.latency_factor(500) - 3.0).abs() < 1e-12);
        // Estimates stay stale under data growth.
        let original = sample_plan(3);
        let mut p = original.clone();
        d.shift_estimates(&mut p, 500);
        assert_eq!(format!("{p:?}"), format!("{original:?}"));
    }

    #[test]
    fn selectivity_shift_inflates_estimates_deterministically() {
        let d = DriftPlan {
            kind: DriftKind::SelectivityShift,
            onset: 0,
            ramp: 0,
            magnitude: 4.0,
            seed: 21,
        };
        assert_eq!(d.latency_factor(3), 1.0, "latency unaffected");
        let original = sample_plan(3);
        let mut a = original.clone();
        let mut b = original.clone();
        d.shift_estimates(&mut a, 3);
        d.shift_estimates(&mut b, 3);
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "shift must be deterministic");
        assert_ne!(format!("{a:?}"), format!("{original:?}"), "shift must change estimates");
        // Rows only ever inflate.
        for (o, s) in original.preorder().iter().zip(a.preorder()) {
            assert!(s.est.rows >= o.est.rows, "rows shrank");
        }
    }

    #[test]
    fn serve_faults_are_deterministic_and_none_is_inert() {
        let none = ServeFaultPlan::none();
        for id in 0..200 {
            let o = none.decide(id);
            assert_eq!(o.stall_secs, 0.0);
            assert!(!o.slow_consumer);
        }
        let plan = ServeFaultPlan {
            stall_prob: 0.5,
            stall_secs: 0.004,
            slow_consumer_prob: 0.25,
            seed: 7,
        };
        for id in 0..50 {
            assert_eq!(plan.decide(id), plan.decide(id));
        }
    }

    #[test]
    fn serve_fault_rates_match_probabilities() {
        let plan = ServeFaultPlan {
            stall_prob: 0.3,
            stall_secs: 0.002,
            slow_consumer_prob: 0.1,
            seed: 11,
        };
        let n = 4000;
        let mut stalls = 0;
        let mut slow = 0;
        for id in 0..n {
            let o = plan.decide(id);
            if o.stall_secs > 0.0 {
                stalls += 1;
                assert_eq!(o.stall_secs, 0.002);
            }
            slow += o.slow_consumer as usize;
        }
        let frac = |k: usize| k as f64 / n as f64;
        assert!((frac(stalls) - 0.3).abs() < 0.03, "stalls {}", frac(stalls));
        assert!((frac(slow) - 0.1).abs() < 0.03, "slow {}", frac(slow));
    }

    #[test]
    fn net_faults_are_deterministic_and_none_is_inert() {
        let none = NetFaultPlan::none();
        for id in 0..200 {
            let o = none.decide(id, 64);
            assert_eq!(o.partial_write_at, None);
            assert_eq!(o.disconnect_at, None);
            assert_eq!(o.corrupt_at, None);
            assert_eq!(o.stall_secs, 0.0);
        }
        let plan = NetFaultPlan {
            partial_write_prob: 0.3,
            disconnect_prob: 0.3,
            corrupt_prob: 0.3,
            stall_prob: 0.3,
            stall_secs: 0.01,
            seed: 23,
        };
        for id in 0..100 {
            assert_eq!(plan.decide(id, 128), plan.decide(id, 128));
        }
    }

    #[test]
    fn net_fault_offsets_stay_inside_the_frame_and_exclude_each_other() {
        let plan = NetFaultPlan {
            partial_write_prob: 0.4,
            disconnect_prob: 0.4,
            corrupt_prob: 0.4,
            stall_prob: 0.2,
            stall_secs: 0.005,
            seed: 31,
        };
        for frame_len in [2usize, 9, 64, 4096] {
            for id in 0..500 {
                let o = plan.decide(id, frame_len);
                let fired = o.partial_write_at.is_some() as usize
                    + o.disconnect_at.is_some() as usize
                    + o.corrupt_at.is_some() as usize;
                assert!(fired <= 1, "byte faults must be mutually exclusive");
                if let Some(at) = o.partial_write_at {
                    assert!(at >= 1 && at < frame_len, "split at {at} of {frame_len}");
                }
                if let Some(at) = o.disconnect_at {
                    assert!(at >= 1 && at < frame_len, "cut at {at} of {frame_len}");
                }
                if let Some((at, mask)) = o.corrupt_at {
                    assert!(at < frame_len, "corrupt at {at} of {frame_len}");
                    assert_ne!(mask, 0, "a zero XOR mask corrupts nothing");
                }
                if o.stall_secs > 0.0 {
                    assert_eq!(o.stall_secs, 0.005);
                }
            }
        }
        // Degenerate frames draw no byte faults at all.
        for id in 0..200 {
            let o = plan.decide(id, 1);
            assert_eq!(o.partial_write_at, None);
            assert_eq!(o.disconnect_at, None);
            assert_eq!(o.corrupt_at, None);
        }
    }

    #[test]
    fn net_fault_rates_match_probabilities() {
        let plan = NetFaultPlan {
            partial_write_prob: 0.2,
            disconnect_prob: 0.1,
            corrupt_prob: 0.1,
            stall_prob: 0.15,
            stall_secs: 0.001,
            seed: 41,
        };
        let n = 4000;
        let (mut partial, mut cut, mut corrupt, mut stalls) = (0, 0, 0, 0);
        for id in 0..n {
            let o = plan.decide(id, 256);
            partial += o.partial_write_at.is_some() as usize;
            cut += o.disconnect_at.is_some() as usize;
            corrupt += o.corrupt_at.is_some() as usize;
            stalls += (o.stall_secs > 0.0) as usize;
        }
        let frac = |k: usize| k as f64 / n as f64;
        assert!((frac(partial) - 0.2).abs() < 0.03, "partial {}", frac(partial));
        // Disconnect and corruption yield to earlier faults, so their
        // observed rates are scaled by the survivors of the draw order.
        assert!((frac(cut) - 0.1 * 0.8).abs() < 0.03, "cut {}", frac(cut));
        assert!(
            (frac(corrupt) - 0.1 * 0.8 * 0.9).abs() < 0.03,
            "corrupt {}",
            frac(corrupt)
        );
        assert!((frac(stalls) - 0.15).abs() < 0.03, "stalls {}", frac(stalls));
    }

    #[test]
    fn arrival_offsets_are_sorted_deterministic_and_hold_the_mean_rate() {
        let n = 2000;
        let rate = 500.0;
        for pattern in [
            ArrivalPattern::Steady,
            ArrivalPattern::Poisson { seed: 42 },
            ArrivalPattern::Bursty { burst: 32, seed: 42 },
        ] {
            let a = pattern.arrival_offsets(n, rate);
            let b = pattern.arrival_offsets(n, rate);
            assert_eq!(a, b, "{pattern:?} must be deterministic");
            assert_eq!(a.len(), n);
            assert!(a[0] >= 0.0);
            for w in a.windows(2) {
                assert!(w[1] >= w[0], "{pattern:?} offsets must be sorted");
            }
            // Long-run mean rate within 15% of nominal.
            let span = a[n - 1].max(1e-9);
            let achieved = (n - 1) as f64 / span;
            assert!(
                (achieved / rate - 1.0).abs() < 0.15,
                "{pattern:?} rate {achieved} vs nominal {rate}"
            );
        }
    }

    #[test]
    fn bursty_arrivals_actually_burst() {
        let rate = 1000.0;
        let steady = ArrivalPattern::Steady.arrival_offsets(256, rate);
        let bursty =
            ArrivalPattern::Bursty { burst: 64, seed: 3 }.arrival_offsets(256, rate);
        let max_gap = |xs: &[f64]| {
            xs.windows(2)
                .map(|w| w[1] - w[0])
                .fold(0.0f64, f64::max)
        };
        // The inter-burst gap dwarfs any steady-state spacing, and the
        // intra-burst spacing is far tighter than steady spacing.
        assert!(max_gap(&bursty) > 10.0 * max_gap(&steady));
        let intra: Vec<f64> = bursty[..64].windows(2).map(|w| w[1] - w[0]).collect();
        let mean_intra = intra.iter().sum::<f64>() / intra.len() as f64;
        assert!(mean_intra < (1.0 / rate) * 0.25, "mean intra {mean_intra}");
    }

    fn check_stream(pattern: &TenantLoadPattern, tenants: usize, n: usize, rate: f64) {
        let a = pattern.arrivals(tenants, n, rate);
        let b = pattern.arrivals(tenants, n, rate);
        assert_eq!(a, b, "{pattern:?} must be deterministic");
        assert_eq!(a.len(), n);
        assert!(a[0].offset_secs >= 0.0);
        for w in a.windows(2) {
            assert!(
                w[1].offset_secs >= w[0].offset_secs,
                "{pattern:?} offsets must be sorted"
            );
        }
        let mut per_tenant = vec![0usize; tenants];
        for arr in &a {
            assert!(arr.tenant < tenants, "{pattern:?} tenant out of range");
            per_tenant[arr.tenant] += 1;
        }
        for (t, &count) in per_tenant.iter().enumerate() {
            assert!(count > 0, "{pattern:?} starves tenant {t} of arrivals");
        }
    }

    #[test]
    fn tenant_streams_are_deterministic_sorted_and_cover_all_tenants() {
        for tenants in [2usize, 4, 7] {
            check_stream(
                &TenantLoadPattern::OneHotBurst {
                    hot: 1,
                    burst: 32,
                    seed: 5,
                },
                tenants,
                2000,
                400.0,
            );
            check_stream(
                &TenantLoadPattern::RotatingHot { period: 64, seed: 5 },
                tenants,
                2000,
                400.0,
            );
            check_stream(
                &TenantLoadPattern::CorrelatedSurge {
                    surge_every: 100,
                    surge_len: 25,
                    seed: 5,
                },
                tenants,
                2000,
                400.0,
            );
        }
    }

    #[test]
    fn one_hot_burst_skews_hard_toward_the_hot_tenant() {
        let tenants = 4;
        let pattern = TenantLoadPattern::OneHotBurst {
            hot: 2,
            burst: 32,
            seed: 9,
        };
        let arrivals = pattern.arrivals(tenants, 3200, 800.0);
        let mut per_tenant = vec![0usize; tenants];
        for a in &arrivals {
            per_tenant[a.tenant] += 1;
        }
        // 29 of every 32 burst slots are the hot tenant's; quiet tenants
        // get exactly one slot per burst each.
        assert_eq!(per_tenant[2], 2900);
        for t in [0, 1, 3] {
            assert_eq!(per_tenant[t], 100, "tenant {t}");
        }
        // Quiet tenants arrive steadily: one arrival per burst period,
        // never two back-to-back inside one burst.
        let quiet_offsets: Vec<f64> = arrivals
            .iter()
            .filter(|a| a.tenant == 0)
            .map(|a| a.offset_secs)
            .collect();
        let period = 32.0 / 800.0;
        for w in quiet_offsets.windows(2) {
            assert!(w[1] - w[0] > 0.5 * period, "quiet arrivals bunched");
        }
    }

    #[test]
    fn rotating_hot_rotates_the_aggressor() {
        let tenants = 3;
        let period = 300;
        let pattern = TenantLoadPattern::RotatingHot { period, seed: 13 };
        let arrivals = pattern.arrivals(tenants, period * tenants, 500.0);
        for epoch in 0..tenants {
            let mut per_tenant = vec![0usize; tenants];
            for a in &arrivals[epoch * period..(epoch + 1) * period] {
                per_tenant[a.tenant] += 1;
            }
            let hot = epoch % tenants;
            // The hot seat holds ~3/4 of its epoch's traffic.
            assert!(
                per_tenant[hot] * 4 >= period * 2,
                "epoch {epoch}: hot tenant got {per_tenant:?}"
            );
            for (t, &count) in per_tenant.iter().enumerate() {
                if t != hot {
                    assert!(count < per_tenant[hot] / 2, "epoch {epoch}: {per_tenant:?}");
                }
            }
        }
    }

    #[test]
    fn correlated_surge_compresses_gaps_for_every_tenant_at_once() {
        let pattern = TenantLoadPattern::CorrelatedSurge {
            surge_every: 200,
            surge_len: 50,
            seed: 17,
        };
        let rate = 100.0;
        let arrivals = pattern.arrivals(3, 1000, rate);
        // Mean gap inside surge windows is ~1/(8 rate); outside, ~1/rate.
        let gap = |i: usize| arrivals[i + 1].offset_secs - arrivals[i].offset_secs;
        let surge_gaps: Vec<f64> = (0..49).map(gap).collect();
        let calm_gaps: Vec<f64> = (60..190).map(gap).collect();
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!(
            mean(&calm_gaps) > 4.0 * mean(&surge_gaps),
            "calm {} vs surge {}",
            mean(&calm_gaps),
            mean(&surge_gaps)
        );
        // The surge is correlated: all three tenants appear inside one
        // surge window.
        let mut seen = [false; 3];
        for a in &arrivals[..50] {
            seen[a.tenant] = true;
        }
        assert!(seen.iter().all(|&s| s), "surge window missing a tenant");
    }

    #[test]
    fn per_tenant_drift_is_decorrelated_but_same_shape() {
        let base = DriftPlan {
            kind: DriftKind::SelectivityShift,
            onset: 4,
            ramp: 8,
            magnitude: 3.0,
            seed: 77,
        };
        let a = base.for_tenant(0);
        let b = base.for_tenant(1);
        assert_eq!(a, base.for_tenant(0), "derivation must be deterministic");
        assert_ne!(a.seed, b.seed, "tenants must get distinct drift streams");
        for plan in [&a, &b] {
            assert_eq!(plan.kind, base.kind);
            assert_eq!(plan.onset, base.onset);
            assert_eq!(plan.ramp, base.ramp);
            assert_eq!(plan.magnitude, base.magnitude);
            // Same ramp: intensities agree even though jitter differs.
            for idx in 0..20 {
                assert_eq!(plan.intensity(idx), base.intensity(idx));
            }
        }
        // And the jitter actually differs between tenants.
        let original = sample_plan(3);
        let mut pa = original.clone();
        let mut pb = original.clone();
        a.shift_estimates(&mut pa, 12);
        b.shift_estimates(&mut pb, 12);
        assert_ne!(format!("{pa:?}"), format!("{pb:?}"));
    }

    #[test]
    fn step_drift_at_onset_zero_hits_everything() {
        let d = DriftPlan {
            kind: DriftKind::DataGrowth,
            onset: 0,
            ramp: 0,
            magnitude: 2.5,
            seed: 0,
        };
        for idx in 0..20 {
            assert_eq!(d.intensity(idx), 1.0);
            assert!((d.latency_factor(idx) - 2.5).abs() < 1e-12);
        }
    }
}
