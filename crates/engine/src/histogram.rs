//! Equi-depth histograms — the optimizer's view of a column.
//!
//! PostgreSQL's ANALYZE builds ~100-bucket equi-depth histograms from a
//! sample of the table. We build ours from the *generative distribution's
//! quantiles* and then perturb the bucket boundaries deterministically, so
//! the estimator sees realistic (imperfect) statistics without us having to
//! materialize terabytes of rows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tpch::distributions::{self, Distribution};
use tpch::schema::ColRef;
use tpch::types::CmpOp;

/// Number of histogram buckets (PostgreSQL's default statistics target).
pub const DEFAULT_BUCKETS: usize = 100;

/// An equi-depth histogram over a column's numeric view: `bounds` has
/// `buckets + 1` entries and each bucket holds equal probability mass.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
}

impl Histogram {
    /// Builds a histogram for the column at the given scale factor.
    ///
    /// The boundary positions are perturbed with a deterministic,
    /// column-seeded relative error (~±2%) to emulate ANALYZE sampling
    /// noise.
    pub fn build(col: ColRef, sf: f64, seed: u64) -> Histogram {
        Self::build_with_buckets(col, sf, seed, DEFAULT_BUCKETS)
    }

    /// Builds with an explicit bucket count (for resolution experiments).
    pub fn build_with_buckets(col: ColRef, sf: f64, seed: u64, buckets: usize) -> Histogram {
        assert!(buckets >= 1, "histogram needs at least one bucket");
        let mut rng = StdRng::seed_from_u64(seed ^ hash_col(col));
        let (lo, hi) = distributions::value_range(col, sf);
        let span = (hi - lo).max(f64::MIN_POSITIVE);
        let mut bounds = Vec::with_capacity(buckets + 1);
        for b in 0..=buckets {
            let q = b as f64 / buckets as f64;
            // Invert the true CDF at quantile q by bisection on the
            // selectivity function, then perturb.
            let v = invert_cdf(col, sf, q, lo, hi);
            let noise = if b == 0 || b == buckets {
                0.0
            } else {
                rng.gen_range(-0.02..0.02) * span / buckets as f64 * 2.0
            };
            bounds.push(v + noise);
        }
        // Ensure monotonicity after perturbation.
        for i in 1..bounds.len() {
            if bounds[i] < bounds[i - 1] {
                bounds[i] = bounds[i - 1];
            }
        }
        Histogram { bounds }
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Estimated P(col < v) by linear interpolation within the bucket.
    pub fn cdf(&self, v: f64) -> f64 {
        let n = self.buckets() as f64;
        if v <= self.bounds[0] {
            return 0.0;
        }
        if v >= self.bounds[self.bounds.len() - 1] {
            return 1.0;
        }
        // Binary search for the bucket containing v.
        let idx = match self
            .bounds
            .binary_search_by(|b| b.partial_cmp(&v).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let idx = idx.min(self.bounds.len() - 2);
        let lo = self.bounds[idx];
        let hi = self.bounds[idx + 1];
        let within = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
        (idx as f64 + within) / n
    }

    /// Estimated selectivity of a range operator against a constant, given
    /// the estimated distinct count for equality terms.
    pub fn selectivity(&self, op: CmpOp, v: f64, ndistinct: f64) -> f64 {
        let eq = 1.0 / ndistinct.max(1.0);
        match op {
            CmpOp::Eq => eq,
            CmpOp::Ne => 1.0 - eq,
            CmpOp::Lt => self.cdf(v),
            CmpOp::Le => (self.cdf(v) + eq).min(1.0),
            CmpOp::Gt => (1.0 - self.cdf(v) - eq).max(0.0),
            CmpOp::Ge => 1.0 - self.cdf(v),
        }
    }

    /// Estimated selectivity of `lo <= col <= hi`.
    pub fn between(&self, lo: f64, hi: f64, ndistinct: f64) -> f64 {
        let eq = 1.0 / ndistinct.max(1.0);
        ((self.cdf(hi) - self.cdf(lo)) + eq).clamp(0.0, 1.0)
    }
}

/// Deterministic 64-bit mix of a column reference for seeding.
fn hash_col(col: ColRef) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    col.hash(&mut h);
    h.finish()
}

/// Inverts the column's true CDF at quantile `q` by bisection.
fn invert_cdf(col: ColRef, sf: f64, q: f64, mut lo: f64, mut hi: f64) -> f64 {
    // Discrete distributions make the CDF a step function; bisection on
    // P(col <= x) converges to a boundary consistent with equi-depth
    // semantics.
    if q <= 0.0 {
        return lo;
    }
    if q >= 1.0 {
        return hi;
    }
    // Text columns have no predicate math; fall back to the raw range.
    if matches!(distributions::column_distribution(col), Distribution::Text) {
        return lo + q * (hi - lo);
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        let c = distributions::selectivity(col, CmpOp::Le, mid, sf);
        if c < q {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpch::schema::{col, TableId};
    use tpch::types::date;

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let h = Histogram::build(col(TableId::Lineitem, "l_shipdate"), 1.0, 1);
        let mut prev = -0.1;
        for step in 0..50 {
            let v = step as f64 * 60.0;
            let c = h.cdf(v);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev, "cdf must be monotone");
            prev = c;
        }
    }

    #[test]
    fn uniform_column_histogram_is_accurate() {
        let c = col(TableId::Lineitem, "l_quantity");
        let h = Histogram::build(c, 1.0, 3);
        // P(q < 25) should be ≈ 24/50.
        let est = h.selectivity(CmpOp::Lt, 25.0, 50.0);
        assert!((est - 0.48).abs() < 0.05, "est = {est}");
    }

    #[test]
    fn date_range_estimates_are_close_to_truth() {
        let c = col(TableId::Orders, "o_orderdate");
        let h = Histogram::build(c, 1.0, 7);
        let lo = date(1994, 1, 1) as f64;
        let hi = date(1994, 12, 31) as f64;
        let est = h.between(lo, hi, 2406.0);
        let truth = tpch::distributions::between_selectivity(c, lo, hi, 1.0);
        assert!((est - truth).abs() < 0.03, "est {est} vs truth {truth}");
        // But not *exactly* equal — the estimator must be imperfect.
        assert!(est != truth);
    }

    #[test]
    fn histograms_differ_across_seeds_but_not_runs() {
        let c = col(TableId::Lineitem, "l_shipdate");
        let a = Histogram::build(c, 1.0, 1);
        let b = Histogram::build(c, 1.0, 1);
        let other = Histogram::build(c, 1.0, 2);
        assert_eq!(a, b);
        assert_ne!(a, other);
    }

    #[test]
    fn equality_uses_distinct_count() {
        let h = Histogram::build(col(TableId::Customer, "c_mktsegment"), 1.0, 5);
        assert!((h.selectivity(CmpOp::Eq, 2.0, 5.0) - 0.2).abs() < 1e-9);
        assert!((h.selectivity(CmpOp::Ne, 2.0, 5.0) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn bucket_count_is_configurable() {
        let h = Histogram::build_with_buckets(col(TableId::Part, "p_size"), 1.0, 1, 10);
        assert_eq!(h.buckets(), 10);
    }
}
