//! The execution simulator: the hidden performance model that plays the
//! role of PostgreSQL-on-hardware in this reproduction.
//!
//! It walks a physical plan bottom-up over the *truth* annotations and
//! produces, for every operator, the paper's two targets:
//!
//! - **start-time** — elapsed time until the operator (and the sub-plan
//!   rooted at it) produces its first output tuple;
//! - **run-time** — elapsed time until it produces its last output tuple
//!   (the root's run-time is the query latency).
//!
//! The model deliberately contains structure an additive cost model cannot
//! express — the phenomena Section 5.3.2 of the paper blames for
//! operator-level prediction failures:
//!
//! - a cold-start buffer pool with within-query caching (repeated scans and
//!   index probes of the same table get cheaper);
//! - sequential-I/O ↔ CPU overlap in pipelines (OS readahead): downstream
//!   CPU rides on a scan's I/O slack, tracked as a `residual_io` budget;
//! - blocking-operator semantics (sorts, hash builds and hash aggregates
//!   sit between a child's run-time and the parent's start-time);
//! - hash tables degrading once they exceed cache, sorts and hash joins
//!   spilling past `work_mem`, nested-loop index probes thrashing when the
//!   touched page set exceeds the buffer pool;
//! - software numeric arithmetic (the paper's template-1 aggregate
//!   bottleneck) priced per numeric op;
//! - log-normal measurement noise per node and per query.

use crate::estimator::cardenas;
use crate::faults::{DriftPlan, ExecError, FaultPlan};
use crate::plan::{OpDetail, OpType, PlanNode};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use std::collections::HashMap;
use tpch::schema::TableId;

/// Hardware / configuration constants of the simulated system.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Sequential page read (8 KiB from a ~125 MB/s disk).
    pub seq_page_secs: f64,
    /// Random page read (seek-bound).
    pub rand_page_secs: f64,
    /// Buffer-cache page touch.
    pub cached_page_secs: f64,
    /// Per-tuple scan CPU.
    pub cpu_tuple_secs: f64,
    /// Per-predicate evaluation.
    pub cpu_pred_secs: f64,
    /// Per index entry.
    pub cpu_index_tuple_secs: f64,
    /// Hash-table insert.
    pub hash_build_secs: f64,
    /// Hash-table probe (before cache penalty).
    pub hash_probe_secs: f64,
    /// Merge-join comparison.
    pub merge_cmp_secs: f64,
    /// Sort comparison.
    pub sort_cmp_secs: f64,
    /// Aggregate transition per (row × aggregate).
    pub agg_transition_secs: f64,
    /// Software numeric arithmetic per operation (the template-1 story).
    pub numeric_op_secs: f64,
    /// Tuplestore write per row.
    pub mat_write_secs: f64,
    /// Tuplestore read per row (rescans).
    pub mat_read_secs: f64,
    /// Output emission per row.
    pub emit_secs: f64,
    /// Spill I/O per page (write or read, seek-prone).
    pub spill_page_secs: f64,
    /// Spill I/O per page once an operator needs many batches/runs
    /// (temp-file seek storms: interleaved partition files on one spindle).
    pub heavy_spill_page_secs: f64,
    /// Batch-count threshold (operator bytes / work_mem) beyond which
    /// spill I/O becomes seek-bound.
    pub heavy_batch_threshold: f64,
    /// Buffer pool size in 8 KiB pages (1 GiB, 25% of the paper's RAM).
    pub buffer_pool_pages: f64,
    /// Per-operation memory budget in bytes.
    pub work_mem: f64,
    /// Fraction of I/O slack downstream CPU can hide in (readahead
    /// efficiency).
    pub overlap_eff: f64,
    /// Log-normal sigma of per-node noise.
    pub node_noise_sigma: f64,
    /// Log-normal sigma of per-query noise.
    pub query_noise_sigma: f64,
    /// Scale (seconds) of the additive half-normal latency jitter — OS
    /// scheduling, checkpoints, autovacuum. Fixed in absolute terms, so it
    /// dominates *relative* variance for short queries: the paper's 1 GB
    /// dataset has a ~2.6× higher std/mean latency ratio than 10 GB.
    pub additive_noise_secs: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seq_page_secs: 110e-6,
            rand_page_secs: 4e-3,
            cached_page_secs: 1.5e-6,
            cpu_tuple_secs: 150e-9,
            cpu_pred_secs: 60e-9,
            cpu_index_tuple_secs: 200e-9,
            hash_build_secs: 250e-9,
            hash_probe_secs: 300e-9,
            merge_cmp_secs: 150e-9,
            sort_cmp_secs: 140e-9,
            agg_transition_secs: 100e-9,
            numeric_op_secs: 120e-9,
            mat_write_secs: 80e-9,
            mat_read_secs: 35e-9,
            emit_secs: 50e-9,
            spill_page_secs: 150e-6,
            heavy_spill_page_secs: 1.2e-3,
            heavy_batch_threshold: 64.0,
            buffer_pool_pages: 131_072.0,
            work_mem: 8.0 * 1024.0 * 1024.0,
            overlap_eff: 0.9,
            node_noise_sigma: 0.03,
            query_noise_sigma: 0.05,
            additive_noise_secs: 1.5,
        }
    }
}

/// Observed timing of one operator (the paper's two prediction targets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeTiming {
    /// Elapsed seconds until the first output tuple of this sub-plan.
    pub start: f64,
    /// Elapsed seconds until the last output tuple of this sub-plan.
    pub run: f64,
}

/// The execution record of one query.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Per-operator timings in *pre-order* (aligned with
    /// [`PlanNode::preorder`]).
    pub timings: Vec<NodeTiming>,
    /// Query latency in seconds (the root's run-time).
    pub total_secs: f64,
    /// Disk pages physically read or written per operator (pre-order):
    /// cache misses, index probes, spill traffic. The second performance
    /// metric the paper family predicts (disk I/O).
    pub io_pages: Vec<f64>,
}

/// The simulator.
#[derive(Debug, Clone, Default)]
pub struct Simulator {
    config: SimConfig,
}

/// Result of simulating one subtree.
#[derive(Debug, Clone, Copy)]
struct SubRes {
    start: f64,
    run: f64,
    /// I/O slack inside this subtree's output stream that a pipelined
    /// parent's CPU can overlap with.
    residual_io: f64,
}

/// Mutable per-execution state.
struct ExecState {
    /// Pages of each table currently cached (within-query warmth).
    cached: HashMap<TableId, f64>,
    rng: StdRng,
    sigma: f64,
    /// Scale factor (sizes base tables for the cache model).
    sf: f64,
    /// Per-node physical-I/O accumulators (stack parallels the walk).
    io_stack: Vec<f64>,
}

impl ExecState {
    /// Charges physical page traffic to the operator currently simulating.
    fn add_io(&mut self, pages: f64) {
        if let Some(top) = self.io_stack.last_mut() {
            *top += pages.max(0.0);
        }
    }
}

impl ExecState {
    fn noise(&mut self) -> f64 {
        if self.sigma <= 0.0 {
            return 1.0;
        }
        LogNormal::new(0.0, self.sigma)
            .expect("valid sigma")
            .sample(&mut self.rng)
    }

    fn cached_fraction(&self, table: TableId, pages: f64) -> f64 {
        let c = self.cached.get(&table).copied().unwrap_or(0.0);
        if pages <= 0.0 {
            0.0
        } else {
            (c / pages).clamp(0.0, 1.0)
        }
    }
}

impl Simulator {
    /// Creates a simulator with the default hardware model.
    pub fn new() -> Simulator {
        Simulator::default()
    }

    /// Creates a simulator with an explicit configuration.
    pub fn with_config(config: SimConfig) -> Simulator {
        Simulator { config }
    }

    /// Access the configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Executes a plan cold (empty caches) and returns the trace.
    /// `sf` is the scale factor the plan was built for (it sizes base
    /// tables for the cache model); `seed` controls the measurement noise —
    /// the same (plan, sf, seed) triple always produces the same trace.
    pub fn execute(&self, plan: &PlanNode, sf: f64, seed: u64) -> Trace {
        let mut state = ExecState {
            cached: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            sigma: self.config.node_noise_sigma,
            sf,
            io_stack: Vec::new(),
        };
        let mut timings = Vec::with_capacity(plan.node_count());
        let mut io_pages = vec![0.0; plan.node_count()];
        let res = self.walk(plan, &mut state, &mut timings, &mut io_pages);
        // Whole-query noise (scheduler, checkpoints, ...).
        let q = {
            let mut qrng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE);
            if self.config.query_noise_sigma > 0.0 {
                LogNormal::new(0.0, self.config.query_noise_sigma)
                    .expect("valid sigma")
                    .sample(&mut qrng)
            } else {
                1.0
            }
        };
        // Additive jitter lands on the whole query (and therefore on the
        // root's run phase).
        let add = {
            let mut arng = StdRng::seed_from_u64(seed ^ 0xADD_17E);
            if self.config.additive_noise_secs > 0.0 {
                LogNormal::new(0.0, 0.8)
                    .expect("valid sigma")
                    .sample(&mut arng)
                    * self.config.additive_noise_secs
                    * 0.5
            } else {
                0.0
            }
        };
        for t in &mut timings {
            t.start *= q;
            t.run *= q;
        }
        if let Some(root) = timings.first_mut() {
            root.run += add;
        }
        Trace {
            total_secs: res.run * q + add,
            timings,
            io_pages,
        }
    }

    /// Executes a plan under a fault-injection policy. The clean trace is
    /// computed exactly as [`Simulator::execute`] would (same seed, same
    /// noise streams); faults are applied on top: stragglers stretch every
    /// timing by the plan's factor, aborted executions return
    /// [`ExecError::Aborted`], and executions whose (possibly stretched)
    /// latency exceeds `faults.timeout_secs` return [`ExecError::Timeout`].
    /// With `FaultPlan::none()` this is byte-identical to `execute`.
    pub fn try_execute(
        &self,
        plan: &PlanNode,
        sf: f64,
        seed: u64,
        faults: &FaultPlan,
    ) -> Result<Trace, ExecError> {
        let outcome = faults.decide(seed);
        let mut trace = self.execute(plan, sf, seed);
        if outcome.straggler_factor > 1.0 {
            let m = outcome.straggler_factor;
            trace.total_secs *= m;
            for t in &mut trace.timings {
                t.start *= m;
                t.run *= m;
            }
        }
        if outcome.abort {
            return Err(ExecError::Aborted {
                progress: outcome.abort_progress,
            });
        }
        if trace.total_secs > faults.timeout_secs {
            return Err(ExecError::Timeout {
                budget_secs: faults.timeout_secs,
                needed_secs: trace.total_secs,
            });
        }
        Ok(trace)
    }

    /// Executes a plan under both a fault-injection policy and a drift
    /// scenario. `query_idx` is the query's position in the workload
    /// stream, which determines how far the drift has ramped in. The
    /// drift's latency factor composes multiplicatively with any straggler
    /// stretch; abort and timeout decisions then apply to the drifted
    /// latency. With `DriftPlan::none()` this is byte-identical to
    /// [`Simulator::try_execute`].
    pub fn try_execute_drifted(
        &self,
        plan: &PlanNode,
        sf: f64,
        seed: u64,
        faults: &FaultPlan,
        drift: &DriftPlan,
        query_idx: usize,
    ) -> Result<Trace, ExecError> {
        let outcome = faults.decide(seed);
        let mut trace = self.execute(plan, sf, seed);
        let m = outcome.straggler_factor.max(1.0) * drift.latency_factor(query_idx);
        if m != 1.0 {
            trace.total_secs *= m;
            for t in &mut trace.timings {
                t.start *= m;
                t.run *= m;
            }
        }
        if outcome.abort {
            return Err(ExecError::Aborted {
                progress: outcome.abort_progress,
            });
        }
        if trace.total_secs > faults.timeout_secs {
            return Err(ExecError::Timeout {
                budget_secs: faults.timeout_secs,
                needed_secs: trace.total_secs,
            });
        }
        Ok(trace)
    }

    /// Per-page spill rate for an operator handling `bytes`: seek-bound
    /// once the batch/run count (bytes / work_mem) passes the threshold.
    fn spill_rate(&self, bytes: f64) -> f64 {
        let c = &self.config;
        if bytes / c.work_mem > c.heavy_batch_threshold {
            c.heavy_spill_page_secs
        } else {
            c.spill_page_secs
        }
    }

    fn walk(
        &self,
        node: &PlanNode,
        st: &mut ExecState,
        out: &mut Vec<NodeTiming>,
        io: &mut [f64],
    ) -> SubRes {
        let idx = out.len();
        out.push(NodeTiming { start: 0.0, run: 0.0 });
        st.io_stack.push(0.0);
        let mut res = self.node_res(node, st, out, io);
        io[idx] = st.io_stack.pop().expect("io accumulator");
        // Start-time can never exceed run-time (first tuple precedes last).
        res.start = res.start.min(res.run);
        out[idx] = NodeTiming {
            start: res.start,
            run: res.run,
        };
        res
    }

    fn node_res(
        &self,
        node: &PlanNode,
        st: &mut ExecState,
        out: &mut Vec<NodeTiming>,
        io: &mut [f64],
    ) -> SubRes {
        let c = &self.config;
        let noise = st.noise();
        match node.op {
            OpType::SeqScan => {
                let (table, n_preds) = match &node.detail {
                    OpDetail::Scan { table, filters } => (*table, filters.len()),
                    _ => unreachable!("scan detail"),
                };
                let pages = node.truth.pages;
                let base_rows = pages * 8192.0 * 0.9 / table.tuple_width() as f64;
                let hit = st.cached_fraction(table, pages);
                let io = pages * ((1.0 - hit) * c.seq_page_secs + hit * c.cached_page_secs) * noise;
                st.add_io(pages * (1.0 - hit));
                let cpu = (base_rows * (c.cpu_tuple_secs + n_preds as f64 * c.cpu_pred_secs)
                    + node.truth.rows * c.emit_secs)
                    * noise;
                // Within-query warmth: small tables stay resident.
                if pages <= 0.5 * c.buffer_pool_pages {
                    st.cached.insert(table, pages);
                }
                let first_page =
                    (1.0 - hit) * c.seq_page_secs + hit * c.cached_page_secs + c.cpu_tuple_secs;
                let run = io.max(cpu) + 0.1 * io.min(cpu);
                SubRes {
                    start: first_page.min(run),
                    run,
                    residual_io: (io - cpu).max(0.0) * c.overlap_eff,
                }
            }
            OpType::IndexScan => {
                // Standalone index scan (probe-mode handling lives in the
                // NestedLoop arm).
                let table = node.scan_table().expect("index scan has a table");
                let pages = node.truth.pages.max(1.0);
                let hit = st.cached_fraction(table, table.pages(st.sf) as f64);
                let io = pages * ((1.0 - hit) * c.rand_page_secs + hit * c.cached_page_secs) * noise;
                st.add_io(pages * (1.0 - hit));
                let cpu =
                    node.truth.rows * (c.cpu_index_tuple_secs + c.cpu_tuple_secs) * noise;
                SubRes {
                    start: c.rand_page_secs * 2.0,
                    run: io + cpu,
                    residual_io: 0.0,
                }
            }
            OpType::Sort => {
                let child = self.walk(&node.children[0], st, out, io);
                let n = node.truth.rows.max(1.0);
                let keys = match &node.detail {
                    OpDetail::Sort { keys } => *keys as f64,
                    _ => 1.0,
                };
                let cpu = n * n.log2().max(1.0) * c.sort_cmp_secs * (1.0 + 0.15 * (keys - 1.0));
                let bytes = n * node.est.width;
                let spill = if bytes > c.work_mem {
                    st.add_io(2.0 * (bytes / 8192.0));
                    2.0 * (bytes / 8192.0) * self.spill_rate(bytes)
                } else {
                    0.0
                };
                let start = child.run + (cpu + spill) * noise;
                SubRes {
                    start,
                    run: start + n * c.emit_secs * 0.5,
                    residual_io: 0.0,
                }
            }
            OpType::Hash => {
                let child = self.walk(&node.children[0], st, out, io);
                let n = node.truth.rows.max(1.0);
                let bytes = n * node.est.width;
                let spill = if bytes > c.work_mem {
                    st.add_io(bytes / 8192.0);
                    (bytes / 8192.0) * self.spill_rate(bytes)
                } else {
                    0.0
                };
                let t = child.run + (n * c.hash_build_secs + spill) * noise;
                SubRes {
                    start: t,
                    run: t,
                    residual_io: 0.0,
                }
            }
            OpType::HashJoin => {
                let probe = self.walk(&node.children[0], st, out, io);
                let hash = self.walk(&node.children[1], st, out, io);
                let build_rows = node.children[1].truth.rows.max(1.0);
                let build_bytes = build_rows * node.children[1].est.width;
                // Probe cost grows once the hash table exceeds the caches.
                let cache_penalty = (1.0 + 0.4 * (build_bytes / 4e6).log10().max(0.0)).min(2.5);
                let probe_rows = node.children[0].truth.rows;
                let cpu = (probe_rows * c.hash_probe_secs * cache_penalty
                    + node.truth.rows * c.emit_secs)
                    * noise;
                // Multi-batch execution: both sides spill once past work_mem.
                let probe_bytes = probe_rows * node.children[0].est.width;
                let spill = if build_bytes > c.work_mem {
                    st.add_io(2.0 * ((build_bytes + probe_bytes) / 8192.0));
                    2.0 * ((build_bytes + probe_bytes) / 8192.0) * self.spill_rate(build_bytes)
                } else {
                    0.0
                };
                let run = hash.run
                    + probe.run
                    + (cpu - c.overlap_eff * probe.residual_io).max(0.0)
                    + spill * noise;
                SubRes {
                    start: hash.run + probe.start + c.cpu_tuple_secs,
                    run,
                    residual_io: (probe.residual_io - cpu).max(0.0) * 0.5,
                }
            }
            OpType::MergeJoin => {
                let left = self.walk(&node.children[0], st, out, io);
                let right = self.walk(&node.children[1], st, out, io);
                let l_rows = node.children[0].truth.rows;
                let r_rows = node.children[1].truth.rows;
                let cpu = ((l_rows + r_rows) * c.merge_cmp_secs + node.truth.rows * c.emit_secs)
                    * noise;
                // Single-threaded demand-driven execution: both (blocking)
                // sorted inputs must reach their first tuple before the
                // merge can emit.
                SubRes {
                    start: left.start + right.start + c.cpu_tuple_secs,
                    run: left.run + right.run + cpu,
                    residual_io: 0.0,
                }
            }
            OpType::NestedLoop => {
                let outer = self.walk(&node.children[0], st, out, io);
                let outer_rows = node.children[0].truth.rows.max(0.0);
                let inner_node = &node.children[1];
                match inner_node.op {
                    OpType::IndexScan => {
                        // Probe-mode: charge per-probe I/O with buffer-pool
                        // thrash once the touched page set exceeds the pool.
                        let idx = out.len();
                        out.push(NodeTiming { start: 0.0, run: 0.0 });
                        let table = inner_node.scan_table().expect("scan");
                        let table_pages = table.pages(st.sf) as f64;
                        let per_probe_rows = inner_node.truth.rows.max(0.0);
                        let per_probe_pages = inner_node.truth.pages.max(1.0);
                        let touches = outer_rows * per_probe_pages;
                        let distinct = cardenas(table_pages.max(1.0), touches);
                        let resident = st.cached.get(&table).copied().unwrap_or(0.0);
                        let first_reads = (distinct - resident).max(0.0);
                        // Re-reads: the fraction of the working set that no
                        // longer fits the pool gets evicted and fetched again.
                        let over = ((distinct - c.buffer_pool_pages) / distinct.max(1.0)).max(0.0);
                        let re_reads = (touches - distinct).max(0.0) * over;
                        io[idx] = first_reads + re_reads;
                        let io_secs = (first_reads + re_reads) * c.rand_page_secs
                            + ((touches - first_reads - re_reads).max(0.0)) * c.cached_page_secs;
                        let cpu = outer_rows
                            * (c.cpu_index_tuple_secs * 2.0
                                + per_probe_rows * (c.cpu_tuple_secs + c.cpu_pred_secs));
                        let probe_total = (io_secs + cpu) * noise;
                        let inner_first = c.rand_page_secs * per_probe_pages;
                        out[idx] = NodeTiming {
                            start: outer.start + inner_first,
                            run: outer.run + probe_total,
                        };
                        let run = outer.run + probe_total + node.truth.rows * c.emit_secs;
                        SubRes {
                            start: outer.start + inner_first + c.cpu_tuple_secs,
                            run,
                            residual_io: 0.0,
                        }
                    }
                    _ => {
                        // Materialized inner: the Materialize node already
                        // accounts for its rescans.
                        let inner = self.walk(inner_node, st, out, io);
                        let cpu = (outer_rows * c.cpu_tuple_secs * 0.5
                            + node.truth.rows * c.emit_secs)
                            * noise;
                        SubRes {
                            start: outer.start + inner.start + c.cpu_tuple_secs,
                            run: outer.run + inner.run + cpu,
                            residual_io: 0.0,
                        }
                    }
                }
            }
            OpType::Materialize => {
                let child = self.walk(&node.children[0], st, out, io);
                let n = node.truth.rows.max(0.0);
                let rescans = match &node.detail {
                    OpDetail::Materialize { rescans } => *rescans,
                    _ => 0.0,
                };
                let bytes = n * node.est.width;
                let spilled = bytes > c.work_mem;
                let write = n * c.mat_write_secs
                    + if spilled {
                        st.add_io(bytes / 8192.0);
                        (bytes / 8192.0) * self.spill_rate(bytes)
                    } else {
                        0.0
                    };
                let per_rescan = n * c.mat_read_secs
                    + if spilled {
                        st.add_io(rescans * (bytes / 8192.0) * 0.5);
                        (bytes / 8192.0) * self.spill_rate(bytes) * 0.5
                    } else {
                        0.0
                    };
                let start = child.run + write * noise;
                SubRes {
                    start,
                    run: start + rescans * per_rescan * noise,
                    residual_io: 0.0,
                }
            }
            OpType::HashAggregate | OpType::GroupAggregate | OpType::Aggregate => {
                let child = self.walk(&node.children[0], st, out, io);
                let in_rows = node.children[0].truth.rows.max(0.0);
                let (n_aggs, numeric_ops) = match &node.detail {
                    OpDetail::Agg {
                        n_aggs,
                        numeric_ops,
                        ..
                    } => (*n_aggs as f64, *numeric_ops as f64),
                    _ => (1.0, 0.0),
                };
                let groups = node.truth.rows.max(1.0);
                let trans = in_rows
                    * (n_aggs * c.agg_transition_secs + numeric_ops * c.numeric_op_secs)
                    * noise;
                // Transitions can hide in the child's I/O slack (the paper's
                // scan-vs-aggregate overlap example).
                let visible = (trans - c.overlap_eff * child.residual_io).max(0.0);
                let emit = groups * (c.emit_secs * 4.0);
                match node.op {
                    OpType::HashAggregate => {
                        let start = child.run + visible;
                        SubRes {
                            start,
                            run: start + emit,
                            residual_io: 0.0,
                        }
                    }
                    OpType::GroupAggregate => SubRes {
                        start: child.start + c.cpu_tuple_secs,
                        run: child.run + visible + emit,
                        residual_io: (child.residual_io - trans).max(0.0) * 0.5,
                    },
                    _ => {
                        let run = child.run + visible + emit;
                        SubRes {
                            start: run,
                            run,
                            residual_io: 0.0,
                        }
                    }
                }
            }
            OpType::Limit => {
                let child = self.walk(&node.children[0], st, out, io);
                let frac = match &node.detail {
                    OpDetail::Limit { count } => {
                        (*count as f64 / node.children[0].truth.rows.max(1.0)).min(1.0)
                    }
                    _ => 1.0,
                };
                SubRes {
                    start: child.start,
                    run: child.start + (child.run - child.start) * frac,
                    residual_io: 0.0,
                }
            }
            OpType::SubqueryScan => {
                let input = self.walk(&node.children[0], st, out, io);
                let sub = self.walk(&node.children[1], st, out, io);
                let (correlated, executions) = match &node.detail {
                    OpDetail::Subquery {
                        correlated,
                        executions,
                    } => (*correlated, *executions),
                    _ => (false, 1.0),
                };
                let cmp_cpu = node.children[0].truth.rows * c.cpu_pred_secs;
                if correlated {
                    // Re-executions run against warmed caches: cheaper than
                    // the first, cold evaluation.
                    let warm_exec = sub.run * 0.4;
                    let run = input.run
                        + sub.run
                        + (executions - 1.0).max(0.0) * warm_exec
                        + cmp_cpu;
                    SubRes {
                        start: input.start + sub.run,
                        run,
                        residual_io: 0.0,
                    }
                } else {
                    let run = input.run + sub.run + cmp_cpu;
                    SubRes {
                        start: sub.run + input.start,
                        run,
                        residual_io: 0.0,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::planner::Planner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tpch::templates;

    fn simulate(t: u8, sf: f64, seed: u64) -> (Trace, PlanNode) {
        let catalog = Catalog::new(sf, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = templates::instantiate(t, sf, &mut rng);
        let plan = planner.plan(&spec);
        let sim = Simulator::new();
        let trace = sim.execute(&plan, sf, seed);
        (trace, plan)
    }

    #[test]
    fn all_templates_simulate_to_positive_finite_times() {
        for t in templates::ALL_TEMPLATES {
            let (trace, plan) = simulate(t, 0.1, 3);
            assert!(trace.total_secs > 0.0 && trace.total_secs.is_finite(), "t{t}");
            assert_eq!(trace.timings.len(), plan.node_count(), "t{t}");
            for nt in &trace.timings {
                assert!(nt.start >= 0.0 && nt.start.is_finite(), "t{t}");
                assert!(nt.run >= nt.start * 0.999, "t{t}: run {} < start {}", nt.run, nt.start);
            }
        }
    }

    #[test]
    fn latency_scales_with_scale_factor() {
        let (small, _) = simulate(1, 0.1, 1);
        let (big, _) = simulate(1, 1.0, 1);
        assert!(big.total_secs > small.total_secs * 3.0);
    }

    #[test]
    fn noise_varies_with_seed_but_is_reproducible() {
        let (a, _) = simulate(6, 0.1, 1);
        let (b, _) = simulate(6, 0.1, 1);
        let (c, _) = simulate(6, 0.1, 2);
        assert_eq!(a.total_secs, b.total_secs);
        assert_ne!(a.total_secs, c.total_secs);
        // Noise is small in relative terms.
        let rel = (a.total_secs - c.total_secs).abs() / a.total_secs;
        assert!(rel < 0.5, "rel = {rel}");
    }

    #[test]
    fn root_runtime_dominates_children() {
        let (trace, _) = simulate(3, 0.1, 5);
        let root = trace.timings[0];
        for nt in &trace.timings[1..] {
            assert!(nt.run <= root.run * 1.0001);
        }
    }

    #[test]
    fn try_execute_without_faults_matches_execute() {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(9);
        let plan = planner.plan(&templates::instantiate(6, 0.1, &mut rng));
        let sim = Simulator::new();
        let clean = sim.execute(&plan, 0.1, 42);
        let faulty = sim
            .try_execute(&plan, 0.1, 42, &crate::faults::FaultPlan::none())
            .expect("no faults injected");
        assert_eq!(clean.total_secs, faulty.total_secs);
        assert_eq!(clean.timings, faulty.timings);
    }

    #[test]
    fn try_execute_injects_aborts_stragglers_and_timeouts() {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(9);
        let plan = planner.plan(&templates::instantiate(6, 0.1, &mut rng));
        let sim = Simulator::new();

        let abort_all = crate::faults::FaultPlan {
            abort_prob: 1.0,
            ..crate::faults::FaultPlan::none()
        };
        match sim.try_execute(&plan, 0.1, 1, &abort_all) {
            Err(crate::faults::ExecError::Aborted { progress }) => {
                assert!((0.0..=1.0).contains(&progress));
            }
            other => panic!("expected abort, got {other:?}"),
        }

        let straggle_all = crate::faults::FaultPlan {
            straggler_prob: 1.0,
            straggler_factor: 8.0,
            ..crate::faults::FaultPlan::none()
        };
        let clean = sim.execute(&plan, 0.1, 1);
        let slow = sim
            .try_execute(&plan, 0.1, 1, &straggle_all)
            .expect("stragglers still complete");
        assert!((slow.total_secs - clean.total_secs * 8.0).abs() < 1e-9);

        let tight_budget = crate::faults::FaultPlan {
            timeout_secs: clean.total_secs * 0.5,
            ..crate::faults::FaultPlan::none()
        };
        assert!(matches!(
            sim.try_execute(&plan, 0.1, 1, &tight_budget),
            Err(crate::faults::ExecError::Timeout { .. })
        ));
    }

    #[test]
    fn t1_is_cpu_bound_under_numeric_load() {
        // With numeric ops zeroed, template 1 should get much faster —
        // the aggregate arithmetic dominates, not the scan I/O.
        let catalog = Catalog::new(1.0, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(1);
        let spec = templates::instantiate(1, 1.0, &mut rng);
        let plan = planner.plan(&spec);
        let normal = Simulator::new().execute(&plan, 1.0, 1).total_secs;
        let cfg = SimConfig {
            numeric_op_secs: 0.0,
            agg_transition_secs: 0.0,
            ..SimConfig::default()
        };
        let no_numeric = Simulator::with_config(cfg).execute(&plan, 1.0, 1).total_secs;
        assert!(
            normal > no_numeric * 1.5,
            "normal {normal}, no_numeric {no_numeric}"
        );
    }
}
