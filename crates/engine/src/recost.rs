//! Re-costing a plan with *actual* cardinalities.
//!
//! Section 5.3.3 of the paper trains and tests models on all four
//! combinations of actual/estimated feature values. Actual-valued cost
//! features are the optimizer's own cost formulas evaluated over the true
//! row counts — this module computes them post-hoc for a planned tree.

use crate::cost::{self, Cost};
use crate::plan::{OpDetail, OpType, PlanNode};

/// A (startup, total) cost pair per node computed from truth cardinalities,
/// in pre-order (aligned with [`PlanNode::preorder`]).
#[derive(Debug, Clone)]
pub struct TruthCosts {
    /// Pre-order (startup, total) pairs.
    pub costs: Vec<(f64, f64)>,
}

/// Computes the analytical cost of every node using the *true* rows/pages.
pub fn recost_truth(plan: &PlanNode, work_mem: f64) -> TruthCosts {
    let mut costs = Vec::with_capacity(plan.node_count());
    walk(plan, work_mem, &mut costs);
    TruthCosts { costs }
}

fn walk(node: &PlanNode, work_mem: f64, out: &mut Vec<(f64, f64)>) -> Cost {
    let idx = out.len();
    out.push((0.0, 0.0));
    let child_costs: Vec<Cost> = {
        // Children are walked in order so `out` stays pre-order.
        let mut v = Vec::with_capacity(node.children.len());
        for c in &node.children {
            v.push(walk(c, work_mem, out));
        }
        v
    };
    let rows = node.truth.rows;
    let pages = node.truth.pages;
    let width = node.est.width;
    let c0 = child_costs.first().copied().unwrap_or(Cost::ZERO);
    let c1 = child_costs.get(1).copied().unwrap_or(Cost::ZERO);
    let child_rows =
        |i: usize| -> f64 { node.children.get(i).map(|c| c.truth.rows).unwrap_or(0.0) };

    let cost = match node.op {
        OpType::SeqScan => {
            let n_preds = match &node.detail {
                OpDetail::Scan { filters, .. } => filters.len(),
                _ => 0,
            };
            let base_rows = pages * 8192.0 * 0.9 / width.max(1.0);
            cost::seq_scan(pages, base_rows, n_preds)
        }
        OpType::IndexScan => {
            let n_preds = match &node.detail {
                OpDetail::Scan { filters, .. } => filters.len(),
                _ => 0,
            };
            cost::index_scan(pages.max(rows), rows, n_preds)
        }
        OpType::Sort => cost::sort(c0, rows, width, work_mem),
        OpType::Hash => cost::hash_build(c0, rows),
        OpType::HashJoin => cost::hash_join(c0, c1, child_rows(0), rows),
        OpType::MergeJoin => cost::merge_join(c0, c1, child_rows(0), child_rows(1), rows),
        OpType::NestedLoop => cost::nested_loop(
            c0,
            c1,
            cost::materialize_rescan(child_rows(1)),
            child_rows(0),
            rows,
        ),
        OpType::Materialize => cost::materialize(c0, rows),
        OpType::HashAggregate => {
            let n_aggs = agg_count(node);
            cost::hash_aggregate(c0, child_rows(0), n_aggs, rows)
        }
        OpType::GroupAggregate | OpType::Aggregate => {
            let n_aggs = agg_count(node);
            cost::group_aggregate(c0, child_rows(0), n_aggs, rows)
        }
        OpType::Limit => cost::limit(c0, child_rows(0), rows),
        OpType::SubqueryScan => {
            let execs = match &node.detail {
                OpDetail::Subquery { executions, .. } => *executions,
                _ => 1.0,
            };
            cost::subquery(c0, c1, execs, child_rows(0))
        }
    };
    out[idx] = (cost.startup, cost.total);
    cost
}

fn agg_count(node: &PlanNode) -> f64 {
    match &node.detail {
        OpDetail::Agg { n_aggs, .. } => *n_aggs as f64,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::planner::Planner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn truth_costs_align_with_plan_and_reflect_cardinality_gaps() {
        let catalog = Catalog::new(1.0, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(2);
        let spec = tpch::instantiate(18, 1.0, &mut rng);
        let plan = planner.plan(&spec);
        let tc = recost_truth(&plan, 8.0 * 1024.0 * 1024.0);
        assert_eq!(tc.costs.len(), plan.node_count());
        for (s, t) in &tc.costs {
            assert!(s.is_finite() && t.is_finite());
            assert!(*t >= *s);
        }
        // Template 18's estimated semi-join output is wildly high, so the
        // truth-valued cost above it must be far below the estimated cost
        // somewhere in the tree.
        let nodes = plan.preorder();
        let any_gap = nodes
            .iter()
            .zip(&tc.costs)
            .any(|(n, (_, t))| n.est.total_cost > t * 1.05 && n.est.rows > n.truth.rows * 10.0);
        assert!(any_gap, "expected a truth-vs-estimate cost gap");
    }

    #[test]
    fn accurate_estimates_give_similar_costs() {
        // Template 1 (single scan + aggregate) has accurate estimates;
        // truth costs should be close to estimated costs.
        let catalog = Catalog::new(1.0, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(2);
        let spec = tpch::instantiate(1, 1.0, &mut rng);
        let plan = planner.plan(&spec);
        let tc = recost_truth(&plan, 8.0 * 1024.0 * 1024.0);
        let root_truth = tc.costs[0].1;
        let root_est = plan.est.total_cost;
        let ratio = root_truth / root_est;
        assert!((0.5..2.0).contains(&ratio), "ratio = {ratio}");
    }
}
