//! The ground-truth cardinality model.
//!
//! Computes *actual* selectivities and cardinalities from the generative
//! distributions (including the correlation overrides templates supply).
//! The simulator consumes these; the estimator never sees them.

use crate::estimator::cardenas;
use tpch::distributions::{self, COMMIT_LAG, SHIP_LAG_MAX};
use tpch::schema::ColRef;
use tpch::spec::Predicate;
use tpch::types::CmpOp;

/// True selectivity of one predicate at scale factor `sf`.
///
/// # Panics
/// Panics on a `ColCmp` pair the generative model has no closed form for
/// (templates only use the date-lag comparisons below).
pub fn predicate(p: &Predicate, sf: f64) -> f64 {
    match p {
        Predicate::Cmp { col, op, value } => {
            distributions::selectivity(*col, *op, value.as_f64(), sf)
        }
        Predicate::Between { col, lo, hi } => {
            distributions::between_selectivity(*col, lo.as_f64(), hi.as_f64(), sf)
        }
        Predicate::InSet { col, values } => values
            .iter()
            .map(|v| distributions::selectivity(*col, CmpOp::Eq, v.as_f64(), sf))
            .sum::<f64>()
            .min(1.0),
        Predicate::ColCmp { left, op, right } => col_cmp_truth(*left, *op, *right),
        Predicate::NameLike { color, .. } => distributions::p_name_contains_color(*color),
        Predicate::TextNotLike { truth, .. } => *truth,
    }
}

/// True selectivity of a conjunction of predicates on one table; uses the
/// override when the template computed a joint probability.
pub fn conjunction(preds: &[Predicate], override_sel: Option<f64>, sf: f64) -> f64 {
    if let Some(s) = override_sel {
        return s;
    }
    preds.iter().map(|p| predicate(p, sf)).product()
}

/// Closed-form truths for the column comparisons the templates use.
fn col_cmp_truth(left: ColRef, op: CmpOp, right: ColRef) -> f64 {
    match (left.column, op, right.column) {
        ("l_commitdate", CmpOp::Lt, "l_receiptdate") => distributions::p_commit_before_receipt(),
        ("l_receiptdate", CmpOp::Gt, "l_commitdate") => distributions::p_commit_before_receipt(),
        ("l_shipdate", CmpOp::Lt, "l_commitdate") => p_ship_before_commit(),
        _ => panic!(
            "no closed-form truth for {} {:?} {}",
            left, op, right
        ),
    }
}

/// P(ship lag < commit lag): ship U[1,121] vs commit U[30,90].
fn p_ship_before_commit() -> f64 {
    let mut total = 0.0;
    let ps = 1.0 / SHIP_LAG_MAX as f64;
    let pc = 1.0 / (COMMIT_LAG.1 - COMMIT_LAG.0 + 1) as f64;
    for s in 1..=SHIP_LAG_MAX {
        for c in COMMIT_LAG.0..=COMMIT_LAG.1 {
            if s < c {
                total += ps * pc;
            }
        }
    }
    total
}

/// True inner-join output cardinality: `|L||R| / max(true ndv)` times the
/// template's correlation correction.
pub fn join_rows(
    l_rows: f64,
    r_rows: f64,
    on: (ColRef, ColRef),
    correction: f64,
    sf: f64,
) -> f64 {
    let ndv = distributions::ndistinct(on.0, sf)
        .max(distributions::ndistinct(on.1, sf))
        .max(1.0);
    (l_rows * r_rows / ndv * correction).max(0.0)
}

/// True group count for grouping `input_rows` rows by a column with true
/// distinct count `ndv` (Cardenas).
pub fn group_count(ndv: f64, input_rows: f64) -> f64 {
    cardenas(ndv, input_rows).max(if input_rows >= 1.0 { 1.0 } else { 0.0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpch::schema::{col, TableId};
    use tpch::types::Scalar;

    #[test]
    fn simple_predicates_match_distributions() {
        let p = Predicate::Cmp {
            col: col(TableId::Lineitem, "l_quantity"),
            op: CmpOp::Lt,
            value: Scalar::Int(25),
        };
        assert!((predicate(&p, 1.0) - 24.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn conjunction_override_takes_precedence() {
        let p = Predicate::Cmp {
            col: col(TableId::Lineitem, "l_quantity"),
            op: CmpOp::Lt,
            value: Scalar::Int(25),
        };
        assert_eq!(conjunction(std::slice::from_ref(&p), Some(0.123), 1.0), 0.123);
        assert!((conjunction(&[p], None, 1.0) - 0.48).abs() < 0.01);
    }

    #[test]
    fn ship_before_commit_probability() {
        let p = p_ship_before_commit();
        // Ship lag mean 61, commit lag mean 60, but ship has wider spread;
        // roughly half of lines ship before their commit date.
        assert!(p > 0.35 && p < 0.65, "p = {p}");
    }

    #[test]
    fn fk_join_truth_is_fact_side() {
        let rows = join_rows(
            6_001_215.0,
            1_500_000.0,
            (
                col(TableId::Lineitem, "l_orderkey"),
                col(TableId::Orders, "o_orderkey"),
            ),
            1.0,
            1.0,
        );
        assert!((rows - 6_001_215.0).abs() < 1.0);
        // Correction scales the output.
        let halved = join_rows(
            6_001_215.0,
            1_500_000.0,
            (
                col(TableId::Lineitem, "l_orderkey"),
                col(TableId::Orders, "o_orderkey"),
            ),
            0.5,
            1.0,
        );
        assert!((halved - rows / 2.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "no closed-form truth")]
    fn unknown_col_cmp_panics() {
        let p = Predicate::ColCmp {
            left: col(TableId::Lineitem, "l_quantity"),
            op: CmpOp::Lt,
            right: col(TableId::Lineitem, "l_discount"),
        };
        predicate(&p, 1.0);
    }

    #[test]
    fn group_count_saturates() {
        assert!((group_count(6.0, 1e9) - 6.0).abs() < 1e-6);
        assert!(group_count(1e6, 100.0) <= 100.0);
    }
}
