//! The cost-based physical planner.
//!
//! Lowers a template's logical [`RelExpr`] to a PostgreSQL-shaped physical
//! [`PlanNode`] tree. Join *order* is part of the template definition (as
//! the paper's plans come from PostgreSQL, whose orders are stable for
//! TPC-H); this planner makes the *physical* choices — scan methods, join
//! algorithms, aggregation strategies, sort/materialize placement — by
//! comparing analytical cost estimates, exactly the way an optimizer does.
//! Every node carries both the estimate-side annotations (what models can
//! see) and the truth-side annotations (what the simulator executes).

use crate::catalog::{has_index, Catalog};
use crate::cost::{self, Cost};
use crate::estimator::Estimator;
use crate::plan::{NodeEst, NodeTruth, OpDetail, OpType, PlanNode};
use crate::truth;
use tpch::schema::ColRef;
use tpch::spec::{GroupCount, JoinKind, Predicate, QuerySpec, RelExpr};
use tpch::types::CmpOp;

/// Planner configuration (PostgreSQL-style resource GUCs).
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Memory budget per sort/hash operation, in bytes.
    pub work_mem: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            work_mem: 8.0 * 1024.0 * 1024.0,
        }
    }
}

/// The physical planner.
#[derive(Debug)]
pub struct Planner<'a> {
    catalog: &'a Catalog,
    config: PlannerConfig,
}

impl<'a> Planner<'a> {
    /// Creates a planner over `catalog` with default configuration.
    pub fn new(catalog: &'a Catalog) -> Self {
        Planner {
            catalog,
            config: PlannerConfig::default(),
        }
    }

    /// Creates a planner with an explicit configuration.
    pub fn with_config(catalog: &'a Catalog, config: PlannerConfig) -> Self {
        Planner { catalog, config }
    }

    /// Plans a query.
    pub fn plan(&self, spec: &QuerySpec) -> PlanNode {
        self.build(&spec.root)
    }

    fn estimator(&self) -> Estimator<'_> {
        Estimator::new(self.catalog)
    }

    fn sf(&self) -> f64 {
        self.catalog.sf
    }

    fn build(&self, expr: &RelExpr) -> PlanNode {
        match expr {
            RelExpr::Scan {
                table,
                filters,
                truth_sel_override,
            } => self.build_scan(*table, filters, *truth_sel_override),
            RelExpr::Join {
                kind,
                on,
                left,
                right,
                truth_correction,
                extra_filter_sel,
            } => self.build_join(*kind, *on, left, right, *truth_correction, *extra_filter_sel),
            RelExpr::Aggregate { input, spec } => self.build_aggregate(input, spec),
            RelExpr::Sort { input, keys } => {
                let child = self.build(input);
                self.sort_node(child, *keys)
            }
            RelExpr::Limit { input, count } => {
                let child = self.build(input);
                let est_rows = (*count as f64).min(child.est.rows);
                let truth_rows = (*count as f64).min(child.truth.rows);
                let c = cost::limit(node_cost(&child), child.est.rows, *count as f64);
                let width = child.est.width;
                PlanNode {
                    op: OpType::Limit,
                    est: NodeEst {
                        startup_cost: c.startup,
                        total_cost: c.total,
                        rows: est_rows,
                        width,
                        pages: 0.0,
                        selectivity: 1.0,
                    },
                    truth: NodeTruth {
                        rows: truth_rows,
                        pages: 0.0,
                        selectivity: 1.0,
                    },
                    detail: OpDetail::Limit { count: *count },
                    children: vec![child],
                }
            }
            RelExpr::ScalarSubqueryFilter {
                input,
                subquery,
                truth_sel,
                correlated,
            } => {
                let child = self.build(input);
                let sub = self.build(subquery);
                let est_execs = if *correlated { child.est.rows } else { 1.0 };
                let truth_execs = if *correlated { child.truth.rows } else { 1.0 };
                let c = cost::subquery(node_cost(&child), node_cost(&sub), est_execs, child.est.rows);
                // Optimizers default scalar-comparison selectivity to 1/3.
                let est_rows = (child.est.rows / 3.0).max(1.0);
                let truth_rows = child.truth.rows * truth_sel;
                let width = child.est.width;
                PlanNode {
                    op: OpType::SubqueryScan,
                    est: NodeEst {
                        startup_cost: c.startup,
                        total_cost: c.total,
                        rows: est_rows,
                        width,
                        pages: 0.0,
                        selectivity: 1.0 / 3.0,
                    },
                    truth: NodeTruth {
                        rows: truth_rows,
                        pages: 0.0,
                        selectivity: *truth_sel,
                    },
                    detail: OpDetail::Subquery {
                        correlated: *correlated,
                        executions: truth_execs,
                    },
                    children: vec![child, sub],
                }
            }
        }
    }

    fn build_scan(
        &self,
        table: tpch::schema::TableId,
        filters: &[Predicate],
        truth_override: Option<f64>,
    ) -> PlanNode {
        let est = self.estimator();
        let base_rows = self.catalog.rows(table);
        let pages = self.catalog.pages(table);
        let width = self.catalog.width(table);
        let est_sel = est.conjunction(filters);
        let truth_sel = truth::conjunction(filters, truth_override, self.sf());
        let est_rows = (base_rows * est_sel).max(1.0);
        let truth_rows = base_rows * truth_sel;

        // Index scan when a filter probes an indexed column selectively.
        let indexed = filters.iter().any(|f| {
            let c = f.column();
            has_index(c)
                && matches!(
                    f,
                    Predicate::Cmp { op: CmpOp::Eq, .. }
                        | Predicate::InSet { .. }
                        | Predicate::Between { .. }
                )
                && est.predicate(f) < 0.02
        });
        if indexed {
            let est_pages = (est_rows * 1.05 + 2.0).min(pages);
            let truth_pages = (truth_rows * 1.05 + 2.0).min(pages);
            let c = cost::index_scan(pages, est_rows, filters.len());
            return PlanNode {
                op: OpType::IndexScan,
                est: NodeEst {
                    startup_cost: c.startup,
                    total_cost: c.total,
                    rows: est_rows,
                    width,
                    pages: est_pages,
                    selectivity: est_sel,
                },
                truth: NodeTruth {
                    rows: truth_rows,
                    pages: truth_pages,
                    selectivity: truth_sel,
                },
                detail: OpDetail::Scan {
                    table,
                    filters: filters.to_vec(),
                },
                children: vec![],
            };
        }

        let c = cost::seq_scan(pages, base_rows, filters.len());
        PlanNode {
            op: OpType::SeqScan,
            est: NodeEst {
                startup_cost: c.startup,
                total_cost: c.total,
                rows: est_rows,
                width,
                pages,
                selectivity: est_sel,
            },
            truth: NodeTruth {
                rows: truth_rows,
                pages,
                selectivity: truth_sel,
            },
            detail: OpDetail::Scan {
                table,
                filters: filters.to_vec(),
            },
            children: vec![],
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn build_join(
        &self,
        kind: JoinKind,
        on: (ColRef, ColRef),
        left_expr: &RelExpr,
        right_expr: &RelExpr,
        truth_correction: f64,
        extra_filter_sel: f64,
    ) -> PlanNode {
        let est = self.estimator();
        let left = self.build(left_expr);
        let right = self.build(right_expr);

        // Logical output cardinalities (physical-choice independent).
        let (est_rows, truth_rows) = match kind {
            JoinKind::Inner | JoinKind::LeftOuter => {
                let e = est.join_rows(left.est.rows, right.est.rows, on) * extra_filter_sel;
                let t = truth::join_rows(
                    left.truth.rows,
                    right.truth.rows,
                    on,
                    truth_correction,
                    self.sf(),
                ) * extra_filter_sel;
                if kind == JoinKind::LeftOuter {
                    (e.max(left.est.rows), t.max(left.truth.rows))
                } else {
                    (e, t)
                }
            }
            JoinKind::Semi => {
                let sel = est.semi_selectivity(right.est.rows, on.1) * extra_filter_sel;
                (
                    (left.est.rows * sel).max(1.0),
                    left.truth.rows * truth_correction * extra_filter_sel,
                )
            }
            JoinKind::Anti => {
                let sel = est.semi_selectivity(right.est.rows, on.1);
                (
                    (left.est.rows * (1.0 - sel).max(1e-6) * extra_filter_sel).max(1.0),
                    left.truth.rows * truth_correction * extra_filter_sel,
                )
            }
        };
        let width = match kind {
            JoinKind::Inner | JoinKind::LeftOuter => (left.est.width + right.est.width).min(512.0),
            JoinKind::Semi | JoinKind::Anti => left.est.width,
        };

        // Candidate physical methods, scored by estimated cost.
        let hash_cost = {
            let h = cost::hash_build(node_cost(&right), right.est.rows);
            cost::hash_join(node_cost(&left), h, left.est.rows, est_rows)
        };
        // Inner hash joins may build on either side; the optimizer hashes
        // whichever input it *estimates* to be smaller.
        let hash_swapped_cost = if kind == JoinKind::Inner {
            let h = cost::hash_build(node_cost(&left), left.est.rows);
            Some(cost::hash_join(node_cost(&right), h, right.est.rows, est_rows))
        } else {
            None
        };
        let merge_cost = {
            let ls = cost::sort(node_cost(&left), left.est.rows, left.est.width, self.config.work_mem);
            let rs = cost::sort(
                node_cost(&right),
                right.est.rows,
                right.est.width,
                self.config.work_mem,
            );
            cost::merge_join(ls, rs, left.est.rows, right.est.rows, est_rows)
        };
        // Nested loop with an index probe of the inner base table, when the
        // inner is a plain scan of an indexed join column.
        let nl_index = match right_expr {
            RelExpr::Scan { table, filters, .. }
                if has_index(on.1) && matches!(kind, JoinKind::Inner | JoinKind::Semi) =>
            {
                let matched_per_probe =
                    (right.est.rows / est.catalog().ndistinct_est(on.1).max(1.0)).max(1.0);
                let probe = cost::index_scan(self.catalog.pages(*table), matched_per_probe, filters.len() + 1);
                // Repeated probes are assumed largely cached
                // (effective_cache_size): the optimizer discounts them —
                // one of the ways a cardinality underestimate snowballs
                // into a catastrophically slow nested-loop plan.
                let total = node_cost(&left).total
                    + left.est.rows * probe.total * 0.4
                    + est_rows * cost::CPU_TUPLE_COST;
                Some((
                    Cost {
                        startup: node_cost(&left).startup,
                        total,
                    },
                    matched_per_probe,
                ))
            }
            _ => None,
        };
        // Nested loop over a materialized inner (viable for tiny inners).
        let nl_mat = {
            let m = cost::materialize(node_cost(&right), right.est.rows);
            let rescan = cost::materialize_rescan(right.est.rows);
            cost::nested_loop(node_cost(&left), m, rescan, left.est.rows, est_rows)
        };

        let mut best = ("hash", hash_cost.total);
        if let Some(c) = hash_swapped_cost {
            if c.total < best.1 {
                best = ("hash_swapped", c.total);
            }
        }
        if merge_cost.total < best.1 {
            best = ("merge", merge_cost.total);
        }
        if let Some((c, _)) = &nl_index {
            if c.total < best.1 {
                best = ("nl_index", c.total);
            }
        }
        if nl_mat.total < best.1 && right.est.rows < 100_000.0 {
            best = ("nl_mat", nl_mat.total);
        }

        let mk_est = |c: Cost, sel: f64| NodeEst {
            startup_cost: c.startup,
            total_cost: c.total,
            rows: est_rows,
            width,
            pages: 0.0,
            selectivity: sel,
        };
        let truth_ann = NodeTruth {
            rows: truth_rows,
            pages: 0.0,
            selectivity: extra_filter_sel,
        };
        let detail = OpDetail::Join { kind, on };

        match best.0 {
            "hash" => {
                let hash_node = self.hash_node(right);
                PlanNode {
                    op: OpType::HashJoin,
                    est: mk_est(hash_cost, extra_filter_sel),
                    truth: truth_ann,
                    detail,
                    children: vec![left, hash_node],
                }
            }
            "hash_swapped" => {
                let hash_node = self.hash_node(left);
                PlanNode {
                    op: OpType::HashJoin,
                    est: mk_est(hash_swapped_cost.expect("candidate exists"), extra_filter_sel),
                    truth: truth_ann,
                    detail,
                    children: vec![right, hash_node],
                }
            }
            "merge" => {
                let ls = self.sort_node(left, 1);
                let rs = self.sort_node(right, 1);
                let rm = self.materialize_node(rs, truth_rows.max(1.0));
                PlanNode {
                    op: OpType::MergeJoin,
                    est: mk_est(merge_cost, extra_filter_sel),
                    truth: truth_ann,
                    detail,
                    children: vec![ls, rm],
                }
            }
            "nl_index" => {
                let (c, matched_per_probe) = nl_index.expect("candidate exists");
                // Inner becomes an index scan parameterized by the outer key.
                let mut inner = right;
                inner.op = OpType::IndexScan;
                let probe_truth =
                    (truth_rows / left.truth.rows.max(1.0)).max(0.0);
                inner.est.rows = matched_per_probe;
                inner.est.pages = (matched_per_probe * 1.05 + 2.0).min(inner.est.pages.max(2.0));
                inner.truth.rows = probe_truth;
                inner.truth.pages = (probe_truth * 1.05 + 2.0).min(inner.truth.pages.max(2.0));
                let probe_cost =
                    cost::index_scan(self.catalog.pages(inner.scan_table().expect("scan")), matched_per_probe, 1);
                inner.est.startup_cost = probe_cost.startup;
                inner.est.total_cost = probe_cost.total;
                PlanNode {
                    op: OpType::NestedLoop,
                    est: mk_est(c, extra_filter_sel),
                    truth: truth_ann,
                    detail,
                    children: vec![left, inner],
                }
            }
            _ => {
                let m = self.materialize_node(right, left.truth.rows.max(1.0));
                PlanNode {
                    op: OpType::NestedLoop,
                    est: mk_est(nl_mat, extra_filter_sel),
                    truth: truth_ann,
                    detail,
                    children: vec![left, m],
                }
            }
        }
    }

    fn build_aggregate(&self, input: &RelExpr, spec: &tpch::spec::AggregateSpec) -> PlanNode {
        let est = self.estimator();
        let child = self.build(input);
        let in_est = child.est.rows;
        let in_truth = child.truth.rows;
        let n_aggs = spec.aggs.len() as f64;
        let out_width = 8.0 * (spec.group_by.len() as f64 + n_aggs) + 8.0;

        let est_groups = est.group_count(&spec.group_by, in_est);
        let truth_groups = match spec.groups {
            GroupCount::One => 1.0,
            GroupCount::Fixed(f) => f.min(in_truth.max(1.0)),
            GroupCount::DistinctOf(c) => {
                truth::group_count(tpch::distributions::ndistinct(c, self.sf()), in_truth)
            }
        };
        let (est_rows, truth_rows, est_hsel, truth_hsel) = match &spec.having {
            Some(h) => (
                (est_groups * est.having_selectivity(h.op)).max(1.0),
                truth_groups * h.truth_fraction,
                est.having_selectivity(h.op),
                h.truth_fraction,
            ),
            None => (est_groups, truth_groups, 1.0, 1.0),
        };

        let detail = OpDetail::Agg {
            n_aggs: spec.aggs.len() as u32,
            numeric_ops: spec.numeric_ops,
            n_group_cols: spec.group_by.len() as u32,
        };

        if spec.group_by.is_empty() {
            let c = cost::group_aggregate(node_cost(&child), in_est, n_aggs, 1.0);
            return PlanNode {
                op: OpType::Aggregate,
                est: NodeEst {
                    startup_cost: c.total - cost::CPU_TUPLE_COST,
                    total_cost: c.total,
                    rows: 1.0,
                    width: out_width,
                    pages: 0.0,
                    selectivity: 1.0,
                },
                truth: NodeTruth {
                    rows: 1.0,
                    pages: 0.0,
                    selectivity: 1.0,
                },
                detail,
                children: vec![child],
            };
        }

        let hash_bytes = est_groups * (out_width + 64.0);
        if hash_bytes < self.config.work_mem {
            let c = cost::hash_aggregate(node_cost(&child), in_est, n_aggs, est_groups);
            PlanNode {
                op: OpType::HashAggregate,
                est: NodeEst {
                    startup_cost: c.startup,
                    total_cost: c.total,
                    rows: est_rows,
                    width: out_width,
                    pages: 0.0,
                    selectivity: est_hsel,
                },
                truth: NodeTruth {
                    rows: truth_rows,
                    pages: 0.0,
                    selectivity: truth_hsel,
                },
                detail,
                children: vec![child],
            }
        } else {
            let sorted = self.sort_node(child, spec.group_by.len() as u32);
            let c = cost::group_aggregate(node_cost(&sorted), in_est, n_aggs, est_groups);
            PlanNode {
                op: OpType::GroupAggregate,
                est: NodeEst {
                    startup_cost: c.startup,
                    total_cost: c.total,
                    rows: est_rows,
                    width: out_width,
                    pages: 0.0,
                    selectivity: est_hsel,
                },
                truth: NodeTruth {
                    rows: truth_rows,
                    pages: 0.0,
                    selectivity: truth_hsel,
                },
                detail,
                children: vec![sorted],
            }
        }
    }

    fn sort_node(&self, child: PlanNode, keys: u32) -> PlanNode {
        let c = cost::sort(
            node_cost(&child),
            child.est.rows,
            child.est.width,
            self.config.work_mem,
        );
        let est_bytes = child.est.rows * child.est.width;
        let truth_bytes = child.truth.rows * child.est.width;
        let est_pages = if est_bytes > self.config.work_mem {
            est_bytes / 8192.0
        } else {
            0.0
        };
        let truth_pages = if truth_bytes > self.config.work_mem {
            truth_bytes / 8192.0
        } else {
            0.0
        };
        PlanNode {
            op: OpType::Sort,
            est: NodeEst {
                startup_cost: c.startup,
                total_cost: c.total,
                rows: child.est.rows,
                width: child.est.width,
                pages: est_pages,
                selectivity: 1.0,
            },
            truth: NodeTruth {
                rows: child.truth.rows,
                pages: truth_pages,
                selectivity: 1.0,
            },
            detail: OpDetail::Sort { keys },
            children: vec![child],
        }
    }

    fn hash_node(&self, child: PlanNode) -> PlanNode {
        let c = cost::hash_build(node_cost(&child), child.est.rows);
        PlanNode {
            op: OpType::Hash,
            est: NodeEst {
                startup_cost: c.startup,
                total_cost: c.total,
                rows: child.est.rows,
                width: child.est.width,
                pages: 0.0,
                selectivity: 1.0,
            },
            truth: NodeTruth {
                rows: child.truth.rows,
                pages: 0.0,
                selectivity: 1.0,
            },
            detail: OpDetail::None,
            children: vec![child],
        }
    }

    fn materialize_node(&self, child: PlanNode, rescans: f64) -> PlanNode {
        let c = cost::materialize(node_cost(&child), child.est.rows);
        PlanNode {
            op: OpType::Materialize,
            est: NodeEst {
                startup_cost: c.startup,
                total_cost: c.total,
                rows: child.est.rows,
                width: child.est.width,
                pages: 0.0,
                selectivity: 1.0,
            },
            truth: NodeTruth {
                rows: child.truth.rows,
                pages: 0.0,
                selectivity: 1.0,
            },
            detail: OpDetail::Materialize {
                rescans: (rescans - 1.0).max(0.0),
            },
            children: vec![child],
        }
    }
}

fn node_cost(n: &PlanNode) -> Cost {
    Cost {
        startup: n.est.startup_cost,
        total: n.est.total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tpch::templates;

    fn plan_template(t: u8, sf: f64, seed: u64) -> PlanNode {
        let catalog = Catalog::new(sf, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = templates::instantiate(t, sf, &mut rng);
        planner.plan(&spec)
    }

    #[test]
    fn all_templates_plan_without_panic() {
        for t in templates::ALL_TEMPLATES {
            let p = plan_template(t, 1.0, 3);
            assert!(p.node_count() >= 2, "template {t}");
            for n in p.preorder() {
                assert!(n.est.rows >= 0.0 && n.est.rows.is_finite(), "template {t}");
                assert!(n.truth.rows >= 0.0 && n.truth.rows.is_finite(), "template {t}");
                assert!(n.est.total_cost >= n.est.startup_cost, "template {t}");
            }
        }
    }

    #[test]
    fn t1_is_scan_plus_aggregate() {
        let p = plan_template(1, 1.0, 1);
        let ops: Vec<OpType> = p.preorder().iter().map(|n| n.op).collect();
        assert!(ops.contains(&OpType::SeqScan));
        assert!(ops.contains(&OpType::HashAggregate) || ops.contains(&OpType::GroupAggregate));
        assert_eq!(ops[0], OpType::Sort);
        // Truth: ~6M lineitem rows scanned, 6 groups out.
        let scan = p.preorder().into_iter().find(|n| n.op == OpType::SeqScan).unwrap();
        assert!(scan.truth.rows > 5_000_000.0);
    }

    #[test]
    fn t3_join_correction_shrinks_truth_vs_estimate() {
        let p = plan_template(3, 1.0, 1);
        // Find the top join: truth rows should be far below the estimate.
        let join = p
            .preorder()
            .into_iter()
            .find(|n| matches!(n.op, OpType::HashJoin | OpType::MergeJoin | OpType::NestedLoop))
            .expect("has a join");
        assert!(
            join.truth.rows < join.est.rows,
            "truth {} est {}",
            join.truth.rows,
            join.est.rows
        );
    }

    #[test]
    fn t6_has_no_joins() {
        let p = plan_template(6, 1.0, 1);
        for n in p.preorder() {
            assert!(
                !matches!(n.op, OpType::HashJoin | OpType::MergeJoin | OpType::NestedLoop),
                "t6 must be join-free"
            );
        }
        assert_eq!(p.op, OpType::Aggregate);
    }

    #[test]
    fn t18_semi_join_estimate_blows_up() {
        let p = plan_template(18, 10.0, 1);
        // The semi join of orders against the HAVING aggregate: estimated
        // rows vastly exceed the truth.
        let semi = p
            .preorder()
            .into_iter()
            .find(|n| {
                matches!(
                    n.detail,
                    OpDetail::Join {
                        kind: JoinKind::Semi,
                        ..
                    }
                )
            })
            .expect("semi join");
        assert!(
            semi.est.rows > semi.truth.rows * 100.0,
            "est {} truth {}",
            semi.est.rows,
            semi.truth.rows
        );
    }

    #[test]
    fn t13_contains_materialize_or_hash() {
        let p = plan_template(13, 10.0, 1);
        let ops: Vec<OpType> = p.preorder().iter().map(|n| n.op).collect();
        assert!(
            ops.contains(&OpType::Materialize) || ops.contains(&OpType::Hash),
            "ops = {ops:?}"
        );
    }

    #[test]
    fn correlated_subquery_templates_have_subquery_scans() {
        for t in [2u8, 17, 20] {
            let p = plan_template(t, 1.0, 1);
            let has = p.preorder().iter().any(|n| n.op == OpType::SubqueryScan);
            assert!(has, "template {t} should have SubqueryScan");
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let a = plan_template(5, 1.0, 9);
        let b = plan_template(5, 1.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn index_scan_appears_for_selective_probes() {
        // T17's correlated subquery probes lineitem by l_partkey.
        let p = plan_template(17, 1.0, 1);
        let has_index_scan = p.preorder().iter().any(|n| n.op == OpType::IndexScan);
        assert!(has_index_scan);
    }
}
