//! EXPLAIN-style plan rendering.
//!
//! Mirrors PostgreSQL's `EXPLAIN` output format: one line per node with
//! `(cost=startup..total rows=N width=W)`, indented children, and — in
//! `explain_analyze` mode — the observed start/run times next to the
//! estimates, which is exactly the information the paper's instrumentation
//! logged for model training.

use crate::plan::{OpDetail, PlanNode};
use crate::sim::Trace;

/// Renders a plan like `EXPLAIN`.
pub fn explain(plan: &PlanNode) -> String {
    let mut out = String::new();
    render(plan, 0, None, &mut None, &mut out);
    out
}

/// Renders a plan with observed timings like `EXPLAIN ANALYZE`.
///
/// # Panics
/// Panics if the trace does not align with the plan.
pub fn explain_analyze(plan: &PlanNode, trace: &Trace) -> String {
    assert_eq!(
        trace.timings.len(),
        plan.node_count(),
        "trace does not match plan"
    );
    let mut out = String::new();
    let mut cursor = Some(0usize);
    render(plan, 0, Some(trace), &mut cursor, &mut out);
    out
}

fn render(
    node: &PlanNode,
    depth: usize,
    trace: Option<&Trace>,
    cursor: &mut Option<usize>,
    out: &mut String,
) {
    use std::fmt::Write;
    let indent = if depth == 0 {
        String::new()
    } else {
        format!("{}->  ", "  ".repeat(depth))
    };
    let mut line = format!(
        "{indent}{}  (cost={:.2}..{:.2} rows={:.0} width={:.0})",
        describe(node),
        node.est.startup_cost,
        node.est.total_cost,
        node.est.rows,
        node.est.width
    );
    if let (Some(t), Some(i)) = (trace, cursor.as_mut()) {
        let nt = t.timings[*i];
        let _ = write!(
            line,
            " (actual start={:.3}s run={:.3}s rows={:.0})",
            nt.start, nt.run, node.truth.rows
        );
        *i += 1;
    }
    out.push_str(&line);
    out.push('\n');
    for c in &node.children {
        render(c, depth + 1, trace, cursor, out);
    }
}

fn describe(node: &PlanNode) -> String {
    match &node.detail {
        OpDetail::Scan { table, filters } => {
            if filters.is_empty() {
                format!("{} on {}", node.op.name(), table.name())
            } else {
                format!(
                    "{} on {} ({} filter{})",
                    node.op.name(),
                    table.name(),
                    filters.len(),
                    if filters.len() == 1 { "" } else { "s" }
                )
            }
        }
        OpDetail::Join { kind, on } => {
            format!("{} [{kind:?}] ({} = {})", node.op.name(), on.0, on.1)
        }
        OpDetail::Agg {
            n_aggs,
            n_group_cols,
            ..
        } => format!(
            "{} ({} aggs, {} group cols)",
            node.op.name(),
            n_aggs,
            n_group_cols
        ),
        OpDetail::Sort { keys } => format!("{} ({} keys)", node.op.name(), keys),
        OpDetail::Materialize { rescans } => {
            format!("{} (~{:.0} rescans)", node.op.name(), rescans)
        }
        OpDetail::Limit { count } => format!("{} ({count})", node.op.name()),
        OpDetail::Subquery { correlated, .. } => format!(
            "{} ({})",
            node.op.name(),
            if *correlated { "SubPlan" } else { "InitPlan" }
        ),
        OpDetail::None => node.op.name().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::planner::Planner;
    use crate::sim::Simulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tpch::templates;

    #[test]
    fn explain_renders_every_node() {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(1);
        let spec = templates::instantiate(3, 0.1, &mut rng);
        let plan = planner.plan(&spec);
        let text = explain(&plan);
        assert_eq!(text.lines().count(), plan.node_count());
        assert!(text.contains("cost="));
        assert!(text.contains("customer"));
        assert!(text.contains("lineitem"));
    }

    #[test]
    fn explain_analyze_includes_actuals() {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(1);
        let spec = templates::instantiate(6, 0.1, &mut rng);
        let plan = planner.plan(&spec);
        let trace = Simulator::new().execute(&plan, 0.1, 1);
        let text = explain_analyze(&plan, &trace);
        assert!(text.contains("actual start="));
        assert_eq!(text.lines().count(), plan.node_count());
    }
}
