//! Property tests for the multi-tenant bulkhead front-end: the token
//! bucket polices rate deterministically, the weighted-fair queue serves
//! backlogged lanes proportionally to weight (no tenant starves, FIFO per
//! lane), tenant quotas are bulkheads (one lane filling never rejects
//! another), and the admission + quota pipeline reconciles *exactly* —
//! every submitted request is accounted shed or served, per tenant and
//! globally, over seeded tenant-skewed arrival streams.

// Offline builds may substitute an inert `proptest` whose macro bodies
// compile away, which strands these imports and helpers as "unused".
#![allow(dead_code, unused_imports)]

use engine::faults::TenantLoadPattern;
use proptest::prelude::*;
use serve::{
    AdmissionController, RateLimit, TenantPushError, TokenBucket, WeightedFairQueue,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bucket never admits more than `burst + rate * elapsed` requests
    /// over any prefix of a monotone arrival stream, and replaying the
    /// stream reproduces every decision bit-for-bit.
    #[test]
    fn token_bucket_caps_admissions_and_replays(
        rate in 0.5f64..200.0,
        burst in 1.0f64..32.0,
        gaps in proptest::collection::vec(0.0f64..0.5, 1..256),
    ) {
        let limit = RateLimit { rate, burst };
        let mut bucket = TokenBucket::new(limit);
        let mut now = 0.0;
        let mut accepted = 0u64;
        let mut decisions = Vec::with_capacity(gaps.len());
        for &g in &gaps {
            now += g;
            let ok = bucket.try_acquire(now);
            decisions.push(ok);
            if ok {
                accepted += 1;
                // The cap holds at every prefix, not just the end.
                prop_assert!(
                    accepted as f64 <= burst + rate * now + 1.0 + 1e-6,
                    "admitted {} by t={} with rate {} burst {}",
                    accepted, now, rate, burst
                );
            }
        }
        let mut replay = TokenBucket::new(limit);
        let mut now = 0.0;
        for (i, &g) in gaps.iter().enumerate() {
            now += g;
            prop_assert_eq!(replay.try_acquire(now), decisions[i]);
        }
    }

    /// With every lane continuously backlogged, normalized service
    /// `served[t] / weight[t]` stays within one batch-charge of every
    /// other lane's at all times — the virtual-time WFQ fairness bound.
    /// Implies no starvation: every lane is served within `tenants` pops.
    /// Per-lane FIFO order is checked along the way.
    #[test]
    fn wfq_service_tracks_weights_and_preserves_fifo(
        weights in proptest::collection::vec(0.25f64..8.0, 2..6),
        max_batch in 1usize..8,
        pops in 8usize..64,
    ) {
        let tenants = weights.len();
        let fill = pops * max_batch + 1; // no lane can drain below a full batch
        let q = WeightedFairQueue::new(fill * tenants);
        for &w in &weights {
            q.add_tenant(w, fill);
        }
        for t in 0..tenants {
            for seq in 0..fill {
                prop_assert!(q.try_push(t, seq as i64).is_ok());
            }
        }
        let min_w = weights.iter().cloned().fold(f64::INFINITY, f64::min);
        let bound = max_batch as f64 / min_w + 1e-9;
        let mut served = vec![0usize; tenants];
        let mut next_seq = vec![0i64; tenants];
        for _ in 0..pops {
            let (t, batch) = q.try_pop_batch(max_batch).expect("lanes are backlogged");
            prop_assert_eq!(batch.len(), max_batch);
            for &seq in &batch {
                prop_assert_eq!(seq, next_seq[t], "lane {} broke FIFO order", t);
                next_seq[t] += 1;
            }
            served[t] += batch.len();
            for i in 0..tenants {
                for j in 0..tenants {
                    prop_assert!(
                        served[i] as f64 / weights[i] - served[j] as f64 / weights[j] <= bound,
                        "normalized service diverged past one batch-charge: \
                         served {:?} weights {:?}",
                        served, weights
                    );
                }
            }
        }
        if pops >= tenants {
            for (t, &s) in served.iter().enumerate() {
                prop_assert!(s > 0, "lane {} starved across {} pops", t, pops);
            }
        }
    }

    /// Quotas are bulkheads: pushing one lane to (and past) its quota
    /// rejects only that lane with `TenantFull`, and never consumes
    /// another lane's quota.
    #[test]
    fn tenant_quota_never_bleeds_into_another_lane(
        quota_a in 1usize..8,
        extra in 1usize..16,
        quota_b in 1usize..8,
    ) {
        let q = WeightedFairQueue::new(1024);
        let a = q.add_tenant(1.0, quota_a);
        let b = q.add_tenant(1.0, quota_b);
        for i in 0..quota_a {
            prop_assert!(q.try_push(a, i).is_ok());
        }
        for i in 0..extra {
            match q.try_push(a, quota_a + i) {
                Err(TenantPushError::TenantFull(_, depth)) => prop_assert_eq!(depth, quota_a),
                other => prop_assert!(false, "expected TenantFull, got {:?}", other.is_ok()),
            }
        }
        // The noisy lane being saturated must not cost lane b anything.
        for i in 0..quota_b {
            prop_assert!(q.try_push(b, i).is_ok(), "quiet lane rejected at depth {}", i);
        }
        prop_assert_eq!(q.tenant_len(a), quota_a);
        prop_assert_eq!(q.tenant_len(b), quota_b);
    }

    /// The full admission pipeline (per-tenant token bucket, per-tenant
    /// quota, global capacity) over a seeded one-hot tenant burst stream
    /// reconciles exactly: `submitted == shed + served` for every tenant
    /// and globally, with zero requests unaccounted for.
    #[test]
    fn admission_and_quotas_reconcile_exactly(
        seed in any::<u32>(),
        tenants in 2usize..5,
        n in 50usize..400,
        rate in 20.0f64..200.0,
        quota in 1usize..16,
        bucket_rate in 1.0f64..50.0,
        drain_every in 1usize..8,
        max_batch in 1usize..8,
    ) {
        let pattern = TenantLoadPattern::OneHotBurst { hot: 0, burst: 32, seed: seed as u64 };
        let arrivals = pattern.arrivals(tenants, n, rate);
        prop_assert_eq!(arrivals.len(), n);

        // Global capacity deliberately below the sum of quotas so the
        // GlobalFull path is reachable too.
        let global_cap = (quota * tenants).saturating_sub(quota / 2).max(1);
        let q = WeightedFairQueue::new(global_cap);
        let mut admission = Vec::new();
        for _ in 0..tenants {
            q.add_tenant(1.0, quota);
            admission.push(AdmissionController::new(
                Some(RateLimit { rate: bucket_rate, burst: 4.0 }),
                usize::MAX >> 1,
            ));
        }

        let mut submitted = vec![0u64; tenants];
        let mut shed = vec![0u64; tenants];
        let mut served = vec![0u64; tenants];
        for (i, a) in arrivals.iter().enumerate() {
            submitted[a.tenant] += 1;
            if admission[a.tenant].admit(a.offset_secs, 0).is_err() {
                shed[a.tenant] += 1;
            } else {
                match q.try_push(a.tenant, i) {
                    Ok(_) => {}
                    Err(TenantPushError::TenantFull(_, _))
                    | Err(TenantPushError::GlobalFull(_, _)) => shed[a.tenant] += 1,
                    Err(TenantPushError::Removed(_)) | Err(TenantPushError::Closed(_)) => {
                        prop_assert!(false, "queue closed mid-run");
                    }
                }
            }
            if i % drain_every == 0 {
                if let Some((t, batch)) = q.try_pop_batch(max_batch) {
                    served[t] += batch.len() as u64;
                }
            }
        }
        while let Some((t, batch)) = q.try_pop_batch(max_batch) {
            served[t] += batch.len() as u64;
        }

        for t in 0..tenants {
            prop_assert_eq!(
                submitted[t], shed[t] + served[t],
                "tenant {} leaked requests: submitted {:?} shed {:?} served {:?}",
                t, submitted, shed, served
            );
        }
        let total: u64 = submitted.iter().sum();
        prop_assert_eq!(total, n as u64);
        prop_assert_eq!(total, shed.iter().sum::<u64>() + served.iter().sum::<u64>());
    }
}

/// A lane waking from idle joins at the current global virtual time: it
/// competes fairly from its first push but gets no credit for time away,
/// so it cannot monopolize the workers with banked vtime.
#[test]
fn waking_lane_gets_no_banked_credit() {
    let q = WeightedFairQueue::new(1024);
    let a = q.add_tenant(1.0, 512);
    let b = q.add_tenant(1.0, 512);
    // Lane a does a lot of work while b is idle.
    for i in 0..64 {
        q.try_push(a, i).unwrap();
    }
    for _ in 0..64 {
        let (t, _) = q.try_pop_batch(1).unwrap();
        assert_eq!(t, a);
    }
    // b wakes with a backlog; a is backlogged too.
    for i in 0..8 {
        q.try_push(a, 100 + i).unwrap();
        q.try_push(b, 200 + i).unwrap();
    }
    // If b had banked 64 units of idle credit it would win the next 8
    // pops outright; joining at the global vtime it must alternate.
    let mut first_four = Vec::new();
    for _ in 0..4 {
        first_four.push(q.try_pop_batch(1).unwrap().0);
    }
    assert!(
        first_four.contains(&a) && first_four.contains(&b),
        "service must interleave after wake, got {first_four:?}"
    );
}

/// Removing a lane under load hands back exactly its FIFO backlog,
/// refuses further pushes with `Removed`, and never disturbs the other
/// lanes' contents or quotas.
#[test]
fn remove_tenant_drains_its_lane_and_spares_the_rest() {
    let q = WeightedFairQueue::new(1024);
    let a = q.add_tenant(1.0, 64);
    let b = q.add_tenant(1.0, 64);
    for i in 0..10 {
        q.try_push(a, i).unwrap();
        q.try_push(b, 100 + i).unwrap();
    }
    let drained = q.remove_tenant(a);
    assert_eq!(drained, (0..10).collect::<Vec<_>>(), "FIFO drain");
    assert_eq!(q.tenant_len(a), 0);
    assert_eq!(q.tenant_len(b), 10, "quiet lane untouched");
    assert_eq!(q.len(), 10);
    assert!(matches!(q.try_push(a, 99), Err(TenantPushError::Removed(99))));
    // The tombstoned lane is never selected again; b drains normally.
    let (t, batch) = q.try_pop_batch(64).unwrap();
    assert_eq!(t, b);
    assert_eq!(batch.len(), 10);
    // A lane added after the removal gets a fresh index, not a's slot.
    let c = q.add_tenant(1.0, 8);
    assert_eq!(c, 2);
    q.try_push(c, 7).unwrap();
    assert_eq!(q.try_pop_batch(8), Some((c, vec![7])));
}

/// Closing the queue drains what was admitted, then reports shutdown.
#[test]
fn close_drains_then_signals_shutdown() {
    let q = WeightedFairQueue::new(16);
    let a = q.add_tenant(1.0, 16);
    q.try_push(a, 1).unwrap();
    q.try_push(a, 2).unwrap();
    q.close();
    assert!(matches!(q.try_push(a, 3), Err(TenantPushError::Closed(3))));
    assert_eq!(q.pop_blocking_batch(8), Some((a, vec![1, 2])));
    assert_eq!(q.pop_blocking_batch(8), None);
}
