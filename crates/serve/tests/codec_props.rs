//! Property tests for the `QPPWIRE-v1` codec (DESIGN.md §11): round-trip
//! identity for every frame kind — requests via the canonical-bytes
//! identity (`encode(decode(bytes)) == bytes`), responses and error
//! frames via full value equality — and the decode-never-panics
//! guarantee over arbitrary byte strings and single-byte mutations of
//! valid frames. Seeded plain-`#[test]` twins of each property run even
//! where the proptest harness is stubbed out.

// Offline builds may substitute an inert `proptest` whose macro bodies
// compile away, which strands these imports and helpers as "unused".
#![allow(dead_code, unused_imports)]

use engine::catalog::Catalog;
use engine::faults::ExecError;
use engine::planner::Planner;
use engine::recost::recost_truth;
use engine::sim::Simulator;
use ml::MlError;
use proptest::prelude::*;
use qpp::{ExecutedQuery, Method, PlanOrdering, Prediction, QppError, ALL_TIERS};
use rand::prelude::*;
use serve::{ErrorFrame, Frame, Request, Response, DEFAULT_MAX_FRAME};
use std::sync::OnceLock;
use tpch::templates;

/// A small pool of real executed queries, one per supported template,
/// built once: request payload variety comes from the pool index and the
/// proptest-drawn envelope fields layered on top.
fn query_pool() -> &'static Vec<ExecutedQuery> {
    static POOL: OnceLock<Vec<ExecutedQuery>> = OnceLock::new();
    POOL.get_or_init(|| {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        templates::ALL_TEMPLATES
            .iter()
            .map(|&template| {
                let mut rng = StdRng::seed_from_u64(41 + template as u64);
                let plan = planner.plan(&templates::instantiate(template, 0.1, &mut rng));
                let trace = Simulator::new().execute(&plan, 0.1, template as u64);
                let truth_costs = recost_truth(&plan, 4096.0);
                ExecutedQuery {
                    template,
                    plan,
                    truth_costs,
                    trace,
                }
            })
            .collect()
    })
}

fn method_from_index(i: usize) -> Method {
    match i % 5 {
        0 => Method::PlanLevel,
        1 => Method::OperatorLevel,
        2 => Method::Hybrid(PlanOrdering::SizeBased),
        3 => Method::Hybrid(PlanOrdering::FrequencyBased),
        _ => Method::Hybrid(PlanOrdering::ErrorBased),
    }
}

/// One representative of every `QppError` variant, parameterized so the
/// payload fields vary across cases.
fn error_from(selector: usize, n: u64, x: f64, s: &str) -> QppError {
    match selector % 15 {
        0 => QppError::Ml(MlError::ShapeMismatch {
            expected: n as usize,
            got: (n / 3) as usize,
        }),
        1 => QppError::Ml(MlError::EmptyDataset),
        2 => QppError::Ml(MlError::NotPositiveDefinite),
        3 => QppError::Ml(MlError::InvalidParameter("C must be positive")),
        4 => QppError::Ml(MlError::NonFiniteData),
        5 => QppError::Ml(MlError::DidNotConverge {
            iterations: n as usize,
        }),
        6 => QppError::Exec(ExecError::Aborted { progress: x }),
        7 => QppError::Exec(ExecError::Timeout {
            budget_secs: x,
            needed_secs: x * 4.0,
        }),
        8 => QppError::NoTrainingData,
        9 => QppError::InvalidSnapshot(s.to_string()),
        10 => QppError::Io(s.to_string()),
        11 => QppError::Internal("unknown tenant"),
        12 => QppError::Overloaded {
            queue_depth: n as usize,
        },
        13 => QppError::TenantOverloaded {
            tenant: s.to_string(),
        },
        _ => QppError::DeadlineExceeded { budget_secs: x },
    }
}

fn request_roundtrips(id: u64, tenant: &str, method_i: usize, deadline: Option<u64>, pool_i: usize) {
    let pool = query_pool();
    let req = Request {
        id,
        tenant: tenant.to_string(),
        method: method_from_index(method_i),
        deadline_micros: deadline,
        query: pool[pool_i % pool.len()].clone(),
    };
    let bytes = Frame::Request(req).encode();
    let back = Frame::decode(&bytes, DEFAULT_MAX_FRAME).expect("valid request frame decodes");
    assert!(matches!(back, Frame::Request(_)));
    // One canonical form: re-encoding the decoded frame reproduces the
    // input bytes exactly, which pins every field (floats bit-for-bit).
    assert_eq!(back.encode(), bytes);
}

fn response_roundtrips(id: u64, value_bits: u64, tier_i: usize, degraded: bool) {
    let resp = Response {
        id,
        prediction: Prediction {
            // From raw bits so NaNs and infinities are drawn too; the
            // wire carries bits, so even NaN payloads must survive.
            value: f64::from_bits(value_bits),
            method_used: ALL_TIERS[tier_i % ALL_TIERS.len()],
            degraded,
        },
    };
    let bytes = Frame::Response(resp).encode();
    match Frame::decode(&bytes, DEFAULT_MAX_FRAME).expect("valid response frame decodes") {
        Frame::Response(back) => {
            assert_eq!(back.id, resp.id);
            assert_eq!(
                back.prediction.value.to_bits(),
                resp.prediction.value.to_bits()
            );
            assert_eq!(back.prediction.method_used, resp.prediction.method_used);
            assert_eq!(back.prediction.degraded, resp.prediction.degraded);
        }
        other => panic!("wrong frame kind {other:?}"),
    }
}

fn error_roundtrips(id: u64, err: QppError) {
    let frame = Frame::Error(ErrorFrame {
        id,
        error: err.clone(),
    });
    let bytes = frame.encode();
    match Frame::decode(&bytes, DEFAULT_MAX_FRAME).expect("valid error frame decodes") {
        Frame::Error(back) => {
            assert_eq!(back.id, id);
            assert_eq!(back.error, err);
            assert_eq!(back.error.wire_code(), err.wire_code());
        }
        other => panic!("wrong frame kind {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every request frame round-trips to its canonical bytes, across
    /// all templates, methods, deadlines, ids, and tenant names.
    #[test]
    fn request_frames_round_trip(
        id in any::<u64>(),
        tenant in "[a-z][a-z0-9_-]{0,24}",
        method_i in 0usize..5,
        deadline in proptest::option::of(any::<u64>()),
        pool_i in any::<usize>(),
    ) {
        request_roundtrips(id, &tenant, method_i, deadline, pool_i);
    }

    /// Every response frame round-trips with bit-exact floats — the
    /// value is drawn from raw bits, so NaNs and infinities are covered.
    #[test]
    fn response_frames_round_trip(
        id in any::<u64>(),
        value_bits in any::<u64>(),
        tier_i in any::<usize>(),
        degraded in any::<bool>(),
    ) {
        response_roundtrips(id, value_bits, tier_i, degraded);
    }

    /// Every error variant round-trips variant-exactly with its stable
    /// wire code, across varying payload fields.
    #[test]
    fn error_frames_round_trip(
        id in any::<u64>(),
        selector in any::<usize>(),
        n in 0u64..100_000,
        x in 0.0f64..1e6,
        s in "[ -~]{0,48}",
    ) {
        error_roundtrips(id, error_from(selector, n, x, &s));
    }

    /// `Frame::decode` never panics on arbitrary byte strings: every
    /// outcome is `Ok` or a typed `DecodeError`.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let _ = Frame::decode(&bytes, DEFAULT_MAX_FRAME);
    }

    /// Nor on single-byte corruptions of valid frames — the adversarial
    /// neighborhood a seeded chaos run actually visits.
    #[test]
    fn decode_never_panics_on_mutated_valid_frames(
        id in any::<u64>(),
        pool_i in any::<usize>(),
        offset in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let pool = query_pool();
        let req = Request {
            id,
            tenant: "mutant".to_string(),
            method: Method::PlanLevel,
            deadline_micros: Some(1_000),
            query: pool[pool_i % pool.len()].clone(),
        };
        let mut bytes = Frame::Request(req).encode();
        let at = offset % bytes.len();
        bytes[at] ^= mask;
        let _ = Frame::decode(&bytes, DEFAULT_MAX_FRAME);
    }
}

/// Seeded twin of the round-trip properties: exercises every template,
/// every method, every tier, and every error variant without the
/// proptest harness.
#[test]
fn seeded_round_trips_cover_every_frame_kind() {
    let pool = query_pool();
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for i in 0..pool.len() * 3 {
        let deadline = if i % 3 == 0 { None } else { Some(rng.gen()) };
        request_roundtrips(rng.gen(), &format!("tenant-{i}"), i, deadline, i);
    }
    for i in 0..64 {
        response_roundtrips(rng.gen(), rng.gen(), i, i % 2 == 0);
    }
    for i in 0..30 {
        error_roundtrips(
            rng.gen(),
            error_from(i, rng.gen_range(0..100_000), rng.gen_range(0.0..1e6), "peer"),
        );
    }
}

/// Seeded twin of the never-panics properties: 10k arbitrary byte
/// strings (length-skewed toward header-sized prefixes) and 2k
/// single-byte mutations of a valid request frame.
#[test]
fn seeded_fuzz_decode_never_panics() {
    let mut rng = StdRng::seed_from_u64(0xF0_2211);
    for _ in 0..10_000 {
        let len = if rng.gen_bool(0.5) {
            rng.gen_range(0..32)
        } else {
            rng.gen_range(0..2048)
        };
        let mut bytes = vec![0u8; len];
        for b in &mut bytes {
            *b = rng.gen_range(0u8..=255);
        }
        // Half the cases start with valid magic so decode gets past the
        // first gate and into the payload parsers.
        if rng.gen_bool(0.5) && len >= 4 {
            bytes[..4].copy_from_slice(b"QPW1");
        }
        let _ = Frame::decode(&bytes, DEFAULT_MAX_FRAME);
    }

    let valid = Frame::Request(Request {
        id: 1,
        tenant: "fuzz".to_string(),
        method: Method::Hybrid(PlanOrdering::ErrorBased),
        deadline_micros: Some(250_000),
        query: query_pool()[0].clone(),
    })
    .encode();
    for _ in 0..2_000 {
        let mut bytes = valid.clone();
        let at = rng.gen_range(0..bytes.len());
        bytes[at] ^= rng.gen_range(1u8..=255);
        let _ = Frame::decode(&bytes, DEFAULT_MAX_FRAME);
    }
}
