//! Overload-resilient prediction serving.
//!
//! The paper motivates query performance prediction with *on-line*
//! decisions — admission control, query scheduling, workload routing
//! (Section 1). Those place the predictor on the critical path of a live
//! system, where request rates spike past service capacity and every
//! caller has a latency budget of its own. This crate is the serving
//! front-end for that regime, layered over the hot-swap
//! [`qpp::ModelRegistry`]:
//!
//! - [`queue`] — bounded MPMC request queue; full queues reject
//!   synchronously (backpressure) instead of growing latency unboundedly.
//! - [`admission`] — token-bucket rate limiting and queue-depth load
//!   shedding over explicit virtual time, so shed fractions are exactly
//!   reproducible from seeded arrival streams.
//! - [`deadline`] — per-request budgets mapped onto the five-tier
//!   degradation chain: a request that cannot afford its asked-for tier
//!   is served by the best tier its remaining budget covers.
//! - [`stats`] — per-endpoint SLO accounting (log-bucketed latency
//!   quantiles, shed / deadline-miss / degraded-tier counters).
//! - [`server`] — the worker pool tying it together, with request
//!   coalescing into the compiled batch path and per-batch model
//!   snapshots that make registry hot swaps safe under load.
//! - [`tenant`] — multi-tenant bulkheads over the same machinery:
//!   per-tenant registries, admission budgets, queue quotas and
//!   weighted-fair dequeue, plus the closed SLO → drift-monitor healing
//!   loop (quarantine → shadow retrain → validated promote, per tenant).
//!
//! Under a seeded overload of 4x the service rate the server sheds and
//! degrades deterministically instead of queueing unboundedly — see
//! `tests/serve_overload.rs` and the `serve_load` bench binary. Under a
//! seeded one-hot tenant burst the noisy tenant is shed at its own
//! bulkhead while quiet tenants keep their deadline budgets — see
//! `tests/tenant_isolation.rs` and the `tenant_load` bench binary.

#![warn(missing_docs)]

pub mod admission;
pub mod deadline;
pub mod queue;
pub mod server;
pub mod stats;
pub mod tenant;

pub use admission::{AdmissionController, RateLimit, ShedReason, TokenBucket};
pub use deadline::{entry_tier, tier_for_budget, TierCosts};
pub use queue::{BoundedQueue, PushError};
pub use server::{PendingPrediction, PredictionServer, ServeConfig};
pub use stats::{Endpoint, ServeStats, ServeStatsSnapshot, SloSummary, ENDPOINTS};
pub use tenant::{
    HealAction, HealReport, TenantBudget, TenantPushError, TenantServeConfig, TenantServer,
    TenantSpec, WeightedFairQueue,
};
