//! Overload-resilient prediction serving.
//!
//! The paper motivates query performance prediction with *on-line*
//! decisions — admission control, query scheduling, workload routing
//! (Section 1). Those place the predictor on the critical path of a live
//! system, where request rates spike past service capacity and every
//! caller has a latency budget of its own. This crate is the serving
//! front-end for that regime, layered over the hot-swap
//! [`qpp::ModelRegistry`]:
//!
//! - [`queue`] — bounded MPMC request queue; full queues reject
//!   synchronously (backpressure) instead of growing latency unboundedly.
//! - [`admission`] — token-bucket rate limiting and queue-depth load
//!   shedding over explicit virtual time, so shed fractions are exactly
//!   reproducible from seeded arrival streams.
//! - [`deadline`] — per-request budgets mapped onto the five-tier
//!   degradation chain: a request that cannot afford its asked-for tier
//!   is served by the best tier its remaining budget covers.
//! - [`stats`] — per-endpoint SLO accounting (log-bucketed latency
//!   quantiles, shed / deadline-miss / degraded-tier counters).
//! - [`server`] — the worker pool tying it together, with request
//!   coalescing into the compiled batch path and per-batch model
//!   snapshots that make registry hot swaps safe under load.
//! - [`tenant`] — multi-tenant bulkheads over the same machinery:
//!   per-tenant registries, admission budgets, queue quotas and
//!   weighted-fair dequeue (with dynamic add/remove under load), plus the
//!   closed SLO → drift-monitor healing loop (quarantine → shadow retrain
//!   → validated promote, per tenant).
//! - [`healer`] — a supervised background thread driving that healing
//!   loop unattended on a jittered cadence, surviving panicking heals via
//!   `catch_unwind` and breaker-style backoff.
//! - [`codec`] — the versioned `QPPWIRE-v1` length-prefixed binary wire
//!   protocol: request/response frames and typed error frames mapping
//!   every [`qpp::QppError`] variant onto stable wire codes; decoding
//!   never panics on arbitrary bytes.
//! - [`net`] — the TCP front door speaking that protocol: acceptor +
//!   fixed worker pool, per-connection read/write deadlines, slowloris
//!   eviction, malformed-frame rejection, and graceful drain whose
//!   counters reconcile exactly.
//!
//! Under a seeded overload of 4x the service rate the server sheds and
//! degrades deterministically instead of queueing unboundedly — see
//! `tests/serve_overload.rs` and the `serve_load` bench binary. Under a
//! seeded one-hot tenant burst the noisy tenant is shed at its own
//! bulkhead while quiet tenants keep their deadline budgets — see
//! `tests/tenant_isolation.rs` and the `tenant_load` bench binary. Under
//! seeded network chaos (partial writes, mid-frame disconnects, corrupt
//! frames, stalled readers) quiet tenants' responses stay bit-identical
//! to the fault-free run — see `tests/net_chaos.rs` and the `net_load`
//! bench binary.

#![warn(missing_docs)]

pub mod admission;
pub mod codec;
pub mod deadline;
pub mod healer;
pub mod net;
pub mod queue;
pub mod server;
pub mod stats;
pub mod tenant;

pub use admission::{AdmissionController, RateLimit, ShedReason, TokenBucket};
pub use codec::{DecodeError, ErrorFrame, Frame, Request, Response, DEFAULT_MAX_FRAME};
pub use deadline::{entry_tier, tier_for_budget, TierCosts};
pub use healer::{HealSource, Healer, HealerConfig};
pub use net::{Client, NetConfig, NetServer, NetStatsSnapshot};
pub use queue::{BoundedQueue, PushError};
pub use server::{PendingPrediction, PredictionServer, ServeConfig};
pub use stats::{Endpoint, ServeStats, ServeStatsSnapshot, SloSummary, ENDPOINTS};
pub use tenant::{
    HealAction, HealReport, RemovedTenant, ShutdownReport, TenantBudget, TenantPushError,
    TenantServeConfig, TenantServer, TenantSpec, WeightedFairQueue,
};
