//! Supervised background healing: the unattended half of the SLO → drift
//! → heal loop.
//!
//! [`TenantServer::slo_tick`] and [`TenantServer::heal`] close the loop
//! only when somebody calls them. In production nobody does — the
//! LinkedIn study (PAPERS.md) names unattended model refresh as the layer
//! where learned predictors rot. [`Healer`] is that somebody: a single
//! background thread that, on a *jittered* cadence (deterministic given
//! the seed, but de-phased from any client's retry loop), walks the live
//! tenants, folds their SLO windows into the drift monitors, and runs a
//! healing round for any tenant with a quarantined tier.
//!
//! The thread is **supervised**, not trusted:
//!
//! - The workload source ([`HealSource`]) is caller-provided and runs
//!   *before* [`TenantServer::heal`], outside every server lock — a
//!   panicking source unwinds through no registry or monitor mutex, so
//!   nothing is poisoned.
//! - Every round runs under `catch_unwind`; a panic is counted
//!   ([`crate::ServeStatsSnapshot::heal_panics`]) and the tenant enters a
//!   breaker-style backoff: the next `2^k` ticks are skipped (capped),
//!   doubling on every consecutive failure and resetting on the first
//!   clean round. Serving traffic never stalls — the healer shares no
//!   lock with the submit or worker paths while it sleeps or backs off.
//! - Healing actions land in the tenant's [`crate::ServeStats`], so the
//!   operator sees promotes/rollbacks/panics in the same ledger as
//!   serving outcomes.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qpp::{QppError, RetrainConfig};

use crate::tenant::TenantServer;

/// Where the healer gets each tenant's recent executed workload for
/// shadow retraining. Implemented by closures `Fn(&str) ->
/// Vec<ExecutedQuery>`.
pub trait HealSource: Send + Sync {
    /// Recent executed queries for `tenant`, newest window preferred.
    fn recent(&self, tenant: &str) -> Vec<qpp::ExecutedQuery>;
}

impl<F> HealSource for F
where
    F: Fn(&str) -> Vec<qpp::ExecutedQuery> + Send + Sync,
{
    fn recent(&self, tenant: &str) -> Vec<qpp::ExecutedQuery> {
        self(tenant)
    }
}

/// Cadence and supervision knobs for [`Healer::spawn`].
#[derive(Debug, Clone)]
pub struct HealerConfig {
    /// Nominal time between rounds.
    pub interval: Duration,
    /// Jitter fraction in `[0, 1]`: each sleep is drawn uniformly from
    /// `interval * [1 - jitter, 1 + jitter)` so the healer de-phases from
    /// periodic client load. `0` disables jitter.
    pub jitter: f64,
    /// Seed for the jitter stream — the cadence is reproducible.
    pub seed: u64,
    /// Ticks skipped after the first failed round for a tenant; doubles
    /// per consecutive failure (breaker-style) up to `backoff_cap`.
    pub backoff_start: u32,
    /// Ceiling on skipped ticks per failure.
    pub backoff_cap: u32,
    /// Retrain configuration handed to [`TenantServer::heal`].
    pub retrain: RetrainConfig,
    /// Post-promotion rollback tolerance handed to [`TenantServer::heal`].
    pub rollback_tolerance: f64,
}

impl Default for HealerConfig {
    fn default() -> Self {
        HealerConfig {
            interval: Duration::from_secs(5),
            jitter: 0.2,
            seed: 0x9E37_79B9_7F4A_7C15,
            backoff_start: 1,
            backoff_cap: 32,
            retrain: RetrainConfig::default(),
            rollback_tolerance: 0.25,
        }
    }
}

struct StopFlag {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl StopFlag {
    /// Sleeps up to `d`; returns true when a stop arrived meanwhile.
    fn wait_for(&self, d: Duration) -> bool {
        let mut stopped = self.stopped.lock().unwrap();
        let deadline = Instant::now() + d;
        while !*stopped {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            stopped = self.cv.wait_timeout(stopped, deadline - now).unwrap().0;
        }
        true
    }

    fn stop(&self) {
        *self.stopped.lock().unwrap() = true;
        self.cv.notify_all();
    }
}

struct Backoff {
    skip_remaining: u32,
    next: u32,
}

/// A supervised background healer thread over a [`TenantServer`].
/// Dropping the handle stops the thread and joins it.
pub struct Healer {
    stop: Arc<StopFlag>,
    handle: Option<JoinHandle<()>>,
}

impl Healer {
    /// Starts the healer thread. It wakes on the configured jittered
    /// cadence and runs one supervised round per live tenant; see the
    /// module docs for the failure semantics.
    pub fn spawn(
        server: Arc<TenantServer>,
        source: Arc<dyn HealSource>,
        config: HealerConfig,
    ) -> Healer {
        let stop = Arc::new(StopFlag {
            stopped: Mutex::new(false),
            cv: Condvar::new(),
        });
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("qpp-healer".into())
            .spawn(move || healer_loop(&server, source.as_ref(), &config, &thread_stop))
            .expect("spawning the healer thread");
        Healer {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the healer (idempotent); the next [`Drop`] joins the thread.
    pub fn stop(&self) {
        self.stop.stop();
    }
}

impl Drop for Healer {
    fn drop(&mut self) {
        self.stop.stop();
        if let Some(handle) = self.handle.take() {
            // The healer loop catches round panics itself; a panic here
            // means the loop's own scaffolding broke — propagate it.
            if let Err(p) = handle.join() {
                std::panic::resume_unwind(p);
            }
        }
    }
}

/// xorshift64* step; returns a uniform f64 in `[0, 1)`.
fn next_uniform(state: &mut u64) -> f64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
}

fn jittered(interval: Duration, jitter: f64, state: &mut u64) -> Duration {
    let jitter = jitter.clamp(0.0, 1.0);
    if jitter == 0.0 {
        return interval;
    }
    let scale = 1.0 - jitter + 2.0 * jitter * next_uniform(state);
    interval.mul_f64(scale.max(0.0))
}

fn healer_loop(
    server: &TenantServer,
    source: &dyn HealSource,
    config: &HealerConfig,
    stop: &StopFlag,
) {
    // Seed 0 is an xorshift fixed point; displace it.
    let mut rng = config.seed.max(1);
    let mut backoff: HashMap<String, Backoff> = HashMap::new();
    loop {
        let sleep = jittered(config.interval, config.jitter, &mut rng);
        if stop.wait_for(sleep) {
            return;
        }
        for tenant in server.tenant_names() {
            // The tenant may be removed between the listing and here;
            // every call below then fails softly with `unknown tenant`.
            let Ok(stats) = server.stats_handle(&tenant) else {
                continue;
            };
            if let Some(b) = backoff.get_mut(&tenant) {
                if b.skip_remaining > 0 {
                    b.skip_remaining -= 1;
                    stats.record_heal_backoff_skip();
                    continue;
                }
            }
            let round = catch_unwind(AssertUnwindSafe(|| -> Result<(), QppError> {
                server.slo_tick(&tenant)?;
                if !server.any_quarantined(&tenant)? {
                    return Ok(());
                }
                // Pull the retrain window *before* heal touches the
                // registry, outside every server lock: a panicking
                // source unwinds through nothing it could poison.
                let recent = source.recent(&tenant);
                let refs: Vec<&qpp::ExecutedQuery> = recent.iter().collect();
                server
                    .heal(&tenant, &refs, &config.retrain, config.rollback_tolerance)
                    .map(|_| ())
            }));
            match round {
                Ok(Ok(())) => {
                    backoff.remove(&tenant);
                }
                Ok(Err(_)) => bump_backoff(&mut backoff, &tenant, config),
                Err(_panic) => {
                    stats.record_heal_panic();
                    bump_backoff(&mut backoff, &tenant, config);
                }
            }
        }
    }
}

fn bump_backoff(backoff: &mut HashMap<String, Backoff>, tenant: &str, config: &HealerConfig) {
    let cap = config.backoff_cap.max(1);
    let entry = backoff.entry(tenant.to_string()).or_insert(Backoff {
        skip_remaining: 0,
        next: config.backoff_start.max(1),
    });
    entry.skip_remaining = entry.next;
    entry.next = entry.next.saturating_mul(2).min(cap);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_stays_inside_the_band_and_is_reproducible() {
        let interval = Duration::from_millis(1000);
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..500 {
            let da = jittered(interval, 0.25, &mut a);
            let db = jittered(interval, 0.25, &mut b);
            assert_eq!(da, db, "same seed, same cadence");
            assert!(da >= Duration::from_millis(750) - Duration::from_nanos(1));
            assert!(da <= Duration::from_millis(1250));
        }
        let mut c = 7u64;
        assert_eq!(jittered(interval, 0.0, &mut c), interval);
    }

    #[test]
    fn backoff_doubles_to_the_cap_and_resets_on_removal() {
        let config = HealerConfig {
            backoff_start: 1,
            backoff_cap: 8,
            ..HealerConfig::default()
        };
        let mut map = HashMap::new();
        let skips: Vec<u32> = (0..6)
            .map(|_| {
                bump_backoff(&mut map, "t", &config);
                map["t"].skip_remaining
            })
            .collect();
        // Consecutive failures: skip 1, 2, 4, 8, then pinned at the cap.
        assert_eq!(skips, vec![1, 2, 4, 8, 8, 8]);
        map.remove("t");
        bump_backoff(&mut map, "t", &config);
        assert_eq!(map["t"].skip_remaining, 1, "clean round resets the breaker");
    }
}
