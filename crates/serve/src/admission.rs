//! Admission control: token-bucket rate limiting plus queue-depth shedding.
//!
//! Both mechanisms run *before* a request touches the queue, on the
//! submitting thread, so rejection cost stays O(1) no matter how far gone
//! the overload is. Time is passed in explicitly (seconds since an
//! arbitrary epoch) rather than read from a clock, which makes every
//! admission decision a pure function of (config, arrival times) — the
//! overload tests replay seeded [`engine::faults::ArrivalPattern`] streams
//! and assert exact shed counts.

/// Token-bucket parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Sustained admission rate, requests per second.
    pub rate: f64,
    /// Burst allowance: the bucket's capacity in tokens.
    pub burst: f64,
}

/// A token bucket over explicit (virtual) time.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last: f64,
}

impl TokenBucket {
    /// A bucket that starts full, so an initial burst up to `burst` is
    /// admitted before sustained-rate policing kicks in.
    pub fn new(limit: RateLimit) -> TokenBucket {
        let rate = limit.rate.max(0.0);
        let burst = limit.burst.max(1.0);
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last: 0.0,
        }
    }

    /// Takes one token at time `now_secs` if available. Time may not run
    /// backwards; a stale `now_secs` refills nothing but still spends.
    pub fn try_acquire(&mut self, now_secs: f64) -> bool {
        if now_secs > self.last {
            self.tokens = (self.tokens + (now_secs - self.last) * self.rate).min(self.burst);
            self.last = now_secs;
        }
        // The refill accumulates one multiply-add of rounding error per
        // arrival; without the epsilon, a token that exact arithmetic
        // says is there gets denied (e.g. four 0.25-token refills summing
        // to 0.999...), skewing steady-state admission below `rate`.
        if self.tokens >= 1.0 - 1e-9 {
            self.tokens = (self.tokens - 1.0).max(0.0);
            true
        } else {
            false
        }
    }
}

/// Why a request was shed at admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The token bucket was empty: arrivals exceed the configured rate.
    RateLimited,
    /// The queue depth reached the shedding threshold: the backlog is
    /// already longer than the service capacity can clear in time.
    QueueFull,
    /// The queue was closed (server shutdown) or the tenant's lane was
    /// removed between admission and the push. Recorded so a request that
    /// was already counted `submitted` still lands exactly once in the
    /// ledger — otherwise shutdown reconciliation could never balance.
    Shutdown,
}

/// The serving front door: rate limit first (cheapest signal), then
/// queue-depth shedding.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    bucket: Option<TokenBucket>,
    shed_depth: usize,
}

impl AdmissionController {
    /// `rate: None` disables rate limiting; `shed_depth` is the queue
    /// depth at which load shedding starts (inclusive).
    pub fn new(rate: Option<RateLimit>, shed_depth: usize) -> AdmissionController {
        AdmissionController {
            bucket: rate.map(TokenBucket::new),
            shed_depth: shed_depth.max(1),
        }
    }

    /// Admission decision for a request arriving at `now_secs` with the
    /// queue at `queue_depth`.
    pub fn admit(&mut self, now_secs: f64, queue_depth: usize) -> Result<(), ShedReason> {
        if queue_depth >= self.shed_depth {
            return Err(ShedReason::QueueFull);
        }
        if let Some(bucket) = &mut self.bucket {
            if !bucket.try_acquire(now_secs) {
                return Err(ShedReason::RateLimited);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::faults::ArrivalPattern;

    #[test]
    fn bucket_admits_burst_then_polices_sustained_rate() {
        let mut b = TokenBucket::new(RateLimit {
            rate: 10.0,
            burst: 3.0,
        });
        // Initial burst of 3 at t=0, fourth is refused.
        assert!(b.try_acquire(0.0));
        assert!(b.try_acquire(0.0));
        assert!(b.try_acquire(0.0));
        assert!(!b.try_acquire(0.0));
        // 0.1 s refills exactly one token at 10/s.
        assert!(b.try_acquire(0.1));
        assert!(!b.try_acquire(0.1));
        // A long idle period refills to burst, not beyond.
        assert!(b.try_acquire(100.0));
        assert!(b.try_acquire(100.0));
        assert!(b.try_acquire(100.0));
        assert!(!b.try_acquire(100.0));
    }

    #[test]
    fn steady_overload_sheds_the_exact_excess_fraction() {
        // Arrivals at 4x the admitted rate: after the initial burst, every
        // 4th request gets the one token refilled between arrivals.
        let rate = 100.0;
        let arrivals = ArrivalPattern::Steady.arrival_offsets(4000, 4.0 * rate);
        let mut ctl = AdmissionController::new(
            Some(RateLimit {
                rate,
                burst: 1.0,
            }),
            usize::MAX >> 1,
        );
        let shed = arrivals
            .iter()
            .filter(|t| ctl.admit(**t, 0).is_err())
            .count();
        let frac = shed as f64 / arrivals.len() as f64;
        assert!(
            (frac - 0.75).abs() < 0.01,
            "expected ~75% shed at 4x overload, got {frac}"
        );
        // Determinism: replaying the same stream sheds identically.
        let mut ctl2 = AdmissionController::new(
            Some(RateLimit {
                rate,
                burst: 1.0,
            }),
            usize::MAX >> 1,
        );
        let shed2 = arrivals
            .iter()
            .filter(|t| ctl2.admit(**t, 0).is_err())
            .count();
        assert_eq!(shed, shed2);
    }

    #[test]
    fn bursty_overload_sheds_more_than_steady_at_equal_mean_rate() {
        let rate = 200.0;
        let limit = RateLimit {
            rate,
            burst: 4.0,
        };
        let n = 2048;
        let count_shed = |arrivals: &[f64]| {
            let mut ctl = AdmissionController::new(Some(limit), usize::MAX >> 1);
            arrivals
                .iter()
                .filter(|t| ctl.admit(**t, 0).is_err())
                .count()
        };
        let steady = count_shed(&ArrivalPattern::Steady.arrival_offsets(n, 2.0 * rate));
        let bursty = count_shed(
            &ArrivalPattern::Bursty { burst: 128, seed: 5 }.arrival_offsets(n, 2.0 * rate),
        );
        // Same mean arrival rate, but bursts exhaust the bucket instantly.
        assert!(
            bursty >= steady,
            "bursty shed {bursty} < steady shed {steady}"
        );
        assert!(bursty > n / 3, "bursty overload must shed substantially");
    }

    #[test]
    fn queue_depth_shedding_trips_at_threshold() {
        let mut ctl = AdmissionController::new(None, 8);
        assert_eq!(ctl.admit(0.0, 7), Ok(()));
        assert_eq!(ctl.admit(0.0, 8), Err(ShedReason::QueueFull));
        assert_eq!(ctl.admit(0.0, 9000), Err(ShedReason::QueueFull));
        // Depth check wins over rate limiting: no token is spent on a
        // request that the queue already doomed.
        let mut both = AdmissionController::new(
            Some(RateLimit {
                rate: 1.0,
                burst: 1.0,
            }),
            4,
        );
        assert_eq!(both.admit(0.0, 4), Err(ShedReason::QueueFull));
        assert_eq!(both.admit(0.0, 0), Ok(()), "token survived the doomed request");
    }
}
