//! Bounded MPMC work queue with rejecting push.
//!
//! The serving front-end's first line of defence: the queue never grows
//! past its capacity, so a burst cannot convert into unbounded memory and
//! unbounded latency. Producers that find it full are *rejected
//! synchronously* (backpressure) rather than blocked — the caller turns
//! that into [`qpp::QppError::Overloaded`] and the client backs off.
//! Consumers block efficiently on a condvar and drain in FIFO order.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue was at capacity; the item is handed back along with the
    /// depth observed at rejection.
    Full(T, usize),
    /// The queue was closed for shutdown; the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer FIFO queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (at least 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The queue's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push: enqueues and returns the depth after the push,
    /// or rejects when full/closed. Never waits — admission latency stays
    /// flat even under overload.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            let depth = inner.items.len();
            return Err(PushError::Full(item, depth));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking pop: waits until an item is available or the queue is
    /// closed *and* drained, in which case `None` signals shutdown.
    pub fn pop_blocking(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking drain of up to `n` more items into `out`, preserving
    /// FIFO order. Used by workers to coalesce a batch behind the first
    /// popped item without waiting for stragglers.
    pub fn drain_up_to(&self, n: usize, out: &mut Vec<T>) {
        if n == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        for _ in 0..n {
            match inner.items.pop_front() {
                Some(item) => out.push(item),
                None => break,
            }
        }
    }

    /// Closes the queue: subsequent pushes are rejected, blocked
    /// consumers drain what is left and then observe shutdown.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity_rejection() {
        let q = BoundedQueue::new(3);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert_eq!(q.try_push(3).unwrap(), 3);
        match q.try_push(4) {
            Err(PushError::Full(item, depth)) => {
                assert_eq!(item, 4);
                assert_eq!(depth, 3);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), Some(2));
        // Space freed: push succeeds again.
        assert_eq!(q.try_push(5).unwrap(), 2);
        assert_eq!(q.pop_blocking(), Some(3));
        assert_eq!(q.pop_blocking(), Some(5));
    }

    #[test]
    fn drain_up_to_coalesces_without_blocking() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).unwrap();
        }
        let first = q.pop_blocking().unwrap();
        let mut batch = vec![first];
        q.drain_up_to(3, &mut batch);
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 1);
        // Draining an empty queue is a no-op, not a block.
        let mut empty = Vec::new();
        q.drain_up_to(0, &mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn close_wakes_blocked_consumers_and_rejects_producers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_blocking())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
        match q.try_push(9) {
            Err(PushError::Closed(9)) => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn close_drains_remaining_items_before_shutdown() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.pop_blocking(), Some(1));
        assert_eq!(q.pop_blocking(), Some(2));
        assert_eq!(q.pop_blocking(), None);
    }
}
