//! The concurrent prediction front-end.
//!
//! [`PredictionServer`] puts the hot-swap [`ModelRegistry`] behind a
//! bounded queue and a worker pool, adding the four behaviours a
//! predictor on a live system's critical path needs (Section 1's
//! admission-control and workload-management use cases):
//!
//! 1. **Backpressure** — admission control (token bucket + queue-depth
//!    shedding) rejects excess load synchronously with
//!    [`QppError::Overloaded`] instead of queueing it unboundedly.
//! 2. **Deadlines** — each request may carry a budget; workers enter the
//!    degradation chain at the most accurate tier the remaining budget
//!    affords, and refuse with [`QppError::DeadlineExceeded`] when even
//!    the training prior cannot answer in time.
//! 3. **Coalescing** — a worker drains up to `max_batch` queued requests
//!    behind the first one and funnels same-method groups through the
//!    compiled batch path, whose results are bit-identical to the serial
//!    checked loop.
//! 4. **Swap safety** — workers snapshot `registry.current()` per batch,
//!    so a promote/rollback mid-flight never mixes model versions inside
//!    one batch and never tears a single prediction.

use engine::faults::ServeFaultPlan;
use qpp::{
    Method, ModelRegistry, Prediction, PredictionCache, QppError, QppPredictor,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::admission::{AdmissionController, RateLimit};
use crate::deadline::{entry_tier, TierCosts};
use crate::queue::{BoundedQueue, PushError};
use crate::stats::{Endpoint, ServeStats, ServeStatsSnapshot};

/// Serving configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads. `None` defers to the process-wide
    /// `ml::par` setting (`QPP_THREADS` / `set_threads`), so one knob
    /// sizes the training fan-outs and the serving pool alike.
    pub workers: Option<usize>,
    /// Bounded queue capacity.
    pub queue_capacity: usize,
    /// Queue depth at which admission starts shedding (defaults to the
    /// queue capacity when 0).
    pub shed_depth: usize,
    /// Optional token-bucket rate limit at the front door.
    pub rate_limit: Option<RateLimit>,
    /// Most requests a worker coalesces into one batch (at least 1).
    pub max_batch: usize,
    /// Deadline applied to requests submitted without one. `None` means
    /// such requests never expire.
    pub default_deadline: Option<Duration>,
    /// Estimated per-tier service costs driving deadline degradation.
    pub tier_costs: TierCosts,
    /// Serving-layer fault injection (inert by default).
    pub faults: ServeFaultPlan,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: None,
            queue_capacity: 256,
            shed_depth: 0,
            rate_limit: None,
            max_batch: 32,
            default_deadline: None,
            tier_costs: TierCosts::default(),
            faults: ServeFaultPlan::none(),
        }
    }
}

/// One queued prediction request. Shared with the multi-tenant front-end
/// in [`crate::tenant`], which queues the same jobs per-tenant.
pub(crate) struct Job {
    pub(crate) id: u64,
    pub(crate) query: Arc<qpp::ExecutedQuery>,
    pub(crate) method: Method,
    pub(crate) submitted: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) budget_secs: f64,
    pub(crate) reply: mpsc::Sender<Result<Prediction, QppError>>,
}

/// Handle to a submitted request; resolves to the prediction or a typed
/// serving error.
pub struct PendingPrediction {
    rx: mpsc::Receiver<Result<Prediction, QppError>>,
}

impl PendingPrediction {
    pub(crate) fn new(rx: mpsc::Receiver<Result<Prediction, QppError>>) -> PendingPrediction {
        PendingPrediction { rx }
    }

    /// Blocks until the request is answered.
    pub fn wait(self) -> Result<Prediction, QppError> {
        self.rx
            .recv()
            .unwrap_or(Err(QppError::Internal("serving worker dropped the reply")))
    }

    /// Blocks until the request is answered or `timeout` elapses. Used by
    /// the networked front door's drain: a reply that does not arrive
    /// within the drain budget is abandoned (the worker may still serve
    /// it, but no one is listening).
    pub fn wait_timeout(self, timeout: std::time::Duration) -> Result<Prediction, QppError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(QppError::Internal("request aborted at shutdown"))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                Err(QppError::Internal("serving worker dropped the reply"))
            }
        }
    }
}

/// A concurrent, overload-resilient prediction service over a hot-swap
/// model registry. Dropping the server closes the queue, drains what was
/// already admitted, and joins all workers.
pub struct PredictionServer {
    registry: Arc<ModelRegistry>,
    queue: Arc<BoundedQueue<Job>>,
    stats: Arc<ServeStats>,
    admission: Mutex<AdmissionController>,
    default_deadline: Option<Duration>,
    started: Instant,
    next_id: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

impl PredictionServer {
    /// Starts a server with `config.workers` (resolved against the
    /// process-wide `ml::par` setting) worker threads over `registry`.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> PredictionServer {
        let worker_count = ml::par::resolve_workers(config.workers);
        let shed_depth = if config.shed_depth == 0 {
            config.queue_capacity
        } else {
            config.shed_depth
        };
        let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
        let stats = Arc::new(ServeStats::new());
        let admission = Mutex::new(AdmissionController::new(config.rate_limit, shed_depth));
        let max_batch = config.max_batch.max(1);
        let workers = (0..worker_count)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                let registry = Arc::clone(&registry);
                let faults = config.faults.clone();
                let tier_costs = config.tier_costs;
                std::thread::spawn(move || {
                    worker_loop(&queue, &stats, &registry, &faults, tier_costs, max_batch)
                })
            })
            .collect();
        PredictionServer {
            registry,
            queue,
            stats,
            admission,
            default_deadline: config.default_deadline,
            started: Instant::now(),
            next_id: AtomicU64::new(0),
            workers,
        }
    }

    /// The registry this server predicts from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Serving statistics snapshot.
    pub fn stats(&self) -> ServeStatsSnapshot {
        self.stats.snapshot()
    }

    /// Submits a prediction request. Admission control runs synchronously
    /// on the calling thread: an overloaded server answers
    /// [`QppError::Overloaded`] immediately, without queueing.
    ///
    /// `deadline` overrides the configured default budget; `None` uses
    /// the default (which may itself be "no deadline").
    pub fn submit(
        &self,
        query: Arc<qpp::ExecutedQuery>,
        method: Method,
        deadline: Option<Duration>,
    ) -> Result<PendingPrediction, QppError> {
        self.stats.record_submitted();
        let now = Instant::now();
        let queue_depth = self.queue.len();
        let decision = {
            let mut admission = self.admission.lock().unwrap();
            admission.admit(self.started.elapsed().as_secs_f64(), queue_depth)
        };
        if let Err(reason) = decision {
            self.stats.record_shed(reason);
            return Err(QppError::Overloaded {
                queue_depth,
            });
        }
        let budget = deadline.or(self.default_deadline);
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            query,
            method,
            submitted: now,
            deadline: budget.map(|d| now + d),
            budget_secs: budget.map_or(f64::INFINITY, |d| d.as_secs_f64()),
            reply: tx,
        };
        match self.queue.try_push(job) {
            Ok(_) => Ok(PendingPrediction {
                rx,
            }),
            Err(PushError::Full(_, depth)) => {
                // Raced past the admission check into a full queue: shed.
                self.stats.record_shed(crate::admission::ShedReason::QueueFull);
                Err(QppError::Overloaded {
                    queue_depth: depth,
                })
            }
            Err(PushError::Closed(_)) => Err(QppError::Internal(
                "prediction server is shutting down",
            )),
        }
    }

    /// Convenience: submit and block for the answer.
    pub fn predict(
        &self,
        query: Arc<qpp::ExecutedQuery>,
        method: Method,
        deadline: Option<Duration>,
    ) -> Result<Prediction, QppError> {
        self.submit(query, method, deadline)?.wait()
    }

}

impl Drop for PredictionServer {
    fn drop(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            // A panicking worker would already have poisoned the run;
            // surface it instead of hiding it.
            if let Err(p) = handle.join() {
                std::panic::resume_unwind(p);
            }
        }
    }
}

fn worker_loop(
    queue: &BoundedQueue<Job>,
    stats: &ServeStats,
    registry: &ModelRegistry,
    faults: &ServeFaultPlan,
    tier_costs: TierCosts,
    max_batch: usize,
) {
    while let Some(first) = queue.pop_blocking() {
        let mut batch = vec![first];
        queue.drain_up_to(max_batch - 1, &mut batch);
        stats.record_batch(batch.len());

        // Injected serving faults key off the first job of the batch, so
        // a (plan, workload) pair exercises the same stalls every run.
        let outcome = faults.decide(batch[0].id);
        if outcome.stall_secs > 0.0 {
            stats.record_stall();
            std::thread::sleep(Duration::from_secs_f64(outcome.stall_secs));
        }

        // Snapshot the serving model once per batch: a concurrent
        // promote/rollback affects the *next* batch, never a torn one.
        let predictor = registry.current();
        let cache = Arc::clone(registry.pred_cache());

        serve_batch(batch, stats, &predictor, &cache, tier_costs);

        if outcome.slow_consumer {
            // The client side drains replies slowly; the worker is held
            // up just like a blocking write to a saturated socket.
            std::thread::sleep(Duration::from_secs_f64(
                faults.stall_secs.max(0.0) * 0.5,
            ));
        }
    }
}

pub(crate) fn serve_batch(
    batch: Vec<Job>,
    stats: &ServeStats,
    predictor: &QppPredictor,
    cache: &PredictionCache,
    tier_costs: TierCosts,
) {
    let now = Instant::now();
    // Partition: full-tier jobs are grouped per method for the batched
    // path; degraded or expired jobs are resolved individually.
    let mut groups: Vec<(Method, Vec<Job>)> = Vec::new();
    for job in batch {
        let remaining = match job.deadline {
            Some(d) => {
                if d <= now {
                    refuse_expired(stats, job);
                    continue;
                }
                (d - now).as_secs_f64()
            }
            None => f64::INFINITY,
        };
        let requested = job.method.tier();
        match entry_tier(requested, remaining, &tier_costs) {
            None => refuse_expired(stats, job),
            Some(start) if start == requested => {
                match groups.iter_mut().find(|(m, _)| *m == job.method) {
                    Some((_, jobs)) => jobs.push(job),
                    None => groups.push((job.method, vec![job])),
                }
            }
            Some(start) => {
                // Budget forces a deeper entry tier: serve individually.
                let p = predictor.predict_checked_from(&job.query, start);
                reply(stats, job, p);
            }
        }
    }
    for (method, jobs) in groups {
        let queries: Vec<&qpp::ExecutedQuery> = jobs.iter().map(|j| &*j.query).collect();
        let predictions = predictor.predict_checked_batch_cached(&queries, method, cache);
        for (job, p) in jobs.into_iter().zip(predictions) {
            reply(stats, job, p);
        }
    }
}

fn refuse_expired(stats: &ServeStats, job: Job) {
    stats.record_deadline_miss(Endpoint::of(job.method));
    let _ = job.reply.send(Err(QppError::DeadlineExceeded {
        budget_secs: job.budget_secs,
    }));
}

fn reply(stats: &ServeStats, job: Job, mut prediction: Prediction) {
    // A request that entered below its asked-for tier is degraded even if
    // the chain itself never fell further.
    prediction.degraded = prediction.method_used != job.method.tier();
    stats.record_served(
        Endpoint::of(job.method),
        prediction.method_used,
        prediction.degraded,
        job.submitted.elapsed().as_secs_f64(),
    );
    let _ = job.reply.send(Ok(prediction));
}
