//! Per-endpoint SLO accounting for the serving layer.
//!
//! Three endpoints (one per requested [`Method`] family) each keep a
//! log-bucketed latency histogram ([`qpp::SloRecorder`]) over *end-to-end*
//! request latency (submit → reply), plus the overload counters the
//! acceptance tests and the bench harness reconcile: everything submitted
//! is accounted exactly once as shed, deadline-missed, or served.

use qpp::{tier_rank, Method, PredictionTier, SloRecorder};
use std::sync::Mutex;

use crate::admission::ShedReason;
use crate::tenant::HealAction;

/// The serving endpoint a request belongs to, derived from its requested
/// [`Method`] (all hybrid orderings share one endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// Single plan-level model requests.
    PlanLevel,
    /// Composed operator-level model requests.
    OperatorLevel,
    /// Hybrid requests (any plan ordering).
    Hybrid,
}

impl Endpoint {
    /// The endpoint serving a request method.
    pub fn of(method: Method) -> Endpoint {
        match method {
            Method::PlanLevel => Endpoint::PlanLevel,
            Method::OperatorLevel => Endpoint::OperatorLevel,
            Method::Hybrid(_) => Endpoint::Hybrid,
        }
    }

    /// Stable index into per-endpoint arrays.
    pub fn index(self) -> usize {
        match self {
            Endpoint::PlanLevel => 0,
            Endpoint::OperatorLevel => 1,
            Endpoint::Hybrid => 2,
        }
    }

    /// Endpoint name as it appears in bench reports.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::PlanLevel => "plan_level",
            Endpoint::OperatorLevel => "operator_level",
            Endpoint::Hybrid => "hybrid",
        }
    }
}

/// All serving endpoints, in [`Endpoint::index`] order.
pub const ENDPOINTS: [Endpoint; 3] = [Endpoint::PlanLevel, Endpoint::OperatorLevel, Endpoint::Hybrid];

#[derive(Debug)]
struct Inner {
    submitted: u64,
    shed_rate_limited: u64,
    shed_queue_full: u64,
    shed_shutdown: u64,
    served: u64,
    deadline_missed: u64,
    degraded: u64,
    served_by_tier: [u64; 5],
    batches: u64,
    batched_jobs: u64,
    largest_batch: u64,
    stalls_injected: u64,
    heal_rounds: u64,
    heal_promoted: u64,
    heal_kept_incumbent: u64,
    heal_rolled_back: u64,
    heal_panics: u64,
    heal_backoff_skips: u64,
    latency: [SloRecorder; 3],
}

/// Thread-safe serving statistics, shared between submitters and workers.
#[derive(Debug)]
pub struct ServeStats {
    inner: Mutex<Inner>,
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats::new()
    }
}

impl ServeStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> ServeStats {
        ServeStats {
            inner: Mutex::new(Inner {
                submitted: 0,
                shed_rate_limited: 0,
                shed_queue_full: 0,
                shed_shutdown: 0,
                served: 0,
                deadline_missed: 0,
                degraded: 0,
                served_by_tier: [0; 5],
                batches: 0,
                batched_jobs: 0,
                largest_batch: 0,
                stalls_injected: 0,
                heal_rounds: 0,
                heal_promoted: 0,
                heal_kept_incumbent: 0,
                heal_rolled_back: 0,
                heal_panics: 0,
                heal_backoff_skips: 0,
                latency: [SloRecorder::new(), SloRecorder::new(), SloRecorder::new()],
            }),
        }
    }

    /// A request reached the front door.
    pub fn record_submitted(&self) {
        self.inner.lock().unwrap().submitted += 1;
    }

    /// A request was shed at admission.
    pub fn record_shed(&self, reason: ShedReason) {
        let mut inner = self.inner.lock().unwrap();
        match reason {
            ShedReason::RateLimited => inner.shed_rate_limited += 1,
            ShedReason::QueueFull => inner.shed_queue_full += 1,
            ShedReason::Shutdown => inner.shed_shutdown += 1,
        }
    }

    /// One healing round completed for this tenant with the given action.
    pub fn record_heal(&self, action: &HealAction) {
        let mut inner = self.inner.lock().unwrap();
        inner.heal_rounds += 1;
        match action {
            HealAction::NotNeeded => {}
            HealAction::Promoted => inner.heal_promoted += 1,
            HealAction::KeptIncumbent => inner.heal_kept_incumbent += 1,
            HealAction::RolledBack => inner.heal_rolled_back += 1,
        }
    }

    /// A healing round panicked and was caught by the supervisor.
    pub fn record_heal_panic(&self) {
        self.inner.lock().unwrap().heal_panics += 1;
    }

    /// The healer's breaker skipped a round while backing off.
    pub fn record_heal_backoff_skip(&self) {
        self.inner.lock().unwrap().heal_backoff_skips += 1;
    }

    /// A worker coalesced `n` requests into one batch.
    pub fn record_batch(&self, n: usize) {
        let mut inner = self.inner.lock().unwrap();
        inner.batches += 1;
        inner.batched_jobs += n as u64;
        inner.largest_batch = inner.largest_batch.max(n as u64);
    }

    /// An injected worker stall fired.
    pub fn record_stall(&self) {
        self.inner.lock().unwrap().stalls_injected += 1;
    }

    /// A request was answered with a prediction.
    pub fn record_served(
        &self,
        endpoint: Endpoint,
        tier: PredictionTier,
        degraded: bool,
        latency_secs: f64,
    ) {
        let mut inner = self.inner.lock().unwrap();
        inner.served += 1;
        inner.served_by_tier[tier_rank(tier)] += 1;
        if degraded {
            inner.degraded += 1;
        }
        inner.latency[endpoint.index()].record(latency_secs);
    }

    /// A request's deadline expired before any tier could answer.
    pub fn record_deadline_miss(&self, _endpoint: Endpoint) {
        self.inner.lock().unwrap().deadline_missed += 1;
    }

    /// A consistent point-in-time copy of all counters and histograms.
    pub fn snapshot(&self) -> ServeStatsSnapshot {
        let inner = self.inner.lock().unwrap();
        let latency = std::array::from_fn(|i| {
            let r = &inner.latency[i];
            SloSummary {
                count: r.count(),
                mean_secs: r.mean(),
                p50_secs: r.quantile(0.50),
                p99_secs: r.quantile(0.99),
                p999_secs: r.quantile(0.999),
                max_secs: r.max(),
            }
        });
        ServeStatsSnapshot {
            submitted: inner.submitted,
            shed_rate_limited: inner.shed_rate_limited,
            shed_queue_full: inner.shed_queue_full,
            shed_shutdown: inner.shed_shutdown,
            served: inner.served,
            deadline_missed: inner.deadline_missed,
            degraded: inner.degraded,
            served_by_tier: inner.served_by_tier,
            batches: inner.batches,
            batched_jobs: inner.batched_jobs,
            largest_batch: inner.largest_batch,
            stalls_injected: inner.stalls_injected,
            heal_rounds: inner.heal_rounds,
            heal_promoted: inner.heal_promoted,
            heal_kept_incumbent: inner.heal_kept_incumbent,
            heal_rolled_back: inner.heal_rolled_back,
            heal_panics: inner.heal_panics,
            heal_backoff_skips: inner.heal_backoff_skips,
            latency,
        }
    }
}

/// Latency summary for one endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSummary {
    /// Served requests recorded at this endpoint.
    pub count: u64,
    /// Mean end-to-end latency, seconds.
    pub mean_secs: f64,
    /// Median end-to-end latency, seconds.
    pub p50_secs: f64,
    /// 99th percentile end-to-end latency, seconds.
    pub p99_secs: f64,
    /// 99.9th percentile end-to-end latency, seconds.
    pub p999_secs: f64,
    /// Worst observed end-to-end latency, seconds.
    pub max_secs: f64,
}

/// Point-in-time copy of [`ServeStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeStatsSnapshot {
    /// Requests that reached the front door.
    pub submitted: u64,
    /// Requests shed by the rate limiter.
    pub shed_rate_limited: u64,
    /// Requests shed by queue-depth load shedding.
    pub shed_queue_full: u64,
    /// Requests refused because the server was shutting down or the
    /// tenant was removed after the request was counted `submitted`.
    pub shed_shutdown: u64,
    /// Requests answered with a prediction.
    pub served: u64,
    /// Requests refused because their deadline expired.
    pub deadline_missed: u64,
    /// Served requests answered below their requested tier.
    pub degraded: u64,
    /// Served requests by the tier that produced the answer
    /// (indexed by [`tier_rank`]).
    pub served_by_tier: [u64; 5],
    /// Worker batches formed.
    pub batches: u64,
    /// Requests carried in those batches.
    pub batched_jobs: u64,
    /// Largest single coalesced batch.
    pub largest_batch: u64,
    /// Injected worker stalls that fired.
    pub stalls_injected: u64,
    /// Healing rounds completed (any [`HealAction`]).
    pub heal_rounds: u64,
    /// Healing rounds that promoted and validated a retrained candidate.
    pub heal_promoted: u64,
    /// Healing rounds where the incumbent beat the candidate.
    pub heal_kept_incumbent: u64,
    /// Healing rounds whose promotion regressed and was rolled back.
    pub heal_rolled_back: u64,
    /// Healing rounds that panicked and were caught by the supervisor.
    pub heal_panics: u64,
    /// Healer rounds skipped while the supervision breaker backed off.
    pub heal_backoff_skips: u64,
    /// Per-endpoint latency summaries (indexed by [`Endpoint::index`]).
    pub latency: [SloSummary; 3],
}

impl ServeStatsSnapshot {
    /// Total shed requests, all causes.
    pub fn shed(&self) -> u64 {
        self.shed_rate_limited + self.shed_queue_full + self.shed_shutdown
    }

    /// Requests admitted past the front door.
    pub fn accepted(&self) -> u64 {
        self.submitted - self.shed()
    }

    /// Latency summary for one endpoint.
    pub fn endpoint(&self, e: Endpoint) -> &SloSummary {
        &self.latency[e.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp::PredictionTier;

    #[test]
    fn counters_reconcile_and_histograms_land_per_endpoint() {
        let stats = ServeStats::new();
        for _ in 0..10 {
            stats.record_submitted();
        }
        stats.record_shed(ShedReason::RateLimited);
        stats.record_shed(ShedReason::QueueFull);
        stats.record_shed(ShedReason::QueueFull);
        stats.record_deadline_miss(Endpoint::Hybrid);
        stats.record_batch(3);
        stats.record_batch(1);
        for i in 0..6 {
            stats.record_served(
                Endpoint::Hybrid,
                PredictionTier::Hybrid,
                false,
                0.001 * (i + 1) as f64,
            );
        }
        let snap = stats.snapshot();
        assert_eq!(snap.submitted, 10);
        assert_eq!(snap.shed(), 3);
        assert_eq!(snap.accepted(), 7);
        assert_eq!(snap.served + snap.deadline_missed, snap.accepted());
        assert_eq!(snap.largest_batch, 3);
        assert_eq!(snap.batched_jobs, 4);
        let hybrid = snap.endpoint(Endpoint::Hybrid);
        assert_eq!(hybrid.count, 6);
        assert!(hybrid.mean_secs > 0.0);
        assert!(hybrid.p50_secs <= hybrid.p99_secs);
        assert!(hybrid.p99_secs <= hybrid.max_secs * 1.3);
        assert_eq!(snap.endpoint(Endpoint::PlanLevel).count, 0);
        assert_eq!(snap.served_by_tier[0], 6);
    }

    #[test]
    fn degradation_and_stalls_are_counted() {
        let stats = ServeStats::new();
        stats.record_submitted();
        stats.record_served(Endpoint::Hybrid, PredictionTier::TrainingPrior, true, 1e-5);
        stats.record_stall();
        let snap = stats.snapshot();
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.stalls_injected, 1);
        assert_eq!(snap.served_by_tier[4], 1);
    }

    #[test]
    fn endpoints_map_methods_stably() {
        use qpp::PlanOrdering;
        assert_eq!(Endpoint::of(Method::PlanLevel), Endpoint::PlanLevel);
        assert_eq!(Endpoint::of(Method::OperatorLevel), Endpoint::OperatorLevel);
        assert_eq!(
            Endpoint::of(Method::Hybrid(PlanOrdering::SizeBased)),
            Endpoint::Hybrid
        );
        for (i, e) in ENDPOINTS.iter().enumerate() {
            assert_eq!(e.index(), i);
            assert!(!e.name().is_empty());
        }
    }
}
