//! `QPPWIRE-v1`: the versioned, length-prefixed binary wire protocol of
//! the networked front door.
//!
//! Every frame is `magic(4) | kind(1) | len(4, LE) | payload(len)`; the
//! magic `b"QPW1"` bakes the protocol version into the first four bytes,
//! so a v2 peer is rejected at the header, not somewhere inside a
//! payload. Three frame kinds exist: a prediction [`Request`] (tenant,
//! method, deadline, and the full estimate-annotated plan of an
//! [`ExecutedQuery`]), a successful [`Response`] (the prediction with the
//! tier that produced it), and a typed [`ErrorFrame`] carrying the
//! [`QppError::wire_code`] of every error variant plus its
//! variant-specific fields — the wire mirror of the in-process `Result`.
//!
//! Two properties the proptests in `codec_props.rs` (and the seeded fuzz
//! test below) pin down:
//!
//! - **Round-trip identity.** `decode(encode(f)) == f` for every frame,
//!   bit-exact on floats (values travel as IEEE-754 bits, so NaN-carrying
//!   corrupted plans survive the wire unchanged — the reason this codec
//!   is hand-rolled rather than JSON).
//! - **Decode never panics.** Every read is bounds-checked, every length
//!   is validated against the bytes actually present, and tree depth is
//!   capped, so arbitrary bytes produce `Err(DecodeError)`, never a
//!   panic or an unbounded allocation.
//!
//! `&'static str` fields (`ColRef::column`, `QppError::Internal`,
//! `MlError::InvalidParameter`) cannot be materialized from wire bytes;
//! decode *interns* them — columns against the owning table's schema,
//! error messages against the known message tables — and falls back to a
//! fixed static when a peer sends an unknown message (the code, which is
//! what callers should dispatch on, is always preserved).

use engine::faults::ExecError;
use engine::{NodeEst, NodeTruth, OpDetail, PlanNode, Trace, TruthCosts, ALL_OP_TYPES};
use ml::MlError;
use qpp::{tier_rank, ExecutedQuery, Method, PlanOrdering, Prediction, QppError, ALL_TIERS};
use tpch::schema::{ColRef, TableId, ALL_TABLES};
use tpch::spec::{JoinKind, Predicate};
use tpch::types::{CmpOp, Scalar};

use engine::sim::NodeTiming;

/// Protocol magic: `b"QPW1"` — protocol name and version in one.
pub const MAGIC: [u8; 4] = *b"QPW1";

/// Bytes in the frame envelope before the payload: magic, kind, length.
pub const HEADER_LEN: usize = 4 + 1 + 4;

/// Default upper bound on one frame's payload length. Generous for any
/// TPC-H plan this repo produces (the deepest template encodes well under
/// 64 KiB) while bounding what a hostile peer can make the server buffer.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Plan trees deeper than this are rejected at decode: no legitimate
/// template comes close, and the cap keeps recursive decode of
/// adversarial bytes off the stack limit.
pub const MAX_PLAN_DEPTH: usize = 64;

const MAX_STRING: usize = 4096;
const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_ERROR: u8 = 3;

/// Known `QppError::Internal` messages, for interning on decode.
const INTERNAL_MESSAGES: [&str; 7] = [
    "serving worker dropped the reply",
    "tenant server is shutting down",
    "unknown tenant",
    "sub-plan structure not in the training index",
    "malformed request frame",
    "request aborted at shutdown",
    "tenant was removed while the request was in flight",
];

/// Fallback when a peer sends an `Internal` message we do not know.
pub const UNKNOWN_INTERNAL: &str = "unrecognized internal error from peer";

/// Known `MlError::InvalidParameter` messages, for interning on decode.
const INVALID_PARAM_MESSAGES: [&str; 4] = [
    "ridge must be non-negative",
    "C must be positive",
    "epsilon must be non-negative",
    "nu must be in (0, 1]",
];

/// Fallback when a peer sends an `InvalidParameter` message we do not
/// know.
pub const UNKNOWN_INVALID_PARAM: &str = "unrecognized parameter error from peer";

/// Why a buffer failed to decode as a `QPPWIRE-v1` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ends before the structure it announces; `needed` is a
    /// lower bound on the total bytes required (stream readers keep
    /// reading, parsers of complete frames treat it as malformed).
    Truncated {
        /// Minimum total length the buffer must reach.
        needed: usize,
    },
    /// The first four bytes are not [`MAGIC`]: not this protocol (or a
    /// corrupted / desynchronized stream).
    BadMagic,
    /// The frame kind byte is none of request/response/error.
    UnknownKind(u8),
    /// The announced payload length exceeds the receiver's frame cap.
    Oversized {
        /// Announced payload length.
        len: usize,
        /// The receiver's cap.
        max: usize,
    },
    /// The payload is structurally invalid; the message names the gate
    /// that rejected it.
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed } => {
                write!(f, "frame truncated (needs at least {needed} bytes)")
            }
            DecodeError::BadMagic => write!(f, "bad magic: not a QPPWIRE-v1 frame"),
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            DecodeError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A prediction request as it travels the wire.
///
/// No `PartialEq`: `ExecutedQuery` does not compare, and the codec's
/// identity contract is *canonical bytes* anyway — decode then re-encode
/// is byte-identical, which is what the round-trip tests pin.
#[derive(Debug, Clone)]
pub struct Request {
    /// Client-chosen request id, echoed verbatim in the reply frame.
    pub id: u64,
    /// Tenant the request is submitted under.
    pub tenant: String,
    /// Requested prediction method.
    pub method: Method,
    /// Deadline budget in microseconds; `None` = no deadline.
    pub deadline_micros: Option<u64>,
    /// The estimate-annotated plan to predict for.
    pub query: ExecutedQuery,
}

/// A successful prediction reply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Response {
    /// The request id this answers.
    pub id: u64,
    /// The prediction (value travels as IEEE-754 bits: bit-exact).
    pub prediction: Prediction,
}

/// A typed error reply: the wire mirror of `Err(QppError)`.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorFrame {
    /// The request id this answers (0 when the request id could not be
    /// parsed out of a malformed frame).
    pub id: u64,
    /// The error, reconstructed variant-exactly from its wire code.
    pub error: QppError,
}

/// One decoded `QPPWIRE-v1` frame.
// `Request` dwarfs the other variants (it embeds a whole plan), but a
// `Frame` is per-connection scratch that lives only between decode and
// dispatch — boxing would buy nothing except an extra allocation on
// every request the front door decodes.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Frame {
    /// A prediction request.
    Request(Request),
    /// A successful reply.
    Response(Response),
    /// A typed error reply.
    Error(ErrorFrame),
}

impl Frame {
    /// Encodes the frame — envelope and payload — into fresh bytes.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, payload) = match self {
            Frame::Request(r) => (KIND_REQUEST, encode_request(r)),
            Frame::Response(r) => (KIND_RESPONSE, encode_response(r)),
            Frame::Error(e) => (KIND_ERROR, encode_error(e)),
        };
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(kind);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes exactly one frame from `bytes`, which must contain the
    /// whole frame and nothing else. Never panics; arbitrary bytes yield
    /// a [`DecodeError`].
    pub fn decode(bytes: &[u8], max_frame: usize) -> Result<Frame, DecodeError> {
        let (kind, len) = decode_header(bytes, max_frame)?;
        let total = HEADER_LEN + len;
        if bytes.len() < total {
            return Err(DecodeError::Truncated { needed: total });
        }
        if bytes.len() > total {
            return Err(DecodeError::Malformed("trailing bytes after frame"));
        }
        let mut r = Reader::new(&bytes[HEADER_LEN..total]);
        let frame = match kind {
            KIND_REQUEST => Frame::Request(decode_request(&mut r)?),
            KIND_RESPONSE => Frame::Response(decode_response(&mut r)?),
            KIND_ERROR => Frame::Error(decode_error(&mut r)?),
            _ => unreachable!("decode_header validated the kind"),
        };
        if !r.is_empty() {
            return Err(DecodeError::Malformed("trailing bytes in payload"));
        }
        Ok(frame)
    }
}

/// Validates a frame envelope and returns `(kind, payload_len)`.
///
/// `bytes` must hold at least [`HEADER_LEN`] bytes — stream readers call
/// this after reading the fixed-size header, then read exactly
/// `payload_len` more. Magic, kind, and the frame cap are all enforced
/// here, so a hostile header never causes a payload allocation.
pub fn decode_header(bytes: &[u8], max_frame: usize) -> Result<(u8, usize), DecodeError> {
    if bytes.len() < HEADER_LEN {
        return Err(DecodeError::Truncated { needed: HEADER_LEN });
    }
    if bytes[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let kind = bytes[4];
    if !(KIND_REQUEST..=KIND_ERROR).contains(&kind) {
        return Err(DecodeError::UnknownKind(kind));
    }
    let len = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]) as usize;
    if len > max_frame {
        return Err(DecodeError::Oversized { len, max: max_frame });
    }
    Ok((kind, len))
}

// ---------------------------------------------------------------------
// Bounds-checked reader.
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Malformed("payload shorter than announced"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(self.u32()? as i32)
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(self.u64()? as i64)
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u32` element count, validated against the bytes that are
    /// actually left (`min_elem` bytes per element), so a hostile length
    /// can never trigger an oversized allocation.
    fn count(&mut self, min_elem: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem.max(1)) > self.remaining() {
            return Err(DecodeError::Malformed("element count exceeds payload"));
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<&'a str, DecodeError> {
        let n = self.u16()? as usize;
        if n > MAX_STRING {
            return Err(DecodeError::Malformed("string too long"));
        }
        std::str::from_utf8(self.take(n)?).map_err(|_| DecodeError::Malformed("invalid utf-8"))
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    debug_assert!(s.len() <= MAX_STRING);
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

// ---------------------------------------------------------------------
// Method / tier.
// ---------------------------------------------------------------------

fn method_code(m: Method) -> u8 {
    match m {
        Method::PlanLevel => 0,
        Method::OperatorLevel => 1,
        Method::Hybrid(PlanOrdering::SizeBased) => 2,
        Method::Hybrid(PlanOrdering::FrequencyBased) => 3,
        Method::Hybrid(PlanOrdering::ErrorBased) => 4,
    }
}

fn method_from(code: u8) -> Result<Method, DecodeError> {
    Ok(match code {
        0 => Method::PlanLevel,
        1 => Method::OperatorLevel,
        2 => Method::Hybrid(PlanOrdering::SizeBased),
        3 => Method::Hybrid(PlanOrdering::FrequencyBased),
        4 => Method::Hybrid(PlanOrdering::ErrorBased),
        _ => return Err(DecodeError::Malformed("unknown method code")),
    })
}

// ---------------------------------------------------------------------
// Request payload.
// ---------------------------------------------------------------------

fn encode_request(r: &Request) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&r.id.to_le_bytes());
    put_str(&mut out, &r.tenant);
    out.push(method_code(r.method));
    out.extend_from_slice(&r.deadline_micros.unwrap_or(u64::MAX).to_le_bytes());
    out.push(r.query.template);
    encode_node(&mut out, &r.query.plan);
    out.extend_from_slice(&(r.query.truth_costs.costs.len() as u32).to_le_bytes());
    for &(a, b) in &r.query.truth_costs.costs {
        put_f64(&mut out, a);
        put_f64(&mut out, b);
    }
    out.extend_from_slice(&(r.query.trace.timings.len() as u32).to_le_bytes());
    for t in &r.query.trace.timings {
        put_f64(&mut out, t.start);
        put_f64(&mut out, t.run);
    }
    put_f64(&mut out, r.query.trace.total_secs);
    out.extend_from_slice(&(r.query.trace.io_pages.len() as u32).to_le_bytes());
    for &p in &r.query.trace.io_pages {
        put_f64(&mut out, p);
    }
    out
}

fn decode_request(r: &mut Reader) -> Result<Request, DecodeError> {
    let id = r.u64()?;
    let tenant = r.str()?.to_string();
    let method = method_from(r.u8()?)?;
    let deadline = r.u64()?;
    let template = r.u8()?;
    let plan = decode_node(r, 0)?;
    let n = r.count(16)?;
    let mut costs = Vec::with_capacity(n);
    for _ in 0..n {
        costs.push((r.f64()?, r.f64()?));
    }
    let n = r.count(16)?;
    let mut timings = Vec::with_capacity(n);
    for _ in 0..n {
        timings.push(NodeTiming {
            start: r.f64()?,
            run: r.f64()?,
        });
    }
    let total_secs = r.f64()?;
    let n = r.count(8)?;
    let mut io_pages = Vec::with_capacity(n);
    for _ in 0..n {
        io_pages.push(r.f64()?);
    }
    Ok(Request {
        id,
        tenant,
        method,
        deadline_micros: (deadline != u64::MAX).then_some(deadline),
        query: ExecutedQuery {
            template,
            plan,
            truth_costs: TruthCosts { costs },
            trace: Trace {
                timings,
                total_secs,
                io_pages,
            },
        },
    })
}

// ---------------------------------------------------------------------
// Plan tree.
// ---------------------------------------------------------------------

fn encode_node(out: &mut Vec<u8>, node: &PlanNode) {
    out.push(node.op.index() as u8);
    put_f64(out, node.est.startup_cost);
    put_f64(out, node.est.total_cost);
    put_f64(out, node.est.rows);
    put_f64(out, node.est.width);
    put_f64(out, node.est.pages);
    put_f64(out, node.est.selectivity);
    put_f64(out, node.truth.rows);
    put_f64(out, node.truth.pages);
    put_f64(out, node.truth.selectivity);
    encode_detail(out, &node.detail);
    out.push(node.children.len() as u8);
    for c in &node.children {
        encode_node(out, c);
    }
}

fn decode_node(r: &mut Reader, depth: usize) -> Result<PlanNode, DecodeError> {
    if depth > MAX_PLAN_DEPTH {
        return Err(DecodeError::Malformed("plan tree too deep"));
    }
    let op_idx = r.u8()? as usize;
    let op = *ALL_OP_TYPES
        .get(op_idx)
        .ok_or(DecodeError::Malformed("unknown operator code"))?;
    let est = NodeEst {
        startup_cost: r.f64()?,
        total_cost: r.f64()?,
        rows: r.f64()?,
        width: r.f64()?,
        pages: r.f64()?,
        selectivity: r.f64()?,
    };
    let truth = NodeTruth {
        rows: r.f64()?,
        pages: r.f64()?,
        selectivity: r.f64()?,
    };
    let detail = decode_detail(r)?;
    let n_children = r.u8()? as usize;
    if n_children > 8 {
        return Err(DecodeError::Malformed("too many children"));
    }
    let mut children = Vec::with_capacity(n_children);
    for _ in 0..n_children {
        children.push(decode_node(r, depth + 1)?);
    }
    Ok(PlanNode {
        op,
        children,
        est,
        truth,
        detail,
    })
}

fn encode_detail(out: &mut Vec<u8>, detail: &OpDetail) {
    match detail {
        OpDetail::Scan { table, filters } => {
            out.push(0);
            out.push(table_code(*table));
            out.extend_from_slice(&(filters.len() as u16).to_le_bytes());
            for p in filters {
                encode_predicate(out, p);
            }
        }
        OpDetail::Join { kind, on } => {
            out.push(1);
            out.push(match kind {
                JoinKind::Inner => 0,
                JoinKind::LeftOuter => 1,
                JoinKind::Semi => 2,
                JoinKind::Anti => 3,
            });
            encode_colref(out, on.0);
            encode_colref(out, on.1);
        }
        OpDetail::Agg {
            n_aggs,
            numeric_ops,
            n_group_cols,
        } => {
            out.push(2);
            out.extend_from_slice(&n_aggs.to_le_bytes());
            out.extend_from_slice(&numeric_ops.to_le_bytes());
            out.extend_from_slice(&n_group_cols.to_le_bytes());
        }
        OpDetail::Sort { keys } => {
            out.push(3);
            out.extend_from_slice(&keys.to_le_bytes());
        }
        OpDetail::Materialize { rescans } => {
            out.push(4);
            put_f64(out, *rescans);
        }
        OpDetail::Limit { count } => {
            out.push(5);
            out.extend_from_slice(&count.to_le_bytes());
        }
        OpDetail::Subquery {
            correlated,
            executions,
        } => {
            out.push(6);
            out.push(*correlated as u8);
            put_f64(out, *executions);
        }
        OpDetail::None => out.push(7),
    }
}

fn decode_detail(r: &mut Reader) -> Result<OpDetail, DecodeError> {
    Ok(match r.u8()? {
        0 => {
            let table = table_from(r.u8()?)?;
            let n = r.u16()? as usize;
            if n.saturating_mul(4) > r.remaining() {
                return Err(DecodeError::Malformed("filter count exceeds payload"));
            }
            let mut filters = Vec::with_capacity(n);
            for _ in 0..n {
                filters.push(decode_predicate(r)?);
            }
            OpDetail::Scan { table, filters }
        }
        1 => OpDetail::Join {
            kind: match r.u8()? {
                0 => JoinKind::Inner,
                1 => JoinKind::LeftOuter,
                2 => JoinKind::Semi,
                3 => JoinKind::Anti,
                _ => return Err(DecodeError::Malformed("unknown join kind")),
            },
            on: (decode_colref(r)?, decode_colref(r)?),
        },
        2 => OpDetail::Agg {
            n_aggs: r.u32()?,
            numeric_ops: r.u32()?,
            n_group_cols: r.u32()?,
        },
        3 => OpDetail::Sort { keys: r.u32()? },
        4 => OpDetail::Materialize { rescans: r.f64()? },
        5 => OpDetail::Limit { count: r.u64()? },
        6 => OpDetail::Subquery {
            correlated: match r.u8()? {
                0 => false,
                1 => true,
                _ => return Err(DecodeError::Malformed("bad bool")),
            },
            executions: r.f64()?,
        },
        7 => OpDetail::None,
        _ => return Err(DecodeError::Malformed("unknown detail tag")),
    })
}

fn table_code(t: TableId) -> u8 {
    ALL_TABLES
        .iter()
        .position(|&x| x == t)
        .expect("all tables enumerated") as u8
}

fn table_from(code: u8) -> Result<TableId, DecodeError> {
    ALL_TABLES
        .get(code as usize)
        .copied()
        .ok_or(DecodeError::Malformed("unknown table code"))
}

fn encode_colref(out: &mut Vec<u8>, c: ColRef) {
    out.push(table_code(c.table));
    put_str(out, c.column);
}

/// Columns decode by *interning*: the wire carries the column name, and
/// decode resolves it against the owning table's static schema, so the
/// in-memory `&'static str` invariant survives the wire. An unknown
/// column is a malformed frame, not a panic.
fn decode_colref(r: &mut Reader) -> Result<ColRef, DecodeError> {
    let table = table_from(r.u8()?)?;
    let name = r.str()?;
    let column = table
        .columns()
        .iter()
        .find(|&&c| c == name)
        .copied()
        .ok_or(DecodeError::Malformed("unknown column for table"))?;
    Ok(ColRef { table, column })
}

fn encode_predicate(out: &mut Vec<u8>, p: &Predicate) {
    match p {
        Predicate::Cmp { col, op, value } => {
            out.push(0);
            encode_colref(out, *col);
            out.push(cmp_code(*op));
            encode_scalar(out, *value);
        }
        Predicate::Between { col, lo, hi } => {
            out.push(1);
            encode_colref(out, *col);
            encode_scalar(out, *lo);
            encode_scalar(out, *hi);
        }
        Predicate::InSet { col, values } => {
            out.push(2);
            encode_colref(out, *col);
            out.extend_from_slice(&(values.len() as u16).to_le_bytes());
            for &v in values {
                encode_scalar(out, v);
            }
        }
        Predicate::ColCmp { left, op, right } => {
            out.push(3);
            encode_colref(out, *left);
            out.push(cmp_code(*op));
            encode_colref(out, *right);
        }
        Predicate::NameLike { col, color } => {
            out.push(4);
            encode_colref(out, *col);
            out.extend_from_slice(&color.to_le_bytes());
        }
        Predicate::TextNotLike { col, truth } => {
            out.push(5);
            encode_colref(out, *col);
            put_f64(out, *truth);
        }
    }
}

fn decode_predicate(r: &mut Reader) -> Result<Predicate, DecodeError> {
    Ok(match r.u8()? {
        0 => Predicate::Cmp {
            col: decode_colref(r)?,
            op: cmp_from(r.u8()?)?,
            value: decode_scalar(r)?,
        },
        1 => Predicate::Between {
            col: decode_colref(r)?,
            lo: decode_scalar(r)?,
            hi: decode_scalar(r)?,
        },
        2 => {
            let col = decode_colref(r)?;
            let n = r.u16()? as usize;
            if n.saturating_mul(5) > r.remaining() {
                return Err(DecodeError::Malformed("set size exceeds payload"));
            }
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(decode_scalar(r)?);
            }
            Predicate::InSet { col, values }
        }
        3 => Predicate::ColCmp {
            left: decode_colref(r)?,
            op: cmp_from(r.u8()?)?,
            right: decode_colref(r)?,
        },
        4 => Predicate::NameLike {
            col: decode_colref(r)?,
            color: r.u32()?,
        },
        5 => Predicate::TextNotLike {
            col: decode_colref(r)?,
            truth: r.f64()?,
        },
        _ => return Err(DecodeError::Malformed("unknown predicate tag")),
    })
}

fn cmp_code(op: CmpOp) -> u8 {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Lt => 1,
        CmpOp::Le => 2,
        CmpOp::Gt => 3,
        CmpOp::Ge => 4,
        CmpOp::Ne => 5,
    }
}

fn cmp_from(code: u8) -> Result<CmpOp, DecodeError> {
    Ok(match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Lt,
        2 => CmpOp::Le,
        3 => CmpOp::Gt,
        4 => CmpOp::Ge,
        5 => CmpOp::Ne,
        _ => return Err(DecodeError::Malformed("unknown comparison code")),
    })
}

fn encode_scalar(out: &mut Vec<u8>, s: Scalar) {
    match s {
        Scalar::Int(v) => {
            out.push(0);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Scalar::Float(v) => {
            out.push(1);
            put_f64(out, v);
        }
        Scalar::Date(v) => {
            out.push(2);
            out.extend_from_slice(&v.to_le_bytes());
        }
        Scalar::Cat(v) => {
            out.push(3);
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn decode_scalar(r: &mut Reader) -> Result<Scalar, DecodeError> {
    Ok(match r.u8()? {
        0 => Scalar::Int(r.i64()?),
        1 => Scalar::Float(r.f64()?),
        2 => Scalar::Date(r.i32()?),
        3 => Scalar::Cat(r.u32()?),
        _ => return Err(DecodeError::Malformed("unknown scalar tag")),
    })
}

// ---------------------------------------------------------------------
// Response payload.
// ---------------------------------------------------------------------

fn encode_response(r: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(18);
    out.extend_from_slice(&r.id.to_le_bytes());
    put_f64(&mut out, r.prediction.value);
    out.push(tier_rank(r.prediction.method_used) as u8);
    out.push(r.prediction.degraded as u8);
    out
}

fn decode_response(r: &mut Reader) -> Result<Response, DecodeError> {
    let id = r.u64()?;
    let value = r.f64()?;
    let tier = *ALL_TIERS
        .get(r.u8()? as usize)
        .ok_or(DecodeError::Malformed("unknown tier code"))?;
    let degraded = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(DecodeError::Malformed("bad bool")),
    };
    Ok(Response {
        id,
        prediction: Prediction {
            value,
            method_used: tier,
            degraded,
        },
    })
}

// ---------------------------------------------------------------------
// Error payload.
// ---------------------------------------------------------------------

fn encode_error(e: &ErrorFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    out.extend_from_slice(&e.id.to_le_bytes());
    out.extend_from_slice(&e.error.wire_code().to_le_bytes());
    match &e.error {
        QppError::Ml(MlError::ShapeMismatch { expected, got }) => {
            out.extend_from_slice(&(*expected as u64).to_le_bytes());
            out.extend_from_slice(&(*got as u64).to_le_bytes());
        }
        QppError::Ml(MlError::EmptyDataset)
        | QppError::Ml(MlError::NotPositiveDefinite)
        | QppError::Ml(MlError::NonFiniteData)
        | QppError::NoTrainingData => {}
        QppError::Ml(MlError::InvalidParameter(msg)) => put_str(&mut out, msg),
        QppError::Ml(MlError::DidNotConverge { iterations }) => {
            out.extend_from_slice(&(*iterations as u64).to_le_bytes());
        }
        QppError::Exec(ExecError::Aborted { progress }) => put_f64(&mut out, *progress),
        QppError::Exec(ExecError::Timeout {
            budget_secs,
            needed_secs,
        }) => {
            put_f64(&mut out, *budget_secs);
            put_f64(&mut out, *needed_secs);
        }
        QppError::InvalidSnapshot(msg) => put_str(&mut out, truncate(msg)),
        QppError::Io(msg) => put_str(&mut out, truncate(msg)),
        QppError::Internal(msg) => put_str(&mut out, msg),
        QppError::Overloaded { queue_depth } => {
            out.extend_from_slice(&(*queue_depth as u64).to_le_bytes());
        }
        QppError::TenantOverloaded { tenant } => put_str(&mut out, truncate(tenant)),
        QppError::DeadlineExceeded { budget_secs } => put_f64(&mut out, *budget_secs),
        // `QppError` is non_exhaustive from this crate's viewpoint: a
        // variant added without a wire mapping encodes as its code with
        // an empty body, which decodes to `Internal` below — visible,
        // not silent, in cross-version tests.
        _ => {}
    }
    out
}

fn truncate(s: &str) -> &str {
    if s.len() <= MAX_STRING {
        return s;
    }
    let mut end = MAX_STRING;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

fn decode_qpp_error(r: &mut Reader) -> Result<QppError, DecodeError> {
    let code = r.u16()?;
    Ok(match code {
        0x0101 => QppError::Ml(MlError::ShapeMismatch {
            expected: r.u64()? as usize,
            got: r.u64()? as usize,
        }),
        0x0102 => QppError::Ml(MlError::EmptyDataset),
        0x0103 => QppError::Ml(MlError::NotPositiveDefinite),
        0x0104 => {
            let msg = r.str()?;
            QppError::Ml(MlError::InvalidParameter(
                intern(&INVALID_PARAM_MESSAGES, msg).unwrap_or(UNKNOWN_INVALID_PARAM),
            ))
        }
        0x0105 => QppError::Ml(MlError::NonFiniteData),
        0x0106 => QppError::Ml(MlError::DidNotConverge {
            iterations: r.u64()? as usize,
        }),
        0x0201 => QppError::Exec(ExecError::Aborted {
            progress: r.f64()?,
        }),
        0x0202 => QppError::Exec(ExecError::Timeout {
            budget_secs: r.f64()?,
            needed_secs: r.f64()?,
        }),
        0x0301 => QppError::NoTrainingData,
        0x0302 => QppError::InvalidSnapshot(r.str()?.to_string()),
        0x0303 => QppError::Io(r.str()?.to_string()),
        0x0304 => {
            let msg = r.str()?;
            QppError::Internal(intern(&INTERNAL_MESSAGES, msg).unwrap_or(UNKNOWN_INTERNAL))
        }
        0x0401 => QppError::Overloaded {
            queue_depth: r.u64()? as usize,
        },
        0x0402 => QppError::TenantOverloaded {
            tenant: r.str()?.to_string(),
        },
        0x0403 => QppError::DeadlineExceeded {
            budget_secs: r.f64()?,
        },
        _ => return Err(DecodeError::Malformed("unknown error code")),
    })
}

fn decode_error(r: &mut Reader) -> Result<ErrorFrame, DecodeError> {
    let id = r.u64()?;
    let error = decode_qpp_error(r)?;
    Ok(ErrorFrame { id, error })
}

fn intern(table: &[&'static str], msg: &str) -> Option<&'static str> {
    table.iter().find(|&&m| m == msg).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::catalog::Catalog;
    use engine::planner::Planner;
    use engine::recost::recost_truth;
    use engine::sim::Simulator;
    use rand::prelude::*;
    use tpch::templates;

    fn sample_query(template: u8, seed: u64) -> ExecutedQuery {
        let catalog = Catalog::new(0.1, 1);
        let planner = Planner::new(&catalog);
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = planner.plan(&templates::instantiate(template, 0.1, &mut rng));
        let trace = Simulator::new().execute(&plan, 0.1, seed);
        let truth_costs = recost_truth(&plan, 4096.0);
        ExecutedQuery {
            template,
            plan,
            truth_costs,
            trace,
        }
    }

    fn all_errors() -> Vec<QppError> {
        vec![
            QppError::Ml(MlError::ShapeMismatch {
                expected: 12,
                got: 7,
            }),
            QppError::Ml(MlError::EmptyDataset),
            QppError::Ml(MlError::NotPositiveDefinite),
            QppError::Ml(MlError::InvalidParameter("C must be positive")),
            QppError::Ml(MlError::NonFiniteData),
            QppError::Ml(MlError::DidNotConverge { iterations: 500 }),
            QppError::Exec(ExecError::Aborted { progress: 0.25 }),
            QppError::Exec(ExecError::Timeout {
                budget_secs: 1.5,
                needed_secs: 9.0,
            }),
            QppError::NoTrainingData,
            QppError::InvalidSnapshot("checksum mismatch".to_string()),
            QppError::Io("permission denied".to_string()),
            QppError::Internal("unknown tenant"),
            QppError::Overloaded { queue_depth: 512 },
            QppError::TenantOverloaded {
                tenant: "analytics".to_string(),
            },
            QppError::DeadlineExceeded { budget_secs: 0.125 },
        ]
    }

    #[test]
    fn request_frames_round_trip_for_every_template() {
        for template in templates::ALL_TEMPLATES {
            let req = Request {
                id: 7_000 + template as u64,
                tenant: format!("tenant-{template}"),
                method: Method::Hybrid(PlanOrdering::ErrorBased),
                deadline_micros: Some(250_000),
                query: sample_query(template, 11),
            };
            let bytes = Frame::Request(req.clone()).encode();
            let back = Frame::decode(&bytes, DEFAULT_MAX_FRAME).expect("decode");
            assert!(matches!(back, Frame::Request(_)), "template {template}");
            // Re-encoding the decoded frame is byte-identical: the codec
            // has one canonical form, so this pins full field identity.
            assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn nan_estimates_survive_the_wire_bit_exactly() {
        let mut q = sample_query(6, 3);
        q.plan.est.rows = f64::NAN;
        q.plan.est.total_cost = f64::NEG_INFINITY;
        q.trace.total_secs = f64::INFINITY;
        let req = Request {
            id: 1,
            tenant: "t".into(),
            method: Method::PlanLevel,
            deadline_micros: None,
            query: q,
        };
        let bytes = Frame::Request(req.clone()).encode();
        match Frame::decode(&bytes, DEFAULT_MAX_FRAME).expect("decode") {
            Frame::Request(back) => {
                assert_eq!(
                    back.query.plan.est.rows.to_bits(),
                    req.query.plan.est.rows.to_bits()
                );
                assert_eq!(back.query.trace.total_secs, f64::INFINITY);
                assert_eq!(back.query.plan.est.total_cost, f64::NEG_INFINITY);
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn response_frames_round_trip_for_every_tier_and_method() {
        for (i, &tier) in ALL_TIERS.iter().enumerate() {
            let resp = Response {
                id: 42 + i as u64,
                prediction: Prediction {
                    value: 0.001 * (i + 1) as f64,
                    method_used: tier,
                    degraded: i % 2 == 0,
                },
            };
            let bytes = Frame::Response(resp).encode();
            match Frame::decode(&bytes, DEFAULT_MAX_FRAME).expect("decode") {
                Frame::Response(back) => assert_eq!(back, resp),
                other => panic!("wrong frame {other:?}"),
            }
        }
        for code in 0..5u8 {
            let m = method_from(code).unwrap();
            assert_eq!(method_code(m), code);
        }
    }

    #[test]
    fn every_error_variant_round_trips_with_its_wire_code() {
        for err in all_errors() {
            let frame = Frame::Error(ErrorFrame {
                id: 9,
                error: err.clone(),
            });
            let bytes = frame.encode();
            let back = Frame::decode(&bytes, DEFAULT_MAX_FRAME).expect("decode");
            match &back {
                Frame::Error(e) => {
                    assert_eq!(e.error, err, "variant must reconstruct exactly");
                    assert_eq!(e.error.wire_code(), err.wire_code());
                    assert_eq!(e.id, 9);
                }
                other => panic!("wrong frame {other:?}"),
            }
            assert_eq!(back.encode(), bytes);
        }
        // All wire codes are distinct.
        let codes: std::collections::HashSet<u16> =
            all_errors().iter().map(|e| e.wire_code()).collect();
        assert_eq!(codes.len(), all_errors().len());
    }

    #[test]
    fn unknown_static_messages_intern_to_the_fallback() {
        // Hand-craft an Internal error frame with a message outside the
        // intern table: the code survives, the message degrades politely.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&0x0304u16.to_le_bytes());
        put_str(&mut payload, "some future message");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(KIND_ERROR);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match Frame::decode(&bytes, DEFAULT_MAX_FRAME).expect("decode") {
            Frame::Error(e) => assert_eq!(e.error, QppError::Internal(UNKNOWN_INTERNAL)),
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn headers_reject_bad_magic_kind_and_oversize() {
        let req = Frame::Error(ErrorFrame {
            id: 0,
            error: QppError::NoTrainingData,
        });
        let good = req.encode();
        assert!(decode_header(&good, DEFAULT_MAX_FRAME).is_ok());
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            decode_header(&bad, DEFAULT_MAX_FRAME),
            Err(DecodeError::BadMagic)
        );
        let mut bad = good.clone();
        bad[4] = 99;
        assert_eq!(
            decode_header(&bad, DEFAULT_MAX_FRAME),
            Err(DecodeError::UnknownKind(99))
        );
        let mut bad = good.clone();
        bad[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_header(&bad, DEFAULT_MAX_FRAME),
            Err(DecodeError::Oversized { .. })
        ));
        assert_eq!(
            decode_header(&good[..4], DEFAULT_MAX_FRAME),
            Err(DecodeError::Truncated { needed: HEADER_LEN })
        );
        // A frame cap below the announced length rejects before any
        // payload is consumed.
        assert!(matches!(
            decode_header(&good, 4),
            Err(DecodeError::Oversized { .. })
        ));
    }

    #[test]
    fn truncation_and_trailing_bytes_are_malformed_not_panics() {
        let req = Request {
            id: 3,
            tenant: "t".into(),
            method: Method::OperatorLevel,
            deadline_micros: None,
            query: sample_query(3, 5),
        };
        let bytes = Frame::Request(req).encode();
        // Every strict prefix fails cleanly.
        for cut in (0..bytes.len()).step_by(7) {
            assert!(Frame::decode(&bytes[..cut], DEFAULT_MAX_FRAME).is_err());
        }
        // Trailing garbage is rejected, not silently ignored.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(Frame::decode(&extended, DEFAULT_MAX_FRAME).is_err());
    }

    #[test]
    fn seeded_fuzz_decode_never_panics() {
        // A poor man's fuzzer that runs in every environment (the real
        // proptest suite in tests/codec_props.rs goes further when the
        // full proptest crate is available): random buffers, and random
        // single-byte corruptions of valid frames — the exact fault the
        // chaos plan injects on the wire.
        let mut rng = StdRng::seed_from_u64(0xF422);
        for _ in 0..2000 {
            let len = rng.gen_range(0usize..300);
            let buf: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..=255)).collect();
            let _ = Frame::decode(&buf, DEFAULT_MAX_FRAME);
            let _ = decode_header(&buf, DEFAULT_MAX_FRAME);
        }
        let valid = Frame::Request(Request {
            id: 77,
            tenant: "fuzz".into(),
            method: Method::Hybrid(PlanOrdering::SizeBased),
            deadline_micros: Some(1),
            query: sample_query(14, 2),
        })
        .encode();
        for _ in 0..2000 {
            let mut corrupted = valid.clone();
            let at = rng.gen_range(0..corrupted.len());
            corrupted[at] ^= rng.gen_range(1u8..=255);
            // Must not panic; may or may not decode (the flipped byte can
            // land in an f64 payload and still parse).
            let _ = Frame::decode(&corrupted, DEFAULT_MAX_FRAME);
        }
    }

    #[test]
    fn decode_errors_display() {
        for e in [
            DecodeError::Truncated { needed: 9 },
            DecodeError::BadMagic,
            DecodeError::UnknownKind(9),
            DecodeError::Oversized { len: 10, max: 5 },
            DecodeError::Malformed("x"),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
