//! The networked front door: `QPPWIRE-v1` over TCP with connection-level
//! resilience and an exactly-reconciled graceful drain.
//!
//! Everything below is dependency-free blocking I/O on `std::net`:
//!
//! - **Acceptor + fixed worker pool.** One acceptor thread polls a
//!   non-blocking listener and hands sockets to a bounded queue
//!   ([`NetConfig::accept_backlog`]); `max_connections` worker threads
//!   each own one connection at a time. A connection that arrives with
//!   the backlog full is *refused* with a typed
//!   [`QppError::Overloaded`] error frame and closed — admission control
//!   at the socket layer, mirroring the in-process front door.
//! - **Connection-level resilience.** Per-connection read deadlines with
//!   slow-client (slowloris) eviction — a peer that starts a frame and
//!   stalls past [`NetConfig::read_timeout`] is dropped, as is one that
//!   idles far past it between frames — write timeouts on every reply,
//!   a hard frame-size cap, and malformed-frame rejection that answers
//!   with a typed error and *keeps the worker alive*: a session panic is
//!   caught per connection, counted, and the worker moves on.
//! - **Graceful drain.** [`NetServer::shutdown`] stops accepting, lets
//!   every in-flight request run to completion (bounded by
//!   [`NetConfig::drain`]), joins all threads, and returns counters that
//!   reconcile exactly: `accepted == served + shed + missed + aborted`.
//!   Every request takes exactly one of the four exits; malformed frames
//!   are counted separately because they never became requests.
//!
//! The `QPP_NET_*` environment knobs size the front door at startup; an
//! invalid value warns once and falls back to the documented default,
//! the same contract as `QPP_THREADS` (see `ml::par`).

use std::collections::HashSet;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qpp::{Prediction, QppError};

use crate::codec::{decode_header, ErrorFrame, Frame, Request, Response, DEFAULT_MAX_FRAME, HEADER_LEN};
use crate::queue::{BoundedQueue, PushError};
use crate::tenant::TenantServer;

/// Granularity of the read loop's deadline checks: the socket read
/// timeout is this tick, and elapsed-time bookkeeping runs between ticks.
const READ_TICK: Duration = Duration::from_millis(10);

/// Acceptor poll interval while the listener has nothing for us.
const ACCEPT_TICK: Duration = Duration::from_millis(2);

/// A connection idling *between* frames is closed after this many read
/// timeouts' worth of silence (mid-frame stalls get exactly one).
const IDLE_TIMEOUTS: u32 = 20;

/// Sizing and resilience knobs for [`NetServer::bind`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Worker threads, each owning one live connection at a time — the
    /// hard cap on concurrent sessions. Env: `QPP_NET_MAX_CONNS`.
    pub max_connections: usize,
    /// Accepted connections that may wait for a free worker before new
    /// arrivals are refused with a typed `Overloaded` frame.
    /// Env: `QPP_NET_BACKLOG`.
    pub accept_backlog: usize,
    /// Longest a peer may take to finish a frame it started (and the
    /// slowloris eviction budget). Env: `QPP_NET_READ_TIMEOUT_MS`.
    pub read_timeout: Duration,
    /// Socket write timeout for replies; a peer that won't drain its
    /// receive buffer loses the connection.
    /// Env: `QPP_NET_WRITE_TIMEOUT_MS`.
    pub write_timeout: Duration,
    /// Hard cap on a frame's payload length; oversized frames are
    /// rejected before any allocation.
    pub max_frame: usize,
    /// Budget for [`NetServer::shutdown`] to drain in-flight requests
    /// before abandoning their replies (counted `aborted`).
    pub drain: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_connections: 8,
            accept_backlog: 32,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            max_frame: DEFAULT_MAX_FRAME,
            drain: Duration::from_secs(5),
        }
    }
}

/// Parses a positive-count knob: `Ok(None)` when unset, `Ok(Some(n))`
/// for a valid count ≥ 1, `Err(reason)` otherwise (zero included — a
/// pool of zero workers or a backlog of zero slots cannot serve).
/// Pure so it is unit-testable without touching process environment.
pub(crate) fn parse_count_knob(name: &str, raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        Ok(_) => Err(format!("{name}={raw:?} is zero; the front door needs at least one")),
        Err(_) => Err(format!("{name}={raw:?} is not a positive integer")),
    }
}

/// Parses a millisecond-duration knob with the same contract as
/// [`parse_count_knob`]: ≥ 1 ms, or the knob is rejected with a reason.
pub(crate) fn parse_millis_knob(name: &str, raw: Option<&str>) -> Result<Option<Duration>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    match raw.trim().parse::<u64>() {
        Ok(ms) if ms >= 1 => Ok(Some(Duration::from_millis(ms))),
        Ok(_) => Err(format!("{name}={raw:?} is zero; a zero timeout evicts every peer instantly")),
        Err(_) => Err(format!("{name}={raw:?} is not a positive integer (milliseconds)")),
    }
}

/// Warns exactly once per knob name per process, so a misconfigured
/// environment does not spam every `from_env` call.
fn warn_once(name: &'static str, reason: &str, fallback: &str) {
    static WARNED: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let warned = WARNED.get_or_init(|| Mutex::new(HashSet::new()));
    if warned.lock().unwrap().insert(name) {
        eprintln!("warning: ignoring invalid {reason}; using the documented default ({fallback})");
    }
}

impl NetConfig {
    /// The default configuration with any `QPP_NET_*` environment knobs
    /// applied. Invalid values warn once (naming the knob and the reason)
    /// and fall back to the documented default — never a crash, never a
    /// silent surprise.
    pub fn from_env() -> NetConfig {
        let mut cfg = NetConfig::default();
        match parse_count_knob("QPP_NET_MAX_CONNS", std::env::var("QPP_NET_MAX_CONNS").ok().as_deref()) {
            Ok(Some(n)) => cfg.max_connections = n,
            Ok(None) => {}
            Err(reason) => warn_once("QPP_NET_MAX_CONNS", &reason, "8 connections"),
        }
        match parse_count_knob("QPP_NET_BACKLOG", std::env::var("QPP_NET_BACKLOG").ok().as_deref()) {
            Ok(Some(n)) => cfg.accept_backlog = n,
            Ok(None) => {}
            Err(reason) => warn_once("QPP_NET_BACKLOG", &reason, "32 pending connections"),
        }
        match parse_millis_knob(
            "QPP_NET_READ_TIMEOUT_MS",
            std::env::var("QPP_NET_READ_TIMEOUT_MS").ok().as_deref(),
        ) {
            Ok(Some(d)) => cfg.read_timeout = d,
            Ok(None) => {}
            Err(reason) => warn_once("QPP_NET_READ_TIMEOUT_MS", &reason, "2000 ms"),
        }
        match parse_millis_knob(
            "QPP_NET_WRITE_TIMEOUT_MS",
            std::env::var("QPP_NET_WRITE_TIMEOUT_MS").ok().as_deref(),
        ) {
            Ok(Some(d)) => cfg.write_timeout = d,
            Ok(None) => {}
            Err(reason) => warn_once("QPP_NET_WRITE_TIMEOUT_MS", &reason, "2000 ms"),
        }
        cfg
    }
}

/// How a request left the front door. Exactly one per accepted request —
/// the invariant the shutdown reconciliation pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disposition {
    /// A prediction was produced *and delivered*.
    Served,
    /// Refused at admission with `Overloaded`/`TenantOverloaded`.
    Shed,
    /// The request's deadline expired before any tier could answer.
    Missed,
    /// Everything else: failed requests (unknown tenant, model errors),
    /// replies the peer never read, drain-deadline abandonments.
    Aborted,
}

fn classify(error: &QppError) -> Disposition {
    match error {
        QppError::Overloaded { .. } | QppError::TenantOverloaded { .. } => Disposition::Shed,
        QppError::DeadlineExceeded { .. } => Disposition::Missed,
        _ => Disposition::Aborted,
    }
}

#[derive(Default)]
struct NetCounters {
    conns_accepted: AtomicU64,
    conns_refused: AtomicU64,
    conns_evicted: AtomicU64,
    session_panics: AtomicU64,
    malformed_frames: AtomicU64,
    accepted: AtomicU64,
    served: AtomicU64,
    shed: AtomicU64,
    missed: AtomicU64,
    aborted: AtomicU64,
}

/// Point-in-time copy of the front door's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Connections the listener accepted.
    pub conns_accepted: u64,
    /// Connections refused because the backlog was full (each got a
    /// best-effort `Overloaded` error frame) or arrived during shutdown.
    pub conns_refused: u64,
    /// Connections dropped for stalling mid-frame past the read timeout
    /// (slowloris) or idling far past it between frames.
    pub conns_evicted: u64,
    /// Session panics caught by the worker supervisor; the worker thread
    /// survived every one of these.
    pub session_panics: u64,
    /// Frames that failed header validation or payload decoding; never
    /// counted as accepted requests.
    pub malformed_frames: u64,
    /// Well-formed requests handed to the tenant server.
    pub accepted: u64,
    /// Requests answered with a prediction that reached the peer.
    pub served: u64,
    /// Requests refused at admission (global or tenant bulkhead).
    pub shed: u64,
    /// Requests whose deadline expired before any tier answered.
    pub missed: u64,
    /// Requests that failed for any other reason or whose reply could
    /// not be delivered (including drain-deadline abandonment).
    pub aborted: u64,
}

impl NetStatsSnapshot {
    /// The exact drain invariant: every accepted request took exactly one
    /// of the four exits.
    pub fn reconciles(&self) -> bool {
        self.accepted == self.served + self.shed + self.missed + self.aborted
    }
}

impl NetCounters {
    fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    fn record(&self, disposition: Disposition) {
        match disposition {
            Disposition::Served => self.bump(&self.served),
            Disposition::Shed => self.bump(&self.shed),
            Disposition::Missed => self.bump(&self.missed),
            Disposition::Aborted => self.bump(&self.aborted),
        }
    }

    fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            conns_accepted: self.conns_accepted.load(Ordering::Relaxed),
            conns_refused: self.conns_refused.load(Ordering::Relaxed),
            conns_evicted: self.conns_evicted.load(Ordering::Relaxed),
            session_panics: self.session_panics.load(Ordering::Relaxed),
            malformed_frames: self.malformed_frames.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            missed: self.missed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
        }
    }
}

struct NetInner {
    server: Arc<TenantServer>,
    config: NetConfig,
    counters: NetCounters,
    pending: BoundedQueue<TcpStream>,
    shutdown: AtomicBool,
    drain_deadline: Mutex<Option<Instant>>,
}

/// A TCP front door over a [`TenantServer`], speaking `QPPWIRE-v1`.
///
/// Bind with [`NetServer::bind`], connect with [`Client`], stop with
/// [`NetServer::shutdown`] (or drop, which drains with the same
/// guarantees and discards the report).
pub struct NetServer {
    inner: Arc<NetInner>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 to let the OS pick) and starts the
    /// acceptor and worker threads over `server`.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        server: Arc<TenantServer>,
        config: NetConfig,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let worker_count = config.max_connections.max(1);
        let inner = Arc::new(NetInner {
            server,
            pending: BoundedQueue::new(config.accept_backlog.max(1)),
            config,
            counters: NetCounters::default(),
            shutdown: AtomicBool::new(false),
            drain_deadline: Mutex::new(None),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("qpp-net-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &inner))
                .expect("spawning the acceptor thread")
        };
        let workers = (0..worker_count)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("qpp-net-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawning a connection worker")
            })
            .collect();
        Ok(NetServer {
            inner,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (with the OS-assigned port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live counters; for the exactly-reconciled ledger, use the snapshot
    /// [`NetServer::shutdown`] returns.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.inner.counters.snapshot()
    }

    /// Graceful drain, idempotent: stop accepting, let every in-flight
    /// request finish (bounded by [`NetConfig::drain`] once the flag is
    /// up), join the acceptor and all workers, and return the final
    /// counters — which reconcile exactly:
    /// `accepted == served + shed + missed + aborted`.
    ///
    /// The [`TenantServer`] underneath is *not* shut down: it belongs to
    /// the caller (a healer or another front door may still be using it).
    pub fn shutdown(&mut self) -> NetStatsSnapshot {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let mut deadline = self.inner.drain_deadline.lock().unwrap();
            if deadline.is_none() {
                *deadline = Some(Instant::now() + self.inner.config.drain);
            }
        }
        if let Some(acceptor) = self.acceptor.take() {
            if let Err(p) = acceptor.join() {
                std::panic::resume_unwind(p);
            }
        }
        // Close after the acceptor stopped so no accepted socket is
        // pushed into a closed queue and silently dropped; workers drain
        // what is already queued (those sessions see the shutdown flag
        // and close without reading).
        self.inner.pending.close();
        for worker in self.workers.drain(..) {
            if let Err(p) = worker.join() {
                std::panic::resume_unwind(p);
            }
        }
        self.inner.counters.snapshot()
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn acceptor_loop(listener: &TcpListener, inner: &NetInner) {
    while !inner.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.counters.bump(&inner.counters.conns_accepted);
                match inner.pending.try_push(stream) {
                    Ok(_) => {}
                    Err(PushError::Full(stream, _)) => {
                        inner.counters.bump(&inner.counters.conns_refused);
                        refuse_connection(stream, inner);
                    }
                    Err(PushError::Closed(_)) => {
                        inner.counters.bump(&inner.counters.conns_refused);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_TICK),
            Err(_) => std::thread::sleep(ACCEPT_TICK),
        }
    }
}

/// Best-effort typed refusal for a connection the backlog cannot hold:
/// the peer learns it was overload, not a protocol error.
fn refuse_connection(mut stream: TcpStream, inner: &NetInner) {
    let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
    let frame = Frame::Error(ErrorFrame {
        id: 0,
        error: QppError::Overloaded {
            queue_depth: inner.pending.capacity(),
        },
    });
    let _ = stream.write_all(&frame.encode());
}

fn worker_loop(inner: &NetInner) {
    while let Some(stream) = inner.pending.pop_blocking() {
        // One catch_unwind per session: a panic kills the connection,
        // never the worker — "no worker thread dies" is load-bearing for
        // the fixed-size pool.
        if catch_unwind(AssertUnwindSafe(|| handle_session(stream, inner))).is_err() {
            inner.counters.bump(&inner.counters.session_panics);
        }
    }
}

/// What one attempt to read a frame from the peer produced.
enum ReadEvent {
    /// A complete frame (header + payload), ready to decode.
    Frame(Vec<u8>),
    /// Shutdown observed while idle between frames: close cleanly.
    ShutdownIdle,
    /// The peer closed cleanly between frames.
    Eof,
    /// Mid-frame stall or excessive idling: evict the peer.
    Evicted,
    /// The header failed validation; the stream can no longer be framed.
    Corrupt,
    /// Read error or mid-frame disconnect.
    Broken,
}

fn read_frame(stream: &mut TcpStream, inner: &NetInner) -> ReadEvent {
    let mut buf: Vec<u8> = Vec::with_capacity(HEADER_LEN);
    let mut payload_len: Option<usize> = None;
    let mut frame_started: Option<Instant> = None;
    let idle_started = Instant::now();
    let idle_budget = inner.config.read_timeout * IDLE_TIMEOUTS;
    let mut scratch = [0u8; 4096];
    loop {
        let target = HEADER_LEN + payload_len.unwrap_or(0);
        if buf.len() >= target {
            if payload_len.is_none() {
                match decode_header(&buf, inner.config.max_frame) {
                    Ok((_kind, len)) => {
                        payload_len = Some(len);
                        continue;
                    }
                    Err(_) => return ReadEvent::Corrupt,
                }
            }
            return ReadEvent::Frame(buf);
        }
        if buf.is_empty() {
            if inner.shutdown.load(Ordering::SeqCst) {
                return ReadEvent::ShutdownIdle;
            }
            if idle_started.elapsed() > idle_budget {
                return ReadEvent::Evicted;
            }
        } else if let Some(t0) = frame_started {
            if t0.elapsed() > inner.config.read_timeout {
                return ReadEvent::Evicted;
            }
        }
        let want = (target - buf.len()).min(scratch.len());
        match stream.read(&mut scratch[..want]) {
            Ok(0) => {
                return if buf.is_empty() {
                    ReadEvent::Eof
                } else {
                    ReadEvent::Broken
                };
            }
            Ok(n) => {
                if frame_started.is_none() {
                    frame_started = Some(Instant::now());
                }
                buf.extend_from_slice(&scratch[..n]);
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                // Read-timeout tick: loop back to re-check the frame
                // deadline, the idle budget, and the shutdown flag.
            }
            Err(_) => return ReadEvent::Broken,
        }
    }
}

fn handle_session(mut stream: TcpStream, inner: &NetInner) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_write_timeout(Some(inner.config.write_timeout));
    loop {
        match read_frame(&mut stream, inner) {
            ReadEvent::Frame(bytes) => {
                let (reply, disposition) = match Frame::decode(&bytes, inner.config.max_frame) {
                    Ok(Frame::Request(request)) => {
                        inner.counters.bump(&inner.counters.accepted);
                        serve_request(request, inner)
                    }
                    // The envelope was valid (the header passed), so the
                    // stream is still in sync: answer with a typed error
                    // and keep the connection. Never an accepted request.
                    Ok(_) | Err(_) => {
                        inner.counters.bump(&inner.counters.malformed_frames);
                        (malformed_reply(), None)
                    }
                };
                let delivered = stream.write_all(&reply.encode()).is_ok();
                if let Some(disposition) = disposition {
                    // A produced prediction the peer never received is an
                    // abort, not a serve — delivery is part of "served".
                    let actual = match (disposition, delivered) {
                        (Disposition::Served, false) => Disposition::Aborted,
                        (d, _) => d,
                    };
                    inner.counters.record(actual);
                }
                if !delivered {
                    return;
                }
            }
            ReadEvent::ShutdownIdle | ReadEvent::Eof => return,
            ReadEvent::Evicted => {
                inner.counters.bump(&inner.counters.conns_evicted);
                return;
            }
            ReadEvent::Corrupt => {
                inner.counters.bump(&inner.counters.malformed_frames);
                // Best-effort diagnosis, then close: after a bad header
                // the byte stream cannot be re-framed.
                let _ = stream.write_all(&malformed_reply().encode());
                return;
            }
            ReadEvent::Broken => return,
        }
    }
}

fn malformed_reply() -> Frame {
    Frame::Error(ErrorFrame {
        id: 0,
        error: QppError::Internal("malformed request frame"),
    })
}

/// Runs one request through the tenant server and produces the reply
/// frame plus its (pre-delivery) disposition.
fn serve_request(request: Request, inner: &NetInner) -> (Frame, Option<Disposition>) {
    let id = request.id;
    let deadline = request.deadline_micros.map(Duration::from_micros);
    let submitted = inner.server.submit(
        &request.tenant,
        Arc::new(request.query),
        request.method,
        deadline,
    );
    let result = match submitted {
        Ok(pending) => {
            if inner.shutdown.load(Ordering::SeqCst) {
                // Draining: bound the wait by what is left of the budget.
                let remaining = inner
                    .drain_deadline
                    .lock()
                    .unwrap()
                    .map(|d| d.saturating_duration_since(Instant::now()))
                    .unwrap_or(inner.config.drain)
                    .max(Duration::from_millis(1));
                pending.wait_timeout(remaining)
            } else {
                pending.wait()
            }
        }
        Err(e) => Err(e),
    };
    match result {
        Ok(prediction) => (
            Frame::Response(Response { id, prediction }),
            Some(Disposition::Served),
        ),
        Err(error) => {
            let disposition = classify(&error);
            (
                Frame::Error(ErrorFrame { id, error }),
                Some(disposition),
            )
        }
    }
}

/// A minimal blocking `QPPWIRE-v1` client for tests, benches, and the
/// README example: one request in flight at a time.
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects to a [`NetServer`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
        })
    }

    /// Sends one frame and blocks for the peer's single reply frame.
    pub fn call(&mut self, frame: &Frame) -> io::Result<Frame> {
        self.stream.write_all(&frame.encode())?;
        let bytes = read_reply(&mut self.stream, self.max_frame)?;
        Frame::decode(&bytes, self.max_frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Sends a prediction request; the outer `Result` is transport, the
    /// inner one is the server's typed answer.
    pub fn request(&mut self, request: Request) -> io::Result<Result<Prediction, QppError>> {
        match self.call(&Frame::Request(request))? {
            Frame::Response(r) => Ok(Ok(r.prediction)),
            Frame::Error(e) => Ok(Err(e.error)),
            Frame::Request(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "peer sent a request frame as a reply",
            )),
        }
    }

    /// The underlying stream — the chaos tests drive partial writes and
    /// mid-frame disconnects through it.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

/// Blocking exact read of one frame (header, then payload) on a stream
/// with no read timeout set.
fn read_reply(stream: &mut TcpStream, max_frame: usize) -> io::Result<Vec<u8>> {
    let mut buf = vec![0u8; HEADER_LEN];
    stream.read_exact(&mut buf)?;
    let (_kind, len) = decode_header(&buf, max_frame)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    buf.extend_from_slice(&payload);
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_knob_parses_valid_rejects_zero_and_junk() {
        assert_eq!(parse_count_knob("QPP_NET_BACKLOG", None), Ok(None));
        assert_eq!(parse_count_knob("QPP_NET_BACKLOG", Some("16")), Ok(Some(16)));
        assert_eq!(parse_count_knob("QPP_NET_BACKLOG", Some(" 4 ")), Ok(Some(4)));
        assert!(parse_count_knob("QPP_NET_BACKLOG", Some("0"))
            .unwrap_err()
            .contains("zero"));
        for bad in ["", "many", "-3", "2.5"] {
            let err = parse_count_knob("QPP_NET_MAX_CONNS", Some(bad)).unwrap_err();
            assert!(
                err.contains("QPP_NET_MAX_CONNS") && err.contains("positive integer"),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn millis_knob_parses_valid_rejects_zero_and_junk() {
        assert_eq!(parse_millis_knob("QPP_NET_READ_TIMEOUT_MS", None), Ok(None));
        assert_eq!(
            parse_millis_knob("QPP_NET_READ_TIMEOUT_MS", Some("250")),
            Ok(Some(Duration::from_millis(250)))
        );
        assert!(parse_millis_knob("QPP_NET_READ_TIMEOUT_MS", Some("0"))
            .unwrap_err()
            .contains("zero"));
        assert!(parse_millis_knob("QPP_NET_WRITE_TIMEOUT_MS", Some("fast"))
            .unwrap_err()
            .contains("QPP_NET_WRITE_TIMEOUT_MS"));
    }

    #[test]
    fn dispositions_classify_and_reconcile() {
        assert_eq!(
            classify(&QppError::Overloaded { queue_depth: 9 }),
            Disposition::Shed
        );
        assert_eq!(
            classify(&QppError::TenantOverloaded {
                tenant: "t".into()
            }),
            Disposition::Shed
        );
        assert_eq!(
            classify(&QppError::DeadlineExceeded { budget_secs: 0.1 }),
            Disposition::Missed
        );
        assert_eq!(
            classify(&QppError::Internal("unknown tenant")),
            Disposition::Aborted
        );
        let counters = NetCounters::default();
        counters.bump(&counters.accepted);
        counters.bump(&counters.accepted);
        counters.record(Disposition::Served);
        counters.record(Disposition::Missed);
        let snap = counters.snapshot();
        assert!(snap.reconciles());
        counters.bump(&counters.accepted);
        assert!(!counters.snapshot().reconciles(), "an open request shows");
    }
}
