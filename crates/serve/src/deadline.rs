//! Deadline propagation and budget-driven tier selection.
//!
//! Every request may carry a latency budget. The worker that picks it up
//! measures what is left of that budget and chooses the *most accurate*
//! prediction tier it can still afford, walking the PR-1 degradation
//! chain (Hybrid → OperatorLevel → PlanLevel → CostScaling →
//! TrainingPrior) in order. A request whose budget cannot even afford the
//! constant training prior is answered with
//! [`qpp::QppError::DeadlineExceeded`] instead of being served late —
//! under overload, a fast degraded answer or an honest refusal both beat
//! a late accurate one (the paper's admission-control use case, Section
//! 1, is worthless after the admission decision was due).

use qpp::{tier_rank, PredictionTier, ALL_TIERS};

/// Estimated per-request service cost of each tier, in seconds, indexed
/// by [`tier_rank`]. Costs must be non-increasing along the chain — the
/// whole point of degrading is that deeper tiers are cheaper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierCosts(pub [f64; 5]);

impl TierCosts {
    /// Rough defaults measured on the simulator-backed models: hybrid
    /// inference dominates, the analytical fallbacks are near-free.
    pub fn default_estimates() -> TierCosts {
        TierCosts([5e-4, 2e-4, 5e-5, 1e-6, 1e-7])
    }

    /// All-zero costs: every tier is always affordable, so deadlines only
    /// reject requests that are already past due when dequeued.
    pub fn zero() -> TierCosts {
        TierCosts([0.0; 5])
    }

    /// The estimated cost of one tier.
    pub fn cost(&self, tier: PredictionTier) -> f64 {
        self.0[tier_rank(tier)]
    }
}

impl Default for TierCosts {
    fn default() -> Self {
        TierCosts::default_estimates()
    }
}

/// The most accurate tier affordable within `remaining_secs`, or `None`
/// when no tier fits (the request must be refused as past-deadline).
/// Walks [`ALL_TIERS`] most-accurate-first, so a generous budget picks
/// Hybrid and a vanishing one falls through to the training prior.
pub fn tier_for_budget(remaining_secs: f64, costs: &TierCosts) -> Option<PredictionTier> {
    // NaN budgets refuse too, same as the old `!(remaining > 0.0)` form.
    if remaining_secs.is_nan() || remaining_secs <= 0.0 {
        return None;
    }
    ALL_TIERS
        .iter()
        .copied()
        .find(|t| costs.cost(*t) <= remaining_secs)
}

/// The tier a request enters the chain at: the deeper (cheaper) of the
/// tier it asked for and the best tier its remaining budget affords.
/// `None` when even the cheapest tier is unaffordable.
pub fn entry_tier(
    requested: PredictionTier,
    remaining_secs: f64,
    costs: &TierCosts,
) -> Option<PredictionTier> {
    let affordable = tier_for_budget(remaining_secs, costs)?;
    if tier_rank(affordable) > tier_rank(requested) {
        Some(affordable)
    } else {
        Some(requested)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpp::PredictionTier::*;

    const COSTS: TierCosts = TierCosts([1.0, 0.1, 0.01, 0.001, 0.0]);

    #[test]
    fn shrinking_budgets_walk_the_tier_chain_in_order() {
        // Each budget decade strips exactly one tier.
        assert_eq!(tier_for_budget(10.0, &COSTS), Some(Hybrid));
        assert_eq!(tier_for_budget(0.5, &COSTS), Some(OperatorLevel));
        assert_eq!(tier_for_budget(0.05, &COSTS), Some(PlanLevel));
        assert_eq!(tier_for_budget(0.005, &COSTS), Some(CostScaling));
        assert_eq!(tier_for_budget(0.0005, &COSTS), Some(TrainingPrior));
    }

    #[test]
    fn exhausted_or_garbage_budgets_refuse() {
        assert_eq!(tier_for_budget(0.0, &COSTS), None);
        assert_eq!(tier_for_budget(-1.0, &COSTS), None);
        assert_eq!(tier_for_budget(f64::NAN, &COSTS), None);
        // With a floor cost above the budget, even the prior is refused.
        let floored = TierCosts([1.0, 0.5, 0.2, 0.1, 0.05]);
        assert_eq!(tier_for_budget(0.01, &floored), None);
    }

    #[test]
    fn entry_tier_never_upgrades_a_request() {
        // A PlanLevel request with a lavish budget stays PlanLevel.
        assert_eq!(entry_tier(PlanLevel, 100.0, &COSTS), Some(PlanLevel));
        // But a Hybrid request on a tight budget degrades.
        assert_eq!(entry_tier(Hybrid, 0.05, &COSTS), Some(PlanLevel));
        assert_eq!(entry_tier(Hybrid, 0.0005, &COSTS), Some(TrainingPrior));
        assert_eq!(entry_tier(Hybrid, 0.0, &COSTS), None);
    }

    #[test]
    fn zero_costs_always_afford_the_requested_tier() {
        let z = TierCosts::zero();
        for t in ALL_TIERS {
            assert_eq!(entry_tier(t, 1e-9, &z), Some(t));
        }
        assert_eq!(entry_tier(Hybrid, 0.0, &z), None, "expired is still expired");
    }

    #[test]
    fn default_estimates_are_non_increasing() {
        let d = TierCosts::default();
        for w in d.0.windows(2) {
            assert!(w[0] >= w[1], "tier costs must not increase along the chain");
        }
    }
}
