//! Multi-tenant bulkhead serving with a closed-loop SLO → drift healing
//! path.
//!
//! The single-queue [`crate::server::PredictionServer`] protects the
//! *service* from overload, but not tenants from each other: one noisy
//! workload fills the shared queue and every other caller's p99 pays for
//! it — the per-workload heterogeneity that production studies of learned
//! QPP report as a dominant failure mode. This module partitions the
//! front-end into bulkheads:
//!
//! - **Per-tenant shards.** Each tenant owns its own hot-swap
//!   [`ModelRegistry`], token-bucket admission budget, queue-depth quota,
//!   SLO counters, and drift monitor (and with it per-tier breaker state
//!   on its own predictor). A noisy tenant is shed at admission with
//!   [`QppError::TenantOverloaded`] while quiet tenants keep their
//!   deadline budgets.
//! - **Weighted-fair dequeue.** [`WeightedFairQueue`] gives every tenant
//!   its own FIFO lane and serves the backlogged lane with the smallest
//!   virtual time (vtime advances by `items / weight` on dequeue), so
//!   service capacity divides by weight no matter how asymmetric the
//!   arrival streams are. A global capacity bounds total memory on top of
//!   the per-tenant quotas.
//! - **Closed loop.** Each tenant's SLO counters fold into its
//!   [`DriftMonitor`] as a second escalation signal
//!   ([`TenantServer::slo_tick`]): sustained degraded/missed/shed traffic
//!   drives the same Suspect → Quarantined ladder as residual drift, and
//!   [`TenantServer::heal`] runs quarantine → shadow retrain → promote on
//!   *that tenant's* registry only, with post-promotion validation and
//!   rollback when the promoted model regresses on fresh traffic.

use engine::faults::ServeFaultPlan;
use qpp::{
    DriftMonitor, Method, ModelHealth, ModelRegistry, MonitorConfig, Prediction, PredictionTier,
    PromotionReport, QppError, RetrainConfig, SloWindow,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::admission::{AdmissionController, RateLimit, ShedReason};
use crate::deadline::TierCosts;
use crate::server::{serve_batch, Job, PendingPrediction};
use crate::stats::{ServeStats, ServeStatsSnapshot};

/// Why a tenant-aware push was refused.
#[derive(Debug)]
pub enum TenantPushError<T> {
    /// The tenant's own queue quota is exhausted; the item is handed back
    /// with the tenant's depth at rejection. Only this tenant is affected.
    TenantFull(T, usize),
    /// The queue's *global* capacity is exhausted; the item is handed back
    /// with the total depth at rejection.
    GlobalFull(T, usize),
    /// The queue was closed for shutdown; the item is handed back.
    Closed(T),
}

struct WfqInner<T> {
    /// One FIFO lane per tenant.
    lanes: Vec<VecDeque<T>>,
    /// Per-tenant virtual finish time: advanced by `items / weight` on
    /// every dequeue, so the backlogged lane with the smallest vtime is
    /// always the one furthest below its fair share.
    vtime: Vec<f64>,
    /// Global virtual time: the vtime of the most recent dequeue. A lane
    /// going from empty to non-empty is lifted to at least this value, so
    /// idle tenants cannot bank credit while away.
    global_v: f64,
    total: usize,
    closed: bool,
}

/// A bounded multi-lane MPMC queue with weighted-fair dequeue.
///
/// Producers push into their tenant's lane and are rejected synchronously
/// when either the tenant's quota or the global capacity is exhausted —
/// the bulkhead property: lane `t` filling up never consumes another
/// lane's quota. Consumers pop *single-tenant batches*: the backlogged
/// lane with the smallest virtual time is drained up to the batch limit,
/// and its vtime is charged `items / weight`, which makes long-run service
/// proportional to weight for continuously backlogged lanes (the classic
/// virtual-time WFQ argument; the proptests in `tenant_props.rs` pin the
/// `batch / min_weight` fairness bound exactly).
pub struct WeightedFairQueue<T> {
    inner: Mutex<WfqInner<T>>,
    not_empty: Condvar,
    weights: Vec<f64>,
    quotas: Vec<usize>,
    global_capacity: usize,
}

impl<T> WeightedFairQueue<T> {
    /// An empty queue with no lanes and a global capacity of at least 1.
    pub fn new(global_capacity: usize) -> WeightedFairQueue<T> {
        WeightedFairQueue {
            inner: Mutex::new(WfqInner {
                lanes: Vec::new(),
                vtime: Vec::new(),
                global_v: 0.0,
                total: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            weights: Vec::new(),
            quotas: Vec::new(),
            global_capacity: global_capacity.max(1),
        }
    }

    /// Adds a lane with the given fair-share weight and queue-depth quota
    /// and returns its tenant index. Lanes are fixed before the queue is
    /// shared (`&mut self`), so the hot path never locks to look up
    /// weights.
    pub fn add_tenant(&mut self, weight: f64, quota: usize) -> usize {
        {
            let inner = self.inner.get_mut().unwrap();
            inner.lanes.push(VecDeque::new());
            inner.vtime.push(0.0);
        }
        self.weights
            .push(if weight.is_finite() { weight.max(1e-6) } else { 1.0 });
        self.quotas.push(quota.max(1));
        self.weights.len() - 1
    }

    /// Number of lanes.
    pub fn tenants(&self) -> usize {
        self.weights.len()
    }

    /// Total queued items across all lanes.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().total
    }

    /// True when no items are queued in any lane.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued items in one tenant's lane.
    pub fn tenant_len(&self, tenant: usize) -> usize {
        self.inner.lock().unwrap().lanes[tenant].len()
    }

    /// Non-blocking push into `tenant`'s lane: enqueues and returns the
    /// lane depth after the push, or rejects (tenant quota first — the
    /// bulkhead — then global capacity, then shutdown) without waiting.
    pub fn try_push(&self, tenant: usize, item: T) -> Result<usize, TenantPushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(TenantPushError::Closed(item));
        }
        let depth = inner.lanes[tenant].len();
        if depth >= self.quotas[tenant] {
            return Err(TenantPushError::TenantFull(item, depth));
        }
        if inner.total >= self.global_capacity {
            let total = inner.total;
            return Err(TenantPushError::GlobalFull(item, total));
        }
        if depth == 0 {
            // A lane waking from idle joins at the current virtual time:
            // it competes fairly from now on but gets no credit for the
            // time it spent away.
            inner.vtime[tenant] = inner.vtime[tenant].max(inner.global_v);
        }
        inner.lanes[tenant].push_back(item);
        inner.total += 1;
        let depth = inner.lanes[tenant].len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking weighted-fair pop: waits until any lane has items (or the
    /// queue is closed *and* fully drained, in which case `None` signals
    /// shutdown), then drains up to `max_batch` items from the backlogged
    /// lane with the smallest virtual time. Returns the lane's tenant
    /// index with the (FIFO-ordered, single-tenant) batch.
    pub fn pop_blocking_batch(&self, max_batch: usize) -> Option<(usize, Vec<T>)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.total > 0 {
                return Some(self.take_batch(&mut inner, max_batch));
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking weighted-fair pop; `None` when every lane is empty.
    /// Same selection and vtime accounting as
    /// [`WeightedFairQueue::pop_blocking_batch`] — the proptests drive
    /// this entry point in virtual time.
    pub fn try_pop_batch(&self, max_batch: usize) -> Option<(usize, Vec<T>)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.total == 0 {
            return None;
        }
        Some(self.take_batch(&mut inner, max_batch))
    }

    fn take_batch(&self, inner: &mut WfqInner<T>, max_batch: usize) -> (usize, Vec<T>) {
        debug_assert!(inner.total > 0);
        // Backlogged lane with the smallest vtime; ties go to the lowest
        // index so the selection is deterministic.
        let tenant = (0..inner.lanes.len())
            .filter(|&t| !inner.lanes[t].is_empty())
            .min_by(|&a, &b| inner.vtime[a].partial_cmp(&inner.vtime[b]).unwrap())
            .expect("total > 0 implies a non-empty lane");
        inner.global_v = inner.global_v.max(inner.vtime[tenant]);
        let k = inner.lanes[tenant].len().min(max_batch.max(1));
        let batch: Vec<T> = inner.lanes[tenant].drain(..k).collect();
        inner.total -= k;
        inner.vtime[tenant] += k as f64 / self.weights[tenant];
        (tenant, batch)
    }

    /// Closes the queue: subsequent pushes are rejected, blocked consumers
    /// drain what is left and then observe shutdown.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }
}

/// One tenant's serving budget: the bulkhead parameters.
#[derive(Debug, Clone)]
pub struct TenantBudget {
    /// Optional token-bucket rate limit for this tenant alone.
    pub rate_limit: Option<RateLimit>,
    /// The tenant's queue-depth quota (its lane's capacity).
    pub queue_quota: usize,
    /// Weighted-fair share of service capacity (relative to the other
    /// tenants' weights).
    pub weight: f64,
    /// Deadline applied to this tenant's requests submitted without one.
    /// `None` means such requests never expire.
    pub default_deadline: Option<Duration>,
}

impl Default for TenantBudget {
    fn default() -> Self {
        TenantBudget {
            rate_limit: None,
            queue_quota: 64,
            weight: 1.0,
            default_deadline: None,
        }
    }
}

/// One tenant to serve: a name, its model registry shard, and its budget.
pub struct TenantSpec {
    /// Unique tenant name (the key clients submit under).
    pub name: String,
    /// The tenant's own hot-swap model registry.
    pub registry: Arc<ModelRegistry>,
    /// The tenant's admission budget and fair-share weight.
    pub budget: TenantBudget,
}

/// Multi-tenant serving configuration (the shared, non-bulkhead knobs).
#[derive(Debug, Clone)]
pub struct TenantServeConfig {
    /// Worker threads. `None` defers to the process-wide `ml::par`
    /// setting, like [`crate::ServeConfig`].
    pub workers: Option<usize>,
    /// Global queue capacity across all tenant lanes (enforced on top of
    /// per-tenant quotas).
    pub global_capacity: usize,
    /// Optional global token-bucket rate limit over all tenants combined.
    pub global_rate_limit: Option<RateLimit>,
    /// Most requests a worker coalesces into one (single-tenant) batch.
    pub max_batch: usize,
    /// Estimated per-tier service costs driving deadline degradation.
    pub tier_costs: TierCosts,
    /// Serving-layer fault injection (inert by default).
    pub faults: ServeFaultPlan,
    /// Drift-detector configuration cloned into each tenant's monitor.
    pub monitor: MonitorConfig,
}

impl Default for TenantServeConfig {
    fn default() -> Self {
        TenantServeConfig {
            workers: None,
            global_capacity: 1024,
            global_rate_limit: None,
            max_batch: 32,
            tier_costs: TierCosts::default(),
            faults: ServeFaultPlan::none(),
            monitor: MonitorConfig::default(),
        }
    }
}

/// Counters already folded into the drift monitor, so consecutive
/// [`TenantServer::slo_tick`] calls diff disjoint windows.
#[derive(Debug, Clone, Copy, Default)]
struct SloSeen {
    served: u64,
    degraded: u64,
    deadline_missed: u64,
    shed: u64,
}

struct TenantShard {
    name: String,
    registry: Arc<ModelRegistry>,
    budget: TenantBudget,
    admission: Mutex<AdmissionController>,
    stats: Arc<ServeStats>,
    monitor: Mutex<DriftMonitor>,
    slo_seen: Mutex<SloSeen>,
}

/// What one [`TenantServer::heal`] round did to a tenant's registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealAction {
    /// No learned tier was quarantined; nothing to heal.
    NotNeeded,
    /// A retrained candidate was promoted and validated; the tenant's
    /// monitor and breakers were reset.
    Promoted,
    /// The candidate did not beat the incumbent by the configured margin;
    /// the incumbent keeps serving and the quarantine stands.
    KeptIncumbent,
    /// The candidate was promoted but regressed on the validation window,
    /// so the promotion was rolled back. The quarantine stands.
    RolledBack,
}

/// Outcome of one healing round for one tenant.
#[derive(Debug, Clone)]
pub struct HealReport {
    /// What happened.
    pub action: HealAction,
    /// The shadow-retrain comparison, when one ran.
    pub report: Option<PromotionReport>,
    /// Serving registry version after the round.
    pub version: u64,
}

/// A tenant-isolated prediction service: per-tenant registries, budgets,
/// SLO accounting, and drift monitors behind one weighted-fair worker
/// pool. Dropping the server closes the queue, drains what was admitted,
/// and joins all workers.
pub struct TenantServer {
    shards: Vec<Arc<TenantShard>>,
    by_name: HashMap<String, usize>,
    queue: Arc<WeightedFairQueue<Job>>,
    global_admission: Mutex<AdmissionController>,
    tier_costs: TierCosts,
    started: Instant,
    next_id: AtomicU64,
    workers: Vec<JoinHandle<()>>,
}

impl TenantServer {
    /// Starts a server over the given tenant shards. Tenant names must be
    /// unique; the set is fixed for the server's lifetime (bulkheads are
    /// structural, not dynamic).
    pub fn start(tenants: Vec<TenantSpec>, config: TenantServeConfig) -> TenantServer {
        assert!(!tenants.is_empty(), "need at least one tenant");
        let worker_count = ml::par::resolve_workers(config.workers);
        let mut queue = WeightedFairQueue::new(config.global_capacity);
        let mut shards = Vec::with_capacity(tenants.len());
        let mut by_name = HashMap::new();
        for spec in tenants {
            let idx = queue.add_tenant(spec.budget.weight, spec.budget.queue_quota);
            let prev = by_name.insert(spec.name.clone(), idx);
            assert!(prev.is_none(), "duplicate tenant name {:?}", spec.name);
            let rate_limit = spec.budget.rate_limit;
            shards.push(Arc::new(TenantShard {
                name: spec.name,
                registry: spec.registry,
                budget: spec.budget,
                // The lane quota already bounds queued depth exactly (and
                // race-free, inside the queue lock); the per-tenant
                // controller polices only the rate budget.
                admission: Mutex::new(AdmissionController::new(rate_limit, usize::MAX >> 1)),
                stats: Arc::new(ServeStats::new()),
                monitor: Mutex::new(DriftMonitor::new(config.monitor.clone())),
                slo_seen: Mutex::new(SloSeen::default()),
            }));
        }
        let queue = Arc::new(queue);
        let max_batch = config.max_batch.max(1);
        let workers = (0..worker_count)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let shards = shards.clone();
                let faults = config.faults.clone();
                let tier_costs = config.tier_costs;
                std::thread::spawn(move || {
                    tenant_worker_loop(&queue, &shards, &faults, tier_costs, max_batch)
                })
            })
            .collect();
        TenantServer {
            shards,
            by_name,
            queue,
            global_admission: Mutex::new(AdmissionController::new(
                config.global_rate_limit,
                usize::MAX >> 1,
            )),
            tier_costs: config.tier_costs,
            started: Instant::now(),
            next_id: AtomicU64::new(0),
            workers,
        }
    }

    /// The tenant names this server shards by, in tenant-index order.
    pub fn tenant_names(&self) -> Vec<&str> {
        self.shards.iter().map(|s| s.name.as_str()).collect()
    }

    /// One tenant's model registry shard.
    pub fn registry(&self, tenant: &str) -> Result<&Arc<ModelRegistry>, QppError> {
        Ok(&self.shard(tenant)?.registry)
    }

    /// One tenant's serving statistics snapshot.
    pub fn stats(&self, tenant: &str) -> Result<ServeStatsSnapshot, QppError> {
        Ok(self.shard(tenant)?.stats.snapshot())
    }

    /// Submits a prediction request on behalf of `tenant`. Admission runs
    /// synchronously on the calling thread, bulkhead checks first:
    ///
    /// 1. the global rate budget ([`QppError::Overloaded`] — the service
    ///    as a whole is saturated),
    /// 2. the tenant's own rate budget
    ///    ([`QppError::TenantOverloaded`] — only this tenant is shed),
    /// 3. the tenant's queue quota (`TenantOverloaded`) and the global
    ///    capacity (`Overloaded`), enforced atomically inside the queue.
    pub fn submit(
        &self,
        tenant: &str,
        query: Arc<qpp::ExecutedQuery>,
        method: Method,
        deadline: Option<Duration>,
    ) -> Result<PendingPrediction, QppError> {
        let idx = self.index(tenant)?;
        let shard = &self.shards[idx];
        shard.stats.record_submitted();
        let now = Instant::now();
        let now_secs = self.started.elapsed().as_secs_f64();
        let total_depth = self.queue.len();
        if self
            .global_admission
            .lock()
            .unwrap()
            .admit(now_secs, total_depth)
            .is_err()
        {
            shard.stats.record_shed(ShedReason::RateLimited);
            return Err(QppError::Overloaded {
                queue_depth: total_depth,
            });
        }
        if shard
            .admission
            .lock()
            .unwrap()
            .admit(now_secs, 0)
            .is_err()
        {
            shard.stats.record_shed(ShedReason::RateLimited);
            return Err(QppError::TenantOverloaded {
                tenant: shard.name.clone(),
            });
        }
        let budget = deadline.or(shard.budget.default_deadline);
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            query,
            method,
            submitted: now,
            deadline: budget.map(|d| now + d),
            budget_secs: budget.map_or(f64::INFINITY, |d| d.as_secs_f64()),
            reply: tx,
        };
        match self.queue.try_push(idx, job) {
            Ok(_) => Ok(PendingPrediction::new(rx)),
            Err(TenantPushError::TenantFull(_, _)) => {
                shard.stats.record_shed(ShedReason::QueueFull);
                Err(QppError::TenantOverloaded {
                    tenant: shard.name.clone(),
                })
            }
            Err(TenantPushError::GlobalFull(_, depth)) => {
                shard.stats.record_shed(ShedReason::QueueFull);
                Err(QppError::Overloaded { queue_depth: depth })
            }
            Err(TenantPushError::Closed(_)) => {
                Err(QppError::Internal("tenant server is shutting down"))
            }
        }
    }

    /// Convenience: submit for `tenant` and block for the answer.
    pub fn predict(
        &self,
        tenant: &str,
        query: Arc<qpp::ExecutedQuery>,
        method: Method,
        deadline: Option<Duration>,
    ) -> Result<Prediction, QppError> {
        self.submit(tenant, query, method, deadline)?.wait()
    }

    /// Folds one `(prediction, observed latency)` residual into `tenant`'s
    /// drift monitor, attributing it to the executed plan's operator types
    /// and tripping the tenant's circuit breaker on quarantine — the
    /// accuracy half of the feedback loop, scoped to one bulkhead.
    pub fn observe(
        &self,
        tenant: &str,
        tier: PredictionTier,
        predicted: f64,
        observed: f64,
        op_types: &[engine::OpType],
    ) -> Result<ModelHealth, QppError> {
        let shard = self.shard(tenant)?;
        let predictor = shard.registry.current();
        Ok(shard.monitor.lock().unwrap().ingest(
            &predictor,
            tier,
            predicted,
            observed,
            op_types,
        ))
    }

    /// Folds the tenant's SLO counters accumulated since the previous tick
    /// into its drift monitor as the second escalation signal, and returns
    /// the window that was applied with the resulting health.
    ///
    /// The window is attributed to the Hybrid tier — the entry of the
    /// degradation chain: sustained pressure means the accurate tier is
    /// not answering within budget, and that is the model set a shadow
    /// retrain would replace. Call this periodically (every accounting
    /// interval); consecutive ticks see disjoint windows.
    pub fn slo_tick(&self, tenant: &str) -> Result<(SloWindow, ModelHealth), QppError> {
        let shard = self.shard(tenant)?;
        let snap = shard.stats.snapshot();
        let mut seen = shard.slo_seen.lock().unwrap();
        let shed = snap.shed();
        let window = SloWindow {
            served: (snap.served - snap.degraded) - (seen.served - seen.degraded),
            degraded: snap.degraded - seen.degraded,
            deadline_missed: snap.deadline_missed - seen.deadline_missed,
            shed: shed - seen.shed,
        };
        *seen = SloSeen {
            served: snap.served,
            degraded: snap.degraded,
            deadline_missed: snap.deadline_missed,
            shed,
        };
        drop(seen);
        let health = shard
            .monitor
            .lock()
            .unwrap()
            .observe_slo(PredictionTier::Hybrid, &window);
        Ok((window, health))
    }

    /// Current drift-monitor health of one tenant's tier.
    pub fn health(&self, tenant: &str, tier: PredictionTier) -> Result<ModelHealth, QppError> {
        Ok(self.shard(tenant)?.monitor.lock().unwrap().health(tier))
    }

    /// True when any of `tenant`'s learned tiers is quarantined — the cue
    /// to call [`TenantServer::heal`].
    pub fn any_quarantined(&self, tenant: &str) -> Result<bool, QppError> {
        Ok(self.shard(tenant)?.monitor.lock().unwrap().any_quarantined())
    }

    /// One healing round for one tenant: when a learned tier is
    /// quarantined, shadow-retrains on `recent`, promotes the candidate if
    /// it wins the held-out comparison, then *validates the promotion* by
    /// scoring the just-promoted model (as reloaded from its snapshot) on
    /// the same recent window — if it regressed past the incumbent's
    /// held-out error by more than `rollback_tolerance` (relative), the
    /// promotion is rolled back. On a validated promotion the tenant's
    /// monitor and circuit breakers are reset so the new model serves at
    /// full accuracy. Other tenants' registries are never touched.
    pub fn heal(
        &self,
        tenant: &str,
        recent: &[&qpp::ExecutedQuery],
        cfg: &RetrainConfig,
        rollback_tolerance: f64,
    ) -> Result<HealReport, QppError> {
        let shard = self.shard(tenant)?;
        if !shard.monitor.lock().unwrap().any_quarantined() {
            return Ok(HealReport {
                action: HealAction::NotNeeded,
                report: None,
                version: shard.registry.version(),
            });
        }
        let report = shard.registry.shadow_retrain(recent, cfg)?;
        if !report.promoted {
            return Ok(HealReport {
                action: HealAction::KeptIncumbent,
                version: report.version,
                report: Some(report),
            });
        }
        // Post-promotion validation on fresh traffic: the served model is
        // the snapshot round-trip of the candidate, so score *it*, not
        // the in-memory candidate the comparison used.
        let promoted_error = shard.registry.score_current(recent);
        if !promoted_error.is_finite()
            || promoted_error > report.incumbent_error * (1.0 + rollback_tolerance.max(0.0))
        {
            let version = shard.registry.rollback()?;
            return Ok(HealReport {
                action: HealAction::RolledBack,
                version,
                report: Some(report),
            });
        }
        let mut monitor = shard.monitor.lock().unwrap();
        monitor.reset_all();
        shard.registry.current().reset_breakers();
        Ok(HealReport {
            action: HealAction::Promoted,
            version: report.version,
            report: Some(report),
        })
    }

    fn index(&self, tenant: &str) -> Result<usize, QppError> {
        self.by_name
            .get(tenant)
            .copied()
            .ok_or(QppError::Internal("unknown tenant"))
    }

    fn shard(&self, tenant: &str) -> Result<&Arc<TenantShard>, QppError> {
        Ok(&self.shards[self.index(tenant)?])
    }

    /// The per-tier service-cost estimates this server degrades against.
    pub fn tier_costs(&self) -> &TierCosts {
        &self.tier_costs
    }
}

impl Drop for TenantServer {
    fn drop(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            if let Err(p) = handle.join() {
                std::panic::resume_unwind(p);
            }
        }
    }
}

fn tenant_worker_loop(
    queue: &WeightedFairQueue<Job>,
    shards: &[Arc<TenantShard>],
    faults: &ServeFaultPlan,
    tier_costs: TierCosts,
    max_batch: usize,
) {
    while let Some((tenant, batch)) = queue.pop_blocking_batch(max_batch) {
        let shard = &shards[tenant];
        shard.stats.record_batch(batch.len());

        let outcome = faults.decide(batch[0].id);
        if outcome.stall_secs > 0.0 {
            shard.stats.record_stall();
            std::thread::sleep(Duration::from_secs_f64(outcome.stall_secs));
        }

        // Snapshot *this tenant's* serving model once per batch: batches
        // are single-tenant, so one tenant's promote/rollback can never
        // tear — or even touch — another tenant's predictions.
        let predictor = shard.registry.current();
        let cache = Arc::clone(shard.registry.pred_cache());

        serve_batch(batch, &shard.stats, &predictor, &cache, tier_costs);

        if outcome.slow_consumer {
            std::thread::sleep(Duration::from_secs_f64(faults.stall_secs.max(0.0) * 0.5));
        }
    }
}
