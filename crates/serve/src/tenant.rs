//! Multi-tenant bulkhead serving with a closed-loop SLO → drift healing
//! path.
//!
//! The single-queue [`crate::server::PredictionServer`] protects the
//! *service* from overload, but not tenants from each other: one noisy
//! workload fills the shared queue and every other caller's p99 pays for
//! it — the per-workload heterogeneity that production studies of learned
//! QPP report as a dominant failure mode. This module partitions the
//! front-end into bulkheads:
//!
//! - **Per-tenant shards.** Each tenant owns its own hot-swap
//!   [`ModelRegistry`], token-bucket admission budget, queue-depth quota,
//!   SLO counters, and drift monitor (and with it per-tier breaker state
//!   on its own predictor). A noisy tenant is shed at admission with
//!   [`QppError::TenantOverloaded`] while quiet tenants keep their
//!   deadline budgets.
//! - **Weighted-fair dequeue.** [`WeightedFairQueue`] gives every tenant
//!   its own FIFO lane and serves the backlogged lane with the smallest
//!   virtual time (vtime advances by `items / weight` on dequeue), so
//!   service capacity divides by weight no matter how asymmetric the
//!   arrival streams are. A global capacity bounds total memory on top of
//!   the per-tenant quotas.
//! - **Dynamic tenancy.** Tenants can be added and removed while the
//!   server is under load: [`TenantServer::add_tenant`] opens a new lane
//!   that joins at the current virtual time (no banked credit), and
//!   [`TenantServer::remove_tenant`] closes the lane, serves what was
//!   already queued in it, and hands back the tenant's registry and a
//!   final stats snapshot. Shard slots are tombstoned, never deleted, so
//!   a worker holding a popped batch can always resolve its shard.
//! - **Closed loop.** Each tenant's SLO counters fold into its
//!   [`DriftMonitor`] as a second escalation signal
//!   ([`TenantServer::slo_tick`]): sustained degraded/missed/shed traffic
//!   drives the same Suspect → Quarantined ladder as residual drift, and
//!   [`TenantServer::heal`] runs quarantine → shadow retrain → promote on
//!   *that tenant's* registry only, with post-promotion validation and
//!   rollback when the promoted model regresses on fresh traffic.
//!   [`crate::healer::Healer`] drives this loop unattended.
//!
//! **Accounting order.** Every path records `submitted` strictly before
//! any `shed`/`served`/`deadline_missed` outcome for the same request, so
//! a concurrent snapshot can transiently see an outcome *missing* but
//! never an outcome *without its submission* — `submitted < shed + served
//! + deadline_missed` is unobservable. [`TenantServer::shutdown`] takes
//! the final reconciliation read while holding the queue lock (after the
//! workers have been joined), at which point the ledgers balance exactly:
//! `accepted == served + deadline_missed`.

use engine::faults::ServeFaultPlan;
use qpp::{
    DriftMonitor, Method, ModelHealth, ModelRegistry, MonitorConfig, Prediction, PredictionTier,
    PromotionReport, QppError, RetrainConfig, SloWindow,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::admission::{AdmissionController, RateLimit, ShedReason};
use crate::deadline::TierCosts;
use crate::server::{serve_batch, Job, PendingPrediction};
use crate::stats::{ServeStats, ServeStatsSnapshot};

/// Why a tenant-aware push was refused.
#[derive(Debug)]
pub enum TenantPushError<T> {
    /// The tenant's own queue quota is exhausted; the item is handed back
    /// with the tenant's depth at rejection. Only this tenant is affected.
    TenantFull(T, usize),
    /// The queue's *global* capacity is exhausted; the item is handed back
    /// with the total depth at rejection.
    GlobalFull(T, usize),
    /// The tenant's lane was removed ([`WeightedFairQueue::remove_tenant`]);
    /// the item is handed back. Other lanes keep serving.
    Removed(T),
    /// The queue was closed for shutdown; the item is handed back.
    Closed(T),
}

/// One tenant's lane plus its scheduling state. Weight and quota live
/// inside the queue lock so lanes can be added and removed while
/// producers and consumers are active.
struct Lane<T> {
    items: VecDeque<T>,
    /// Virtual finish time: advanced by `items / weight` on every
    /// dequeue, so the backlogged lane with the smallest vtime is always
    /// the one furthest below its fair share.
    vtime: f64,
    weight: f64,
    quota: usize,
    /// False after [`WeightedFairQueue::remove_tenant`]: pushes are
    /// refused with [`TenantPushError::Removed`] and the (already empty)
    /// lane is never selected again.
    open: bool,
}

struct WfqInner<T> {
    lanes: Vec<Lane<T>>,
    /// Global virtual time: the vtime of the most recent dequeue. A lane
    /// going from empty to non-empty (or a lane just added) is lifted to
    /// at least this value, so idle tenants cannot bank credit while away.
    global_v: f64,
    total: usize,
    closed: bool,
}

/// A bounded multi-lane MPMC queue with weighted-fair dequeue and a
/// dynamic lane set.
///
/// Producers push into their tenant's lane and are rejected synchronously
/// when either the tenant's quota or the global capacity is exhausted —
/// the bulkhead property: lane `t` filling up never consumes another
/// lane's quota. Consumers pop *single-tenant batches*: the backlogged
/// lane with the smallest virtual time is drained up to the batch limit,
/// and its vtime is charged `items / weight`, which makes long-run service
/// proportional to weight for continuously backlogged lanes (the classic
/// virtual-time WFQ argument; the proptests in `tenant_props.rs` pin the
/// `batch / min_weight` fairness bound exactly).
///
/// Lanes can be added ([`WeightedFairQueue::add_tenant`]) and removed
/// ([`WeightedFairQueue::remove_tenant`]) concurrently with pushes and
/// pops; lane indices are never reused, a removed lane is tombstoned.
pub struct WeightedFairQueue<T> {
    inner: Mutex<WfqInner<T>>,
    not_empty: Condvar,
    global_capacity: usize,
}

impl<T> WeightedFairQueue<T> {
    /// An empty queue with no lanes and a global capacity of at least 1.
    pub fn new(global_capacity: usize) -> WeightedFairQueue<T> {
        WeightedFairQueue {
            inner: Mutex::new(WfqInner {
                lanes: Vec::new(),
                global_v: 0.0,
                total: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            global_capacity: global_capacity.max(1),
        }
    }

    /// Adds a lane with the given fair-share weight and queue-depth quota
    /// and returns its tenant index. The lane joins at the current global
    /// virtual time, so it competes fairly from now on but starts with no
    /// banked credit. Safe to call while producers and consumers run.
    pub fn add_tenant(&self, weight: f64, quota: usize) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let vtime = inner.global_v;
        inner.lanes.push(Lane {
            items: VecDeque::new(),
            vtime,
            weight: if weight.is_finite() { weight.max(1e-6) } else { 1.0 },
            quota: quota.max(1),
            open: true,
        });
        inner.lanes.len() - 1
    }

    /// Tombstones a lane: subsequent pushes are refused with
    /// [`TenantPushError::Removed`] and everything queued is handed back
    /// to the caller in FIFO order (the caller decides whether to serve
    /// or refuse the drained items). The index is never reused; other
    /// lanes are untouched.
    pub fn remove_tenant(&self, tenant: usize) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap();
        let lane = &mut inner.lanes[tenant];
        lane.open = false;
        let drained: Vec<T> = lane.items.drain(..).collect();
        inner.total -= drained.len();
        drained
    }

    /// Number of lanes ever added, including tombstoned ones.
    pub fn tenants(&self) -> usize {
        self.inner.lock().unwrap().lanes.len()
    }

    /// Total queued items across all lanes.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().total
    }

    /// True when no items are queued in any lane.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued items in one tenant's lane.
    pub fn tenant_len(&self, tenant: usize) -> usize {
        self.inner.lock().unwrap().lanes[tenant].items.len()
    }

    /// Non-blocking push into `tenant`'s lane: enqueues and returns the
    /// lane depth after the push, or rejects (shutdown and tombstone
    /// first, then the tenant quota — the bulkhead — then global
    /// capacity) without waiting.
    pub fn try_push(&self, tenant: usize, item: T) -> Result<usize, TenantPushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(TenantPushError::Closed(item));
        }
        if !inner.lanes[tenant].open {
            return Err(TenantPushError::Removed(item));
        }
        let depth = inner.lanes[tenant].items.len();
        if depth >= inner.lanes[tenant].quota {
            return Err(TenantPushError::TenantFull(item, depth));
        }
        if inner.total >= self.global_capacity {
            let total = inner.total;
            return Err(TenantPushError::GlobalFull(item, total));
        }
        if depth == 0 {
            // A lane waking from idle joins at the current virtual time:
            // it competes fairly from now on but gets no credit for the
            // time it spent away.
            let global_v = inner.global_v;
            let lane = &mut inner.lanes[tenant];
            lane.vtime = lane.vtime.max(global_v);
        }
        inner.lanes[tenant].items.push_back(item);
        inner.total += 1;
        let depth = inner.lanes[tenant].items.len();
        drop(inner);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocking weighted-fair pop: waits until any lane has items (or the
    /// queue is closed *and* fully drained, in which case `None` signals
    /// shutdown), then drains up to `max_batch` items from the backlogged
    /// lane with the smallest virtual time. Returns the lane's tenant
    /// index with the (FIFO-ordered, single-tenant) batch.
    pub fn pop_blocking_batch(&self, max_batch: usize) -> Option<(usize, Vec<T>)> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.total > 0 {
                return Some(Self::take_batch(&mut inner, max_batch));
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking weighted-fair pop; `None` when every lane is empty.
    /// Same selection and vtime accounting as
    /// [`WeightedFairQueue::pop_blocking_batch`] — the proptests drive
    /// this entry point in virtual time.
    pub fn try_pop_batch(&self, max_batch: usize) -> Option<(usize, Vec<T>)> {
        let mut inner = self.inner.lock().unwrap();
        if inner.total == 0 {
            return None;
        }
        Some(Self::take_batch(&mut inner, max_batch))
    }

    fn take_batch(inner: &mut WfqInner<T>, max_batch: usize) -> (usize, Vec<T>) {
        debug_assert!(inner.total > 0);
        // Backlogged lane with the smallest vtime; ties go to the lowest
        // index so the selection is deterministic. Tombstoned lanes are
        // drained at removal, so the emptiness filter skips them too.
        let tenant = (0..inner.lanes.len())
            .filter(|&t| !inner.lanes[t].items.is_empty())
            .min_by(|&a, &b| {
                inner.lanes[a]
                    .vtime
                    .partial_cmp(&inner.lanes[b].vtime)
                    .unwrap()
            })
            .expect("total > 0 implies a non-empty lane");
        inner.global_v = inner.global_v.max(inner.lanes[tenant].vtime);
        let k = inner.lanes[tenant].items.len().min(max_batch.max(1));
        let batch: Vec<T> = inner.lanes[tenant].items.drain(..k).collect();
        inner.total -= k;
        let weight = inner.lanes[tenant].weight;
        inner.lanes[tenant].vtime += k as f64 / weight;
        (tenant, batch)
    }

    /// Runs `f` while holding the queue lock, so the closure cannot
    /// interleave with any push, pop, add, or remove. Used for the final
    /// shutdown reconciliation read ([`TenantServer::shutdown`]).
    pub fn quiesced<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.inner.lock().unwrap();
        f()
    }

    /// Closes the queue: subsequent pushes are rejected, blocked consumers
    /// drain what is left and then observe shutdown.
    pub fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.not_empty.notify_all();
    }
}

/// One tenant's serving budget: the bulkhead parameters.
#[derive(Debug, Clone)]
pub struct TenantBudget {
    /// Optional token-bucket rate limit for this tenant alone.
    pub rate_limit: Option<RateLimit>,
    /// The tenant's queue-depth quota (its lane's capacity).
    pub queue_quota: usize,
    /// Weighted-fair share of service capacity (relative to the other
    /// tenants' weights).
    pub weight: f64,
    /// Deadline applied to this tenant's requests submitted without one.
    /// `None` means such requests never expire.
    pub default_deadline: Option<Duration>,
}

impl Default for TenantBudget {
    fn default() -> Self {
        TenantBudget {
            rate_limit: None,
            queue_quota: 64,
            weight: 1.0,
            default_deadline: None,
        }
    }
}

/// One tenant to serve: a name, its model registry shard, and its budget.
pub struct TenantSpec {
    /// Unique tenant name (the key clients submit under).
    pub name: String,
    /// The tenant's own hot-swap model registry.
    pub registry: Arc<ModelRegistry>,
    /// The tenant's admission budget and fair-share weight.
    pub budget: TenantBudget,
}

/// Multi-tenant serving configuration (the shared, non-bulkhead knobs).
#[derive(Debug, Clone)]
pub struct TenantServeConfig {
    /// Worker threads. `None` defers to the process-wide `ml::par`
    /// setting, like [`crate::ServeConfig`].
    pub workers: Option<usize>,
    /// Global queue capacity across all tenant lanes (enforced on top of
    /// per-tenant quotas).
    pub global_capacity: usize,
    /// Optional global token-bucket rate limit over all tenants combined.
    pub global_rate_limit: Option<RateLimit>,
    /// Most requests a worker coalesces into one (single-tenant) batch.
    pub max_batch: usize,
    /// Estimated per-tier service costs driving deadline degradation.
    pub tier_costs: TierCosts,
    /// Serving-layer fault injection (inert by default).
    pub faults: ServeFaultPlan,
    /// Drift-detector configuration cloned into each tenant's monitor.
    pub monitor: MonitorConfig,
}

impl Default for TenantServeConfig {
    fn default() -> Self {
        TenantServeConfig {
            workers: None,
            global_capacity: 1024,
            global_rate_limit: None,
            max_batch: 32,
            tier_costs: TierCosts::default(),
            faults: ServeFaultPlan::none(),
            monitor: MonitorConfig::default(),
        }
    }
}

/// Counters already folded into the drift monitor, so consecutive
/// [`TenantServer::slo_tick`] calls diff disjoint windows.
#[derive(Debug, Clone, Copy, Default)]
struct SloSeen {
    served: u64,
    degraded: u64,
    deadline_missed: u64,
    shed: u64,
}

pub(crate) struct TenantShard {
    pub(crate) name: String,
    pub(crate) registry: Arc<ModelRegistry>,
    budget: TenantBudget,
    admission: Mutex<AdmissionController>,
    pub(crate) stats: Arc<ServeStats>,
    monitor: Mutex<DriftMonitor>,
    slo_seen: Mutex<SloSeen>,
}

/// What one [`TenantServer::heal`] round did to a tenant's registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealAction {
    /// No learned tier was quarantined; nothing to heal.
    NotNeeded,
    /// A retrained candidate was promoted and validated; the tenant's
    /// monitor and breakers were reset.
    Promoted,
    /// The candidate did not beat the incumbent by the configured margin;
    /// the incumbent keeps serving and the quarantine stands.
    KeptIncumbent,
    /// The candidate was promoted but regressed on the validation window,
    /// so the promotion was rolled back. The quarantine stands.
    RolledBack,
}

/// Outcome of one healing round for one tenant.
#[derive(Debug, Clone)]
pub struct HealReport {
    /// What happened.
    pub action: HealAction,
    /// The shadow-retrain comparison, when one ran.
    pub report: Option<PromotionReport>,
    /// Serving registry version after the round.
    pub version: u64,
}

/// What [`TenantServer::remove_tenant`] hands back: the tenant's registry
/// (so models survive the eviction) and its final serving ledger.
pub struct RemovedTenant {
    /// The removed tenant's name.
    pub name: String,
    /// The tenant's model registry, snapshotted at removal — the caller
    /// can re-attach it later via [`TenantServer::add_tenant`].
    pub registry: Arc<ModelRegistry>,
    /// Final stats snapshot, taken after the drained backlog was served.
    pub stats: ServeStatsSnapshot,
    /// Requests that were queued in the tenant's lane at removal and were
    /// served (or deadline-refused) during the drain.
    pub drained: usize,
}

/// Per-tenant final ledgers from [`TenantServer::shutdown`], read under
/// the queue lock after every worker was joined.
pub struct ShutdownReport {
    /// `(tenant name, final stats)` for every shard ever attached,
    /// including removed ones, in tenant-index order.
    pub tenants: Vec<(String, ServeStatsSnapshot)>,
}

impl ShutdownReport {
    /// True when every tenant's ledger balances exactly:
    /// `accepted == served + deadline_missed` (nothing admitted was lost,
    /// nothing was double-counted).
    pub fn reconciles(&self) -> bool {
        self.tenants
            .iter()
            .all(|(_, s)| s.accepted() == s.served + s.deadline_missed)
    }
}

/// A tenant-isolated prediction service: per-tenant registries, budgets,
/// SLO accounting, and drift monitors behind one weighted-fair worker
/// pool. The tenant set is dynamic ([`TenantServer::add_tenant`] /
/// [`TenantServer::remove_tenant`]). Dropping the server closes the
/// queue, drains what was admitted, and joins all workers; call
/// [`TenantServer::shutdown`] first to get the reconciliation report.
pub struct TenantServer {
    /// Shard slots are append-only: a removed tenant's slot stays (its
    /// name is dropped from `by_name`), so a worker holding a popped
    /// batch for lane `i` can always resolve shard `i`.
    shards: Arc<RwLock<Vec<Arc<TenantShard>>>>,
    by_name: RwLock<HashMap<String, usize>>,
    queue: Arc<WeightedFairQueue<Job>>,
    global_admission: Mutex<AdmissionController>,
    tier_costs: TierCosts,
    monitor_config: MonitorConfig,
    started: Instant,
    next_id: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl TenantServer {
    /// Starts a server over the given tenant shards. Tenant names must be
    /// unique (duplicates panic). Starting with an empty tenant set is
    /// allowed — tenants can be attached later with
    /// [`TenantServer::add_tenant`].
    pub fn start(tenants: Vec<TenantSpec>, config: TenantServeConfig) -> TenantServer {
        let worker_count = ml::par::resolve_workers(config.workers);
        let queue = Arc::new(WeightedFairQueue::new(config.global_capacity));
        let shards: Arc<RwLock<Vec<Arc<TenantShard>>>> = Arc::new(RwLock::new(Vec::new()));
        let server = TenantServer {
            shards: Arc::clone(&shards),
            by_name: RwLock::new(HashMap::new()),
            queue: Arc::clone(&queue),
            global_admission: Mutex::new(AdmissionController::new(
                config.global_rate_limit,
                usize::MAX >> 1,
            )),
            tier_costs: config.tier_costs,
            monitor_config: config.monitor.clone(),
            started: Instant::now(),
            next_id: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        };
        for spec in tenants {
            if let Err(e) = server.add_tenant(spec) {
                panic!("tenant set rejected at start: {e}");
            }
        }
        let max_batch = config.max_batch.max(1);
        let handles = (0..worker_count)
            .map(|_| {
                let queue = Arc::clone(&queue);
                let shards = Arc::clone(&shards);
                let faults = config.faults.clone();
                let tier_costs = config.tier_costs;
                std::thread::spawn(move || {
                    tenant_worker_loop(&queue, &shards, &faults, tier_costs, max_batch)
                })
            })
            .collect();
        *server.workers.lock().unwrap() = handles;
        server
    }

    /// Attaches a new tenant under load: opens a weighted-fair lane (it
    /// joins at the current virtual time) and registers the shard.
    /// Returns the tenant's lane index, or an error when the name is
    /// already taken.
    pub fn add_tenant(&self, spec: TenantSpec) -> Result<usize, QppError> {
        // Held across lane + shard append so the lane index and the shard
        // slot cannot be torn apart by a concurrent add.
        let mut by_name = self.by_name.write().unwrap();
        if by_name.contains_key(&spec.name) {
            return Err(QppError::Internal("duplicate tenant name"));
        }
        let idx = self.queue.add_tenant(spec.budget.weight, spec.budget.queue_quota);
        let rate_limit = spec.budget.rate_limit;
        let shard = Arc::new(TenantShard {
            name: spec.name.clone(),
            registry: spec.registry,
            budget: spec.budget,
            // The lane quota already bounds queued depth exactly (and
            // race-free, inside the queue lock); the per-tenant
            // controller polices only the rate budget.
            admission: Mutex::new(AdmissionController::new(rate_limit, usize::MAX >> 1)),
            stats: Arc::new(ServeStats::new()),
            monitor: Mutex::new(DriftMonitor::new(self.monitor_config.clone())),
            slo_seen: Mutex::new(SloSeen::default()),
        });
        self.shards.write().unwrap().push(shard);
        debug_assert_eq!(self.shards.read().unwrap().len(), idx + 1);
        by_name.insert(spec.name, idx);
        Ok(idx)
    }

    /// Detaches a tenant under load. New submissions fail immediately
    /// (`unknown tenant`); requests already queued in the tenant's lane
    /// are drained and served on the *calling* thread (their replies
    /// still arrive, and the ledger stays balanced); the tenant's
    /// registry and final stats are handed back. Other tenants' lanes,
    /// budgets, and latencies are untouched.
    pub fn remove_tenant(&self, tenant: &str) -> Result<RemovedTenant, QppError> {
        let idx = self
            .by_name
            .write()
            .unwrap()
            .remove(tenant)
            .ok_or(QppError::Internal("unknown tenant"))?;
        let shard = Arc::clone(&self.shards.read().unwrap()[idx]);
        let drained = self.queue.remove_tenant(idx);
        let n = drained.len();
        if n > 0 {
            // Serve the backlog here rather than dropping it: every job
            // was already counted `submitted`, so dropping would leak
            // accepted-but-unaccounted requests. A worker that popped a
            // batch from this lane just before the drain still resolves
            // the shard (slots are never deleted), so there is no race.
            shard.stats.record_batch(n);
            let predictor = shard.registry.current();
            let cache = Arc::clone(shard.registry.pred_cache());
            serve_batch(drained, &shard.stats, &predictor, &cache, self.tier_costs);
        }
        Ok(RemovedTenant {
            name: shard.name.clone(),
            registry: Arc::clone(&shard.registry),
            stats: shard.stats.snapshot(),
            drained: n,
        })
    }

    /// The live tenant names (removed tenants excluded), in tenant-index
    /// order.
    pub fn tenant_names(&self) -> Vec<String> {
        let by_name = self.by_name.read().unwrap();
        let mut named: Vec<(usize, &String)> = by_name.iter().map(|(n, &i)| (i, n)).collect();
        named.sort_by_key(|&(i, _)| i);
        named.into_iter().map(|(_, n)| n.clone()).collect()
    }

    /// One tenant's model registry shard.
    pub fn registry(&self, tenant: &str) -> Result<Arc<ModelRegistry>, QppError> {
        Ok(Arc::clone(&self.shard(tenant)?.registry))
    }

    /// One tenant's serving statistics snapshot.
    pub fn stats(&self, tenant: &str) -> Result<ServeStatsSnapshot, QppError> {
        Ok(self.shard(tenant)?.stats.snapshot())
    }

    /// One tenant's live stats handle (for recorders outside this module,
    /// like the healer's supervision counters).
    pub(crate) fn stats_handle(&self, tenant: &str) -> Result<Arc<ServeStats>, QppError> {
        Ok(Arc::clone(&self.shard(tenant)?.stats))
    }

    /// Submits a prediction request on behalf of `tenant`. Admission runs
    /// synchronously on the calling thread, bulkhead checks first:
    ///
    /// 1. the global rate budget ([`QppError::Overloaded`] — the service
    ///    as a whole is saturated),
    /// 2. the tenant's own rate budget
    ///    ([`QppError::TenantOverloaded`] — only this tenant is shed),
    /// 3. the tenant's queue quota (`TenantOverloaded`) and the global
    ///    capacity (`Overloaded`), enforced atomically inside the queue.
    pub fn submit(
        &self,
        tenant: &str,
        query: Arc<qpp::ExecutedQuery>,
        method: Method,
        deadline: Option<Duration>,
    ) -> Result<PendingPrediction, QppError> {
        let (idx, shard) = self.lookup(tenant)?;
        shard.stats.record_submitted();
        let now = Instant::now();
        let now_secs = self.started.elapsed().as_secs_f64();
        let total_depth = self.queue.len();
        if self
            .global_admission
            .lock()
            .unwrap()
            .admit(now_secs, total_depth)
            .is_err()
        {
            shard.stats.record_shed(ShedReason::RateLimited);
            return Err(QppError::Overloaded {
                queue_depth: total_depth,
            });
        }
        if shard
            .admission
            .lock()
            .unwrap()
            .admit(now_secs, 0)
            .is_err()
        {
            shard.stats.record_shed(ShedReason::RateLimited);
            return Err(QppError::TenantOverloaded {
                tenant: shard.name.clone(),
            });
        }
        let budget = deadline.or(shard.budget.default_deadline);
        let (tx, rx) = mpsc::channel();
        let job = Job {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            query,
            method,
            submitted: now,
            deadline: budget.map(|d| now + d),
            budget_secs: budget.map_or(f64::INFINITY, |d| d.as_secs_f64()),
            reply: tx,
        };
        match self.queue.try_push(idx, job) {
            Ok(_) => Ok(PendingPrediction::new(rx)),
            Err(TenantPushError::TenantFull(_, _)) => {
                shard.stats.record_shed(ShedReason::QueueFull);
                Err(QppError::TenantOverloaded {
                    tenant: shard.name.clone(),
                })
            }
            Err(TenantPushError::GlobalFull(_, depth)) => {
                shard.stats.record_shed(ShedReason::QueueFull);
                Err(QppError::Overloaded { queue_depth: depth })
            }
            Err(TenantPushError::Removed(_)) => {
                // The tenant raced a remove between the name lookup and
                // the push. Recorded as shutdown-shed so this shard's
                // ledger still balances (`submitted` was already counted).
                shard.stats.record_shed(ShedReason::Shutdown);
                Err(QppError::Internal(
                    "tenant was removed while the request was in flight",
                ))
            }
            Err(TenantPushError::Closed(_)) => {
                // Without this recording, the submission above would leak
                // as forever-pending and shutdown reconciliation could
                // never balance (`accepted` would exceed every outcome).
                shard.stats.record_shed(ShedReason::Shutdown);
                Err(QppError::Internal("tenant server is shutting down"))
            }
        }
    }

    /// Convenience: submit for `tenant` and block for the answer.
    pub fn predict(
        &self,
        tenant: &str,
        query: Arc<qpp::ExecutedQuery>,
        method: Method,
        deadline: Option<Duration>,
    ) -> Result<Prediction, QppError> {
        self.submit(tenant, query, method, deadline)?.wait()
    }

    /// Folds one `(prediction, observed latency)` residual into `tenant`'s
    /// drift monitor, attributing it to the executed plan's operator types
    /// and tripping the tenant's circuit breaker on quarantine — the
    /// accuracy half of the feedback loop, scoped to one bulkhead.
    pub fn observe(
        &self,
        tenant: &str,
        tier: PredictionTier,
        predicted: f64,
        observed: f64,
        op_types: &[engine::OpType],
    ) -> Result<ModelHealth, QppError> {
        let shard = self.shard(tenant)?;
        let predictor = shard.registry.current();
        let health = shard.monitor.lock().unwrap().ingest(
            &predictor,
            tier,
            predicted,
            observed,
            op_types,
        );
        Ok(health)
    }

    /// Folds the tenant's SLO counters accumulated since the previous tick
    /// into its drift monitor as the second escalation signal, and returns
    /// the window that was applied with the resulting health.
    ///
    /// The window is attributed to the Hybrid tier — the entry of the
    /// degradation chain: sustained pressure means the accurate tier is
    /// not answering within budget, and that is the model set a shadow
    /// retrain would replace. Call this periodically (every accounting
    /// interval); consecutive ticks see disjoint windows.
    pub fn slo_tick(&self, tenant: &str) -> Result<(SloWindow, ModelHealth), QppError> {
        let shard = self.shard(tenant)?;
        let snap = shard.stats.snapshot();
        let mut seen = shard.slo_seen.lock().unwrap();
        let shed = snap.shed();
        let window = SloWindow {
            served: (snap.served - snap.degraded) - (seen.served - seen.degraded),
            degraded: snap.degraded - seen.degraded,
            deadline_missed: snap.deadline_missed - seen.deadline_missed,
            shed: shed - seen.shed,
        };
        *seen = SloSeen {
            served: snap.served,
            degraded: snap.degraded,
            deadline_missed: snap.deadline_missed,
            shed,
        };
        drop(seen);
        let health = shard
            .monitor
            .lock()
            .unwrap()
            .observe_slo(PredictionTier::Hybrid, &window);
        Ok((window, health))
    }

    /// Current drift-monitor health of one tenant's tier.
    pub fn health(&self, tenant: &str, tier: PredictionTier) -> Result<ModelHealth, QppError> {
        Ok(self.shard(tenant)?.monitor.lock().unwrap().health(tier))
    }

    /// True when any of `tenant`'s learned tiers is quarantined — the cue
    /// to call [`TenantServer::heal`].
    pub fn any_quarantined(&self, tenant: &str) -> Result<bool, QppError> {
        Ok(self.shard(tenant)?.monitor.lock().unwrap().any_quarantined())
    }

    /// One healing round for one tenant: when a learned tier is
    /// quarantined, shadow-retrains on `recent`, promotes the candidate if
    /// it wins the held-out comparison, then *validates the promotion* by
    /// scoring the just-promoted model (as reloaded from its snapshot) on
    /// the same recent window — if it regressed past the incumbent's
    /// held-out error by more than `rollback_tolerance` (relative), the
    /// promotion is rolled back. On a validated promotion the tenant's
    /// monitor and circuit breakers are reset so the new model serves at
    /// full accuracy. Other tenants' registries are never touched. Every
    /// round's action lands in the tenant's [`ServeStats`].
    pub fn heal(
        &self,
        tenant: &str,
        recent: &[&qpp::ExecutedQuery],
        cfg: &RetrainConfig,
        rollback_tolerance: f64,
    ) -> Result<HealReport, QppError> {
        let shard = self.shard(tenant)?;
        let result = Self::heal_shard(&shard, recent, cfg, rollback_tolerance);
        if let Ok(report) = &result {
            shard.stats.record_heal(&report.action);
        }
        result
    }

    fn heal_shard(
        shard: &TenantShard,
        recent: &[&qpp::ExecutedQuery],
        cfg: &RetrainConfig,
        rollback_tolerance: f64,
    ) -> Result<HealReport, QppError> {
        if !shard.monitor.lock().unwrap().any_quarantined() {
            return Ok(HealReport {
                action: HealAction::NotNeeded,
                report: None,
                version: shard.registry.version(),
            });
        }
        let report = shard.registry.shadow_retrain(recent, cfg)?;
        if !report.promoted {
            return Ok(HealReport {
                action: HealAction::KeptIncumbent,
                version: report.version,
                report: Some(report),
            });
        }
        // Post-promotion validation on fresh traffic: the served model is
        // the snapshot round-trip of the candidate, so score *it*, not
        // the in-memory candidate the comparison used.
        let promoted_error = shard.registry.score_current(recent);
        if !promoted_error.is_finite()
            || promoted_error > report.incumbent_error * (1.0 + rollback_tolerance.max(0.0))
        {
            let version = shard.registry.rollback()?;
            return Ok(HealReport {
                action: HealAction::RolledBack,
                version,
                report: Some(report),
            });
        }
        let mut monitor = shard.monitor.lock().unwrap();
        monitor.reset_all();
        shard.registry.current().reset_breakers();
        Ok(HealReport {
            action: HealAction::Promoted,
            version: report.version,
            report: Some(report),
        })
    }

    fn lookup(&self, tenant: &str) -> Result<(usize, Arc<TenantShard>), QppError> {
        let idx = self
            .by_name
            .read()
            .unwrap()
            .get(tenant)
            .copied()
            .ok_or(QppError::Internal("unknown tenant"))?;
        let shard = Arc::clone(&self.shards.read().unwrap()[idx]);
        Ok((idx, shard))
    }

    fn shard(&self, tenant: &str) -> Result<Arc<TenantShard>, QppError> {
        Ok(self.lookup(tenant)?.1)
    }

    /// The per-tier service-cost estimates this server degrades against.
    pub fn tier_costs(&self) -> &TierCosts {
        &self.tier_costs
    }

    /// Graceful shutdown, idempotent: closes the queue (new submissions
    /// are refused and recorded as shutdown-shed), lets the workers drain
    /// every admitted request, joins them, and only then takes the final
    /// per-tenant reconciliation read — **under the queue lock**, so the
    /// read cannot interleave with a straggling push or pop. After this
    /// returns, every tenant's ledger balances:
    /// `accepted == served + deadline_missed`.
    pub fn shutdown(&self) -> ShutdownReport {
        self.queue.close();
        let handles: Vec<JoinHandle<()>> = self.workers.lock().unwrap().drain(..).collect();
        for handle in handles {
            if let Err(p) = handle.join() {
                std::panic::resume_unwind(p);
            }
        }
        let shards = self.shards.read().unwrap().clone();
        let tenants = self.queue.quiesced(|| {
            shards
                .iter()
                .map(|s| (s.name.clone(), s.stats.snapshot()))
                .collect()
        });
        ShutdownReport { tenants }
    }
}

impl Drop for TenantServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn tenant_worker_loop(
    queue: &WeightedFairQueue<Job>,
    shards: &RwLock<Vec<Arc<TenantShard>>>,
    faults: &ServeFaultPlan,
    tier_costs: TierCosts,
    max_batch: usize,
) {
    while let Some((tenant, batch)) = queue.pop_blocking_batch(max_batch) {
        // Jobs only enter lane `i` after shard `i` is registered, and
        // slots are never deleted, so the index always resolves.
        let shard = Arc::clone(&shards.read().unwrap()[tenant]);
        shard.stats.record_batch(batch.len());

        let outcome = faults.decide(batch[0].id);
        if outcome.stall_secs > 0.0 {
            shard.stats.record_stall();
            std::thread::sleep(Duration::from_secs_f64(outcome.stall_secs));
        }

        // Snapshot *this tenant's* serving model once per batch: batches
        // are single-tenant, so one tenant's promote/rollback can never
        // tear — or even touch — another tenant's predictions.
        let predictor = shard.registry.current();
        let cache = Arc::clone(shard.registry.pred_cache());

        serve_batch(batch, &shard.stats, &predictor, &cache, tier_costs);

        if outcome.slow_consumer {
            std::thread::sleep(Duration::from_secs_f64(faults.stall_secs.max(0.0) * 0.5));
        }
    }
}
