//! Criterion micro-benchmarks for the operational path: what it costs to
//! plan, simulate, extract features, train models and make predictions.
//!
//! These quantify the paper's deployability argument — prediction from
//! static features must be orders of magnitude cheaper than running the
//! query.

// Offline builds may substitute a stub criterion whose `Criterion` is a
// unit struct; `Criterion::default()` is the form that compiles on both.
#![allow(clippy::default_constructed_unit_structs)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use engine::{Catalog, Planner, Simulator};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::plan_model::{PlanLevelModel, PlanModelConfig};
use qpp::{ExecutedQuery, FeatureSource, QueryDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tpch::Workload;

fn small_dataset() -> QueryDataset {
    let catalog = Catalog::new(0.1, 1);
    let workload = Workload::generate(&[1, 3, 6, 14], 10, 0.1, 7);
    QueryDataset::execute(&catalog, &workload, &Simulator::new(), 11, f64::INFINITY)
}

fn bench_planner(c: &mut Criterion) {
    let catalog = Catalog::new(1.0, 1);
    let planner = Planner::new(&catalog);
    let mut rng = StdRng::seed_from_u64(3);
    let spec = tpch::instantiate(5, 1.0, &mut rng);
    c.bench_function("planner/plan_template_5", |b| {
        b.iter(|| std::hint::black_box(planner.plan(&spec)))
    });
}

fn bench_simulator(c: &mut Criterion) {
    let catalog = Catalog::new(1.0, 1);
    let planner = Planner::new(&catalog);
    let mut rng = StdRng::seed_from_u64(3);
    let plan = planner.plan(&tpch::instantiate(5, 1.0, &mut rng));
    let sim = Simulator::new();
    c.bench_function("simulator/execute_template_5", |b| {
        b.iter(|| std::hint::black_box(sim.execute(&plan, 1.0, 9)))
    });
}

fn bench_features(c: &mut Criterion) {
    let ds = small_dataset();
    let q = &ds.queries[0];
    c.bench_function("features/plan_level_extraction", |b| {
        b.iter(|| {
            let views = q.views(FeatureSource::Estimated);
            std::hint::black_box(qpp::plan_features(&q.plan, &views))
        })
    });
}

fn bench_training(c: &mut Criterion) {
    let ds = small_dataset();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    c.bench_function("train/plan_level_40_queries", |b| {
        b.iter_batched(
            || refs.clone(),
            |r| std::hint::black_box(PlanLevelModel::train(&r, &PlanModelConfig::default())),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("train/op_level_40_queries", |b| {
        b.iter_batched(
            || refs.clone(),
            |r| std::hint::black_box(OpLevelModel::train(&r, &OpModelConfig::default())),
            BatchSize::SmallInput,
        )
    });
}

fn bench_prediction(c: &mut Criterion) {
    let ds = small_dataset();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let plan_model = PlanLevelModel::train(&refs, &PlanModelConfig::default()).unwrap();
    let op_model = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
    let q = refs[0];
    c.bench_function("predict/plan_level", |b| {
        b.iter(|| std::hint::black_box(plan_model.predict(q)))
    });
    c.bench_function("predict/operator_level", |b| {
        b.iter(|| std::hint::black_box(op_model.predict(q)))
    });
    // The guarded path adds feature-finiteness checks and breaker reads
    // on top of the raw prediction; its overhead must stay negligible.
    let qpp = qpp::QppPredictor::train(&refs, qpp::QppConfig::default()).unwrap();
    c.bench_function("predict/checked_plan_level", |b| {
        b.iter(|| std::hint::black_box(qpp.predict_checked(q, qpp::Method::PlanLevel)))
    });
}

fn bench_compiled_inference(c: &mut Criterion) {
    use rand::Rng;
    // A plan-level-sized SVR: linear kernel, forward-selected feature
    // count, noisy target so nearly all rows stay support vectors.
    let mut rng = StdRng::seed_from_u64(0x51E9);
    let rows: Vec<Vec<f64>> = (0..512)
        .map(|_| (0..3).map(|_| rng.gen_range(-5.0f64..5.0)).collect())
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| 2.0 * r[0] + 3.0 * r[1] - r[2] + rng.gen_range(-2.0..2.0))
        .collect();
    let x = ml::Dataset::from_rows(rows);
    let model = ml::svr::Svr::new(ml::SvrParams {
        kernel: ml::Kernel::Linear,
        max_iter: 2_000_000,
        ..ml::SvrParams::default()
    })
    .fit(&x, &y)
    .expect("SVR fit");
    let compiled = model.compile();
    let probes: Vec<Vec<f64>> = (0..256)
        .map(|_| (0..3).map(|_| rng.gen_range(-6.0f64..6.0)).collect())
        .collect();
    c.bench_function("predict/svr_reference_single_row", |b| {
        b.iter(|| std::hint::black_box(model.predict(&probes[0])))
    });
    let mut scratch = ml::PredictScratch::new();
    c.bench_function("predict/svr_compiled_single_row", |b| {
        b.iter(|| std::hint::black_box(compiled.predict_into(&probes[0], &mut scratch)))
    });
    c.bench_function("predict/svr_compiled_batch_256", |b| {
        b.iter(|| std::hint::black_box(compiled.predict_batch(&probes)))
    });
}

fn bench_hybrid_batch(c: &mut Criterion) {
    use qpp::hybrid::{train_hybrid, HybridConfig};
    let ds = small_dataset();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
    let cfg = HybridConfig {
        max_iterations: 6,
        min_frequency: 3,
        ..HybridConfig::default()
    };
    let (hybrid, _) = train_hybrid(&refs, op, &cfg).unwrap();
    // Sub-plan-reuse workload: the training queries repeated 8x.
    let batch: Vec<&ExecutedQuery> = refs.iter().cycle().take(refs.len() * 8).copied().collect();
    c.bench_function("predict/hybrid_serial_loop_x8", |b| {
        b.iter(|| {
            std::hint::black_box(batch.iter().map(|q| hybrid.predict(q)).sum::<f64>())
        })
    });
    c.bench_function("predict/hybrid_batch_x8", |b| {
        b.iter(|| std::hint::black_box(hybrid.predict_batch(&batch)))
    });
}

fn bench_subplan_index(c: &mut Criterion) {
    let ds = small_dataset();
    let plans: Vec<(u8, &engine::PlanNode)> =
        ds.queries.iter().map(|q| (q.template, &q.plan)).collect();
    c.bench_function("subplan/index_40_plans", |b| {
        b.iter(|| std::hint::black_box(qpp::SubplanIndex::build(&plans, 2)))
    });
}

fn bench_arena(c: &mut Criterion) {
    use engine::PlanArena;
    let ds = small_dataset();
    let plan = &ds
        .queries
        .iter()
        .max_by_key(|q| q.plan.node_count())
        .unwrap()
        .plan;
    // Boxed walk: what the hot path did pre-arena — recursive pre-order
    // collection plus a per-node `node_count` and recursive hash.
    c.bench_function("arena/boxed_hash_sizes_walk", |b| {
        b.iter(|| {
            let nodes = plan.preorder();
            let hs: Vec<(u64, usize)> = nodes
                .iter()
                .map(|n| (qpp::structure_key(n).0, n.node_count()))
                .collect();
            std::hint::black_box(hs)
        })
    });
    // Arena walk: one flatten, then linear postorder hashing with the
    // sizes coming out of the flatten itself.
    c.bench_function("arena/flatten_hash_sizes", |b| {
        b.iter(|| {
            let arena = PlanArena::flatten(plan);
            let hashes = qpp::arena_structure_hashes(&arena);
            std::hint::black_box((hashes, arena.sizes().len()))
        })
    });
    let arena = PlanArena::flatten(plan);
    c.bench_function("arena/child_cursor_full_walk", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..arena.len() {
                for ci in arena.children(i) {
                    acc += ci;
                }
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_simd_kernel(c: &mut Criterion) {
    use ml::scaler::TargetScaler;
    use rand::Rng;
    // Hand-built SVR with every support vector retained (512 x the full
    // plan-feature arity) — the same shape perf_trajectory gates on.
    let d = qpp::features::plan_feature_count();
    let mut rng = StdRng::seed_from_u64(0x51E9);
    let sv: Vec<Vec<f64>> = (0..512)
        .map(|_| (0..d).map(|_| rng.gen_range(-5.0f64..5.0)).collect())
        .collect();
    let coef: Vec<f64> = (0..512)
        .map(|_| {
            let v: f64 = rng.gen_range(0.05f64..2.0);
            if rng.gen_bool(0.5) {
                v
            } else {
                -v
            }
        })
        .collect();
    let scaler_rows: Vec<Vec<f64>> = (0..16)
        .map(|_| (0..d).map(|_| rng.gen_range(-20.0f64..20.0)).collect())
        .collect();
    let x_scaler = ml::StandardScaler::fit(&ml::Dataset::from_rows(scaler_rows));
    let y_scaler = TargetScaler::fit(&[-10.0, 0.0, 25.0]);
    let model = ml::SvrModel::from_parts(
        ml::Kernel::Linear,
        0.05,
        sv,
        coef,
        0.3,
        x_scaler,
        y_scaler,
        d,
    );
    let compiled = ml::compiled::CompiledSvr::compile(&model);
    let probes: Vec<Vec<f64>> = (0..256)
        .map(|_| (0..d).map(|_| rng.gen_range(-6.0f64..6.0)).collect())
        .collect();
    let mut scratch = ml::PredictScratch::new();
    c.bench_function("kernel/unblocked_single_row", |b| {
        b.iter(|| std::hint::black_box(compiled.predict_into_unblocked(&probes[0], &mut scratch)))
    });
    c.bench_function("kernel/scalar_tree_single_row", |b| {
        b.iter(|| std::hint::black_box(compiled.predict_into_scalar(&probes[0], &mut scratch)))
    });
    c.bench_function("kernel/dispatched_single_row", |b| {
        b.iter(|| std::hint::black_box(compiled.predict_into(&probes[0], &mut scratch)))
    });
    c.bench_function("kernel/pair_rows", |b| {
        b.iter(|| {
            std::hint::black_box(compiled.predict_into_pair(&probes[0], &probes[1], &mut scratch))
        })
    });
    let mut out = Vec::with_capacity(probes.len());
    c.bench_function("kernel/batch_256", |b| {
        b.iter(|| {
            compiled.predict_batch_into(&probes, &mut out, &mut scratch);
            std::hint::black_box(out.last().copied())
        })
    });
}

fn bench_ml(c: &mut Criterion) {
    use ml::{Dataset, Learner, LearnerKind};
    let mut rng = StdRng::seed_from_u64(4);
    use rand::Rng;
    let rows: Vec<Vec<f64>> = (0..200)
        .map(|_| (0..8).map(|_| rng.gen_range(0.0..10.0)).collect())
        .collect();
    let y: Vec<f64> = rows.iter().map(|r| r.iter().sum::<f64>() * 2.0 + 1.0).collect();
    let x = Dataset::from_rows(rows);
    c.bench_function("ml/linreg_fit_200x8", |b| {
        b.iter(|| std::hint::black_box(LearnerKind::Linear { ridge: 1e-6 }.fit(&x, &y)))
    });
    c.bench_function("ml/svr_fit_200x8", |b| {
        b.iter(|| {
            std::hint::black_box(LearnerKind::Svr(ml::SvrParams::default()).fit(&x, &y))
        })
    });
    c.bench_function("ml/nusvr_fit_200x8", |b| {
        b.iter(|| {
            std::hint::black_box(LearnerKind::NuSvr(ml::NuSvrParams::default()).fit(&x, &y))
        })
    });
    // Five-fold CV over the same data: exercises the parallel fold fan-out
    // and the Gram cache (each distinct fold misses once, then hits).
    let folds = ml::cv::kfold(x.n_rows(), 5, 4);
    c.bench_function("ml/cv5_svr_200x8", |b| {
        b.iter(|| {
            std::hint::black_box(ml::cv::cross_validate(
                &LearnerKind::Svr(ml::SvrParams::default()),
                &x,
                &y,
                &folds,
            ))
        })
    });
}

fn bench_collection(c: &mut Criterion) {
    let catalog = Catalog::new(0.1, 1);
    let workload = Workload::generate(&[1, 3, 6, 14], 10, 0.1, 7);
    let sim = Simulator::new();
    c.bench_function("collect/execute_40_queries", |b| {
        b.iter(|| {
            std::hint::black_box(QueryDataset::execute(
                &catalog,
                &workload,
                &sim,
                11,
                f64::INFINITY,
            ))
        })
    });
}

fn bench_hybrid_build(c: &mut Criterion) {
    use qpp::hybrid::{train_hybrid, HybridConfig};
    let ds = small_dataset();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op = OpLevelModel::train(&refs, &OpModelConfig::default()).unwrap();
    let cfg = HybridConfig {
        max_iterations: 6,
        min_frequency: 3,
        ..HybridConfig::default()
    };
    c.bench_function("train/hybrid_build_40_queries", |b| {
        b.iter_batched(
            || op.clone(),
            |op| std::hint::black_box(train_hybrid(&refs, op, &cfg)),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_planner, bench_simulator, bench_features, bench_training,
              bench_prediction, bench_compiled_inference, bench_hybrid_batch,
              bench_subplan_index, bench_arena, bench_simd_kernel, bench_ml,
              bench_collection, bench_hybrid_build
}
criterion_main!(benches);
