//! Plain-text reporting helpers shared by the figure binaries.

/// Prints a per-template error table in the paper's bar-plot layout
/// (errors in percent, capped values flagged like the paper's plots).
pub fn print_template_errors(title: &str, errors: &[(u8, f64)]) {
    println!("\n== {title} ==");
    println!("{:<10} {:>12}", "template", "rel.err (%)");
    for (t, e) in errors {
        let pct = e * 100.0;
        if pct > 50.0 {
            println!("{:<10} {:>12.1}  (beyond 50% plot cap)", format!("t{t}"), pct);
        } else {
            println!("{:<10} {:>12.1}", format!("t{t}"), pct);
        }
    }
    let avg = errors.iter().map(|(_, e)| e).sum::<f64>() / errors.len() as f64;
    println!("{:<10} {:>12.1}", "AVG", avg * 100.0);
}

/// Prints an (x, y) series for a line plot.
pub fn print_series(title: &str, x_label: &str, y_label: &str, series: &[(f64, f64)]) {
    println!("\n== {title} ==");
    println!("{:<14} {:>14}", x_label, y_label);
    for (x, y) in series {
        println!("{x:<14.3} {y:>14.4}");
    }
}

/// Prints a scatter of (actual, estimate) pairs, ordered by actual — the
/// paper's Figure 5 / 6(b) / 6(e) data.
pub fn print_scatter(title: &str, pairs: &[(f64, f64)], max_rows: usize) {
    println!("\n== {title} ==");
    println!("{:<16} {:>16}", "actual (s)", "estimate (s)");
    let mut sorted = pairs.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let stride = (sorted.len() / max_rows.max(1)).max(1);
    for (i, (a, e)) in sorted.iter().enumerate() {
        if i % stride == 0 {
            println!("{a:<16.2} {e:>16.2}");
        }
    }
    println!("({} points total, printed every {})", sorted.len(), stride);
}

/// Prints an (x, y) scatter with custom axis labels, ordered by x.
pub fn print_xy(title: &str, x_label: &str, y_label: &str, pairs: &[(f64, f64)], max_rows: usize) {
    println!("\n== {title} ==");
    println!("{x_label:<16} {y_label:>16}");
    let mut sorted = pairs.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let stride = (sorted.len() / max_rows.max(1)).max(1);
    for (i, (x, y)) in sorted.iter().enumerate() {
        if i % stride == 0 {
            println!("{x:<16.2} {y:>16.2}");
        }
    }
    println!("({} points total, printed every {})", sorted.len(), stride);
}

/// Formats a seconds value compactly.
pub fn fmt_secs(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.1}h", s / 3600.0)
    } else if s >= 60.0 {
        format!("{:.1}m", s / 60.0)
    } else {
        format!("{s:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_secs_scales() {
        assert_eq!(fmt_secs(5.0), "5.0s");
        assert_eq!(fmt_secs(120.0), "2.0m");
        assert_eq!(fmt_secs(7200.0), "2.0h");
    }
}
