//! `BENCH-v1` — the stable bench-report contract.
//!
//! Every harness binary (`perf_trajectory`, `serve_load`, `drift_loop`)
//! emits the same JSON document shape, and `bench_compare` consumes it:
//!
//! ```json
//! {
//!   "schema": "BENCH-v1",
//!   "tool": "perf_trajectory",
//!   "pr": 7,
//!   "context": { "templates": [1, 3, 5], "threads": 1 },
//!   "benches": [
//!     { "name": "kernel/compiled_single_row", "value": 1.2e6, "unit": "rows/s" }
//!   ]
//! }
//! ```
//!
//! `context` carries tool-specific knobs (workload size, client count,
//! noise magnitude) so a reader can tell whether two documents are
//! comparable; `benches` is the flat measurement list. Regression
//! direction is *inferred from the unit*, never stored: throughput units
//! (`rows/s`, `queries/s`, `rps`) and speedup ratios (`x`) are
//! higher-is-better, latencies (`s`, `ms`) and error metrics (`mre`) are
//! lower-is-better, and anything else is informational — reported but
//! never gated on.

use serde::{Deserialize, Serialize};

/// The schema identifier every conforming document must carry.
pub const SCHEMA_ID: &str = "BENCH-v1";

/// One measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Stable `group/metric` name, e.g. `kernel/compiled_single_row`.
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit string; determines the regression direction (see
    /// [`direction_for_unit`]).
    pub unit: String,
}

/// A full bench report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchDoc {
    /// Must equal [`SCHEMA_ID`].
    pub schema: String,
    /// Emitting binary, e.g. `perf_trajectory`.
    pub tool: String,
    /// PR number whose trajectory this document belongs to.
    pub pr: u64,
    /// Tool-specific configuration the measurements were taken under.
    pub context: serde_json::Value,
    /// The measurements.
    pub benches: Vec<BenchEntry>,
}

/// Which way a metric should move to count as an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Throughputs and speedups: a drop is a regression.
    HigherIsBetter,
    /// Latencies and error metrics: a rise is a regression.
    LowerIsBetter,
    /// Counters and configuration echoes: reported, never gated.
    Info,
}

/// Infers the regression direction from a unit string.
pub fn direction_for_unit(unit: &str) -> Direction {
    match unit {
        "x" | "rps" => Direction::HigherIsBetter,
        "s" | "ms" | "mre" => Direction::LowerIsBetter,
        u if u.ends_with("/s") => Direction::HigherIsBetter,
        _ => Direction::Info,
    }
}

impl BenchDoc {
    /// Convenience constructor stamping [`SCHEMA_ID`].
    pub fn new(tool: &str, pr: u64, context: serde_json::Value) -> Self {
        BenchDoc {
            schema: SCHEMA_ID.to_string(),
            tool: tool.to_string(),
            pr,
            context,
            benches: Vec::new(),
        }
    }

    /// Appends one measurement.
    pub fn push(&mut self, name: &str, value: f64, unit: &str) {
        self.benches.push(BenchEntry {
            name: name.to_string(),
            value,
            unit: unit.to_string(),
        });
    }

    /// Looks up a measurement by exact name.
    pub fn get(&self, name: &str) -> Option<&BenchEntry> {
        self.benches.iter().find(|b| b.name == name)
    }

    /// Structural validity: schema id, non-empty tool, at least one
    /// measurement, unique non-empty names, finite values, non-empty
    /// units. Returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA_ID {
            return Err(format!(
                "schema is {:?}, expected {:?}",
                self.schema, SCHEMA_ID
            ));
        }
        if self.tool.is_empty() {
            return Err("tool is empty".to_string());
        }
        if self.benches.is_empty() {
            return Err("benches is empty".to_string());
        }
        let mut seen = std::collections::HashSet::new();
        for b in &self.benches {
            if b.name.is_empty() {
                return Err("bench entry with empty name".to_string());
            }
            if !seen.insert(b.name.as_str()) {
                return Err(format!("duplicate bench name {:?}", b.name));
            }
            if !b.value.is_finite() {
                return Err(format!("{}: value {} is not finite", b.name, b.value));
            }
            if b.unit.is_empty() {
                return Err(format!("{}: unit is empty", b.name));
            }
        }
        Ok(())
    }
}

/// One baseline-vs-fresh comparison row.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Measurement name.
    pub name: String,
    /// Unit (from the baseline entry).
    pub unit: String,
    /// Direction inferred from the unit.
    pub direction: Direction,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value.
    pub fresh: f64,
    /// `fresh / baseline` (`NaN` when the baseline is zero).
    pub ratio: f64,
    /// Whether the fresh value moved the wrong way beyond the noise band.
    pub regressed: bool,
}

/// The outcome of diffing a fresh run against a committed baseline.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-measurement rows, in baseline order.
    pub deltas: Vec<Delta>,
    /// Gated baseline entries with no counterpart in the fresh run —
    /// treated as failures (a silently dropped metric is not a pass).
    pub missing_in_fresh: Vec<String>,
}

impl CompareReport {
    /// True when no gated metric regressed or went missing.
    pub fn passed(&self) -> bool {
        self.missing_in_fresh.is_empty() && self.deltas.iter().all(|d| !d.regressed)
    }
}

/// Diffs `fresh` against `baseline`, flagging any gated metric that moved
/// the wrong way by more than `noise` (a fraction, e.g. `0.4` = 40%).
///
/// Only baseline entries whose name starts with `filter` (all, when
/// `None`) participate. [`Direction::Info`] entries are reported but
/// never flagged; metrics present only in `fresh` are ignored, since the
/// committed baseline defines the contract.
pub fn compare(
    baseline: &BenchDoc,
    fresh: &BenchDoc,
    noise: f64,
    filter: Option<&str>,
) -> CompareReport {
    let mut deltas = Vec::new();
    let mut missing_in_fresh = Vec::new();
    for b in &baseline.benches {
        if let Some(prefix) = filter {
            if !b.name.starts_with(prefix) {
                continue;
            }
        }
        let direction = direction_for_unit(&b.unit);
        match fresh.get(&b.name) {
            None => {
                if direction == Direction::Info {
                    continue;
                }
                missing_in_fresh.push(b.name.clone());
            }
            Some(f) => {
                let ratio = if b.value == 0.0 {
                    f64::NAN
                } else {
                    f.value / b.value
                };
                let regressed = match direction {
                    Direction::HigherIsBetter => f.value < b.value * (1.0 - noise),
                    Direction::LowerIsBetter => f.value > b.value * (1.0 + noise),
                    Direction::Info => false,
                };
                deltas.push(Delta {
                    name: b.name.clone(),
                    unit: b.unit.clone(),
                    direction,
                    baseline: b.value,
                    fresh: f.value,
                    ratio,
                    regressed,
                });
            }
        }
    }
    CompareReport {
        deltas,
        missing_in_fresh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(entries: &[(&str, f64, &str)]) -> BenchDoc {
        let mut d = BenchDoc::new("test", 7, serde_json::json!({}));
        for (n, v, u) in entries {
            d.push(n, *v, u);
        }
        d
    }

    #[test]
    fn direction_inference_covers_the_emitted_units() {
        assert_eq!(direction_for_unit("rows/s"), Direction::HigherIsBetter);
        assert_eq!(direction_for_unit("queries/s"), Direction::HigherIsBetter);
        assert_eq!(direction_for_unit("rps"), Direction::HigherIsBetter);
        assert_eq!(direction_for_unit("x"), Direction::HigherIsBetter);
        assert_eq!(direction_for_unit("s"), Direction::LowerIsBetter);
        assert_eq!(direction_for_unit("ms"), Direction::LowerIsBetter);
        assert_eq!(direction_for_unit("mre"), Direction::LowerIsBetter);
        assert_eq!(direction_for_unit("queries"), Direction::Info);
        assert_eq!(direction_for_unit("fraction"), Direction::Info);
        assert_eq!(direction_for_unit("requests"), Direction::Info);
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(doc(&[("a", 1.0, "s")]).validate().is_ok());
        let mut bad = doc(&[("a", 1.0, "s")]);
        bad.schema = "BENCH-v0".to_string();
        assert!(bad.validate().is_err());
        assert!(doc(&[]).validate().is_err());
        assert!(doc(&[("a", 1.0, "s"), ("a", 2.0, "s")]).validate().is_err());
        assert!(doc(&[("a", f64::NAN, "s")]).validate().is_err());
        assert!(doc(&[("a", 1.0, "")]).validate().is_err());
        assert!(doc(&[("", 1.0, "s")]).validate().is_err());
    }

    #[test]
    fn compare_flags_regressions_by_direction_within_noise() {
        let base = doc(&[
            ("kernel/tput", 100.0, "rows/s"),
            ("kernel/lat", 10.0, "ms"),
            ("info/count", 5.0, "requests"),
        ]);
        // Within the 20% band: pass.
        let ok = doc(&[
            ("kernel/tput", 85.0, "rows/s"),
            ("kernel/lat", 11.5, "ms"),
            ("info/count", 900.0, "requests"),
        ]);
        assert!(compare(&base, &ok, 0.2, None).passed());
        // Throughput collapse: fail.
        let slow = doc(&[
            ("kernel/tput", 70.0, "rows/s"),
            ("kernel/lat", 10.0, "ms"),
        ]);
        let r = compare(&base, &slow, 0.2, None);
        assert!(!r.passed());
        assert!(r.deltas.iter().any(|d| d.name == "kernel/tput" && d.regressed));
        // Latency blowup: fail.
        let lag = doc(&[
            ("kernel/tput", 100.0, "rows/s"),
            ("kernel/lat", 13.0, "ms"),
        ]);
        assert!(!compare(&base, &lag, 0.2, None).passed());
    }

    #[test]
    fn compare_honors_filter_and_missing_metrics() {
        let base = doc(&[
            ("kernel/tput", 100.0, "rows/s"),
            ("serve/p99", 50.0, "ms"),
        ]);
        // serve/p99 regressed, but the kernel/ filter excludes it.
        let fresh = doc(&[
            ("kernel/tput", 100.0, "rows/s"),
            ("serve/p99", 500.0, "ms"),
        ]);
        assert!(compare(&base, &fresh, 0.1, Some("kernel/")).passed());
        assert!(!compare(&base, &fresh, 0.1, None).passed());
        // A gated baseline metric missing from the fresh run fails.
        let partial = doc(&[("serve/p99", 50.0, "ms")]);
        let r = compare(&base, &partial, 0.1, None);
        assert!(!r.passed());
        assert_eq!(r.missing_in_fresh, vec!["kernel/tput".to_string()]);
    }

    #[test]
    fn documents_round_trip_through_json() {
        let mut d = BenchDoc::new("perf_trajectory", 7, serde_json::json!({"threads": 1}));
        d.push("kernel/compiled_single_row", 1.25e6, "rows/s");
        d.push("kernel/speedup_single", 1.75, "x");
        let text = serde_json::to_string_pretty(&d).unwrap();
        let back: BenchDoc = serde_json::from_str(&text).unwrap();
        assert!(back.validate().is_ok());
        assert_eq!(back.benches.len(), 2);
        assert_eq!(
            back.get("kernel/compiled_single_row").unwrap().value.to_bits(),
            1.25e6f64.to_bits()
        );
        assert_eq!(back.get("kernel/speedup_single").unwrap().unit, "x");
    }
}
