//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Usage: `ablation <which> [--per-template N]` with `which` ∈
//! {feature-selection, plan-model-type, start-time, epsilon, noise, all}.

use engine::{Catalog, SimConfig, Simulator};
use qpp::dataset::{QueryDataset, ONE_HOUR_SECS};
use qpp::hybrid::{train_hybrid, HybridConfig, PlanOrdering};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::plan_model::{PlanLevelModel, PlanModelConfig};
use qpp::ExecutedQuery;
use qpp_bench::{build_dataset_sized, cross_validate_method, plan_level_cv, WORKLOAD_SEED};
use tpch::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(String::as_str).unwrap_or("all").to_string();
    let per_template = args
        .iter()
        .position(|a| a == "--per-template")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let want = |p: &str| which == "all" || which == p;

    if want("feature-selection") {
        // Paper Section 3.1: models on the full feature set are frequently
        // less accurate than feature-selected ones — most visibly when
        // training data is scarce relative to the 33-dimensional feature
        // space.
        println!("== Ablation: forward feature selection (plan-level, 1GB) ==");
        println!("{:<22} {:>14} {:>14}", "training size", "selected (%)", "full set (%)");
        for per in [6usize, 12, per_template] {
            let ds = build_dataset_sized(1.0, &tpch::EIGHTEEN, per);
            let selected = plan_level_cv(&ds, &PlanModelConfig::default()).overall_error();
            let full = cross_validate_method(
                &ds,
                42,
                |train| {
                    PlanLevelModel::train_without_selection(train, &PlanModelConfig::default())
                        .expect("training")
                },
                |m, q| m.predict(q),
            )
            .overall_error();
            println!(
                "{:<22} {:>14.2} {:>14.2}",
                format!("{per}/template"),
                selected * 100.0,
                full * 100.0
            );
        }
        println!("(paper: the full feature set frequently performs worse)\n");
    }

    if want("plan-model-type") {
        let ds = build_dataset_sized(1.0, &tpch::EIGHTEEN, per_template);
        println!("== Ablation: plan-level model family (1GB) ==");
        for (name, learner) in [
            ("SVR (paper)", ml::LearnerKind::Svr(ml::SvrParams::default())),
            ("linear regression", ml::LearnerKind::Linear { ridge: 1e-6 }),
        ] {
            let config = PlanModelConfig {
                learner,
                ..PlanModelConfig::default()
            };
            let err = plan_level_cv(&ds, &config).overall_error();
            println!("{name:<20} {:.2}%", err * 100.0);
        }
        println!();
    }

    if want("start-time") {
        // Retrain the operator-level models without the child start-time
        // features (st1/st2): the composition loses its view of blocking
        // behaviour (Section 3.2's Materialize example).
        let ds = build_dataset_sized(1.0, &tpch::FOURTEEN, per_template);
        let with = qpp_bench::op_level_cv(&ds, &OpModelConfig::default()).overall_error();
        let without = qpp_bench::op_level_cv(
            &ds,
            &OpModelConfig {
                include_start_features: false,
                ..OpModelConfig::default()
            },
        )
        .overall_error();
        println!("== Ablation: start-time features in operator models (1GB) ==");
        println!("with st1/st2 features:    {:.2}%", with * 100.0);
        println!("without st1/st2 features: {:.2}%", without * 100.0);
        println!("(start-time models let parents see blocking children)\n");
    }

    if want("epsilon") {
        let ds = build_dataset_sized(1.0, &tpch::FOURTEEN, per_template);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        println!("== Ablation: hybrid acceptance threshold ε (1GB) ==");
        println!("{:<10} {:>8} {:>14}", "epsilon", "models", "final err (%)");
        for eps in [0.0, 1e-3, 1e-2, 5e-2] {
            let op = OpLevelModel::train(&refs, &OpModelConfig::default()).expect("op");
            let config = HybridConfig {
                epsilon: eps,
                strategy: PlanOrdering::ErrorBased,
                max_iterations: 20,
                ..HybridConfig::default()
            };
            let (hybrid, records) = train_hybrid(&refs, op, &config).expect("hybrid");
            let err = records
                .last()
                .map(|r| r.error)
                .unwrap_or(f64::NAN);
            println!(
                "{:<10} {:>8} {:>14.2}",
                format!("{eps:.0e}"),
                hybrid.plan_models.len(),
                err * 100.0
            );
        }
        println!();
    }

    if want("noise") {
        println!("== Ablation: noise sensitivity of plan-level prediction (1GB) ==");
        println!("{:<24} {:>14}", "noise configuration", "cv error (%)");
        for (label, sigma, additive) in [
            ("none", 0.0, 0.0),
            ("multiplicative only", 0.05, 0.0),
            ("default", 0.05, 1.5),
            ("heavy", 0.10, 4.0),
        ] {
            let catalog = Catalog::new(1.0, 1);
            let workload = Workload::generate(&tpch::EIGHTEEN, per_template, 1.0, WORKLOAD_SEED);
            let sim = Simulator::with_config(SimConfig {
                query_noise_sigma: sigma,
                additive_noise_secs: additive,
                ..SimConfig::default()
            });
            let ds = QueryDataset::execute(&catalog, &workload, &sim, 777, ONE_HOUR_SECS);
            let err = plan_level_cv(&ds, &PlanModelConfig::default()).overall_error();
            println!("{label:<24} {:>14.2}", err * 100.0);
        }
        println!("(prediction error tracks the irreducible noise floor)");
    }
}
