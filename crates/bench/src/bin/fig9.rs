//! Figure 9 — dynamic workload prediction.
//!
//! Leave-one-template-out over the 12-template subset at 10 GB: for each
//! template, train on the other 11 and predict the held-out one with
//! plan-level, operator-level, hybrid (error-based and size-based) and
//! online models. The paper's shape: plan-level fails across the board;
//! online is best everywhere except template 7; size-based ≥ error-based.

use ml::metrics::mean_relative_error;
use qpp::hybrid::{train_hybrid, HybridConfig, HybridModel, PlanOrdering};
use qpp::online::{OnlineConfig, OnlinePredictor};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::plan_model::{PlanLevelModel, PlanModelConfig};
use qpp_bench::{build_dataset_sized, PER_TEMPLATE};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let per_template = args
        .iter()
        .position(|a| a == "--per-template")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(PER_TEMPLATE);

    let ds = build_dataset_sized(10.0, &tpch::TWELVE, per_template);
    println!("== Fig 9: dynamic workload (leave-one-template-out, 10GB) ==");
    println!("mean relative error (%) on the held-out template\n");
    println!(
        "{:<10} {:>11} {:>9} {:>12} {:>11} {:>8}",
        "template", "plan-level", "op-level", "error-based", "size-based", "online"
    );

    let mut sums = [0.0f64; 5];
    let mut n_rows = 0usize;
    for &held_out in &tpch::TWELVE {
        let (train, test) = ds.leave_template_out(held_out);
        if test.is_empty() {
            continue;
        }
        let actual: Vec<f64> = test.iter().map(|q| q.latency()).collect();
        let err = |preds: &[f64]| mean_relative_error(&actual, preds) * 100.0;

        let plan_model =
            PlanLevelModel::train(&train, &PlanModelConfig::default()).expect("plan-level");
        let plan_err = err(&test.iter().map(|q| plan_model.predict(q)).collect::<Vec<_>>());

        let op_model = OpLevelModel::train(&train, &OpModelConfig::default()).expect("op-level");
        let op_err = err(&test.iter().map(|q| op_model.predict(q)).collect::<Vec<_>>());

        let mut strat_errs = Vec::new();
        let mut last_hybrid: Option<HybridModel> = None;
        for strategy in [PlanOrdering::ErrorBased, PlanOrdering::SizeBased] {
            let config = HybridConfig {
                strategy,
                max_iterations: 20,
                ..HybridConfig::default()
            };
            let (hybrid, _) =
                train_hybrid(&train, op_model.clone(), &config).expect("hybrid");
            strat_errs.push(err(&test
                .iter()
                .map(|q| hybrid.predict(q))
                .collect::<Vec<_>>()));
            last_hybrid = Some(hybrid);
        }

        // Online builds on the pre-built hybrid models plus per-query
        // fragments of the incoming plans.
        let base = last_hybrid.expect("hybrid trained");
        let mut online = OnlinePredictor::new(
            train.clone(),
            base,
            OnlineConfig::default(),
        );
        let online_err = err(&test
            .iter()
            .map(|q| online.predict_query(q))
            .collect::<Vec<_>>());

        println!(
            "{:<10} {:>11.1} {:>9.1} {:>12.1} {:>11.1} {:>8.1}",
            format!("t{held_out}"),
            plan_err,
            op_err,
            strat_errs[0],
            strat_errs[1],
            online_err
        );
        for (i, v) in [plan_err, op_err, strat_errs[0], strat_errs[1], online_err]
            .into_iter()
            .enumerate()
        {
            sums[i] += v;
        }
        n_rows += 1;
        let _ = test;
    }
    let _ = &mut sums;
    println!(
        "{:<10} {:>11.1} {:>9.1} {:>12.1} {:>11.1} {:>8.1}",
        "AVG",
        sums[0] / n_rows as f64,
        sums[1] / n_rows as f64,
        sums[2] / n_rows as f64,
        sums[3] / n_rows as f64,
        sums[4] / n_rows as f64
    );
    println!(
        "\n(paper: plan-level poor across the board; online best everywhere\n\
         except template 7; size-based somewhat better than error-based)"
    );
}
