//! Diff a fresh `BENCH-v1` run against a committed baseline, or validate
//! documents against the schema.
//!
//! ```text
//! bench_compare --check-schema FILE...
//! bench_compare BASELINE FRESH [--noise FRAC] [--filter PREFIX]
//! ```
//!
//! Schema mode parses and validates each file, exiting non-zero on the
//! first malformed document — CI runs it over every committed BENCH_*.json
//! so the contract can't silently drift.
//!
//! Compare mode diffs `FRESH` against `BASELINE` entry by entry. The
//! regression direction comes from each entry's unit; a gated metric that
//! moved the wrong way by more than the noise band (default 25%), or that
//! disappeared from the fresh run, fails the gate with exit code 1.
//! Informational entries are printed but never gated.

use qpp_bench::schema::{compare, BenchDoc, Direction};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench_compare --check-schema FILE...");
    eprintln!("       bench_compare BASELINE FRESH [--noise FRAC] [--filter PREFIX]");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<BenchDoc, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{path}: read failed: {e}"))?;
    let doc: BenchDoc =
        serde_json::from_str(&text).map_err(|e| format!("{path}: parse failed: {e:?}"))?;
    doc.validate().map_err(|e| format!("{path}: invalid: {e}"))?;
    Ok(doc)
}

fn check_schema(files: &[String]) -> ExitCode {
    let mut failed = false;
    for path in files {
        match load(path) {
            Ok(doc) => println!(
                "ok      {path} (tool={}, pr={}, {} benches)",
                doc.tool,
                doc.pr,
                doc.benches.len()
            ),
            Err(e) => {
                eprintln!("FAIL    {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn run_compare(
    baseline_path: &str,
    fresh_path: &str,
    noise: f64,
    filter: Option<&str>,
) -> ExitCode {
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for e in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("FAIL    {e}");
            }
            return ExitCode::FAILURE;
        }
    };
    println!(
        "comparing {fresh_path} (fresh) against {baseline_path} (baseline), \
         noise band {:.0}%{}",
        noise * 100.0,
        filter.map(|p| format!(", filter {p:?}")).unwrap_or_default()
    );
    let report = compare(&baseline, &fresh, noise, filter);
    for d in &report.deltas {
        let tag = match (d.direction, d.regressed) {
            (Direction::Info, _) => "info",
            (_, true) => "REGRESSED",
            (_, false) => "ok",
        };
        println!(
            "{tag:<9} {:<44} {:>14.6} -> {:>14.6} {:<9} ({:.2}x)",
            d.name, d.baseline, d.fresh, d.unit, d.ratio
        );
    }
    for name in &report.missing_in_fresh {
        println!("MISSING   {name} (gated metric absent from fresh run)");
    }
    if report.passed() {
        println!("PASS: {} metrics within the noise band", report.deltas.len());
        ExitCode::SUCCESS
    } else {
        let n = report.deltas.iter().filter(|d| d.regressed).count()
            + report.missing_in_fresh.len();
        println!("FAIL: {n} metric(s) regressed beyond the noise band");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check-schema") {
        if args.len() < 2 {
            return usage();
        }
        return check_schema(&args[1..]);
    }
    if args.len() < 2 {
        return usage();
    }
    let (baseline, fresh) = (&args[0], &args[1]);
    let mut noise = 0.25;
    let mut filter: Option<String> = None;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--noise" if i + 1 < args.len() => {
                noise = match args[i + 1].parse() {
                    Ok(v) => v,
                    Err(_) => return usage(),
                };
                i += 2;
            }
            "--filter" if i + 1 < args.len() => {
                filter = Some(args[i + 1].clone());
                i += 2;
            }
            _ => return usage(),
        }
    }
    run_compare(baseline, fresh, noise, filter.as_deref())
}
