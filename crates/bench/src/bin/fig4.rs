//! Figure 4 — common sub-plan analysis over the 14-template workload.
//!
//! (a) CDF of common-sub-plan sizes; (b) the most common sub-plans;
//! (c) for each template, the number of other templates it shares common
//! sub-plans with.

use engine::{Catalog, Planner};
use qpp::subplan::SubplanIndex;
use qpp_bench::WORKLOAD_SEED;
use tpch::Workload;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = args.get(1).map(String::as_str).unwrap_or("all").to_string();
    let want = |p: &str| panel == "all" || panel == p;

    // Plan structures only — no execution needed for this analysis.
    let sf = 10.0;
    let catalog = Catalog::new(sf, 1);
    let planner = Planner::new(&catalog);
    let workload = Workload::generate(&tpch::FOURTEEN, 10, sf, WORKLOAD_SEED);
    let plans: Vec<(u8, engine::PlanNode)> = workload
        .queries
        .iter()
        .map(|q| (q.template, planner.plan(q)))
        .collect();
    let refs: Vec<(u8, &engine::PlanNode)> = plans.iter().map(|(t, p)| (*t, p)).collect();
    let index = SubplanIndex::build(&refs, 2);

    if want("a") {
        println!("== Fig 4(a): CDF of common sub-plan sizes (#operators) ==");
        let sizes = index.common_size_distribution();
        if sizes.is_empty() {
            println!("(no sub-plans shared across templates)");
        } else {
            let n = sizes.len() as f64;
            println!("{:<8} {:>8}", "size", "F(x)");
            let mut last = 0usize;
            for (i, s) in sizes.iter().enumerate() {
                if (i + 1 == sizes.len() || sizes[i + 1] != *s)
                    && *s != last {
                        println!("{:<8} {:>8.3}", s, (i + 1) as f64 / n);
                        last = *s;
                    }
            }
            println!("(paper: mass concentrated on small sizes — smaller sub-plans are more common)");
        }
    }
    if want("b") {
        println!("\n== Fig 4(b): most common sub-plans across the 14 templates ==");
        for info in index.common(2).into_iter().take(6) {
            println!(
                "  {:>4} occurrences, {} templates, size {:>2}: {}",
                info.frequency(),
                info.templates.len(),
                info.size,
                info.description
            );
        }
    }
    if want("c") {
        println!("\n== Fig 4(c): #templates each template shares common sub-plans with ==");
        let sharing = index.template_sharing();
        for &t in &tpch::FOURTEEN {
            let n = sharing
                .iter()
                .find(|(tt, _)| *tt == t)
                .map(|(_, n)| *n)
                .unwrap_or(0);
            println!("  t{t:<4} {n}");
        }
        println!("(paper: every template except 6 shares sub-plans with at least one other)");
    }
}
