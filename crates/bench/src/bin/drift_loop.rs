//! The self-healing model lifecycle, end to end, with numbers: train an
//! incumbent on a clean regime, inject workload drift, watch the feedback
//! loop quarantine the serving tier, shadow-retrain, and measure how much
//! of the lost accuracy the promoted model recovers.
//!
//! Prints a stage-by-stage narrative to stderr and writes a
//! machine-readable JSON report (default `BENCH_drift.json`) in the
//! `BENCH-v1` schema (see `qpp_bench::schema`).
//!
//! Usage: `drift_loop [OUT_PATH] [--per-template N] [--magnitude M]`

use engine::faults::{DriftKind, DriftPlan, FaultPlan};
use qpp_bench::schema::BenchDoc;
use engine::{Catalog, OpType, Simulator};
use ml::mean_relative_error;
use qpp::{
    CollectionConfig, DriftMonitor, ExecutedQuery, Method, ModelRegistry, MonitorConfig,
    PlanOrdering, PredictionTier, QppConfig, QppPredictor, QueryDataset, RetrainConfig,
};
use tpch::Workload;

const TEMPLATES: &[u8] = &[1, 3, 6, 14];
const SF: f64 = 0.1;

fn collect(per_template: usize, seed: u64, drift: &DriftPlan) -> QueryDataset {
    let catalog = Catalog::new(SF, 1);
    let workload = Workload::generate(TEMPLATES, per_template, SF, seed);
    let sim = Simulator::with_config(engine::SimConfig {
        additive_noise_secs: 0.05,
        ..engine::SimConfig::default()
    });
    QueryDataset::execute_drifted(
        &catalog,
        &workload,
        &sim,
        11,
        f64::INFINITY,
        &FaultPlan::none(),
        &CollectionConfig::trusting(),
        drift,
    )
    .0
}

fn hybrid_mre(pred: &QppPredictor, queries: &[&ExecutedQuery]) -> f64 {
    let actual: Vec<f64> = queries.iter().map(|q| q.latency()).collect();
    let est: Vec<f64> = queries
        .iter()
        .map(|q| {
            pred.predict_checked(q, Method::Hybrid(PlanOrdering::ErrorBased))
                .value
        })
        .collect();
    mean_relative_error(&actual, &est)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_drift.json".to_string());
    let flag = |name: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let per_template = flag("--per-template", 10.0) as usize;
    let magnitude = flag("--magnitude", 3.0);

    eprintln!("== stage 1: incumbent on the clean regime ==");
    let clean = collect(per_template, 7, &DriftPlan::none());
    let clean_refs: Vec<&ExecutedQuery> = clean.queries.iter().collect();
    let incumbent = QppPredictor::train(&clean_refs, QppConfig::default()).expect("training");
    let clean_mre = hybrid_mre(&incumbent, &clean_refs);
    eprintln!("   {} queries, in-regime MRE {clean_mre:.4}", clean_refs.len());

    let dir = std::env::temp_dir().join(format!("qpp-drift-loop-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry =
        ModelRegistry::create(&dir, incumbent, QppConfig::default()).expect("registry create");

    eprintln!("== stage 2: data grows {magnitude}x; estimates go stale ==");
    let drift = DriftPlan {
        kind: DriftKind::DataGrowth,
        onset: 0,
        ramp: 0,
        magnitude,
        seed: 1,
    };
    let drifted = collect(per_template, 21, &drift);
    let drifted_refs: Vec<&ExecutedQuery> = drifted.queries.iter().collect();
    let serving = registry.current();
    let drifted_mre = hybrid_mre(&serving, &drifted_refs);
    eprintln!(
        "   {} drifted queries, incumbent MRE {drifted_mre:.4}",
        drifted_refs.len()
    );

    eprintln!("== stage 3: feedback loop ==");
    let mut monitor = DriftMonitor::new(MonitorConfig {
        baseline_error: clean_mre,
        ..MonitorConfig::default()
    });
    let mut detected_after = drifted_refs.len();
    for (i, q) in drifted_refs.iter().enumerate() {
        let p = serving.predict_checked(q, Method::Hybrid(PlanOrdering::ErrorBased));
        let ops: Vec<OpType> = q.plan.preorder().iter().map(|n| n.op).collect();
        monitor.ingest(&serving, p.method_used, p.value, q.latency(), &ops);
        if monitor.any_quarantined() {
            detected_after = i + 1;
            break;
        }
    }
    let hybrid_state = monitor
        .tier(PredictionTier::Hybrid)
        .expect("hybrid tier state");
    eprintln!(
        "   hybrid tier {:?} after {detected_after} observations (cusum {:.2}, windowed MRE {:.4})",
        hybrid_state.health,
        hybrid_state.cusum,
        hybrid_state.windowed_error()
    );

    eprintln!("== stage 4: shadow retrain on the drifted window ==");
    let report = registry
        .shadow_retrain(&drifted_refs, &RetrainConfig::default())
        .expect("shadow retrain");
    eprintln!("   {}", report.reason);
    eprintln!(
        "   promoted={} serving version v{}",
        report.promoted,
        registry.version()
    );

    eprintln!("== stage 5: recovery ==");
    let scratch = QppPredictor::train(&drifted_refs, QppConfig::default()).expect("training");
    let scratch_mre = hybrid_mre(&scratch, &drifted_refs);
    let recovered_mre = hybrid_mre(&registry.current(), &drifted_refs);
    eprintln!(
        "   promoted MRE {recovered_mre:.4} vs from-scratch {scratch_mre:.4} \
         (stale incumbent was {drifted_mre:.4})"
    );

    let mut doc = BenchDoc::new(
        "drift_loop",
        7,
        serde_json::json!({
            "templates": TEMPLATES,
            "per_template": per_template,
            "magnitude": magnitude,
            "promoted": report.promoted,
            "serving_version": registry.version(),
        }),
    );
    doc.push("mre/clean_incumbent", clean_mre, "mre");
    doc.push("mre/drifted_incumbent", drifted_mre, "mre");
    doc.push("mre/promoted_on_drifted", recovered_mre, "mre");
    doc.push("mre/from_scratch_on_drifted", scratch_mre, "mre");
    doc.push("detect/queries_to_quarantine", detected_after as f64, "queries");
    doc.push("retrain/incumbent_holdout_mre", report.incumbent_error, "mre");
    doc.push("retrain/candidate_holdout_mre", report.candidate_error, "mre");
    doc.validate().expect("emitted document violates BENCH-v1");
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    std::fs::write(&out_path, rendered + "\n").expect("write bench report");
    println!("{out_path}");
    let _ = std::fs::remove_dir_all(&dir);
}
