//! Load generator for the networked front door, in three phases:
//!
//! A. **Clean wire throughput** — parallel persistent `QPPWIRE-v1`
//!    clients hammer the TCP front door with plan-level requests;
//!    measures end-to-end requests/s and client-observed p50/p99 wire
//!    latency (encode → TCP → serve → TCP → decode).
//! B. **Seeded wire chaos** — a `NetFaultPlan`-scripted noisy client
//!    (partial writes, mid-frame disconnects, corrupted frames, stalled
//!    readers) storms the same server while a clean client keeps
//!    measuring; reports the clean client's p99 under chaos and the
//!    server's malformed/evicted counters. Session panics must be zero.
//! C. **Graceful drain** — parallel clients are mid-burst when the
//!    server shuts down; measures the drain wall time and checks the
//!    final ledger reconciles exactly
//!    (`accepted == served + shed + missed + aborted`).
//!
//! Prints a narrative to stderr and writes `BENCH_net.json` in the
//! `BENCH-v1` schema (see `qpp_bench::schema`).
//!
//! Usage: `net_load [OUT_PATH] [--per-template N]`

use engine::faults::NetFaultPlan;
use engine::{Catalog, Simulator};
use qpp::{ExecutedQuery, Method, ModelRegistry, QppConfig, QppPredictor, QueryDataset};
use qpp_bench::schema::BenchDoc;
use serve::tenant::{TenantBudget, TenantServeConfig, TenantServer, TenantSpec};
use serve::{Client, Frame, NetConfig, NetServer, Request};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tpch::Workload;

const TEMPLATES: &[u8] = &[1, 6, 14];

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn registry_over(ds: &QueryDataset, tag: &str) -> (Arc<ModelRegistry>, std::path::PathBuf) {
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let predictor = QppPredictor::train(&refs, QppConfig::default()).expect("training");
    let dir = std::env::temp_dir().join(format!("qpp-net-load-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(
        ModelRegistry::create(&dir, predictor, QppConfig::default()).expect("registry create"),
    );
    (registry, dir)
}

/// Drives `count` requests over one persistent connection, returning the
/// per-call wire latencies in seconds.
fn client_run(addr: SocketAddr, tenant: &str, queries: &[ExecutedQuery], count: usize) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("client connect");
    let mut lat = Vec::with_capacity(count);
    for i in 0..count {
        let req = Request {
            id: i as u64,
            tenant: tenant.to_string(),
            method: Method::PlanLevel,
            deadline_micros: None,
            query: queries[i % queries.len()].clone(),
        };
        let t0 = Instant::now();
        let reply = client.request(req).expect("transport");
        lat.push(t0.elapsed().as_secs_f64());
        reply.expect("clean-phase request served");
    }
    lat
}

/// Replays one noisy frame under its scripted fault outcome on a fresh
/// connection (mirrors `tests/net_chaos.rs`).
fn chaos_frame(addr: SocketAddr, bytes: &[u8], plan: &NetFaultPlan, frame_id: u64) {
    let outcome = plan.decide(frame_id, bytes.len());
    let stall = Duration::from_secs_f64(outcome.stall_secs);
    let mut stream = TcpStream::connect(addr).expect("chaos connect");
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    if let Some(cut) = outcome.disconnect_at {
        let _ = stream.write_all(&bytes[..cut]);
        return;
    }
    let mut wire = bytes.to_vec();
    if let Some((offset, mask)) = outcome.corrupt_at {
        wire[offset] ^= mask;
    }
    if let Some(split) = outcome.partial_write_at {
        let _ = stream.write_all(&wire[..split]);
        let _ = stream.flush();
        std::thread::sleep(stall);
        let _ = stream.write_all(&wire[split..]);
    } else {
        let _ = stream.write_all(&wire);
        if !stall.is_zero() {
            std::thread::sleep(stall);
        }
    }
    let mut reply = [0u8; 4096];
    let _ = stream.read(&mut reply);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_net.json".to_string());
    let per_template = args
        .iter()
        .position(|a| a == "--per-template")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(6usize);

    eprintln!("== setup: collect + train two tenant registries ==");
    let catalog = Catalog::new(0.1, 1);
    let sim = Simulator::with_config(engine::SimConfig {
        additive_noise_secs: 0.05,
        ..engine::SimConfig::default()
    });
    let ds = QueryDataset::execute(
        &catalog,
        &Workload::generate(TEMPLATES, per_template, 0.1, 7),
        &sim,
        11,
        f64::INFINITY,
    );
    let queries = ds.queries.clone();
    let (served_registry, served_dir) = registry_over(&ds, "served");
    let (noisy_registry, noisy_dir) = registry_over(&ds, "noisy");

    let server = Arc::new(TenantServer::start(
        vec![
            TenantSpec {
                name: "served".into(),
                registry: Arc::clone(&served_registry),
                budget: TenantBudget::default(),
            },
            TenantSpec {
                name: "noisy".into(),
                registry: Arc::clone(&noisy_registry),
                budget: TenantBudget::default(),
            },
        ],
        TenantServeConfig::default(),
    ));
    let net_config = NetConfig {
        max_connections: 8,
        read_timeout: Duration::from_millis(250),
        write_timeout: Duration::from_secs(1),
        drain: Duration::from_secs(5),
        ..NetConfig::default()
    };

    // -- Phase A: clean wire throughput ---------------------------------
    eprintln!("== phase A: clean wire throughput ==");
    let client_threads = 4usize;
    let per_client = 64usize;
    let mut net =
        NetServer::bind(("127.0.0.1", 0), Arc::clone(&server), net_config.clone()).unwrap();
    let addr = net.local_addr();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..client_threads)
        .map(|_| {
            let queries = queries.clone();
            std::thread::spawn(move || client_run(addr, "served", &queries, per_client))
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let clean_wall = t0.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total = (client_threads * per_client) as f64;
    let rps = total / clean_wall;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    eprintln!(
        "   {total:.0} requests over {client_threads} connections in {clean_wall:.3}s \
         = {rps:.0} req/s, p50 {:.2} ms p99 {:.2} ms",
        p50 * 1e3,
        p99 * 1e3
    );

    // -- Phase B: seeded wire chaos -------------------------------------
    eprintln!("== phase B: seeded wire chaos ==");
    let plan = NetFaultPlan {
        partial_write_prob: 0.3,
        disconnect_prob: 0.25,
        corrupt_prob: 0.25,
        stall_prob: 0.3,
        stall_secs: 0.02,
        seed: 17,
    };
    let chaos_frames = 48usize;
    let before = net.stats();
    let mut clean = Client::connect(addr).expect("clean client");
    let mut chaos_lat = Vec::with_capacity(chaos_frames);
    for i in 0..chaos_frames {
        let bytes = Frame::Request(Request {
            id: 10_000 + i as u64,
            tenant: "noisy".to_string(),
            method: Method::PlanLevel,
            deadline_micros: None,
            query: queries[(i * 7) % queries.len()].clone(),
        })
        .encode();
        chaos_frame(addr, &bytes, &plan, i as u64);
        let req = Request {
            id: i as u64,
            tenant: "served".to_string(),
            method: Method::PlanLevel,
            deadline_micros: None,
            query: queries[i % queries.len()].clone(),
        };
        let t0 = Instant::now();
        let reply = clean.request(req).expect("clean transport under chaos");
        chaos_lat.push(t0.elapsed().as_secs_f64());
        reply.expect("clean request served under chaos");
    }
    drop(clean);
    chaos_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let chaos_p99 = percentile(&chaos_lat, 0.99);
    let after = net.stats();
    let malformed = after.malformed_frames - before.malformed_frames;
    let evicted = after.conns_evicted - before.conns_evicted;
    eprintln!(
        "   {chaos_frames} chaos frames: {malformed} malformed, {evicted} evicted, \
         {} session panics, clean p99 {:.2} ms",
        after.session_panics,
        chaos_p99 * 1e3
    );
    assert_eq!(after.session_panics, 0, "a worker session panicked");

    // -- Phase C: graceful drain under load -----------------------------
    eprintln!("== phase C: graceful drain under load ==");
    let drain_clients = 4usize;
    let stop_after = 8192usize;
    let loaders: Vec<_> = (0..drain_clients)
        .map(|_| {
            let queries = queries.clone();
            std::thread::spawn(move || {
                let Ok(mut client) = Client::connect(addr) else {
                    return 0usize;
                };
                let mut delivered = 0usize;
                for i in 0..stop_after {
                    let req = Request {
                        id: i as u64,
                        tenant: "served".to_string(),
                        method: Method::PlanLevel,
                        deadline_micros: None,
                        query: queries[i % queries.len()].clone(),
                    };
                    // Transport errors are expected once the drain
                    // closes the session; typed replies still count.
                    match client.request(req) {
                        Ok(_) => delivered += 1,
                        Err(_) => break,
                    }
                }
                delivered
            })
        })
        .collect();
    // Let the burst get airborne, then pull the plug mid-flight: the
    // burst is sized so clients are still sending when the drain starts.
    std::thread::sleep(Duration::from_millis(20));
    let t0 = Instant::now();
    let snap = net.shutdown();
    let drain_wall = t0.elapsed().as_secs_f64();
    let delivered: usize = loaders.into_iter().map(|h| h.join().unwrap_or(0)).sum();
    eprintln!(
        "   drained in {drain_wall:.3}s with {delivered} replies delivered; \
         ledger: accepted {} = served {} + shed {} + missed {} + aborted {}",
        snap.accepted, snap.served, snap.shed, snap.missed, snap.aborted
    );
    assert!(
        snap.reconciles(),
        "front-door ledger must balance exactly: {snap:?}"
    );
    let report = server.shutdown();
    assert!(report.reconciles(), "tenant ledgers must balance");

    let mut doc = BenchDoc::new(
        "net_load",
        10,
        serde_json::json!({
            "templates": TEMPLATES,
            "per_template": per_template,
            "client_threads": client_threads,
            "per_client": per_client,
            "chaos_frames": chaos_frames,
            "chaos_seed": plan.seed,
            "read_timeout_ms": 250,
            "drain_clients": drain_clients,
        }),
    );
    doc.push("tcp/requests_per_sec", rps, "rps");
    doc.push("tcp/p50", p50 * 1e3, "ms");
    doc.push("tcp/p99", p99 * 1e3, "ms");
    doc.push("chaos/clean_p99", chaos_p99 * 1e3, "ms");
    doc.push("chaos/malformed_frames", malformed as f64, "frames");
    doc.push("chaos/conns_evicted", evicted as f64, "connections");
    doc.push("chaos/session_panics", after.session_panics as f64, "panics");
    doc.push("drain/wall", drain_wall, "s");
    doc.push("drain/accepted", snap.accepted as f64, "requests");
    doc.push("drain/served", snap.served as f64, "requests");
    doc.push("drain/aborted", snap.aborted as f64, "requests");
    doc.validate().expect("emitted document violates BENCH-v1");
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    std::fs::write(&out_path, rendered + "\n").expect("write bench report");
    println!("{out_path}");
    let _ = std::fs::remove_dir_all(&served_dir);
    let _ = std::fs::remove_dir_all(&noisy_dir);
}
