//! Load generator for the multi-tenant bulkhead front-end, in three
//! phases:
//!
//! A. **Noisy-neighbor isolation** — a seeded one-hot burst floods one
//!    tenant while a quiet tenant trickles; measures the hot tenant's
//!    shed fraction at its own bulkhead and the quiet tenant's served
//!    p99 against its deadline budget (which must see zero sheds).
//! B. **Weighted-fair share** — three backlogged lanes at weights 4/2/1
//!    drained through the weighted-fair queue; measures dequeue
//!    throughput and the worst normalized-service spread against the
//!    one-batch-charge fairness bound.
//! C. **SLO → drift healing loop** — sustained degraded-tier traffic on
//!    one tenant escalates its monitor to quarantine, then one healing
//!    round shadow-retrains on a drifted window and promotes; measures
//!    rounds-to-quarantine, the healing wall time, and the error drop.
//!
//! Prints a narrative to stderr and writes `BENCH_tenant.json` in the
//! `BENCH-v1` schema (see `qpp_bench::schema`).
//!
//! Usage: `tenant_load [OUT_PATH] [--per-template N]`

use engine::faults::{DriftKind, DriftPlan, FaultPlan, ServeFaultPlan, TenantLoadPattern};
use engine::{Catalog, Simulator};
use qpp::{
    CollectionConfig, ExecutedQuery, Method, ModelHealth, ModelRegistry, PlanOrdering,
    QppConfig, QppPredictor, QueryDataset, RetrainConfig,
};
use qpp_bench::schema::BenchDoc;
use serve::tenant::{
    HealAction, TenantBudget, TenantServeConfig, TenantServer, TenantSpec, WeightedFairQueue,
};
use serve::{Endpoint, TierCosts};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tpch::Workload;

const TEMPLATES: &[u8] = &[1, 3, 6];

fn collect(per_template: usize, seed: u64, drift: &DriftPlan) -> QueryDataset {
    let catalog = Catalog::new(0.1, 1);
    let sim = Simulator::with_config(engine::SimConfig {
        additive_noise_secs: 0.05,
        ..engine::SimConfig::default()
    });
    let workload = Workload::generate(TEMPLATES, per_template, 0.1, seed);
    QueryDataset::execute_drifted(
        &catalog,
        &workload,
        &sim,
        11,
        f64::INFINITY,
        &FaultPlan::none(),
        &CollectionConfig::trusting(),
        drift,
    )
    .0
}

fn registry_over(ds: &QueryDataset, tag: &str) -> (Arc<ModelRegistry>, std::path::PathBuf) {
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let predictor = QppPredictor::train(&refs, QppConfig::default()).expect("training");
    let dir = std::env::temp_dir().join(format!("qpp-tenant-load-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Arc::new(
        ModelRegistry::create(&dir, predictor, QppConfig::default()).expect("registry create"),
    );
    (registry, dir)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_tenant.json".to_string());
    let per_template = args
        .iter()
        .position(|a| a == "--per-template")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(8usize);

    eprintln!("== setup: collect + train two tenant registries ==");
    let clean = collect(per_template, 7, &DriftPlan::none());
    let queries: Vec<Arc<ExecutedQuery>> = clean.queries.iter().cloned().map(Arc::new).collect();
    let t0 = Instant::now();
    let (hot_registry, hot_dir) = registry_over(&clean, "hot");
    let (quiet_registry, quiet_dir) = registry_over(&clean, "quiet");
    eprintln!("   trained 2 registries over {} queries in {:?}", queries.len(), t0.elapsed());

    // -- Phase A: noisy-neighbor isolation -----------------------------
    eprintln!("== phase A: one-hot burst vs quiet tenant ==");
    let deadline = Duration::from_secs(5);
    let service_stall = 0.002;
    let server = TenantServer::start(
        vec![
            TenantSpec {
                name: "hot".into(),
                registry: Arc::clone(&hot_registry),
                budget: TenantBudget {
                    queue_quota: 8,
                    ..TenantBudget::default()
                },
            },
            TenantSpec {
                name: "quiet".into(),
                registry: Arc::clone(&quiet_registry),
                budget: TenantBudget {
                    queue_quota: 64,
                    default_deadline: Some(deadline),
                    ..TenantBudget::default()
                },
            },
        ],
        TenantServeConfig {
            workers: Some(1),
            max_batch: 1,
            faults: ServeFaultPlan {
                stall_prob: 1.0,
                stall_secs: service_stall,
                slow_consumer_prob: 0.0,
                seed: 3,
            },
            ..TenantServeConfig::default()
        },
    );
    let names = ["hot", "quiet"];
    let arrivals =
        TenantLoadPattern::OneHotBurst { hot: 0, burst: 32, seed: 9 }.arrivals(2, 640, 400.0);
    let mut pending = Vec::new();
    for (i, a) in arrivals.iter().enumerate() {
        let q = Arc::clone(&queries[i % queries.len()]);
        if let Ok(p) = server.submit(names[a.tenant], q, Method::PlanLevel, None) {
            pending.push(p);
        }
    }
    for p in pending {
        let _ = p.wait();
    }
    let hot = server.stats("hot").expect("hot stats");
    let quiet = server.stats("quiet").expect("quiet stats");
    let hot_shed_fraction = hot.shed() as f64 / hot.submitted as f64;
    let quiet_p99 = quiet.endpoint(Endpoint::PlanLevel).p99_secs;
    eprintln!(
        "   hot: submitted {} shed {} ({:.0}%) | quiet: submitted {} shed {} p99 {:.2} ms",
        hot.submitted,
        hot.shed(),
        hot_shed_fraction * 100.0,
        quiet.submitted,
        quiet.shed(),
        quiet_p99 * 1e3
    );
    assert_eq!(hot.served + hot.deadline_missed + hot.shed(), hot.submitted);
    assert_eq!(quiet.served + quiet.deadline_missed + quiet.shed(), quiet.submitted);
    assert_eq!(quiet.shed(), 0, "quiet tenant was shed by a noisy neighbor");
    assert!(quiet_p99 <= deadline.as_secs_f64(), "quiet p99 blew its budget");
    drop(server);

    // -- Phase B: weighted-fair dequeue ---------------------------------
    eprintln!("== phase B: weighted-fair dequeue at weights 4/2/1 ==");
    let weights = [4.0, 2.0, 1.0];
    let max_batch = 8usize;
    let pops = 3000usize;
    let fill = pops * max_batch + 1;
    let q = WeightedFairQueue::new(fill * weights.len());
    for &w in &weights {
        q.add_tenant(w, fill);
    }
    for t in 0..weights.len() {
        for i in 0..fill {
            q.try_push(t, i as u64).expect("prefill");
        }
    }
    let mut served = [0u64; 3];
    let t0 = Instant::now();
    for _ in 0..pops {
        let (t, batch) = q.try_pop_batch(max_batch).expect("backlogged");
        served[t] += batch.len() as u64;
    }
    let wfq_wall = t0.elapsed().as_secs_f64();
    let wfq_pops_per_sec = pops as f64 / wfq_wall;
    let min_w = weights.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut spread: f64 = 0.0;
    for i in 0..3 {
        for j in 0..3 {
            spread = spread.max(served[i] as f64 / weights[i] - served[j] as f64 / weights[j]);
        }
    }
    let fair_bound = max_batch as f64 / min_w;
    eprintln!(
        "   served {:?} in {wfq_wall:.3}s = {wfq_pops_per_sec:.0} pops/s, \
         normalized spread {spread:.2} (bound {fair_bound:.2})",
        served
    );
    assert!(spread <= fair_bound + 1e-9, "WFQ fairness bound violated");

    // -- Phase C: SLO -> drift healing loop -----------------------------
    eprintln!("== phase C: SLO pressure -> quarantine -> heal ==");
    let server = TenantServer::start(
        vec![
            TenantSpec {
                name: "analytics".into(),
                registry: Arc::clone(&hot_registry),
                budget: TenantBudget::default(),
            },
            TenantSpec {
                name: "reporting".into(),
                registry: Arc::clone(&quiet_registry),
                budget: TenantBudget::default(),
            },
        ],
        TenantServeConfig {
            workers: Some(1),
            // Hybrid "costs" 10 s against a 5 s budget: every request
            // degrades, pressuring the SLO channel deterministically.
            tier_costs: TierCosts([10.0, 0.1, 0.01, 0.001, 0.0]),
            ..TenantServeConfig::default()
        },
    );
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        for i in 0..32 {
            let q = Arc::clone(&queries[i % queries.len()]);
            server
                .predict(
                    "analytics",
                    q,
                    Method::Hybrid(PlanOrdering::ErrorBased),
                    Some(Duration::from_secs(5)),
                )
                .expect("degraded predict");
        }
        let (_, health) = server.slo_tick("analytics").expect("slo tick");
        if health == ModelHealth::Quarantined {
            break;
        }
        assert!(rounds < 32, "SLO pressure never quarantined");
    }
    eprintln!("   quarantined after {rounds} windows of 100% degraded traffic");

    let drifted = collect(per_template, 21, &DriftPlan {
        kind: DriftKind::DataGrowth,
        onset: 0,
        ramp: 0,
        magnitude: 3.0,
        seed: 1,
    });
    let drifted_refs: Vec<&ExecutedQuery> = drifted.queries.iter().collect();
    let t0 = Instant::now();
    let healed = server
        .heal("analytics", &drifted_refs, &RetrainConfig::default(), 0.25)
        .expect("heal");
    let heal_wall = t0.elapsed().as_secs_f64();
    assert_eq!(healed.action, HealAction::Promoted, "{:?}", healed.report);
    let report = healed.report.expect("promotion report");
    assert_eq!(quiet_registry.version(), 1, "bulkhead: other registry moved");
    eprintln!(
        "   healed in {heal_wall:.3}s: error {:.4} -> {:.4}, analytics v{} (reporting still v{})",
        report.incumbent_error,
        report.candidate_error,
        healed.version,
        quiet_registry.version()
    );
    drop(server);

    let mut doc = BenchDoc::new(
        "tenant_load",
        9,
        serde_json::json!({
            "templates": TEMPLATES,
            "per_template": per_template,
            "burst": 32,
            "service_stall_secs": service_stall,
            "quiet_deadline_ms": deadline.as_secs_f64() * 1e3,
            "wfq_weights": weights,
            "wfq_max_batch": max_batch,
        }),
    );
    doc.push("iso/hot_submitted", hot.submitted as f64, "requests");
    doc.push("iso/hot_shed_fraction", hot_shed_fraction, "fraction");
    doc.push("iso/quiet_submitted", quiet.submitted as f64, "requests");
    doc.push("iso/quiet_shed", quiet.shed() as f64, "requests");
    doc.push("iso/quiet_p99", quiet_p99 * 1e3, "ms");
    doc.push("wfq/pops_per_sec", wfq_pops_per_sec, "pops/s");
    doc.push("wfq/normalized_spread", spread, "items");
    doc.push("wfq/fair_bound", fair_bound, "items");
    doc.push("heal/rounds_to_quarantine", rounds as f64, "windows");
    doc.push("heal/wall", heal_wall, "s");
    doc.push("heal/incumbent_error", report.incumbent_error, "mre");
    doc.push("heal/candidate_error", report.candidate_error, "mre");
    doc.push("heal/promoted_version", healed.version as f64, "version");
    doc.validate().expect("emitted document violates BENCH-v1");
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    std::fs::write(&out_path, rendered + "\n").expect("write bench report");
    println!("{out_path}");
    let _ = std::fs::remove_dir_all(&hot_dir);
    let _ = std::fs::remove_dir_all(&quiet_dir);
}
