//! Developer tool: survey simulated latencies per template and scale factor.

use engine::{Catalog, Planner, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let sf: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1.0);
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5);
    let catalog = Catalog::new(sf, 1);
    let planner = Planner::new(&catalog);
    let sim = Simulator::new();
    println!("template  min(s)    med(s)    max(s)   plan_ops  root_op");
    for t in tpch::ALL_TEMPLATES {
        let mut rng = StdRng::seed_from_u64(77 + t as u64);
        let mut times = Vec::new();
        let mut ops = 0;
        let mut root = String::new();
        for i in 0..n {
            let spec = tpch::instantiate(t, sf, &mut rng);
            let plan = planner.plan(&spec);
            ops = plan.node_count();
            root = plan.op.name().to_string();
            let tr = sim.execute(&plan, sf, 1000 * t as u64 + i as u64);
            times.push(tr.total_secs);
        }
        times.sort_by(|a, b| a.partial_cmp(b).unwrap());
        println!(
            "t{:<7} {:>9.2} {:>9.2} {:>9.2}  {:>7}  {}",
            t, times[0], times[n / 2], times[n - 1], ops, root
        );
    }
}
