//! Runs every experiment in DESIGN.md's index at full paper scale and
//! prints the combined report (tee it into EXPERIMENTS.md's measured
//! column).
//!
//! ```text
//! cargo run --release -p qpp-bench --bin repro_all [--per-template N]
//! ```

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let run = |bin: &str, extra: &[&str]| {
        println!("\n################ {bin} {} ################", extra.join(" "));
        let status = Command::new(exe_dir.join(bin))
            .args(extra)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
        }
    };

    run("fig5", &[]);
    run("fig6", &["all"]);
    run("fig7", &["all"]);
    run("fig8", &[]);
    run("fig9", &[]);
    run("fig4", &["all"]);
    run("hybrid_example", &[]);
    run("ablation", &["all"]);
}
