//! Developer tool: inspect sub-plan transfer for one held-out template.

use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::subplan::{structure_key, SubplanIndex, describe};
use qpp_bench::build_dataset_sized;

fn main() {
    let held: u8 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    let ds = build_dataset_sized(10.0, &tpch::TWELVE, 20);
    let (train, test) = ds.leave_template_out(held);
    let plans: Vec<(u8, &engine::PlanNode)> = train.iter().map(|q| (q.template, &q.plan)).collect();
    let index = SubplanIndex::build(&plans, 2);
    let q = test[0];
    println!("held-out t{held}; test plan:\n{}", engine::explain(&q.plan));
    let op = OpLevelModel::train(&train, &OpModelConfig::default()).unwrap();
    let views = q.views(op.source());
    let composed = op.predict_plan(&q.plan, &views);
    let nodes = q.plan.preorder();
    for (i, n) in nodes.iter().enumerate() {
        let key = structure_key(n);
        let freq = index.get(key).map(|s| s.frequency()).unwrap_or(0);
        let tmpls = index.get(key).map(|s| s.templates.clone()).unwrap_or_default();
        let actual = q.trace.timings[i].run;
        let pred = composed.node_times[i].1;
        println!(
            "[{i:>2}] size {:>2} freq {:>3} templates {:?} actual {:>9.2}s op-pred {:>9.2}s  {}",
            n.node_count(), freq, tmpls, actual, pred,
            if n.node_count() >= 2 { describe(n) } else { String::new() }
        );
    }
    let _ = train;
}
