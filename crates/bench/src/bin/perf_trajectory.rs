//! Performance trajectory for the pipeline: training (serial vs parallel)
//! and inference (reference vs compiled vs batched).
//!
//! Part 1 runs the full offline path — trace collection, 5-fold plan-level
//! CV, operator-model fit plus hybrid greedy build — once pinned to a
//! single worker thread and once with the full thread pool.
//!
//! Part 2 measures the prediction paths this PR compiles:
//!
//! - single-row SVR throughput, reference `SvrModel::predict` vs the
//!   compiled flat-layout model (linear kernel, forward-selected-sized
//!   feature count — the plan-level configuration the paper's models
//!   actually land on — plus an RBF variant, whose speedup is bounded by
//!   the irreducible `exp` per support vector);
//! - hybrid prediction over a sub-plan-reuse workload (the training
//!   workload repeated `REPEAT`×, as when plan caches and repeated
//!   template instantiations present the same plans), serial
//!   `predict` loop vs `predict_batch` with its shared sub-plan memo
//!   cache.
//!
//! Every timed comparison asserts bit-identity between the paths first.
//! Results go to a machine-readable JSON file (default `BENCH_pr3.json`)
//! with `{name, value, unit}` entries so external tooling can diff runs.
//!
//! Usage: `perf_trajectory [OUT_PATH] [--per-template N]`

use qpp::hybrid::{train_hybrid, HybridConfig, HybridModel};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::plan_model::PlanModelConfig;
use qpp::ExecutedQuery;
use qpp_bench::{build_dataset_sized, plan_level_cv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const TEMPLATES: &[u8] = &[1, 3, 5, 6, 10, 12, 14];

/// How often each query recurs in the sub-plan-reuse batch workload.
const REPEAT: usize = 10;

struct Measured {
    collection_secs: f64,
    cv_secs: f64,
    hybrid_secs: f64,
}

impl Measured {
    fn total(&self) -> f64 {
        self.collection_secs + self.cv_secs + self.hybrid_secs
    }
}

fn hybrid_config() -> HybridConfig {
    HybridConfig {
        max_iterations: 6,
        min_frequency: 3,
        ..HybridConfig::default()
    }
}

fn measure(threads: usize, per_template: usize) -> Measured {
    ml::par::set_threads(threads);
    // Start each configuration from a cold kernel cache so the serial and
    // parallel runs do identical work.
    ml::gram::GramCache::global().clear();

    let t0 = Instant::now();
    let ds = build_dataset_sized(1.0, TEMPLATES, per_template);
    let collection_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let cv = plan_level_cv(&ds, &PlanModelConfig::default());
    let cv_secs = t1.elapsed().as_secs_f64();
    assert!(cv.overall_error().is_finite(), "CV produced non-finite error");

    let t2 = Instant::now();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op = OpLevelModel::train(&refs, &OpModelConfig::default()).expect("op-level training");
    let (_, records) = train_hybrid(&refs, op, &hybrid_config()).expect("hybrid training");
    let hybrid_secs = t2.elapsed().as_secs_f64();
    assert!(!records.is_empty(), "hybrid build produced no iterations");

    Measured {
        collection_secs,
        cv_secs,
        hybrid_secs,
    }
}

/// Fits an SVR whose epsilon tube is narrower than the target noise, so
/// nearly every training row stays a support vector — the prediction cost
/// profile of a real plan-level fit at full training size.
fn fit_svr(kernel: ml::Kernel, n_rows: usize, n_features: usize) -> ml::SvrModel {
    let mut rng = StdRng::seed_from_u64(0x51E9);
    let rows: Vec<Vec<f64>> = (0..n_rows)
        .map(|_| (0..n_features).map(|_| rng.gen_range(-5.0..5.0)).collect())
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|r| {
            let s: f64 = r
                .iter()
                .enumerate()
                .map(|(j, v)| (j as f64 + 1.0) * v)
                .sum();
            s + rng.gen_range(-2.0..2.0)
        })
        .collect();
    let x = ml::Dataset::from_rows(rows);
    ml::svr::Svr::new(ml::SvrParams {
        kernel,
        max_iter: 2_000_000,
        ..ml::SvrParams::default()
    })
    .fit(&x, &y)
    .expect("SVR fit for the inference bench")
}

/// Times `reps` passes of `pass` (which processes `rows_per_pass` rows)
/// and returns rows per second.
fn rows_per_sec(reps: usize, rows_per_pass: usize, mut pass: impl FnMut() -> f64) -> f64 {
    let mut acc = 0.0;
    let t = Instant::now();
    for _ in 0..reps {
        acc += pass();
    }
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    (reps * rows_per_pass) as f64 / secs.max(1e-9)
}

struct SvrThroughput {
    reference: f64,
    compiled: f64,
    batch: f64,
}

/// Single-row and batched SVR throughput, after asserting that the
/// compiled and batched paths reproduce the reference bits exactly.
fn svr_throughput(kernel: ml::Kernel, n_sv: usize, n_features: usize, reps: usize) -> SvrThroughput {
    let model = fit_svr(kernel, n_sv, n_features);
    let compiled = model.compile();
    let mut rng = StdRng::seed_from_u64(0xBE9C);
    let probes: Vec<Vec<f64>> = (0..1024)
        .map(|_| (0..n_features).map(|_| rng.gen_range(-6.0..6.0)).collect())
        .collect();
    let reference_bits: Vec<u64> = probes.iter().map(|r| model.predict(r).to_bits()).collect();
    let compiled_bits: Vec<u64> = probes
        .iter()
        .map(|r| compiled.predict(r).to_bits())
        .collect();
    assert_eq!(reference_bits, compiled_bits, "compiled path changed bits");
    let batch_bits: Vec<u64> = compiled
        .predict_batch(&probes)
        .into_iter()
        .map(f64::to_bits)
        .collect();
    assert_eq!(reference_bits, batch_bits, "batched path changed bits");

    let reference = rows_per_sec(reps, probes.len(), || {
        probes.iter().map(|r| model.predict(r)).sum()
    });
    let mut scratch = ml::PredictScratch::new();
    let compiled_rps = rows_per_sec(reps, probes.len(), || {
        probes
            .iter()
            .map(|r| compiled.predict_into(r, &mut scratch))
            .sum()
    });
    let batch = rows_per_sec(reps, probes.len(), || {
        compiled.predict_batch(&probes).iter().sum()
    });
    SvrThroughput {
        reference,
        compiled: compiled_rps,
        batch,
    }
}

struct HybridThroughput {
    serial: f64,
    batched: f64,
}

/// Hybrid prediction throughput over the sub-plan-reuse workload: the
/// training queries repeated `REPEAT`×, serial loop vs `predict_batch`.
fn hybrid_throughput(hybrid: &HybridModel, refs: &[&ExecutedQuery]) -> HybridThroughput {
    let batch: Vec<&ExecutedQuery> = refs
        .iter()
        .cycle()
        .take(refs.len() * REPEAT)
        .copied()
        .collect();
    // Warm the lazily compiled models so neither path pays one-time cost.
    for q in refs {
        std::hint::black_box(hybrid.predict(q));
    }
    let serial_values: Vec<f64> = batch.iter().map(|q| hybrid.predict(q)).collect();
    let batched_values = hybrid.predict_batch(&batch);
    assert_eq!(
        serial_values
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>(),
        batched_values
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>(),
        "batched hybrid prediction changed bits"
    );

    let reps = 5;
    let serial = rows_per_sec(reps, batch.len(), || {
        batch.iter().map(|q| hybrid.predict(q)).sum()
    });
    let batched = rows_per_sec(reps, batch.len(), || {
        hybrid.predict_batch(&batch).iter().sum()
    });
    HybridThroughput { serial, batched }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr3.json".to_string());
    let per_template = args
        .iter()
        .position(|a| a == "--per-template")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);

    eprintln!("== perf trajectory: serial (1 thread) ==");
    let serial = measure(1, per_template);
    eprintln!(
        "   collection {:.3}s  cv5 {:.3}s  hybrid {:.3}s  total {:.3}s",
        serial.collection_secs,
        serial.cv_secs,
        serial.hybrid_secs,
        serial.total()
    );

    let threads = {
        ml::par::set_threads(0);
        ml::par::threads()
    };
    eprintln!("== perf trajectory: parallel ({threads} threads) ==");
    let parallel = measure(0, per_template);
    eprintln!(
        "   collection {:.3}s  cv5 {:.3}s  hybrid {:.3}s  total {:.3}s",
        parallel.collection_secs,
        parallel.cv_secs,
        parallel.hybrid_secs,
        parallel.total()
    );
    ml::par::set_threads(0);

    let train_speedup = serial.total() / parallel.total().max(1e-9);
    eprintln!("== end-to-end training speedup: {train_speedup:.2}x ==");

    // ---- Inference throughput (PR 3) ----
    eprintln!("== inference: single-row SVR, linear kernel, 512 SVs x 3 features ==");
    let lin = svr_throughput(ml::Kernel::Linear, 512, 3, 200);
    let lin_speedup = lin.compiled / lin.reference.max(1e-9);
    eprintln!(
        "   reference {:.0}/s  compiled {:.0}/s  batch {:.0}/s  speedup {lin_speedup:.2}x",
        lin.reference, lin.compiled, lin.batch
    );
    eprintln!("== inference: single-row SVR, RBF kernel, 512 SVs x 3 features ==");
    let rbf = svr_throughput(ml::Kernel::Rbf { gamma: 0.5 }, 512, 3, 50);
    let rbf_speedup = rbf.compiled / rbf.reference.max(1e-9);
    eprintln!(
        "   reference {:.0}/s  compiled {:.0}/s  batch {:.0}/s  speedup {rbf_speedup:.2}x",
        rbf.reference, rbf.compiled, rbf.batch
    );

    eprintln!("== inference: hybrid over sub-plan-reuse workload (x{REPEAT}) ==");
    let ds = build_dataset_sized(1.0, TEMPLATES, per_template);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op = OpLevelModel::train(&refs, &OpModelConfig::default()).expect("op-level training");
    let (hybrid, _) = train_hybrid(&refs, op, &hybrid_config()).expect("hybrid training");
    let hy = hybrid_throughput(&hybrid, &refs);
    let batched_speedup = hy.batched / hy.serial.max(1e-9);
    eprintln!(
        "   serial {:.0}/s  batched {:.0}/s  speedup {batched_speedup:.2}x",
        hy.serial, hy.batched
    );

    let entry = |name: &str, value: f64, unit: &str| {
        serde_json::json!({ "name": name, "value": value, "unit": unit })
    };
    let doc = serde_json::json!({
        "tool": "perf_trajectory",
        "pr": 3,
        "threads": threads,
        "per_template": per_template,
        "templates": TEMPLATES,
        "repeat_factor": REPEAT,
        "benches": [
            entry("collection/serial_secs", serial.collection_secs, "s"),
            entry("collection/parallel_secs", parallel.collection_secs, "s"),
            entry("cv5/serial_secs", serial.cv_secs, "s"),
            entry("cv5/parallel_secs", parallel.cv_secs, "s"),
            entry("hybrid_build/serial_secs", serial.hybrid_secs, "s"),
            entry("hybrid_build/parallel_secs", parallel.hybrid_secs, "s"),
            entry("end_to_end_train/serial_secs", serial.total(), "s"),
            entry("end_to_end_train/parallel_secs", parallel.total(), "s"),
            entry("end_to_end_train/speedup", train_speedup, "x"),
            entry("predict/reference_single_row", lin.reference, "rows/s"),
            entry("predict/compiled_single_row", lin.compiled, "rows/s"),
            entry("predict/compiled_single_row_speedup", lin_speedup, "x"),
            entry("predict/compiled_batch", lin.batch, "rows/s"),
            entry("predict/rbf_reference_single_row", rbf.reference, "rows/s"),
            entry("predict/rbf_compiled_single_row", rbf.compiled, "rows/s"),
            entry("predict/rbf_compiled_single_row_speedup", rbf_speedup, "x"),
            entry("predict/hybrid_serial", hy.serial, "queries/s"),
            entry("predict/hybrid_batched", hy.batched, "queries/s"),
            entry("predict/batched_speedup", batched_speedup, "x"),
        ],
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    std::fs::write(&out_path, rendered + "\n").expect("write bench report");
    println!("{out_path}");
}
