//! Performance trajectory for the pipeline: the SVR kernel hot path,
//! training (serial vs parallel), and hybrid batch inference.
//!
//! The `kernel/` group is the headline this PR gates on: single-row and
//! batched compiled-SVR throughput of the dispatched lane-tree kernel
//! (AVX2 where available, unrolled scalar tree otherwise) against the
//! pre-SIMD row-major fold (`predict_into_unblocked`), which is retained
//! in `ml::compiled` as the in-tree baseline. Both numbers land in the
//! same report, so the committed document carries its own baseline and
//! `bench_compare` can gate regressions without historical context.
//!
//! Correctness is asserted before anything is timed, under the kernel's
//! numeric contract:
//!
//! - the unblocked path reproduces the reference `SvrModel::predict`
//!   bits exactly;
//! - the dispatched lane tree equals the forced scalar tree bit-for-bit
//!   (the SIMD bit-identity claim), and the batched path equals a serial
//!   dispatched loop bit-for-bit;
//! - the lane tree agrees with the reference within
//!   `1e-12 · (1 + sum_magnitude)` — the reordering-error bound the
//!   compiled-kernel proptests are phrased against.
//!
//! The `train/` group runs the full offline path — trace collection,
//! 5-fold plan-level CV, operator fit plus hybrid greedy build — pinned
//! to one worker thread and again with the full pool. The `hybrid/`
//! group measures plan-tree prediction over a sub-plan-reuse workload,
//! serial `predict` loop vs `predict_batch` with the shared memo cache
//! (both riding the arena walks).
//!
//! Output is a `BENCH-v1` document (see `qpp_bench::schema`).
//!
//! Usage: `perf_trajectory [OUT_PATH] [--per-template N] [--kernel-only]`
//!
//! `--kernel-only` emits just the `kernel/` group — the fast mode CI uses
//! to diff a fresh run against the committed `BENCH_pr7.json` via
//! `bench_compare --filter kernel/`.

use ml::compiled::{simd_available, CompiledSvr};
use qpp::hybrid::{train_hybrid, HybridConfig, HybridModel};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::plan_model::PlanModelConfig;
use qpp::ExecutedQuery;
use qpp_bench::schema::BenchDoc;
use qpp_bench::{build_dataset_sized, plan_level_cv};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const TEMPLATES: &[u8] = &[1, 3, 5, 6, 10, 12, 14];

/// How often each query recurs in the sub-plan-reuse batch workload.
const REPEAT: usize = 10;

/// Kernel bench shape: support-vector count; the feature count is the
/// full Table-1 plan-feature arity (`plan_feature_count()`).
const KERNEL_SVS: usize = 512;
const KERNEL_PROBES: usize = 1024;

struct Measured {
    collection_secs: f64,
    cv_secs: f64,
    hybrid_secs: f64,
}

impl Measured {
    fn total(&self) -> f64 {
        self.collection_secs + self.cv_secs + self.hybrid_secs
    }
}

fn hybrid_config() -> HybridConfig {
    HybridConfig {
        max_iterations: 6,
        min_frequency: 3,
        ..HybridConfig::default()
    }
}

fn measure(threads: usize, per_template: usize) -> Measured {
    ml::par::set_threads(threads);
    // Start each configuration from a cold kernel cache so the serial and
    // parallel runs do identical work.
    ml::gram::GramCache::global().clear();

    let t0 = Instant::now();
    let ds = build_dataset_sized(1.0, TEMPLATES, per_template);
    let collection_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let cv = plan_level_cv(&ds, &PlanModelConfig::default());
    let cv_secs = t1.elapsed().as_secs_f64();
    assert!(cv.overall_error().is_finite(), "CV produced non-finite error");

    let t2 = Instant::now();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op = OpLevelModel::train(&refs, &OpModelConfig::default()).expect("op-level training");
    let (_, records) = train_hybrid(&refs, op, &hybrid_config()).expect("hybrid training");
    let hybrid_secs = t2.elapsed().as_secs_f64();
    assert!(!records.is_empty(), "hybrid build produced no iterations");

    Measured {
        collection_secs,
        cv_secs,
        hybrid_secs,
    }
}

/// Hand-builds an SVR with every support vector retained — the
/// prediction cost profile of a plan-level fit at full training size
/// (an epsilon-SVR at that size keeps nearly every row as a support
/// vector), with a deterministic shape that doesn't drift with solver
/// behavior: `KERNEL_SVS` vectors at the full Table-1 feature arity,
/// every coefficient nonzero so pruning removes nothing.
fn kernel_model(kernel: ml::Kernel, n_features: usize) -> ml::SvrModel {
    let mut rng = StdRng::seed_from_u64(0x51E9);
    let sv: Vec<Vec<f64>> = (0..KERNEL_SVS)
        .map(|_| (0..n_features).map(|_| rng.gen_range(-5.0..5.0)).collect())
        .collect();
    let coef: Vec<f64> = (0..KERNEL_SVS)
        .map(|_| {
            let c: f64 = rng.gen_range(0.05..2.0);
            if rng.gen_bool(0.5) {
                c
            } else {
                -c
            }
        })
        .collect();
    let scaler_rows: Vec<Vec<f64>> = (0..16)
        .map(|_| (0..n_features).map(|_| rng.gen_range(-20.0..20.0)).collect())
        .collect();
    let x_scaler = ml::StandardScaler::fit(&ml::Dataset::from_rows(scaler_rows));
    let y_scaler = ml::scaler::TargetScaler::fit(&[-10.0, 0.0, 25.0]);
    ml::SvrModel::from_parts(kernel, 0.05, sv, coef, 0.3, x_scaler, y_scaler, n_features)
}

/// Times `reps` passes of `pass` (which processes `rows_per_pass` rows)
/// and returns rows per second — best of three measurements, since on a
/// shared host external contention only ever slows a run down, so the
/// fastest observation is the least-biased estimate of the kernel's
/// actual cost.
fn rows_per_sec(reps: usize, rows_per_pass: usize, mut pass: impl FnMut() -> f64) -> f64 {
    let mut best = 0.0f64;
    let mut acc = 0.0;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..reps {
            acc += pass();
        }
        let secs = t.elapsed().as_secs_f64();
        best = best.max((reps * rows_per_pass) as f64 / secs.max(1e-9));
    }
    std::hint::black_box(acc);
    best
}

struct KernelThroughput {
    unblocked_single: f64,
    compiled_single: f64,
    unblocked_batch: f64,
    compiled_batch: f64,
}

/// Asserts the kernel's numeric contract on 1024 probe rows, then times
/// the pre-SIMD unblocked fold against the dispatched lane tree, single
/// row and batched.
fn kernel_throughput(kernel: ml::Kernel, n_features: usize, reps: usize) -> KernelThroughput {
    let model = kernel_model(kernel, n_features);
    let compiled = CompiledSvr::compile(&model);
    assert_eq!(
        compiled.n_support_vectors(),
        KERNEL_SVS,
        "kernel bench model must keep every support vector"
    );
    let mut rng = StdRng::seed_from_u64(0xBE9C);
    let probes: Vec<Vec<f64>> = (0..KERNEL_PROBES)
        .map(|_| (0..n_features).map(|_| rng.gen_range(-6.0..6.0)).collect())
        .collect();

    let mut scratch = ml::PredictScratch::new();
    for r in &probes {
        let reference = model.predict(r);
        let unblocked = compiled.predict_into_unblocked(r, &mut scratch);
        assert_eq!(
            reference.to_bits(),
            unblocked.to_bits(),
            "unblocked baseline diverged from the reference fold"
        );
        let dispatched = compiled.predict_into(r, &mut scratch);
        let scalar_tree = compiled.predict_into_scalar(r, &mut scratch);
        assert_eq!(
            dispatched.to_bits(),
            scalar_tree.to_bits(),
            "dispatched lane tree diverged from the scalar tree"
        );
        let tol = 1e-12 * (1.0 + compiled.sum_magnitude(r, &mut scratch));
        assert!(
            (reference - dispatched).abs() <= tol,
            "lane tree outside the reordering bound: |{reference} - {dispatched}| > {tol}"
        );
    }
    let serial_bits: Vec<u64> = probes
        .iter()
        .map(|r| compiled.predict_into(r, &mut scratch).to_bits())
        .collect();
    let batch_bits: Vec<u64> = compiled
        .predict_batch(&probes)
        .into_iter()
        .map(f64::to_bits)
        .collect();
    assert_eq!(serial_bits, batch_bits, "batched path changed bits");

    let unblocked_single = rows_per_sec(reps, probes.len(), || {
        probes
            .iter()
            .map(|r| compiled.predict_into_unblocked(r, &mut scratch))
            .sum()
    });
    let compiled_single = rows_per_sec(reps, probes.len(), || {
        probes
            .iter()
            .map(|r| compiled.predict_into(r, &mut scratch))
            .sum()
    });
    // Batched: the pre-PR batch loop folded each row unblocked; the new
    // path runs the lane tree through the zero-alloc buffer API.
    let unblocked_batch = rows_per_sec(reps, probes.len(), || {
        probes
            .iter()
            .map(|r| compiled.predict_into_unblocked(r, &mut scratch))
            .sum()
    });
    let mut out = Vec::with_capacity(probes.len());
    let compiled_batch = rows_per_sec(reps, probes.len(), || {
        compiled.predict_batch_into(&probes, &mut out, &mut scratch);
        out.iter().sum()
    });
    KernelThroughput {
        unblocked_single,
        compiled_single,
        unblocked_batch,
        compiled_batch,
    }
}

struct HybridThroughput {
    serial: f64,
    batched: f64,
}

/// Hybrid prediction throughput over the sub-plan-reuse workload: the
/// training queries repeated `REPEAT`×, serial loop vs `predict_batch`.
fn hybrid_throughput(hybrid: &HybridModel, refs: &[&ExecutedQuery]) -> HybridThroughput {
    let batch: Vec<&ExecutedQuery> = refs
        .iter()
        .cycle()
        .take(refs.len() * REPEAT)
        .copied()
        .collect();
    // Warm the lazily compiled models so neither path pays one-time cost.
    for q in refs {
        std::hint::black_box(hybrid.predict(q));
    }
    let serial_values: Vec<f64> = batch.iter().map(|q| hybrid.predict(q)).collect();
    let batched_values = hybrid.predict_batch(&batch);
    assert_eq!(
        serial_values
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>(),
        batched_values
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<u64>>(),
        "batched hybrid prediction changed bits"
    );

    let reps = 5;
    let serial = rows_per_sec(reps, batch.len(), || {
        batch.iter().map(|q| hybrid.predict(q)).sum()
    });
    let batched = rows_per_sec(reps, batch.len(), || {
        hybrid.predict_batch(&batch).iter().sum()
    });
    HybridThroughput { serial, batched }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr7.json".to_string());
    let per_template = args
        .iter()
        .position(|a| a == "--per-template")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let kernel_only = args.iter().any(|a| a == "--kernel-only");
    let kernel_features = qpp::features::plan_feature_count();

    let mut doc = BenchDoc::new(
        "perf_trajectory",
        7,
        serde_json::json!({
            "templates": TEMPLATES,
            "per_template": per_template,
            "repeat_factor": REPEAT,
            "kernel_svs": KERNEL_SVS,
            "kernel_features": kernel_features,
            "kernel_probes": KERNEL_PROBES,
            "simd_active": simd_available(),
            "kernel_only": kernel_only,
        }),
    );

    // ---- Kernel hot path (the gated group) ----
    eprintln!(
        "== kernel: linear SVR, {KERNEL_SVS} SVs x {kernel_features} features, simd={} ==",
        simd_available()
    );
    let lin = kernel_throughput(ml::Kernel::Linear, kernel_features, 60);
    let lin_single_speedup = lin.compiled_single / lin.unblocked_single.max(1e-9);
    let lin_batch_speedup = lin.compiled_batch / lin.unblocked_batch.max(1e-9);
    eprintln!(
        "   single: unblocked {:.0}/s  lane-tree {:.0}/s  speedup {lin_single_speedup:.2}x",
        lin.unblocked_single, lin.compiled_single
    );
    eprintln!(
        "   batch:  unblocked {:.0}/s  lane-tree {:.0}/s  speedup {lin_batch_speedup:.2}x",
        lin.unblocked_batch, lin.compiled_batch
    );
    eprintln!("== kernel: RBF SVR, {KERNEL_SVS} SVs x {kernel_features} features ==");
    let rbf = kernel_throughput(ml::Kernel::Rbf { gamma: 0.05 }, kernel_features, 20);
    let rbf_single_speedup = rbf.compiled_single / rbf.unblocked_single.max(1e-9);
    eprintln!(
        "   single: unblocked {:.0}/s  lane-tree {:.0}/s  speedup {rbf_single_speedup:.2}x",
        rbf.unblocked_single, rbf.compiled_single
    );

    doc.push("kernel/unblocked_single_row", lin.unblocked_single, "rows/s");
    doc.push("kernel/compiled_single_row", lin.compiled_single, "rows/s");
    doc.push("kernel/speedup_single_row", lin_single_speedup, "x");
    doc.push("kernel/unblocked_batch", lin.unblocked_batch, "rows/s");
    doc.push("kernel/compiled_batch", lin.compiled_batch, "rows/s");
    doc.push("kernel/speedup_batch", lin_batch_speedup, "x");
    doc.push(
        "kernel/rbf_unblocked_single_row",
        rbf.unblocked_single,
        "rows/s",
    );
    doc.push(
        "kernel/rbf_compiled_single_row",
        rbf.compiled_single,
        "rows/s",
    );
    doc.push("kernel/rbf_speedup_single_row", rbf_single_speedup, "x");

    if !kernel_only {
        // ---- Training trajectory ----
        eprintln!("== training trajectory: serial (1 thread) ==");
        let serial = measure(1, per_template);
        eprintln!(
            "   collection {:.3}s  cv5 {:.3}s  hybrid {:.3}s  total {:.3}s",
            serial.collection_secs,
            serial.cv_secs,
            serial.hybrid_secs,
            serial.total()
        );
        let threads = {
            ml::par::set_threads(0);
            ml::par::threads()
        };
        eprintln!("== training trajectory: parallel ({threads} threads) ==");
        let parallel = measure(0, per_template);
        eprintln!(
            "   collection {:.3}s  cv5 {:.3}s  hybrid {:.3}s  total {:.3}s",
            parallel.collection_secs,
            parallel.cv_secs,
            parallel.hybrid_secs,
            parallel.total()
        );
        ml::par::set_threads(0);
        let train_speedup = serial.total() / parallel.total().max(1e-9);
        eprintln!("== end-to-end training speedup: {train_speedup:.2}x ==");

        doc.push("train/collection_serial", serial.collection_secs, "s");
        doc.push("train/collection_parallel", parallel.collection_secs, "s");
        doc.push("train/cv5_serial", serial.cv_secs, "s");
        doc.push("train/cv5_parallel", parallel.cv_secs, "s");
        doc.push("train/hybrid_build_serial", serial.hybrid_secs, "s");
        doc.push("train/hybrid_build_parallel", parallel.hybrid_secs, "s");
        doc.push("train/end_to_end_serial", serial.total(), "s");
        doc.push("train/end_to_end_parallel", parallel.total(), "s");
        doc.push("train/end_to_end_speedup", train_speedup, "x");
        doc.context["threads"] = serde_json::json!(threads);

        // ---- Hybrid plan-tree inference ----
        eprintln!("== hybrid over sub-plan-reuse workload (x{REPEAT}) ==");
        let ds = build_dataset_sized(1.0, TEMPLATES, per_template);
        let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
        let op =
            OpLevelModel::train(&refs, &OpModelConfig::default()).expect("op-level training");
        let (hybrid, _) = train_hybrid(&refs, op, &hybrid_config()).expect("hybrid training");
        let hy = hybrid_throughput(&hybrid, &refs);
        let batched_speedup = hy.batched / hy.serial.max(1e-9);
        eprintln!(
            "   serial {:.0}/s  batched {:.0}/s  speedup {batched_speedup:.2}x",
            hy.serial, hy.batched
        );

        doc.push("hybrid/serial", hy.serial, "queries/s");
        doc.push("hybrid/batched", hy.batched, "queries/s");
        doc.push("hybrid/batched_speedup", batched_speedup, "x");
    }

    doc.validate().expect("emitted document violates BENCH-v1");
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    std::fs::write(&out_path, rendered + "\n").expect("write bench report");
    println!("{out_path}");
}
