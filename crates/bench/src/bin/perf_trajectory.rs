//! Serial-vs-parallel performance trajectory for the training pipeline.
//!
//! Runs the full offline path — trace collection, 5-fold plan-level CV,
//! operator-model fit plus hybrid greedy build — once pinned to a single
//! worker thread and once with the full thread pool, in the same process,
//! and writes the wall-clock numbers to a machine-readable JSON file
//! (default `BENCH_pr2.json`). Entries use the `{name, value, unit}`
//! shape so external tooling can diff runs.
//!
//! Usage: `perf_trajectory [OUT_PATH] [--per-template N]`

use qpp::hybrid::{train_hybrid, HybridConfig};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::plan_model::PlanModelConfig;
use qpp::ExecutedQuery;
use qpp_bench::{build_dataset_sized, plan_level_cv};
use std::time::Instant;

const TEMPLATES: &[u8] = &[1, 3, 5, 6, 10, 12, 14];

struct Measured {
    collection_secs: f64,
    cv_secs: f64,
    hybrid_secs: f64,
}

impl Measured {
    fn total(&self) -> f64 {
        self.collection_secs + self.cv_secs + self.hybrid_secs
    }
}

fn measure(threads: usize, per_template: usize) -> Measured {
    ml::par::set_threads(threads);
    // Start each configuration from a cold kernel cache so the serial and
    // parallel runs do identical work.
    ml::gram::GramCache::global().clear();

    let t0 = Instant::now();
    let ds = build_dataset_sized(1.0, TEMPLATES, per_template);
    let collection_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let cv = plan_level_cv(&ds, &PlanModelConfig::default());
    let cv_secs = t1.elapsed().as_secs_f64();
    assert!(cv.overall_error().is_finite(), "CV produced non-finite error");

    let t2 = Instant::now();
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op = OpLevelModel::train(&refs, &OpModelConfig::default()).expect("op-level training");
    let cfg = HybridConfig {
        max_iterations: 6,
        min_frequency: 3,
        ..HybridConfig::default()
    };
    let (_, records) = train_hybrid(&refs, op, &cfg).expect("hybrid training");
    let hybrid_secs = t2.elapsed().as_secs_f64();
    assert!(!records.is_empty(), "hybrid build produced no iterations");

    Measured {
        collection_secs,
        cv_secs,
        hybrid_secs,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let out_path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr2.json".to_string());
    let per_template = args
        .iter()
        .position(|a| a == "--per-template")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);

    eprintln!("== perf trajectory: serial (1 thread) ==");
    let serial = measure(1, per_template);
    eprintln!(
        "   collection {:.3}s  cv5 {:.3}s  hybrid {:.3}s  total {:.3}s",
        serial.collection_secs,
        serial.cv_secs,
        serial.hybrid_secs,
        serial.total()
    );

    let threads = {
        ml::par::set_threads(0);
        ml::par::threads()
    };
    eprintln!("== perf trajectory: parallel ({threads} threads) ==");
    let parallel = measure(0, per_template);
    eprintln!(
        "   collection {:.3}s  cv5 {:.3}s  hybrid {:.3}s  total {:.3}s",
        parallel.collection_secs,
        parallel.cv_secs,
        parallel.hybrid_secs,
        parallel.total()
    );
    ml::par::set_threads(0);

    let speedup = serial.total() / parallel.total().max(1e-9);
    eprintln!("== end-to-end speedup: {speedup:.2}x ==");

    let entry = |name: &str, value: f64, unit: &str| {
        serde_json::json!({ "name": name, "value": value, "unit": unit })
    };
    let doc = serde_json::json!({
        "tool": "perf_trajectory",
        "pr": 2,
        "threads": threads,
        "per_template": per_template,
        "templates": TEMPLATES,
        "benches": [
            entry("collection/serial_secs", serial.collection_secs, "s"),
            entry("collection/parallel_secs", parallel.collection_secs, "s"),
            entry("cv5/serial_secs", serial.cv_secs, "s"),
            entry("cv5/parallel_secs", parallel.cv_secs, "s"),
            entry("hybrid_build/serial_secs", serial.hybrid_secs, "s"),
            entry("hybrid_build/parallel_secs", parallel.hybrid_secs, "s"),
            entry("end_to_end_train/serial_secs", serial.total(), "s"),
            entry("end_to_end_train/parallel_secs", parallel.total(), "s"),
            entry("end_to_end_train/speedup", speedup, "x"),
        ],
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("serialize bench report");
    std::fs::write(&out_path, rendered + "\n").expect("write bench report");
    println!("{out_path}");
}
