//! Section 3.4's worked example — hybrid QPP on a template-13 query.
//!
//! The paper walks one TPC-H template-13 plan (10 GB): operator-level
//! prediction errs by 114%, the Materialize sub-plan being the root cause
//! (97% error); adding one plan-level model for that sub-plan drops the
//! whole-query error to 14%. This binary reruns that story: it finds the
//! worst-predicted sub-plan of the worst-predicted template-13 query,
//! builds a plan-level model for it, and reports the before/after errors.

use ml::metrics::relative_error;
use qpp::hybrid::{train_subplan_model, HybridConfig, HybridModel};
use qpp::op_model::{OpLevelModel, OpModelConfig};
use qpp::subplan::{structure_key, subtree_at, SubplanIndex};
use qpp::{ExecutedQuery, NodeView};
use qpp_bench::{build_dataset_sized, PER_TEMPLATE};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let per_template = args
        .iter()
        .position(|a| a == "--per-template")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(PER_TEMPLATE);

    let ds = build_dataset_sized(10.0, &tpch::FOURTEEN, per_template);
    let refs: Vec<&ExecutedQuery> = ds.queries.iter().collect();
    let op = OpLevelModel::train(&refs, &OpModelConfig::default()).expect("op-level");
    let source = op.source();
    let base = HybridModel::operator_only(op);

    // Worst-predicted template-13 query under pure operator-level models.
    let (qi, q, base_err) = refs
        .iter()
        .enumerate()
        .filter(|(_, q)| q.template == 13)
        .map(|(i, q)| {
            let pred = base.predict(q);
            (i, q, relative_error(q.latency(), pred))
        })
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
        .expect("template 13 present");
    let _ = qi;

    println!("== Hybrid QPP example (template 13, 10GB) ==\n");
    println!("query latency: {:.1}s", q.latency());
    println!(
        "operator-level prediction error: {:.0}%  (paper example: 114%)",
        base_err * 100.0
    );

    // Per-node error attribution.
    let views: Vec<NodeView> = q.views(source);
    let pred = base.predict_plan(&q.plan, &views);
    let nodes = q.plan.preorder();
    let mut worst: Option<(usize, f64)> = None;
    println!("\nper-operator run-time errors:");
    for (i, np) in pred.nodes.iter().enumerate() {
        if let Some((_, run)) = np.times() {
            let actual = q.trace.timings[i].run;
            if actual <= 0.0 {
                continue;
            }
            let e = relative_error(actual, run);
            println!(
                "  [{i:>2}] {:<16} actual {:>9.2}s predicted {:>9.2}s  error {:>6.1}%",
                nodes[i].op.name(),
                actual,
                run,
                e * 100.0
            );
            // Candidate sub-plans must be proper fragments (≥ 2 ops).
            if nodes[i].node_count() >= 2 && nodes[i].node_count() < q.plan.node_count()
                && worst.map(|(_, we)| e > we).unwrap_or(true) {
                    worst = Some((i, e));
                }
        }
    }
    let (worst_idx, worst_err) = worst.expect("at least one sub-plan");
    let sub = subtree_at(&q.plan, worst_idx);
    println!(
        "\nroot cause: sub-plan rooted at [{worst_idx}] {} — error {:.0}%  (paper: the \
         Materialize sub-plan, 97%)",
        qpp::subplan::describe(sub),
        worst_err * 100.0
    );

    // Build a plan-level model for that structure from all its training
    // occurrences and re-predict.
    let key = structure_key(sub);
    let all_views: Vec<Vec<NodeView>> = refs.iter().map(|r| r.views(source)).collect();
    let plans: Vec<(u8, &engine::PlanNode)> = refs.iter().map(|r| (r.template, &r.plan)).collect();
    let index = SubplanIndex::build(&plans, 2);
    let config = HybridConfig::default();
    let sub_model =
        train_subplan_model(key, &refs, &all_views, &index, &config).expect("sub-plan model");
    let mut hybrid = base.clone();
    hybrid.plan_models.insert(key, sub_model);
    let new_pred = hybrid.predict_plan(&q.plan, &views).latency;
    let new_err = relative_error(q.latency(), new_pred);
    println!(
        "\nhybrid (operator models + 1 plan-level sub-plan model):\n\
         prediction error: {:.0}%  (paper example: 14%)",
        new_err * 100.0
    );
    if new_err < base_err {
        println!("=> the plan-level patch recovers the composition, as in the paper");
    } else {
        println!("=> no improvement on this instance (see EXPERIMENTS.md notes)");
    }
}
