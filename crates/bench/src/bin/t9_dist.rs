//! Developer tool: distribution of template-9 latencies at a scale factor.

use engine::{Catalog, Planner, Simulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10.0);
    let catalog = Catalog::new(sf, 1);
    let planner = Planner::new(&catalog);
    let sim = Simulator::new();
    let mut rng = StdRng::seed_from_u64(86);
    let mut times = Vec::new();
    for i in 0..55 {
        let spec = tpch::instantiate(9, sf, &mut rng);
        let plan = planner.plan(&spec);
        let t = sim.execute(&plan, sf, 9000 + i).total_secs;
        let color = spec.params[0].1.clone();
        times.push((t, color));
    }
    times.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let under = times.iter().filter(|(t, _)| *t < 3600.0).count();
    println!("{} of 55 under 3600s", under);
    for (t, c) in &times {
        println!("{:>10.1}s  color={}", t, c);
    }
}
