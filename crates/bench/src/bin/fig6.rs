//! Figure 6 — static workload experiments.
//!
//! Reproduces all six panels: plan-level per-template errors and
//! actual-vs-estimate scatter at 10 GB and 1 GB (panels a–c), and the
//! operator-level equivalents over the 14-template subset (panels d–f).
//!
//! Usage: `fig6 [panel|all] [--sf10 N] [--per-template N]`
//! where panel ∈ {a, b, c, d, e, f}.

use qpp::op_model::OpModelConfig;
use qpp::plan_model::PlanModelConfig;
use qpp_bench::report::{print_scatter, print_template_errors};
use qpp_bench::{build_dataset_sized, op_level_cv, plan_level_cv, PER_TEMPLATE};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = args.get(1).map(String::as_str).unwrap_or("all").to_string();
    let per_template = arg_value(&args, "--per-template").unwrap_or(PER_TEMPLATE);

    let want = |p: &str| panel == "all" || panel == p;

    if want("a") || want("b") {
        let ds = build_dataset_sized(10.0, &tpch::EIGHTEEN, per_template);
        let out = plan_level_cv(&ds, &PlanModelConfig::default());
        if want("a") {
            print_template_errors(
                "Fig 6(a): plan-level, errors by template (10GB)",
                &out.per_template_errors(),
            );
            println!("overall mean relative error: {:.2}%", out.overall_error() * 100.0);
            println!("(paper: avg 6.75%, template 9 spikes to 80.1%)");
            print_timeouts(&ds);
        }
        if want("b") {
            let pairs: Vec<(f64, f64)> = out.rows.iter().map(|r| (r.1, r.2)).collect();
            print_scatter("Fig 6(b): plan-level prediction scatter (10GB)", &pairs, 40);
        }
    }
    if want("c") {
        let ds = build_dataset_sized(1.0, &tpch::EIGHTEEN, per_template);
        let out = plan_level_cv(&ds, &PlanModelConfig::default());
        print_template_errors(
            "Fig 6(c): plan-level, errors by template (1GB)",
            &out.per_template_errors(),
        );
        println!("overall mean relative error: {:.2}%", out.overall_error() * 100.0);
        println!("(paper: avg 17.43%, spikes 75.5 / 89.7)");
    }
    if want("d") || want("e") {
        let ds = build_dataset_sized(10.0, &tpch::FOURTEEN, per_template);
        let out = op_level_cv(&ds, &OpModelConfig::default());
        if want("d") {
            print_template_errors(
                "Fig 6(d): operator-level, errors by template (10GB)",
                &out.per_template_errors(),
            );
            let (n, avg) = out.below_threshold(0.2);
            println!(
                "{n} of 14 templates below 20% error; their mean: {:.2}%",
                avg * 100.0
            );
            println!("overall mean relative error: {:.2}%", out.overall_error() * 100.0);
            println!("(paper: 11 of 14 below 20%, mean 7.3%; overall 53.92%)");
        }
        if want("e") {
            let pairs: Vec<(f64, f64)> = out.rows.iter().map(|r| (r.1, r.2)).collect();
            print_scatter(
                "Fig 6(e): operator-level prediction scatter (10GB)",
                &pairs,
                40,
            );
        }
    }
    if want("f") {
        let ds = build_dataset_sized(1.0, &tpch::FOURTEEN, per_template);
        let out = op_level_cv(&ds, &OpModelConfig::default());
        print_template_errors(
            "Fig 6(f): operator-level, errors by template (1GB)",
            &out.per_template_errors(),
        );
        let (n, avg) = out.below_threshold(0.25);
        println!(
            "{n} of 14 templates below 25% error; their mean: {:.2}%",
            avg * 100.0
        );
        println!("overall mean relative error: {:.2}%", out.overall_error() * 100.0);
        println!("(paper: 8 templates below 25% with mean 16.45%; overall 59.57%)");
    }
}

fn print_timeouts(ds: &qpp::QueryDataset) {
    if !ds.timed_out.is_empty() {
        println!("queries dropped at the 1-hour limit:");
        for (t, n) in &ds.timed_out {
            println!("  template {t}: {n} (kept {})", PER_TEMPLATE - n);
        }
    }
}

fn arg_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
